//! Ablation: router-duplication sweep between bucket-brigade (cap = 1) and
//! the full Fat-Tree (cap = log N), quantifying §3's claim that a moderate
//! constant-factor qubit increase buys the parallelism.

use qram_arch::PartialFatTree;
use qram_bench::{header, num, row};
use qram_metrics::{Capacity, TimingModel};

fn main() {
    let capacity = Capacity::new(1024).expect("power of two");
    let timing = TimingModel::paper_default();
    header("Ablation: per-node router cap c, N = 2^10");
    row(
        "c",
        &[
            "routers",
            "qubits",
            "qubits/BB",
            "parallelism",
            "amortized",
            "bandwidth",
            "volume/N",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect::<Vec<_>>(),
    );
    let base = PartialFatTree::new(capacity, 1).qubit_count() as f64;
    for c in 1..=10u32 {
        let t = PartialFatTree::new(capacity, c);
        row(
            &c.to_string(),
            [
                num(t.router_count() as f64),
                num(t.qubit_count() as f64),
                format!("{:.3}", t.qubit_count() as f64 / base),
                num(f64::from(t.query_parallelism())),
                num(t.amortized_query_latency(&timing).get()),
                num(t.bandwidth(&timing).get()),
                num(t
                    .spacetime_volume_per_query(&timing)
                    .per_cell(capacity.get())),
            ]
            .as_ref(),
        );
    }
    println!();
    println!(
        "Duplicating only the top levels approaches the full Fat-Tree's \
         constant bandwidth at a fraction of its (already modest, <2x) \
         qubit overhead."
    );
}
