//! Epoch-keyed query memoization on Zipf-skewed serving traffic: hit-rate
//! curve plus a memoized-vs-unmemoized timing A/B on the classic
//! Zipf(0.99) operating point.
//!
//! A serving batch repeats popular classical addresses, so the
//! `(write_epoch, address set)` memo cache of
//! `qram_core::execute_batch_traced` answers most queries without
//! walking the instruction stream. This target prints the measured hit
//! rate for a sweep of skew exponents and batch sizes, times the
//! Zipf(0.99) batch through both engines, and records the headline hit
//! rate into the `CRITERION_JSON` baseline (as
//! `cache_hit_rate/zipf099_1024q_hit_rate_percent` — the value is a
//! percentage, not a duration).

use std::io::Write as _;

use criterion::{criterion_group, criterion_main, Criterion};
use qram_core::{execute_batch, execute_batch_traced, execute_batch_unmemoized, FatTreeQram};
use qram_metrics::Capacity;
use qram_sched::ZipfAddresses;
use qsim::branch::{AddressState, ClassicalMemory};

const N: u64 = 4096;
const ADDRESS_WIDTH: u32 = 12;
const BATCH: usize = 1024;
const SEED: u64 = 20250727;

fn memory() -> ClassicalMemory {
    let cells: Vec<u64> = (0..N).map(|i| (i * 5 + 1) % 2).collect();
    ClassicalMemory::from_words(1, &cells).expect("valid memory")
}

fn zipf_batch(theta: f64, count: usize) -> Vec<AddressState> {
    ZipfAddresses::new(Capacity::new(N).expect("power of two"), theta)
        .addresses(count, SEED)
        .into_iter()
        .map(|a| AddressState::classical(ADDRESS_WIDTH, a).expect("address in range"))
        .collect()
}

fn measured_hit_rate(qram: &FatTreeQram, mem: &ClassicalMemory, theta: f64, count: usize) -> f64 {
    let addresses = zipf_batch(theta, count);
    let (_, stats) = execute_batch_traced(qram, mem, &addresses, &[]).expect("batch executes");
    stats.hit_rate()
}

/// Appends one id/value line to the `CRITERION_JSON` stream with the
/// `scalar` key (not `ns_per_iter`), so scalar measurements
/// (here: a hit-rate percentage) land in the baseline's `scalars`
/// section instead of the timing table.
fn record_scalar(id: &str, value: f64) {
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(f, "{{\"id\":\"{id}\",\"scalar\":{value:.1}}}");
        }
    }
}

fn print_hit_rate_curve(qram: &FatTreeQram, mem: &ClassicalMemory) {
    println!("== batch memoization hit rate, N = {N}, Fat-Tree, seed {SEED} ==");
    println!("{:>6} {:>8} {:>10}", "theta", "queries", "hit rate");
    for theta in [0.0, 0.5, 0.8, 0.99, 1.2] {
        for count in [256usize, 1024] {
            let rate = measured_hit_rate(qram, mem, theta, count);
            println!("{theta:>6.2} {count:>8} {:>9.1}%", rate * 100.0);
        }
    }
}

fn bench_cache_hit_rate(c: &mut Criterion) {
    let qram = FatTreeQram::new(Capacity::new(N).expect("power of two"));
    let mem = memory();
    print_hit_rate_curve(&qram, &mem);
    let headline = measured_hit_rate(&qram, &mem, 0.99, BATCH);
    println!(
        "headline Zipf(0.99), {BATCH} queries: {:.1}% hits",
        headline * 100.0
    );
    record_scalar(
        "cache_hit_rate/zipf099_1024q_hit_rate_percent",
        headline * 100.0,
    );

    let mut group = c.benchmark_group("cache_hit_rate");
    let addresses = zipf_batch(0.99, BATCH);
    // Both sides go through the shared sweep engine directly (no
    // per-backend batch validation), so the A/B isolates memoization.
    group.bench_function("zipf099_1024q_memoized", |b| {
        b.iter(|| execute_batch(&qram, &mem, &addresses, &[]).expect("batch executes"))
    });
    group.bench_function("zipf099_1024q_unmemoized", |b| {
        b.iter(|| execute_batch_unmemoized(&qram, &mem, &addresses, &[]).expect("batch executes"))
    });
    group.finish();
}

criterion_group!(benches, bench_cache_hit_rate);
criterion_main!(benches);
