//! Columnar structure-of-arrays kernel A/B: the batch path taken by
//! `execute_batch` / `execute_batch_traced` (flatten once, per-epoch memo
//! accounting, bit-parallel retrieval, shared-column outcomes) against
//! the pinned row-at-a-time memoized engine `execute_batch_rowwise` —
//! the previous revision's hot path — on the same batches.
//!
//! Operating points: Fat-Tree at N = 4096, batch sizes 256 / 1024 / 4096,
//! uniform (Zipf θ = 0) and Zipf(0.99) address skew, fixed seed. Both
//! sides compute identical outcomes and identical `BatchCacheStats`
//! (property-tested), so the ratio isolates the kernel restructuring.

use criterion::{criterion_group, criterion_main, Criterion};
use qram_core::{execute_batch, execute_batch_rowwise, FatTreeQram};
use qram_metrics::Capacity;
use qram_sched::ZipfAddresses;
use qsim::branch::{AddressState, ClassicalMemory};

const N: u64 = 4096;
const ADDRESS_WIDTH: u32 = 12;
const SEED: u64 = 20250727;

fn memory() -> ClassicalMemory {
    let cells: Vec<u64> = (0..N).map(|i| (i * 5 + 1) % 2).collect();
    ClassicalMemory::from_words(1, &cells).expect("valid memory")
}

fn batch(theta: f64, count: usize) -> Vec<AddressState> {
    ZipfAddresses::new(Capacity::new(N).expect("power of two"), theta)
        .addresses(count, SEED)
        .into_iter()
        .map(|a| AddressState::classical(ADDRESS_WIDTH, a).expect("address in range"))
        .collect()
}

fn bench_columnar_exec(c: &mut Criterion) {
    let qram = FatTreeQram::new(Capacity::new(N).expect("power of two"));
    let mem = memory();
    let mut group = c.benchmark_group("columnar_exec");
    for (dist, theta) in [("uniform", 0.0), ("zipf099", 0.99)] {
        for count in [256usize, 1024, 4096] {
            let addresses = batch(theta, count);
            group.bench_function(format!("ft_{count}q_{dist}_soa"), |b| {
                b.iter(|| execute_batch(&qram, &mem, &addresses, &[]).expect("batch executes"))
            });
            group.bench_function(format!("ft_{count}q_{dist}_rowwise"), |b| {
                b.iter(|| {
                    execute_batch_rowwise(&qram, &mem, &addresses, &[]).expect("batch executes")
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_columnar_exec);
criterion_main!(benches);
