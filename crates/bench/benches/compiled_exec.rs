//! Compiled-plan A/B: the same queries timed through the instruction-
//! stream interpreter and through the partially evaluated
//! [`CompiledQuery`] plans that `QramModel::compiled_query` routes the
//! hot paths through.
//!
//! Three pairs, each `*_interpreted` (the pinned reference path) vs
//! `*_compiled` (the dispatching entry point):
//!
//! * single 16-branch queries at `N = 1024` (the `query_execution`
//!   shape) — per-branch work drops from an `O(log² N)` op walk to one
//!   classical memory read;
//! * a cold-cache 1024-query batch over all-distinct addresses (no memo
//!   hits, so the pair isolates the plan itself);
//! * a sharded `K = 4` superposed batch, where the plan also removes the
//!   per-shard sub-state construction.
//!
//! [`CompiledQuery`]: qram_core::CompiledQuery

use criterion::{criterion_group, criterion_main, Criterion};
use qram_core::exec::execute_layers_sequential;
use qram_core::{execute_batch, execute_batch_unmemoized, FatTreeQram, QramModel, ShardedQram};
use qram_metrics::Capacity;
use qsim::branch::{AddressState, ClassicalMemory};

const ADDRESS_WIDTH: u32 = 10;
const N: u64 = 1 << ADDRESS_WIDTH;

fn memory() -> ClassicalMemory {
    let cells: Vec<u64> = (0..N).map(|i| (i * 7 + 3) % 2).collect();
    ClassicalMemory::from_words(1, &cells).expect("valid memory")
}

/// Single-query shape of the `query_execution` group: 16 branches.
fn bench_single_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("compiled_exec");
    let mem = memory();
    let qram = FatTreeQram::new(Capacity::new(N).expect("power of two"));
    let layers = qram.interned_query_layers();
    let plan = qram.compiled_query().expect("built-in plan");
    let addresses: Vec<u64> = (0..16u64).map(|i| i * (N / 16)).collect();
    let address = AddressState::uniform(ADDRESS_WIDTH, &addresses).expect("valid");
    group.bench_function("ft_16branch_n10_interpreted", |b| {
        b.iter(|| execute_layers_sequential(&layers, &mem, &address).expect("valid stream"))
    });
    group.bench_function("ft_16branch_n10_compiled", |b| {
        b.iter(|| plan.execute(&mem, &address))
    });

    // Cold-cache batch: 1024 all-distinct classical addresses, so the
    // memo never hits and the A/B isolates plan vs interpreter.
    let batch: Vec<AddressState> = (0..N)
        .map(|a| AddressState::classical(ADDRESS_WIDTH, a).expect("valid"))
        .collect();
    group.bench_function("ft_1024cold_batch_interpreted", |b| {
        b.iter(|| execute_batch_unmemoized(&qram, &mem, &batch, &[]).expect("valid"))
    });
    group.bench_function("ft_1024cold_batch_compiled", |b| {
        b.iter(|| execute_batch(&qram, &mem, &batch, &[]).expect("valid"))
    });

    // Sharded K = 4: 8 superposed queries of 64 branches each.
    let sharded = ShardedQram::fat_tree(Capacity::new(N).expect("power of two"), 4);
    let queries: Vec<AddressState> = (0..8u64)
        .map(|q| {
            let mut addrs: Vec<u64> = (0..64u64).map(|b| (q * 13 + b * 17) % N).collect();
            addrs.sort_unstable();
            addrs.dedup();
            AddressState::uniform(ADDRESS_WIDTH, &addrs).expect("valid")
        })
        .collect();
    group.bench_function("sharded_k4_8x64branch_interpreted", |b| {
        b.iter(|| {
            sharded
                .execute_queries_sequential(&mem, &queries, &[])
                .expect("valid")
        })
    });
    group.bench_function("sharded_k4_8x64branch_compiled", |b| {
        b.iter(|| sharded.execute_queries(&mem, &queries, &[]).expect("valid"))
    });
    group.finish();
}

criterion_group!(benches, bench_single_query);
criterion_main!(benches);
