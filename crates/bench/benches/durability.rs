//! Durability fast-path benchmark: group-commit WAL append throughput
//! on a real filesystem, and cold-recovery cost of delta-chain vs
//! full-image checkpointing at an equal checkpoint byte budget.
//!
//! Two reproduction artifacts:
//!
//! 1. **Records per fsync.** The WAL acknowledgment point is the group
//!    sync; batching `g` records behind one fsync amortizes the platter
//!    barrier `g` ways. Measured on an [`OsDir`] scratch directory so
//!    the fsync is real — the headline scalar is the sustained append
//!    speedup of group 32 over per-record commit (the repo's
//!    acceptance bar is ≥ 5×).
//! 2. **Recovery at 64k epochs.** A hot write set (256 cells of a 4096
//!    cell memory) lets incremental deltas stay ~8× smaller than full
//!    images, so at the *same* checkpoint byte budget the delta policy
//!    checkpoints ~4.5× more often: its crash image carries a delta
//!    chain plus a short WAL tail where the full-image policy carries a
//!    long tail. Cold recovery replays both; the delta arm wins on
//!    bytes scanned.

use std::io::Write as _;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use qram_core::store::{
    CheckpointPolicy, DirOp, DurableFleet, GroupCommitPolicy, OsDir, SimDir, CHECKPOINT_TMP,
    DELTA_TMP,
};
use qram_core::ReplicatedWrite;
use qsim::branch::ClassicalMemory;

/// Memory size of the recovery arms (cells at bus width 1).
const N: u64 = 4096;
/// Hot write set: every write lands on one of these cells, so a delta
/// spanning [`DELTA_EVERY`] epochs tops out at `HOT_CELLS` entries.
const HOT_CELLS: u64 = 256;
/// Epochs appended before the simulated crash.
const EPOCHS: u64 = 64_000;
/// Delta arm: a delta every 1024 epochs, folding past a chain of 10 —
/// per 11264-epoch cycle that is 10 small deltas plus one full image.
const DELTA_EVERY: u64 = 1024;
const DELTA_CHAIN: usize = 10;
/// Full-image arm: cadence chosen so both arms spend the same
/// checkpoint bytes over the run (measured and reported below).
const FULL_EVERY: u64 = 4608;

/// Appends per timed round of the throughput measurement.
const ROUND: u64 = 192;
/// Commit-group sizes swept by the throughput measurement.
const GROUPS: [usize; 4] = [1, 8, 32, 128];

fn memory() -> ClassicalMemory {
    let cells: Vec<u64> = (0..N).map(|i| (i * 7 + 3) % 2).collect();
    ClassicalMemory::from_words(1, &cells).expect("valid memory")
}

/// Write `epoch` of the hot-set workload: 13 is odd, so the addresses
/// cycle through all [`HOT_CELLS`] residues, spread across the memory.
fn hot_write(epoch: u64) -> ReplicatedWrite {
    ReplicatedWrite {
        epoch,
        origin: (epoch % 4) as usize,
        address: ((epoch * 13) % HOT_CELLS) * (N / HOT_CELLS),
        value: epoch % 2,
    }
}

fn record_scalar(id: &str, value: f64) {
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(f, "{{\"id\":\"{id}\",\"scalar\":{value:.1}}}");
        }
    }
}

/// A fresh scratch directory under the cargo-managed tmp dir.
fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("dur_{tag}"));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clear stale scratch dir");
    }
    dir
}

/// One timed round: [`ROUND`] appends plus the final flush on a fresh
/// [`OsDir`] store under `group`-record commit. Returns the elapsed
/// wall time and the fsyncs paid.
fn timed_round(tag: &str, group: usize) -> (Duration, u64) {
    let root = scratch(tag);
    let mut store = DurableFleet::create_with(
        Box::new(OsDir::open(&root).expect("open scratch dir")),
        &memory(),
        CheckpointPolicy::never(),
    )
    .expect("create store")
    .with_group_commit(GroupCommitPolicy::group(group, 0.0));
    let mut syncs = 0u64;
    let start = Instant::now();
    for e in 1..=ROUND {
        if store.append(&hot_write(e)).expect("append").synced_records > 0 {
            syncs += 1;
        }
    }
    if store.flush().expect("flush").synced_records > 0 {
        syncs += 1;
    }
    let elapsed = start.elapsed();
    drop(store);
    std::fs::remove_dir_all(&root).expect("clean scratch dir");
    (elapsed, syncs)
}

fn print_throughput_rows(_c: &mut Criterion) {
    println!("== WAL append throughput on OsDir, {ROUND} records per round, best of 3 ==");
    println!(
        "{:>6} {:>14} {:>16} {:>12}",
        "group", "us/record", "records/fsync", "speedup"
    );
    let mut per_record_us = 0.0;
    for &g in &GROUPS {
        let (best, syncs) = (0..3)
            .map(|round| timed_round(&format!("tp_g{g}_{round}"), g))
            .min_by_key(|(t, _)| *t)
            .expect("three rounds ran");
        let us = best.as_secs_f64() * 1e6 / ROUND as f64;
        let records_per_fsync = ROUND as f64 / syncs as f64;
        if g == 1 {
            per_record_us = us;
        }
        let speedup = per_record_us / us;
        println!("{g:>6} {us:>14.2} {records_per_fsync:>16.1} {speedup:>11.1}x");
        record_scalar(&format!("durability/append_us_per_record_g{g}"), us);
        record_scalar(
            &format!("durability/records_per_fsync_g{g}"),
            records_per_fsync,
        );
        if g == 32 {
            record_scalar("durability/group32_speedup_x", speedup);
            assert!(
                speedup >= 5.0,
                "group commit at 32 records must sustain >= 5x per-record throughput, got {speedup:.1}x"
            );
        }
    }
}

/// Builds the crash image of [`EPOCHS`] hot-set writes under `policy`:
/// only the surviving files, journal stripped.
fn crash_image(policy: CheckpointPolicy) -> (SimDir, u64) {
    let mut store = DurableFleet::create_with(Box::new(SimDir::new()), &memory(), policy)
        .expect("create store");
    for e in 1..=EPOCHS {
        store.append(&hot_write(e)).expect("append");
    }
    let mut dir = store.into_dir();
    let sim = dir
        .as_any_mut()
        .downcast_mut::<SimDir>()
        .expect("bench store runs on SimDir");
    // Checkpoint bytes spent over the run: every image and delta is
    // staged through its tmp file exactly once.
    let budget: u64 = sim
        .journal()
        .iter()
        .filter(|op| {
            matches!(op, DirOp::Replace { name, .. }
                if name == CHECKPOINT_TMP || name == DELTA_TMP)
        })
        .map(|op| op.write_len() as u64)
        .sum();
    (sim.replay_prefix(sim.journal().len(), None), budget)
}

/// Best-of-5 wall time of one cold recovery from `image`.
fn timed_recovery(image: &SimDir) -> Duration {
    (0..5)
        .map(|_| {
            let dir = Box::new(image.clone());
            let start = Instant::now();
            let state = DurableFleet::recover(dir).expect("recover");
            assert_eq!(state.epoch, EPOCHS, "no acknowledged write is lost");
            start.elapsed()
        })
        .min()
        .expect("five rounds ran")
}

fn print_recovery_rows(_c: &mut Criterion) {
    let (full_image, full_budget) = crash_image(CheckpointPolicy::every(FULL_EVERY));
    let (delta_image, delta_budget) =
        crash_image(CheckpointPolicy::deltas(DELTA_EVERY, DELTA_CHAIN));
    let full_state = DurableFleet::recover(Box::new(full_image.clone())).expect("recover");
    let delta_state = DurableFleet::recover(Box::new(delta_image.clone())).expect("recover");
    println!(
        "== cold recovery at {EPOCHS} epochs, hot set {HOT_CELLS}/{N} cells, equal checkpoint budget =="
    );
    println!(
        "{:>14} {:>14} {:>8} {:>10} {:>14}",
        "policy", "ckpt bytes", "chain", "wal tail", "recovery us"
    );
    let full_us = timed_recovery(&full_image).as_secs_f64() * 1e6;
    let delta_us = timed_recovery(&delta_image).as_secs_f64() * 1e6;
    println!(
        "{:>14} {full_budget:>14} {:>8} {:>10} {full_us:>14.1}",
        "full_interval",
        full_state.delta_chain,
        full_state.writes.len(),
    );
    println!(
        "{:>14} {delta_budget:>14} {:>8} {:>10} {delta_us:>14.1}",
        "delta_chain",
        delta_state.delta_chain,
        delta_state.writes.len(),
    );
    record_scalar("durability/recovery_us_64k_full_interval", full_us);
    record_scalar("durability/recovery_us_64k_delta_chain", delta_us);
    record_scalar("durability/recovery_delta_speedup_x", full_us / delta_us);
    record_scalar(
        "durability/checkpoint_bytes_64k_full_interval",
        full_budget as f64,
    );
    record_scalar(
        "durability/checkpoint_bytes_64k_delta_chain",
        delta_budget as f64,
    );
    // The comparison is only fair if the delta arm spent no more
    // checkpoint bytes than the full-image arm.
    assert!(
        delta_budget <= full_budget,
        "delta arm over budget: {delta_budget} > {full_budget}"
    );
    assert!(
        delta_us < full_us,
        "delta-chain recovery must beat the full-image interval at equal budget: \
         {delta_us:.1}us vs {full_us:.1}us"
    );
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("durability");
    for (label, policy) in [
        (
            "recovery_64k_full_interval",
            CheckpointPolicy::every(FULL_EVERY),
        ),
        (
            "recovery_64k_delta_chain",
            CheckpointPolicy::deltas(DELTA_EVERY, DELTA_CHAIN),
        ),
    ] {
        let (image, _) = crash_image(policy);
        group.bench_function(label, |b| {
            b.iter_batched(
                || image.clone(),
                |dir| DurableFleet::recover(Box::new(dir)).expect("recover"),
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_os_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("durability");
    for (label, g) in [("os_append_per_record", 1usize), ("os_append_group32", 32)] {
        let root = scratch(label);
        let mut store = DurableFleet::create_with(
            Box::new(OsDir::open(&root).expect("open scratch dir")),
            &memory(),
            CheckpointPolicy::never(),
        )
        .expect("create store")
        .with_group_commit(GroupCommitPolicy::group(g, 0.0));
        let mut epoch = 0u64;
        group.bench_function(label, |b| {
            b.iter(|| {
                epoch += 1;
                store.append(&hot_write(epoch)).expect("append")
            })
        });
        drop(store);
        std::fs::remove_dir_all(&root).expect("clean scratch dir");
    }
    group.finish();
}

criterion_group!(
    benches,
    print_throughput_rows,
    print_recovery_rows,
    bench_recovery,
    bench_os_append
);
criterion_main!(benches);
