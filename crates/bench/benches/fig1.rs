//! Figure 1(b): asymptotic cost comparison of Fat-Tree vs shared BB QRAM
//! for O(log N) independent queries, instantiated at several capacities.

use qram_arch::{Architecture, CostModel};
use qram_bench::{header, num, row};
use qram_metrics::{Capacity, TimingModel};
use qram_noise::{bounds, GateErrorRates};

fn main() {
    let timing = TimingModel::paper_default();
    let rates = GateErrorRates::paper_default();
    header("Figure 1(b): Fat-Tree vs shared BB for log(N) independent queries");
    row(
        "N",
        &[
            "qubits FT",
            "qubits BB",
            "t_logN FT",
            "t_logN BB",
            "infid FT",
            "infid BB",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect::<Vec<_>>(),
    );
    for n_exp in [5u32, 10, 15] {
        let capacity = Capacity::from_address_width(n_exp);
        let ft = CostModel::new(Architecture::FatTree, capacity, timing);
        let bb = CostModel::new(Architecture::BucketBrigade, capacity, timing);
        row(
            &format!("2^{n_exp}"),
            [
                num(ft.qubit_count() as f64),
                num(bb.qubit_count() as f64),
                num(ft.parallel_queries_latency(n_exp).get()),
                num(bb.parallel_queries_latency(n_exp).get()),
                num(bounds::fat_tree_query_infidelity(capacity, &rates)),
                num(bounds::bb_query_infidelity(capacity, &rates)),
            ]
            .as_ref(),
        );
    }
    println!();
    println!(
        "Paper reference: O(N) qubits both; parallelism log(N) vs 1; \
         latency log(N) vs log^2(N); infidelity 1 - log^2(N)*eps both."
    );
}
