//! Figure 10: overall depth and average utilization heatmaps for the
//! synthetic algorithm family on BB and Fat-Tree QRAM.

use qram_algos::sweep_grid;
use qram_arch::Architecture;
use qram_bench::header;
use qram_metrics::{Capacity, TimingModel};

fn print_grid(
    title: &str,
    arch: Architecture,
    ratios: &[f64],
    counts: &[u32],
    value: impl Fn(&qram_algos::SweepCell) -> f64,
) {
    let capacity = Capacity::new(1024).expect("power of two");
    let timing = TimingModel::paper_default();
    let cells = sweep_grid(arch, capacity, timing, ratios, counts);
    println!();
    println!("{title}");
    print!("{:>6}", "p\\d/t1");
    for r in ratios {
        print!("{r:>9.2}");
    }
    println!();
    for (ci, &p) in counts.iter().enumerate() {
        print!("{p:>6}");
        for (ri, _) in ratios.iter().enumerate() {
            let cell = &cells[ri * counts.len() + ci];
            print!("{:>9.2}", value(cell));
        }
        println!();
    }
}

fn main() {
    header("Figure 10: synthetic algorithms (10 iterations), N = 2^10");
    let ratios = [0.0, 0.5, 1.0, 1.5, 2.0];
    let counts = [1u32, 5, 10, 15, 20, 25, 30];
    print_grid(
        "(a1) Overall algorithm depth, BB QRAM (layers):",
        Architecture::BucketBrigade,
        &ratios,
        &counts,
        |c| c.depth.get(),
    );
    print_grid(
        "(a2) Overall algorithm depth, Fat-Tree QRAM (layers):",
        Architecture::FatTree,
        &ratios,
        &counts,
        |c| c.depth.get(),
    );
    print_grid(
        "(b1) Average QRAM utilization, BB QRAM:",
        Architecture::BucketBrigade,
        &ratios,
        &counts,
        |c| c.utilization.get(),
    );
    print_grid(
        "(b2) Average QRAM utilization, Fat-Tree QRAM:",
        Architecture::FatTree,
        &ratios,
        &counts,
        |c| c.utilization.get(),
    );
    println!();
    println!(
        "Paper reference: BB hits the memory bandwidth bound at small p; \
         Fat-Tree balances p against d/t1, cutting overall depth (~10x at \
         high p, low d/t1)."
    );
}
