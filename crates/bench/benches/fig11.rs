//! Figure 11: infidelity of Fat-Tree QRAM, BB QRAM, and a generic circuit
//! vs tree depth, with and without QEC (d = 3, 5).

use qram_bench::{header, num, row};
use qram_noise::{figure11_curve, GateErrorRates, QecCode};

fn main() {
    header("Figure 11: infidelity vs tree depth n = log N (e0 = 1e-3)");
    let physical = GateErrorRates::from_cswap_rate(1e-3);
    let depths: Vec<u32> = (2..=18).step_by(2).collect();
    let raw = figure11_curve(depths.iter().copied(), &physical, None);
    let d3 = figure11_curve(
        depths.iter().copied(),
        &physical,
        Some(QecCode::distance(3)),
    );
    let d5 = figure11_curve(
        depths.iter().copied(),
        &physical,
        Some(QecCode::distance(5)),
    );
    row(
        "n",
        &[
            "FT", "BB", "GC", "FT d=3", "BB d=3", "GC d=3", "FT d=5", "GC d=5",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect::<Vec<_>>(),
    );
    for i in 0..depths.len() {
        row(
            &depths[i].to_string(),
            [
                num(raw[i].fat_tree),
                num(raw[i].bucket_brigade),
                num(raw[i].generic_circuit),
                num(d3[i].fat_tree),
                num(d3[i].bucket_brigade),
                num(d3[i].generic_circuit),
                num(d5[i].fat_tree),
                num(d5[i].generic_circuit),
            ]
            .as_ref(),
        );
    }
    println!();
    // The paper's anchor: at distance 3 and budget 5e-4, QRAM runs much
    // deeper trees than a generic circuit.
    let budget = 5e-4;
    let fine = figure11_curve(2..=20, &physical, Some(QecCode::distance(3)));
    let qram_max = fine
        .iter()
        .filter(|p| p.fat_tree <= budget)
        .map(|p| p.tree_depth)
        .max()
        .unwrap_or(0);
    let gc_max = fine
        .iter()
        .filter(|p| p.generic_circuit <= budget)
        .map(|p| p.tree_depth)
        .max()
        .unwrap_or(0);
    println!(
        "at infidelity budget {budget}: QEC d=3 supports QRAM tree depth {qram_max} \
         vs generic circuit {gc_max} (paper: n = 10 vs n ~ 6)"
    );
    println!(
        "Fat-Tree vs BB infidelity ratio: {} (paper: a small constant, 1.25x)",
        num(raw[3].fat_tree / raw[3].bucket_brigade)
    );
}
