//! Figure 12 / Appendix A.1: step-by-step instruction pipelining diagram
//! for three capacity-8 Fat-Tree queries.

use qram_bench::header;
use qram_core::pipeline::render_instruction_diagram;
use qram_core::{FatTreeQram, QramModel};
use qram_metrics::Capacity;
use qsim::branch::{AddressState, ClassicalMemory};

fn main() {
    let capacity = Capacity::new(8).expect("power of two");
    let qram = FatTreeQram::new(capacity);
    header("Figure 12: instruction-level pipeline, capacity-8 Fat-Tree queries");
    println!("Per-query instruction stream (queries repeat every 10 layers):");
    println!(
        "{}",
        render_instruction_diagram(&qram.query_layers(), capacity.address_width())
    );
    let schedule = qram.pipeline(3);
    println!("Global query offsets (layers):");
    for t in schedule.timings() {
        println!(
            "  query {} occupies layers {}..={}",
            t.query + 1,
            t.start_layer,
            t.end_layer
        );
    }
    schedule
        .validate_no_conflicts()
        .expect("pipelines align with no conflicting qubit usage");
    println!("conflict check: pipelines align, no conflicting usage of qubits  [OK]");
    // End-to-end functional validation of three pipelined queries.
    let memory = ClassicalMemory::from_words(1, &[0, 1, 1, 0, 1, 0, 0, 1]).expect("valid");
    let addresses: Vec<AddressState> = vec![
        AddressState::uniform(3, &[0, 1, 2, 3]).expect("valid"),
        AddressState::classical(3, 6).expect("valid"),
        AddressState::uniform(3, &[4, 7]).expect("valid"),
    ];
    let outcomes = qram
        .execute_queries(&memory, &addresses, &[])
        .expect("pipeline executes");
    for (i, out) in outcomes.iter().enumerate() {
        let ideal = memory.ideal_query(&addresses[i]);
        println!(
            "query {}: functional fidelity vs Eq. (1) = {:.12}",
            i + 1,
            out.fidelity(&ideal)
        );
    }
}
