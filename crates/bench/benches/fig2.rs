//! Figure 2(a): the 25-circuit-layer bucket-brigade query at N = 8, with
//! stage finish times and the full instruction-level schedule.

use qram_bench::header;
use qram_core::pipeline::render_instruction_diagram;
use qram_core::{BucketBrigadeQram, QramModel};
use qram_metrics::Capacity;
use qsim::branch::{AddressState, ClassicalMemory};

fn main() {
    let capacity = Capacity::new(8).expect("power of two");
    let qram = BucketBrigadeQram::new(capacity);
    header("Figure 2(a): BB QRAM query procedure, N = 8");
    println!(
        "single query = {} circuit layers (paper: 25)",
        qram.single_query_layers_integer()
    );
    println!(
        "stage finish layers = {:?} (paper: [4, 8, 12, 13, 17, 21, 25])",
        qram.stage_finish_layers()
    );
    println!();
    println!("Instruction-level schedule (rows = qubits, columns = layers):");
    println!(
        "{}",
        render_instruction_diagram(&qram.query_layers(), capacity.address_width())
    );
    // Functional check: execute the schedule on a superposed address.
    let memory = ClassicalMemory::from_words(1, &[1, 0, 1, 1, 0, 0, 1, 0]).expect("valid");
    let address = AddressState::full_superposition(3);
    let outcome = qram
        .execute_query(&memory, &address)
        .expect("schedule is valid");
    let fidelity = outcome.fidelity(&memory.ideal_query(&address));
    println!("functional fidelity vs Eq. (1): {fidelity:.12}");
    assert!((fidelity - 1.0).abs() < 1e-12);
}
