//! Figure 6: pipeline schedule of a capacity-8 Fat-Tree QRAM running three
//! concurrent queries.

use qram_bench::header;
use qram_core::{FatTreeQram, QramModel};
use qram_metrics::{Capacity, TimingModel};

fn main() {
    let capacity = Capacity::new(8).expect("power of two");
    let qram = FatTreeQram::new(capacity);
    let schedule = qram.pipeline(3);
    header("Figure 6: Fat-Tree pipeline, N = 8, three concurrent queries");
    println!(
        "single query = {} layers (paper: 29; BB comparison 29:25)",
        qram.single_query_layers_integer()
    );
    for t in schedule.timings() {
        println!(
            "query {}: start layer {:>2}, data retrieval {:>2}, done {:>2}",
            t.query + 1,
            t.start_layer,
            t.retrieval_layer,
            t.end_layer
        );
    }
    println!("(paper: starts 1/11/21 — every 10 layers; retrievals ~15/25/35; ends 29/39/49)");
    println!();
    schedule
        .validate_no_conflicts()
        .expect("no conflicting colors in the same layer");
    println!("conflict check: no two queries share a sub-QRAM in any gate step  [OK]");
    println!();
    println!("Sub-QRAM occupancy (rows = queries, columns = gate steps):");
    println!("{}", schedule.render_occupancy());
    let timing = TimingModel::paper_default();
    println!(
        "weighted makespan = {} (formula 16.5n - 8.375 at n = q = 3: {})",
        schedule.makespan(&timing).get(),
        16.5 * 3.0 - 8.375
    );
}
