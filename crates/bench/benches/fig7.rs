//! Figure 7: algorithm execution and query scheduling diagram — three
//! algorithms alternating queries with d layers of processing.

use qram_bench::header;
use qram_metrics::{Capacity, Layers};
use qram_sched::{simulate_streams, QramServer, StreamWorkload};

fn main() {
    let n_exp = 3u32;
    let d = 20.0;
    let capacity = Capacity::from_address_width(n_exp);
    let server = QramServer::fat_tree_integer_layers(capacity);
    header(&format!(
        "Figure 7: 3 algorithms x (3 queries, d = {d} processing), N = {capacity}"
    ));
    println!("single query = 10n - 1 = {} layers", server.latency().get());
    let streams = vec![StreamWorkload::alternating(3, Layers::new(d)); 3];
    let report = simulate_streams(&streams, &server);
    for q in report.queries() {
        println!(
            "stream {} query: ready {:>6.1}, start {:>6.1}, finish {:>6.1}",
            q.stream + 1,
            q.ready.get(),
            q.start.get(),
            q.finish.get()
        );
    }
    let expect = 30.0 * f64::from(n_exp) + 2.0 * d + 17.0;
    println!();
    println!(
        "total time = {} (paper: 30n + 2d + 17 = {expect})",
        report.makespan().get()
    );
    assert!((report.makespan().get() - expect).abs() < 1e-9);
    println!();
    println!("QRAM utilization staircase (duration @ level):");
    for (dur, u) in report.utilization_trace().iter() {
        println!("  {:>6.1} layers @ {}", dur.get(), u);
    }
    println!("average utilization = {}", report.average_utilization());
}
