//! Figure 8: QRAM bandwidth vs capacity for the five architectures,
//! grouped by qubit budget.

use qram_arch::{Architecture, CostModel};
use qram_bench::{header, num, row};
use qram_metrics::{Capacity, TimingModel};

fn main() {
    let timing = TimingModel::paper_default();
    header("Figure 8: bandwidth (qubit/s) vs capacity N, bus width 1");
    println!("O(N log N)-qubit group:");
    row(
        "N",
        &["D-BB", "D-Fat-Tree"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect::<Vec<_>>(),
    );
    for capacity in Capacity::sweep(1024).skip(1) {
        row(
            &capacity.to_string(),
            &[
                Architecture::DistributedBucketBrigade,
                Architecture::DistributedFatTree,
            ]
            .iter()
            .map(|&a| num(CostModel::new(a, capacity, timing).bandwidth(1).get()))
            .collect::<Vec<_>>(),
        );
    }
    println!();
    println!("O(N)-qubit group:");
    row(
        "N",
        &["Fat-Tree", "BB", "Virtual"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect::<Vec<_>>(),
    );
    for capacity in Capacity::sweep(1024).skip(1) {
        row(
            &capacity.to_string(),
            &[
                Architecture::FatTree,
                Architecture::BucketBrigade,
                Architecture::Virtual,
            ]
            .iter()
            .map(|&a| num(CostModel::new(a, capacity, timing).bandwidth(1).get()))
            .collect::<Vec<_>>(),
        );
    }
    println!();
    println!(
        "Paper reference: Fat-Tree achieves a capacity-independent constant \
         bandwidth (1.21e5); BB and Virtual decay with log N."
    );
}
