//! Figure 9: overall circuit depth of four parallel algorithms on the five
//! architectures at N = 2^10.

use qram_algos::{figure9, ParallelAlgorithm};
use qram_arch::Architecture;
use qram_bench::{header, num, row};
use qram_metrics::{Capacity, TimingModel};

fn main() {
    let capacity = Capacity::new(1024).expect("power of two");
    let timing = TimingModel::paper_default();
    header("Figure 9: overall circuit depth (layers), N = 2^10, p = log N = 10");
    let bars = figure9(capacity, timing);
    row(
        "",
        &Architecture::ALL
            .iter()
            .map(|a| a.name().to_owned())
            .collect::<Vec<_>>(),
    );
    for algorithm in ParallelAlgorithm::figure9_suite() {
        let cells: Vec<String> = Architecture::ALL
            .iter()
            .map(|&arch| {
                let bar = bars
                    .iter()
                    .find(|b| b.architecture == arch && b.algorithm == algorithm)
                    .expect("grid is complete");
                num(bar.depth.get())
            })
            .collect();
        row(algorithm.name(), &cells);
    }
    println!();
    // The headline claim: up to ~10x depth reduction vs BB / Virtual.
    for algorithm in ParallelAlgorithm::figure9_suite() {
        let get = |arch: Architecture| {
            bars.iter()
                .find(|b| b.architecture == arch && b.algorithm == algorithm)
                .expect("grid")
                .depth
                .get()
        };
        println!(
            "{:<18} Fat-Tree speedup vs BB: {:>5.2}x, vs Virtual: {:>5.2}x",
            algorithm.name(),
            get(Architecture::BucketBrigade) / get(Architecture::FatTree),
            get(Architecture::Virtual) / get(Architecture::FatTree),
        );
    }
    println!();
    println!("Paper reference: up to a factor of 10 reduction vs baselines BB and Virtual.");
}
