//! Multi-tenant fleet serving benchmark: a flash crowd from a hot tenant
//! lands on a replicated Fat-Tree QRAM fleet at `N = 4096`, `K = 4`,
//! `R ∈ {1, 2, 4}`.
//!
//! The reproduction artifact is one row per replica count — offered
//! load, sustained fleet throughput, hot-tenant and background p99 —
//! under a two-tenant mix: a background tenant at a steady Poisson
//! trickle and a hot tenant whose flash crowd peaks at several times
//! the aggregate admission capacity of a single replica. Each row is
//! produced twice, with the hot tenant uncapped and with an
//! outstanding-query quota at the router, so the baseline records both
//! the throughput scaling in `R` and the quota keeping the hot tenant's
//! p99 bounded while the crowd sheds. The criterion timings measure the
//! full fleet serving loop (router + per-replica reactors + execution)
//! per replica count; the per-`R` served rates and the R = 2 hot-tenant
//! p99s land in the `CRITERION_JSON` baseline as scalars.

use std::io::Write as _;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use qram_core::{QramModel, ShardedQram};
use qram_metrics::{Capacity, TimingModel};
use qram_sched::{flash_crowd_arrivals, poisson_arrivals, FifoAdmission, QuotaAdmission, TenantId};
use qram_serve::{ConsistentHashPlacement, FleetConfig, FleetRequest, FleetWrite, QramFleet};
use qsim::branch::{AddressState, ClassicalMemory};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: u64 = 4096;
const ADDRESS_WIDTH: u32 = 12;
const SHARDS: u32 = 4;
const REPLICA_COUNTS: [usize; 3] = [1, 2, 4];
const HOT_REQUESTS: usize = 384;
const BACKGROUND_REQUESTS: usize = 128;
const SEED: u64 = 20260808;
/// Outstanding-query cap for the hot tenant in the quota runs.
const HOT_QUOTA: u32 = 8;

const HOT: TenantId = TenantId(0);
const BACKGROUND: TenantId = TenantId(1);

fn capacity() -> Capacity {
    Capacity::new(N).expect("4096 is a power of two")
}

fn memory() -> ClassicalMemory {
    let cells: Vec<u64> = (0..N).map(|i| (i * 7 + 3) % 2).collect();
    ClassicalMemory::from_words(1, &cells).expect("valid memory")
}

/// Admission interval of one K-shard replica under the paper timing model.
fn replica_interval() -> f64 {
    ShardedQram::fat_tree(capacity(), SHARDS)
        .admission_interval(&TimingModel::paper_default())
        .get()
}

/// The two-tenant flash-crowd mix: a steady background trickle plus a
/// hot-tenant crowd peaking at 3× one replica's aggregate capacity.
fn workload() -> Vec<FleetRequest> {
    let interval = replica_interval();
    let replica_rate = 1.0 / interval;
    let mut rng = StdRng::seed_from_u64(SEED);
    let hot = flash_crowd_arrivals(
        0.2 * replica_rate,
        3.0 * replica_rate,
        100.0 * interval,
        400.0 * interval,
        HOT_REQUESTS,
        &mut rng,
    );
    let background = poisson_arrivals(0.1 * replica_rate, BACKGROUND_REQUESTS, &mut rng);

    let mut tagged: Vec<(TenantId, f64)> = hot
        .iter()
        .map(|r| (HOT, r.arrival.get()))
        .chain(background.iter().map(|r| (BACKGROUND, r.arrival.get())))
        .collect();
    tagged.sort_by(|a, b| a.1.total_cmp(&b.1));
    tagged
        .into_iter()
        .enumerate()
        .map(|(id, (tenant, arrival))| FleetRequest {
            id,
            tenant,
            arrival: qram_metrics::Layers::new(arrival),
            address: AddressState::classical(ADDRESS_WIDTH, rng.random_range(0..N))
                .expect("address in range"),
        })
        .collect()
}

fn fleet(
    replicas: usize,
    quota: Option<u32>,
) -> QramFleet<qram_core::FatTreeQram, QuotaAdmission<FifoAdmission>> {
    let mut policy = QuotaAdmission::new(FifoAdmission);
    if let Some(cap) = quota {
        policy = policy.with_quota(HOT, cap);
    }
    QramFleet::new(
        ShardedQram::fat_tree(capacity(), SHARDS),
        replicas,
        TimingModel::paper_default(),
        policy,
        ConsistentHashPlacement,
        FleetConfig {
            queue_capacity: Some(64),
            replication_lag: qram_metrics::Layers::new(50.0),
        },
    )
}

/// Appends one id/value line to the `CRITERION_JSON` stream with the
/// `scalar` key (not `ns_per_iter`), so scalar measurements
/// (here: served rates and latency percentiles) land in the same JSON
/// record as the timings.
fn record_scalar(id: &str, value: f64) {
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(f, "{{\"id\":\"{id}\",\"scalar\":{value:.1}}}");
        }
    }
}

fn print_fleet_rows(_c: &mut Criterion) {
    let timing = TimingModel::paper_default();
    let mem = memory();
    let requests = workload();
    let offered_span = requests
        .iter()
        .map(|r| r.arrival.get())
        .fold(0.0f64, f64::max);
    let offered =
        requests.len() as f64 / timing.layers_to_seconds(qram_metrics::Layers::new(offered_span));
    println!(
        "== QRAM fleet, N = {N}, K = {SHARDS}, {} requests ({} hot flash crowd + {} background), \
         hot quota = {HOT_QUOTA} ==",
        requests.len(),
        HOT_REQUESTS,
        BACKGROUND_REQUESTS
    );
    println!(
        "{:>3} {:>7} {:>11} {:>11} {:>6} {:>13} {:>13}",
        "R", "quota", "offered q/s", "served q/s", "shed", "hot p99 (µs)", "bg p99 (µs)"
    );
    for replicas in REPLICA_COUNTS {
        for quota in [None, Some(HOT_QUOTA)] {
            let mut fleet = fleet(replicas, quota);
            let report = fleet
                .serve(&mem, requests.clone(), Vec::<FleetWrite>::new())
                .expect("fleet run");
            let p99 = |tenant: TenantId| {
                report
                    .per_tenant()
                    .get(tenant)
                    .and_then(|h| h.p99())
                    .map_or(0.0, |p99| timing.layers_to_micros(p99))
            };
            println!(
                "{:>3} {:>7} {:>11.0} {:>11.0} {:>6} {:>13.1} {:>13.1}",
                replicas,
                quota.map_or("none".to_string(), |q| q.to_string()),
                offered,
                report.query_rate().get(),
                report.shed().len(),
                p99(HOT),
                p99(BACKGROUND),
            );
            if quota.is_none() {
                record_scalar(
                    &format!("fleet/r{replicas}_k4_n4096_flash_served_qps"),
                    report.query_rate().get(),
                );
            }
            if replicas == 2 {
                let label = if quota.is_some() {
                    "quota8"
                } else {
                    "uncapped"
                };
                record_scalar(
                    &format!("fleet/r2_k4_n4096_flash_hot_p99_us_{label}"),
                    p99(HOT),
                );
            }
        }
    }
}

fn bench_fleet_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet");
    let mem = memory();
    let requests = workload();
    for replicas in REPLICA_COUNTS {
        let mut fleet = fleet(replicas, Some(HOT_QUOTA));
        group.bench_function(
            format!("r{replicas}_k4_n4096_flash_{}q", requests.len()),
            |b| {
                b.iter_batched(
                    || requests.clone(),
                    |reqs| {
                        fleet
                            .serve(&mem, reqs, Vec::<FleetWrite>::new())
                            .expect("fleet run")
                    },
                    BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, print_fleet_rows, bench_fleet_loop);
criterion_main!(benches);
