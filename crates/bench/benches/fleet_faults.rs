//! Fault-tolerant fleet benchmark: a steady Poisson stream lands on an
//! `R = 4` Fat-Tree QRAM fleet at `N = 4096`, `K = 4`, and one replica
//! crashes mid-run, restarting later in the same run.
//!
//! The reproduction artifact is one row per phase of the outage —
//! before the crash, during the outage, and after the rejoin — with
//! the per-phase availability (completed / offered, bucketing requests
//! by arrival instant) and response p99 (bucketing completions by
//! finish instant, since a query stranded by the crash arrives before
//! it but pays its failover backoff inside the outage window). The
//! headline claims are that
//! availability stays above zero straight through the crash (health
//! detection re-routes around the dead replica and in-flight queries
//! fail over under the retry budget) and that p99 recovers after the
//! replica replays its log and rejoins. The criterion timing measures
//! the full fault-injected serving loop (router + health monitor +
//! per-replica reactors + execution) against the fault-free loop on
//! the identical workload, pricing the failover machinery itself.

use std::io::Write as _;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use qram_core::{QramModel, ShardedQram};
use qram_metrics::{Capacity, Layers, TimingModel};
use qram_sched::{poisson_arrivals, FifoAdmission, TenantId};
use qram_serve::{
    ConsistentHashPlacement, Fault, FaultConfig, FaultPlan, FleetConfig, FleetReport, FleetRequest,
    FleetWrite, QramFleet,
};
use qsim::branch::{AddressState, ClassicalMemory};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: u64 = 4096;
const ADDRESS_WIDTH: u32 = 12;
const SHARDS: u32 = 4;
const REPLICAS: usize = 4;
const REQUESTS: usize = 1280;
const SEED: u64 = 20260808;
/// Offered load as a fraction of the fleet's aggregate admission
/// capacity: enough headroom that the three survivors can absorb the
/// victim's share and drain the failover backlog within the run.
const LOAD_FACTOR: f64 = 0.4;
/// Crash and restart instants of the victim replica, in units of one
/// replica's admission interval (the workload spans ~`REQUESTS / 1.6`
/// intervals at [`LOAD_FACTOR`] of the fleet's aggregate capacity).
const CRASH_AT_INTERVALS: f64 = 200.0;
const RECOVER_AT_INTERVALS: f64 = 400.0;
/// Settle margin after the rejoin before completions count as "after":
/// the backlog the survivors queued during the outage drains here, and
/// that drain is the outage's impact, not steady state.
const SETTLE_INTERVALS: f64 = 160.0;
const VICTIM: usize = 1;

fn capacity() -> Capacity {
    Capacity::new(N).expect("4096 is a power of two")
}

fn memory() -> ClassicalMemory {
    let cells: Vec<u64> = (0..N).map(|i| (i * 7 + 3) % 2).collect();
    ClassicalMemory::from_words(1, &cells).expect("valid memory")
}

/// Admission interval of one K-shard replica under the paper timing model.
fn replica_interval() -> f64 {
    ShardedQram::fat_tree(capacity(), SHARDS)
        .admission_interval(&TimingModel::paper_default())
        .get()
}

/// A steady Poisson stream at [`LOAD_FACTOR`] of the fleet's aggregate
/// admission capacity: headroom for the surviving replicas to absorb
/// the victim's share during the outage.
fn workload() -> Vec<FleetRequest> {
    let interval = replica_interval();
    let fleet_rate = REPLICAS as f64 / interval;
    let mut rng = StdRng::seed_from_u64(SEED);
    poisson_arrivals(LOAD_FACTOR * fleet_rate, REQUESTS, &mut rng)
        .into_iter()
        .enumerate()
        .map(|(id, r)| FleetRequest {
            id,
            tenant: TenantId(0),
            arrival: r.arrival,
            address: AddressState::classical(ADDRESS_WIDTH, rng.random_range(0..N))
                .expect("address in range"),
        })
        .collect()
}

fn fleet() -> QramFleet<qram_core::FatTreeQram> {
    QramFleet::new(
        ShardedQram::fat_tree(capacity(), SHARDS),
        REPLICAS,
        TimingModel::paper_default(),
        FifoAdmission,
        ConsistentHashPlacement,
        FleetConfig {
            queue_capacity: Some(64),
            replication_lag: Layers::new(50.0),
        },
    )
}

/// The one-crash plan: the victim dies mid-run and restarts later, so a
/// single serving run exercises detection, failover, and rejoin.
fn crash_plan() -> FaultPlan {
    let interval = replica_interval();
    FaultPlan::none()
        .with(Fault::Crash {
            replica: VICTIM,
            at: Layers::new(CRASH_AT_INTERVALS * interval),
        })
        .with(Fault::Recover {
            replica: VICTIM,
            at: Layers::new(RECOVER_AT_INTERVALS * interval),
        })
}

/// Appends one id/value line to the `CRITERION_JSON` stream with the
/// `scalar` key (not `ns_per_iter`), so scalar measurements
/// (here: per-phase availability and p99) land in the baseline's
/// `scalars` section instead of the timing table.
fn record_scalar(id: &str, value: f64) {
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(f, "{{\"id\":\"{id}\",\"scalar\":{value:.1}}}");
        }
    }
}

/// p99 of a latency sample by rank (ceil interpolation), `None` when the
/// sample is empty.
fn p99_us(mut latencies: Vec<f64>) -> Option<f64> {
    if latencies.is_empty() {
        return None;
    }
    latencies.sort_by(f64::total_cmp);
    let rank = ((latencies.len() - 1) as f64 * 0.99).ceil() as usize;
    Some(latencies[rank])
}

/// Buckets a virtual instant into the outage phase it falls in.
fn phase_of(at: Layers, crash_at: Layers, recover_at: Layers) -> usize {
    if at < crash_at {
        0
    } else if at < recover_at {
        1
    } else {
        2
    }
}

fn print_fault_rows(_c: &mut Criterion) {
    let timing = TimingModel::paper_default();
    let interval = replica_interval();
    let crash_at = Layers::new(CRASH_AT_INTERVALS * interval);
    let recover_at = Layers::new(RECOVER_AT_INTERVALS * interval);
    let settled_at = Layers::new((RECOVER_AT_INTERVALS + SETTLE_INTERVALS) * interval);
    let mem = memory();
    let requests = workload();
    let plan = crash_plan();

    let mut fleet = fleet();
    let report: FleetReport = fleet
        .serve_with_faults(
            &mem,
            requests.clone(),
            Vec::<FleetWrite>::new(),
            &plan,
            &FaultConfig::default(),
        )
        .expect("fault-injected fleet run");

    let mut fault_free = self::fleet();
    let baseline: FleetReport = fault_free
        .serve(&mem, requests.clone(), Vec::<FleetWrite>::new())
        .expect("fault-free fleet run");

    let mut offered = [0usize; 3];
    for r in &requests {
        offered[phase_of(r.arrival, crash_at, recover_at)] += 1;
    }
    let mut completed = [0usize; 3];
    let mut latencies: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for q in report.completed() {
        completed[phase_of(q.arrival, crash_at, recover_at)] += 1;
        latencies[phase_of(q.finish, crash_at, settled_at)]
            .push(timing.layers_to_micros(q.response_latency()));
    }
    let mut baseline_latencies: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for q in baseline.completed() {
        baseline_latencies[phase_of(q.finish, crash_at, settled_at)]
            .push(timing.layers_to_micros(q.response_latency()));
    }

    let avail = report.availability();
    println!(
        "== QRAM fleet under faults, N = {N}, K = {SHARDS}, R = {REPLICAS}, {} requests, \
         replica {VICTIM} crashes at {:.0} and restarts at {:.0} layers ==",
        requests.len(),
        crash_at.get(),
        recover_at.get(),
    );
    println!(
        "crashes = {}, failovers = {}, retries = {}, recoveries = {}, mttr = {}",
        avail.crashes,
        avail.failovers,
        avail.retries,
        avail.recoveries,
        report
            .mttr()
            .map_or("n/a".to_string(), |m| format!("{:.0} layers", m.get())),
    );
    println!(
        "{:>7} {:>8} {:>9} {:>13} {:>9} {:>16}",
        "phase", "offered", "completed", "availability", "p99 (µs)", "fault-free (µs)"
    );
    for (phase, label) in ["before", "during", "after"].into_iter().enumerate() {
        let availability = if offered[phase] == 0 {
            1.0
        } else {
            completed[phase] as f64 / offered[phase] as f64
        };
        let p99 = p99_us(latencies[phase].clone());
        println!(
            "{:>7} {:>8} {:>9} {:>13.3} {:>9.1} {:>16.1}",
            label,
            offered[phase],
            completed[phase],
            availability,
            p99.unwrap_or(0.0),
            p99_us(baseline_latencies[phase].clone()).unwrap_or(0.0),
        );
        record_scalar(
            &format!("fleet_faults/r4_k4_n4096_crash_availability_{label}"),
            availability,
        );
        record_scalar(
            &format!("fleet_faults/r4_k4_n4096_crash_p99_us_{label}"),
            p99.unwrap_or(0.0),
        );
    }

    assert!(
        completed[1] > 0,
        "availability must stay above zero through the crash"
    );
    assert_eq!(avail.crashes, 1, "the plan crashes exactly one replica");
    assert_eq!(avail.recoveries, 1, "the victim must rejoin within the run");
    let after = p99_us(latencies[2].clone()).expect("after-phase completions");
    let after_baseline =
        p99_us(baseline_latencies[2].clone()).expect("fault-free after-phase completions");
    assert!(
        after <= 2.0 * after_baseline,
        "p99 must recover after the rejoin: {after:.1}µs vs fault-free {after_baseline:.1}µs"
    );
}

fn bench_fault_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_faults");
    let mem = memory();
    let requests = workload();
    let plan = crash_plan();
    let config = FaultConfig::default();
    for (label, active) in [("fault_free", false), ("one_crash", true)] {
        let run_plan = if active {
            plan.clone()
        } else {
            FaultPlan::none()
        };
        let mut fleet = fleet();
        group.bench_function(format!("r4_k4_n4096_{label}_{}q", requests.len()), |b| {
            b.iter_batched(
                || requests.clone(),
                |reqs| {
                    fleet
                        .serve_with_faults(&mem, reqs, Vec::<FleetWrite>::new(), &run_plan, &config)
                        .expect("fleet run")
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, print_fault_rows, bench_fault_loop);
criterion_main!(benches);
