//! Branch-parallel execution A/B (`parallel_execution`): the same
//! 4096-branch query timed through the sequential reference path and
//! through the dispatching entry point that fans out across scoped
//! threads when the `parallel` cargo feature is enabled. A second group
//! (`sharded_dispatch`) times a sharded superposed batch through the full
//! dispatch stack — which since PR 4 resolves to the compiled shard plan
//! before any thread decision — against the pinned interpreter reference.
//!
//! Run with the feature to measure the speedup:
//!
//! ```text
//! cargo bench -p qram-bench --features parallel --bench parallel_exec
//! ```
//!
//! Without the feature both sides take the sequential path, so the pair
//! doubles as a no-regression pin on the dispatch overhead. Worker count
//! follows `QRAM_NUM_THREADS` (default: available parallelism) — on a
//! single-core host the parallel side cannot win and the printed
//! environment line records why.

use criterion::{criterion_group, criterion_main, Criterion};
use qram_core::exec::{execute_layers, execute_layers_sequential};
use qram_core::{FatTreeQram, QramModel, ShardedQram};
use qram_metrics::Capacity;
use qsim::branch::{AddressState, ClassicalMemory};

const N: u64 = 4096;
const ADDRESS_WIDTH: u32 = 12;

fn memory() -> ClassicalMemory {
    let cells: Vec<u64> = (0..N).map(|i| (i * 7 + 3) % 2).collect();
    ClassicalMemory::from_words(1, &cells).expect("valid memory")
}

fn print_environment() {
    // Mirrors exec::parallel_worker_count (pub(crate) there), including
    // the >= 1 filter, so the printed environment matches the dispatcher.
    let workers = std::env::var("QRAM_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, usize::from));
    println!(
        "== parallel_execution A/B: feature `parallel` {}, {} worker thread(s) ==",
        if cfg!(feature = "parallel") {
            "ENABLED"
        } else {
            "disabled"
        },
        workers
    );
}

/// One query over the full 4096-branch superposition: the headline
/// branch-parallel target. `4096branch` dispatches (parallel with the
/// feature), `4096branch_seq` pins the sequential reference.
fn bench_branch_parallel(c: &mut Criterion) {
    print_environment();
    let mut group = c.benchmark_group("parallel_execution");
    let mem = memory();
    let qram = FatTreeQram::new(Capacity::new(N).expect("power of two"));
    let layers = qram.interned_query_layers();
    let address = AddressState::full_superposition(ADDRESS_WIDTH);
    group.bench_function("4096branch", |b| {
        b.iter(|| execute_layers(&layers, &mem, &address).expect("valid stream"))
    });
    group.bench_function("4096branch_seq", |b| {
        b.iter(|| execute_layers_sequential(&layers, &mem, &address).expect("valid stream"))
    });

    group.finish();

    // Second axis: per-shard sub-batches of a sharded backend. 8 queries,
    // each a 512-branch superposition spanning all 8 shards. Since PR 4
    // the dispatching entry point resolves to the compiled shard plan
    // before any thread decision (plans beat threads outright), so this
    // pair compares the full dispatch stack against the pinned
    // interpreter reference — it lives in its own `sharded_dispatch`
    // group so bench JSONs and delta tables never present the plan
    // speedup as thread scaling. The thread-only A/B is the 4096branch
    // pair above, which drives `execute_layers` below the plan layer.
    let mut group = c.benchmark_group("sharded_dispatch");
    let sharded = ShardedQram::fat_tree(Capacity::new(N).expect("power of two"), 8);
    let addresses: Vec<AddressState> = (0..8u64)
        .map(|q| {
            let addrs: Vec<u64> = (0..512u64).map(|b| (q * 31 + b * 7) % N).collect();
            let mut addrs = addrs;
            addrs.sort_unstable();
            addrs.dedup();
            AddressState::uniform(ADDRESS_WIDTH, &addrs).expect("valid superposition")
        })
        .collect();
    group.bench_function("k8_8x512branch_full_stack", |b| {
        b.iter(|| {
            sharded
                .execute_queries(&mem, &addresses, &[])
                .expect("batch executes")
        })
    });
    group.bench_function("k8_8x512branch_interpreted", |b| {
        b.iter(|| {
            sharded
                .execute_queries_sequential(&mem, &addresses, &[])
                .expect("batch executes")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_branch_parallel);
criterion_main!(benches);
