//! Criterion performance benchmarks of the simulation substrate itself.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use qram_core::{BucketBrigadeQram, FatTreeQram, QramModel};
use qram_metrics::Layers;
use qram_metrics::{Capacity, TimingModel};
use qram_sched::{simulate_streams, QramServer, StreamWorkload};
use qsim::branch::{AddressState, ClassicalMemory};
use qsim::state::StateVector;

fn bench_query_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_execution");
    for n_exp in [6u32, 10] {
        let capacity = Capacity::from_address_width(n_exp);
        let cells: Vec<u64> = (0..capacity.get()).map(|i| i % 2).collect();
        let memory = ClassicalMemory::from_words(1, &cells).expect("valid");
        let qram = FatTreeQram::new(capacity);
        let addresses: Vec<u64> = (0..16u64).map(|i| i * (capacity.get() / 16)).collect();
        let address = AddressState::uniform(n_exp, &addresses).expect("valid");
        group.bench_function(format!("fat_tree_16branch_n{n_exp}"), |b| {
            b.iter(|| qram.execute_query(&memory, &address).expect("valid"))
        });
        let bb = BucketBrigadeQram::new(capacity);
        group.bench_function(format!("bb_16branch_n{n_exp}"), |b| {
            b.iter(|| bb.execute_query(&memory, &address).expect("valid"))
        });
    }
    group.finish();
}

fn bench_batched_execution(c: &mut Criterion) {
    // 1024 back-to-back classical queries on a small tree: scheduling
    // (retrieval layers + conflict validation) is a visible share of the
    // runtime, so regressions in the batch hot path show up here.
    let mut group = c.benchmark_group("batched_execution");
    let capacity = Capacity::from_address_width(4);
    let memory = ClassicalMemory::zeros(16);
    let addresses: Vec<AddressState> = (0..1024u64)
        .map(|i| AddressState::classical(4, i % 16).expect("valid"))
        .collect();
    let ft = FatTreeQram::new(capacity);
    group.bench_function("fat_tree_1024_queries", |b| {
        b.iter(|| ft.execute_queries(&memory, &addresses, &[]).expect("valid"))
    });
    let bb = BucketBrigadeQram::new(capacity);
    group.bench_function("bb_1024_queries", |b| {
        b.iter(|| bb.execute_queries(&memory, &addresses, &[]).expect("valid"))
    });
    group.finish();
}

fn bench_pipeline_validation(c: &mut Criterion) {
    let qram = FatTreeQram::new(Capacity::from_address_width(10));
    c.bench_function("pipeline_conflict_check_40_queries", |b| {
        b.iter_batched(
            || qram.pipeline(40),
            |s| s.validate_no_conflicts().expect("conflict-free"),
            BatchSize::SmallInput,
        )
    });
}

fn bench_stream_simulation(c: &mut Criterion) {
    let server = QramServer::for_architecture(
        qram_arch::Architecture::FatTree,
        Capacity::from_address_width(10),
        TimingModel::paper_default(),
    );
    let streams = vec![StreamWorkload::alternating(10, Layers::new(50.0)); 30];
    c.bench_function("simulate_30_streams_10_queries", |b| {
        b.iter(|| simulate_streams(&streams, &server))
    });
}

fn bench_statevector(c: &mut Criterion) {
    c.bench_function("statevector_grover_iteration_12q", |b| {
        b.iter_batched(
            || {
                let mut psi = StateVector::new(12);
                for q in 0..12 {
                    psi.apply_h(q);
                }
                psi
            },
            |mut psi| {
                for q in 0..12 {
                    psi.apply_h(q);
                }
                psi.apply_cswap(0, 1, 2);
                psi
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_query_execution,
    bench_batched_execution,
    bench_pipeline_validation,
    bench_stream_simulation,
    bench_statevector
);
criterion_main!(benches);
