//! Cold-recovery benchmark for the durable store: time to rebuild fleet
//! state (`DurableFleet::recover`) from a crash image, as a function of
//! the write-ahead-log length and the checkpoint policy.
//!
//! The reproduction artifact is the WAL-bytes-vs-checkpoint trade-off:
//! without checkpoints the log holds every epoch and recovery replays
//! all of it; with periodic checkpoints the log is compacted down to
//! the post-checkpoint suffix and recovery is dominated by one image
//! load plus a short replay. The criterion timing prices exactly that
//! recovery path — checkpoint load, framed CRC scan, WAL replay — on an
//! in-memory `SimDir`, so the numbers isolate the store's CPU cost from
//! platter physics.

use std::io::Write as _;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use qram_core::store::{CheckpointPolicy, DurableFleet, SimDir, WAL_FILE};
use qram_core::ReplicatedWrite;
use qsim::branch::ClassicalMemory;

const N: u64 = 4096;
/// WAL lengths (epochs appended) swept by the benchmark.
const WAL_LENGTHS: [u64; 3] = [64, 512, 4096];
/// Checkpoint cadence of the "with checkpoints" arm.
const CHECKPOINT_EVERY: u64 = 256;

fn memory() -> ClassicalMemory {
    let cells: Vec<u64> = (0..N).map(|i| (i * 7 + 3) % 2).collect();
    ClassicalMemory::from_words(1, &cells).expect("valid memory")
}

fn write(epoch: u64) -> ReplicatedWrite {
    ReplicatedWrite {
        epoch,
        origin: (epoch % 4) as usize,
        address: (epoch * 13) % N,
        value: epoch % 2,
    }
}

/// Builds a store directory holding `epochs` appended writes under
/// `policy`, then simulates the crash: the directory is all that
/// survives.
fn crash_image(epochs: u64, policy: CheckpointPolicy) -> SimDir {
    let mut store = DurableFleet::create_with(Box::new(SimDir::new()), &memory(), policy)
        .expect("create store");
    for e in 1..=epochs {
        store.append(&write(e)).expect("append");
    }
    let mut dir = store.into_dir();
    dir.as_any_mut()
        .downcast_mut::<SimDir>()
        .expect("bench store runs on SimDir")
        .clone()
}

/// Appends one id/value line to the `CRITERION_JSON` stream with the
/// `scalar` key (not `ns_per_iter`), so scalar measurements (here: WAL
/// bytes per configuration) land in the baseline's `scalars` section
/// instead of the timing table.
fn record_scalar(id: &str, value: f64) {
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(f, "{{\"id\":\"{id}\",\"scalar\":{value:.1}}}");
        }
    }
}

fn print_recovery_rows(_c: &mut Criterion) {
    println!("== cold recovery, N = {N} cells, checkpoint every {CHECKPOINT_EVERY} vs never ==");
    println!(
        "{:>7} {:>12} {:>14} {:>15} {:>14}",
        "epochs", "wal bytes", "wal bytes ckpt", "recovered epoch", "replay suffix"
    );
    for &epochs in &WAL_LENGTHS {
        let plain = crash_image(epochs, CheckpointPolicy::never());
        let ckpt = crash_image(epochs, CheckpointPolicy::every(CHECKPOINT_EVERY));
        let plain_bytes = plain.len_of(WAL_FILE).unwrap_or(0);
        let ckpt_bytes = ckpt.len_of(WAL_FILE).unwrap_or(0);
        let recovered = DurableFleet::recover(Box::new(ckpt)).expect("recover");
        assert_eq!(recovered.epoch, epochs, "no acknowledged write is lost");
        println!(
            "{:>7} {:>12} {:>14} {:>15} {:>14}",
            epochs,
            plain_bytes,
            ckpt_bytes,
            recovered.epoch,
            recovered.writes.len(),
        );
        record_scalar(
            &format!("recovery/wal_bytes_{epochs}epochs_no_checkpoint"),
            plain_bytes as f64,
        );
        record_scalar(
            &format!("recovery/wal_bytes_{epochs}epochs_checkpointed"),
            ckpt_bytes as f64,
        );
        assert!(
            epochs < CHECKPOINT_EVERY || ckpt_bytes < plain_bytes,
            "checkpoints must compact the log"
        );
    }
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("recovery");
    for &epochs in &WAL_LENGTHS {
        for (label, policy) in [
            ("no_checkpoint", CheckpointPolicy::never()),
            ("checkpointed", CheckpointPolicy::every(CHECKPOINT_EVERY)),
        ] {
            let image = crash_image(epochs, policy);
            group.bench_function(format!("cold_{epochs}epochs_{label}"), |b| {
                b.iter_batched(
                    || image.clone(),
                    |dir| DurableFleet::recover(Box::new(dir)).expect("recover"),
                    BatchSize::SmallInput,
                )
            });
        }
    }
    group.finish();
}

criterion_group!(benches, print_recovery_rows, bench_recovery);
criterion_main!(benches);
