//! The §5 quantum-data-center service as a benchmark: online serving of
//! open-loop query traffic on a sharded Fat-Tree at `N = 4096`,
//! `K ∈ {1, 2, 4, 8}`.
//!
//! For each shard count the reproduction artifact is a §5-style row —
//! offered load, sustained throughput, and p50/p95/p99 response latency
//! (in layers and wall-clock µs under the paper timing model) — under a
//! Poisson arrival stream and under a bursty (on/off-modulated Poisson)
//! stream, both addressing memory with the Zipf(0.99) serving-cache skew
//! so dispatched batches hit the compiled-plan + memoization hot path.
//! The criterion timings measure the full serving loop (reactor +
//! execution) per shard count, and the K = 8 Poisson p95 (in layers) is
//! recorded into the `CRITERION_JSON` baseline as a scalar.

use std::io::Write as _;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use qram_core::{QramModel, ShardedQram};
use qram_metrics::{Capacity, TimingModel};
use qram_sched::{bursty_arrivals, poisson_arrivals, QueryRequest, ZipfAddresses};
use qram_serve::{QramService, ServiceRequest};
use qsim::branch::{AddressState, ClassicalMemory};
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: u64 = 4096;
const ADDRESS_WIDTH: u32 = 12;
const SHARD_COUNTS: [u32; 4] = [1, 2, 4, 8];
const REQUESTS: usize = 512;
const SEED: u64 = 20260727;
/// Offered load as a fraction of the aggregate admission capacity `K / I`.
const LOAD: f64 = 0.85;

fn capacity() -> Capacity {
    Capacity::new(N).expect("4096 is a power of two")
}

fn memory() -> ClassicalMemory {
    let cells: Vec<u64> = (0..N).map(|i| (i * 7 + 3) % 2).collect();
    ClassicalMemory::from_words(1, &cells).expect("valid memory")
}

/// Attaches Zipf(0.99)-drawn addresses to an arrival sequence.
fn with_zipf_addresses(arrivals: Vec<QueryRequest>) -> Vec<ServiceRequest> {
    let zipf = ZipfAddresses::new(capacity(), 0.99);
    let addresses = zipf.addresses(arrivals.len(), SEED);
    arrivals
        .into_iter()
        .zip(addresses)
        .map(|(r, a)| ServiceRequest {
            id: r.id,
            arrival: r.arrival,
            address: AddressState::classical(ADDRESS_WIDTH, a).expect("address in range"),
        })
        .collect()
}

/// The Poisson workload at `LOAD ×` the aggregate capacity of `K` shards.
fn poisson_workload(k: u32) -> Vec<ServiceRequest> {
    let interval = ShardedQram::fat_tree(capacity(), k)
        .admission_interval(&TimingModel::paper_default())
        .get();
    let mut rng = StdRng::seed_from_u64(SEED);
    with_zipf_addresses(poisson_arrivals(LOAD / interval, REQUESTS, &mut rng))
}

/// The bursty workload: same long-run load as the Poisson stream, but
/// delivered in ON bursts at 3× the aggregate capacity.
fn bursty_workload(k: u32) -> Vec<ServiceRequest> {
    let interval = ShardedQram::fat_tree(capacity(), k)
        .admission_interval(&TimingModel::paper_default())
        .get();
    let capacity_rate = 1.0 / interval;
    let on_rate = 3.0 * capacity_rate;
    // Duty cycle on/(on+off) chosen so on_rate · duty = LOAD · capacity.
    let mean_on = 30.0 * interval;
    let mean_off = mean_on * (on_rate / (LOAD * capacity_rate) - 1.0);
    let mut rng = StdRng::seed_from_u64(SEED + 1);
    with_zipf_addresses(bursty_arrivals(
        on_rate, mean_on, mean_off, REQUESTS, &mut rng,
    ))
}

/// Appends one id/value line to the `CRITERION_JSON` stream with the
/// `scalar` key (not `ns_per_iter`), so scalar measurements
/// (here: a latency percentile in layers) land in the baseline's
/// `scalars` section instead of the timing table.
fn record_scalar(id: &str, value: f64) {
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(f, "{{\"id\":\"{id}\",\"scalar\":{value:.1}}}");
        }
    }
}

fn print_section5_rows(_c: &mut Criterion) {
    let timing = TimingModel::paper_default();
    let mem = memory();
    println!(
        "== Online QRAM service, N = {N}, {REQUESTS} requests, Zipf(0.99) addresses \
         (§5-style rows; latency = arrival→completion) =="
    );
    println!(
        "{:>3} {:>8} {:>11} {:>11} {:>10} {:>10} {:>10} {:>11}",
        "K",
        "workload",
        "offered q/s",
        "served q/s",
        "p50 (lyr)",
        "p95 (lyr)",
        "p99 (lyr)",
        "p99 (µs)"
    );
    for k in SHARD_COUNTS {
        for (label, requests) in [
            ("poisson", poisson_workload(k)),
            ("bursty", bursty_workload(k)),
        ] {
            let offered_span = requests
                .iter()
                .map(|r| r.arrival.get())
                .fold(0.0f64, f64::max);
            let offered = requests.len() as f64
                / timing.layers_to_seconds(qram_metrics::Layers::new(offered_span));
            let mut service = QramService::fifo(ShardedQram::fat_tree(capacity(), k), timing);
            let report = service.serve(&mem, requests).expect("service run");
            let hist = report.latency_histogram();
            println!(
                "{:>3} {:>8} {:>11.0} {:>11.0} {:>10.2} {:>10.2} {:>10.2} {:>11.1}",
                k,
                label,
                offered,
                report.query_rate().get(),
                hist.quantile(0.50).get(),
                hist.quantile(0.95).get(),
                hist.quantile(0.99).get(),
                report.latency_micros(0.99),
            );
            if k == 8 && label == "poisson" {
                record_scalar(
                    "serving/k8_n4096_poisson_zipf_p95_layers",
                    hist.quantile(0.95).get(),
                );
            }
        }
    }
}

fn bench_serving_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("serving");
    let timing = TimingModel::paper_default();
    let mem = memory();
    for k in SHARD_COUNTS {
        let requests = poisson_workload(k);
        let qram = ShardedQram::fat_tree(capacity(), k);
        let mut service = QramService::fifo(qram, timing);
        group.bench_function(format!("k{k}_n4096_poisson_zipf_{REQUESTS}q"), |b| {
            b.iter_batched(
                || requests.clone(),
                |reqs| service.serve(&mem, reqs).expect("service run"),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, print_section5_rows, bench_serving_loop);
criterion_main!(benches);
