//! Sharded Fat-Tree serving: Table-1-style closed-form row per shard
//! count, plus criterion timings of batched execution across `K` shards
//! at `N = 4096`.
//!
//! The printed table is the reproduction artifact: admission interval
//! (hence bandwidth) scales linearly with `K` while a single lookup keeps
//! the monolithic latency — the distributed/virtual rows of Table 1 as an
//! executable backend rather than a cost model.

use criterion::{criterion_group, criterion_main, Criterion};
use qram_core::{FatTreeQram, QramModel, ShardedQram};
use qram_metrics::{Capacity, TimingModel};
use qsim::branch::{AddressState, ClassicalMemory};

const N: u64 = 4096;
const SHARD_COUNTS: [u32; 4] = [1, 2, 4, 8];

fn capacity() -> Capacity {
    Capacity::new(N).expect("4096 is a power of two")
}

fn memory() -> ClassicalMemory {
    let cells: Vec<u64> = (0..N).map(|i| (i * 7 + 3) % 2).collect();
    ClassicalMemory::from_words(1, &cells).expect("valid memory")
}

/// A batch of 64 four-branch superposed queries spread over the address
/// space. The odd branch stride (17) makes each query's branches cover
/// distinct low-bit residues — alternating parity at `K = 2`, four
/// distinct shards at `K ∈ {4, 8}` — so every benchmarked shard count
/// exercises the cross-shard split-and-recombine path.
fn batch() -> Vec<AddressState> {
    let n = capacity().address_width();
    (0..64u64)
        .map(|q| {
            let base = (q * 61) % N;
            let mut addrs: Vec<u64> = (0..4).map(|b| (base + b * 17) % N).collect();
            addrs.sort_unstable();
            addrs.dedup();
            AddressState::uniform(n, &addrs).expect("valid superposition")
        })
        .collect()
}

fn print_table1_row() {
    let timing = TimingModel::paper_default();
    let mono = FatTreeQram::new(capacity());
    println!("== Sharded Fat-Tree, N = {N} (Table-1-style row per shard count) ==");
    println!(
        "{:>3} {:>9} {:>12} {:>10} {:>18} {:>14}",
        "K", "routers", "parallelism", "interval", "single-query lat", "throughput x"
    );
    for k in SHARD_COUNTS {
        let sharded = ShardedQram::fat_tree(capacity(), k);
        let interval = sharded.admission_interval(&timing);
        let speedup = mono.admission_interval(&timing) / interval;
        println!(
            "{:>3} {:>9} {:>12} {:>10.4} {:>18.3} {:>14.2}",
            k,
            sharded.router_count(),
            sharded.query_parallelism(),
            interval.get(),
            sharded.single_query_latency(&timing).get(),
            speedup
        );
    }
}

fn bench_sharded_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharded_execution");
    let mem = memory();
    let addresses = batch();
    for k in SHARD_COUNTS {
        let qram = ShardedQram::fat_tree(capacity(), k);
        group.bench_function(format!("k{k}_n4096_64queries"), |b| {
            b.iter(|| {
                qram.execute_queries(&mem, &addresses, &[])
                    .expect("batch executes")
            })
        });
    }
    group.finish();
}

fn report_table(_c: &mut Criterion) {
    print_table1_row();
}

criterion_group!(benches, report_table, bench_sharded_batch);
criterion_main!(benches);
