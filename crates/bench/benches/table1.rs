//! Table 1: space and time resource comparison across shared QRAM models.

use qram_arch::{Architecture, CostModel};
use qram_bench::{header, num, row};
use qram_metrics::{Capacity, TimingModel};

fn main() {
    let timing = TimingModel::paper_default();
    let capacity = Capacity::new(1024).expect("power of two");
    let n = capacity.address_width();
    header(&format!(
        "Table 1: resource comparison at N = {capacity} (n = {n})"
    ));
    let models: Vec<CostModel> = Architecture::ALL
        .iter()
        .map(|&a| CostModel::new(a, capacity, timing))
        .collect();
    row(
        "",
        &models
            .iter()
            .map(|m| m.architecture().name().to_owned())
            .collect::<Vec<_>>(),
    );
    row(
        "Qubits",
        &models
            .iter()
            .map(|m| num(m.qubit_count() as f64))
            .collect::<Vec<_>>(),
    );
    row(
        "Query parallelism",
        &models
            .iter()
            .map(|m| num(f64::from(m.query_parallelism())))
            .collect::<Vec<_>>(),
    );
    row(
        "t1 (layers)",
        &models
            .iter()
            .map(|m| num(m.single_query_latency().get()))
            .collect::<Vec<_>>(),
    );
    row(
        &format!("t_log(N) = t_{n} (layers)"),
        &models
            .iter()
            .map(|m| num(m.parallel_queries_latency(n).get()))
            .collect::<Vec<_>>(),
    );
    row(
        "Amortized latency (layers)",
        &models
            .iter()
            .map(|m| num(m.amortized_query_latency().get()))
            .collect::<Vec<_>>(),
    );
    println!();
    println!(
        "Paper reference (N = 2^10): Fat-Tree t1 = 8.25n - 0.125 = {}, \
         t_logN = 16.5n - 8.375 = {}, amortized 8.25; BB t1 = 8n + 0.125 = {}.",
        num(8.25 * 10.0 - 0.125),
        num(16.5 * 10.0 - 8.375),
        num(8.0 * 10.0 + 0.125),
    );
}
