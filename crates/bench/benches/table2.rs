//! Table 2: bandwidth, space-time volume, and classical-memory-swap budget.

use qram_arch::{Architecture, CostModel};
use qram_bench::{header, num, row};
use qram_metrics::{Capacity, TimingModel};

fn main() {
    let timing = TimingModel::paper_default();
    let capacity = Capacity::new(1024).expect("power of two");
    header(&format!(
        "Table 2: bandwidth / volume / swap budget at N = {capacity}, CSWAP = 1 us"
    ));
    let models: Vec<CostModel> = Architecture::ALL
        .iter()
        .map(|&a| CostModel::new(a, capacity, timing))
        .collect();
    row(
        "",
        &models
            .iter()
            .map(|m| m.architecture().name().to_owned())
            .collect::<Vec<_>>(),
    );
    row(
        "Bandwidth (qubit/s)",
        &models
            .iter()
            .map(|m| num(m.bandwidth(1).get()))
            .collect::<Vec<_>>(),
    );
    row(
        "Max query rate (q/s)",
        &models
            .iter()
            .map(|m| num(m.max_query_rate().get()))
            .collect::<Vec<_>>(),
    );
    row(
        "Space-time volume / query",
        &models
            .iter()
            .map(|m| num(m.spacetime_volume_per_query().get()))
            .collect::<Vec<_>>(),
    );
    row(
        "  (per memory cell)",
        &models
            .iter()
            .map(|m| num(m.spacetime_volume_per_query().per_cell(capacity.get())))
            .collect::<Vec<_>>(),
    );
    row(
        "Classical swap budget (us)",
        &models
            .iter()
            .map(|m| num(m.classical_swap_budget_micros()))
            .collect::<Vec<_>>(),
    );
    row(
        "Memory access rate (cell/s)",
        &models
            .iter()
            .map(|m| num(m.bandwidth(1).memory_access_rate(capacity.get()).get()))
            .collect::<Vec<_>>(),
    );
    println!();
    println!(
        "Paper reference: Fat-Tree bandwidth 1.21e5 qubit/s (capacity-independent), \
         volume 132N = {}, swap budget 8.25 us.",
        num(132.0 * 1024.0)
    );
}
