//! Table 3: query infidelity vs capacity and physical CSWAP error rate.

use qram_bench::{header, num, row};
use qram_metrics::Capacity;
use qram_noise::bounds::table3_infidelity;

fn main() {
    header("Table 3: query infidelity of Fat-Tree QRAM (e1 = e0, e2 = e0/2)");
    row(
        "Capacity N",
        &["e0 = 1e-3", "e0 = 1e-4", "e0 = 1e-5"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect::<Vec<_>>(),
    );
    for n in [8u64, 16, 32, 64] {
        let capacity = Capacity::new(n).expect("power of two");
        row(
            &n.to_string(),
            &[1e-3, 1e-4, 1e-5]
                .iter()
                .map(|&e0| num(table3_infidelity(capacity, e0)))
                .collect::<Vec<_>>(),
        );
    }
    println!();
    println!("Paper reference (e0 = 1e-3 column): 0.045 / 0.08 / 0.125 / 0.18.");
}
