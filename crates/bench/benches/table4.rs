//! Table 4: virtual distillation — one Fat-Tree vs two BB QRAMs on the
//! same 256-qubit budget, cross-checked against the exact density-matrix
//! simulation.

use qram_bench::{header, num, row};
use qram_noise::table4;
use qsim::density::DensityMatrix;
use qsim::state::StateVector;

fn main() {
    header("Table 4: virtual distillation at 256 qubits (capacity-16 trees, e0 = 2e-3)");
    row(
        "",
        &["Fat-Tree", "2 BB"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect::<Vec<_>>(),
    );
    let rows = table4();
    row(
        "Copies for distillation",
        &rows
            .iter()
            .map(|r| num(f64::from(r.copies)))
            .collect::<Vec<_>>(),
    );
    row(
        "Fidelity before",
        &rows
            .iter()
            .map(|r| num(r.fidelity_before))
            .collect::<Vec<_>>(),
    );
    row(
        "Fidelity after",
        &rows
            .iter()
            .map(|r| num(r.fidelity_after))
            .collect::<Vec<_>>(),
    );
    // Exact density-matrix cross-check on a Bell-pair query state.
    let mut psi = StateVector::new(2);
    psi.apply_h(0);
    psi.apply_cnot(0, 1);
    let ideal = DensityMatrix::from_pure(&psi);
    let err = DensityMatrix::orthogonal_error(&psi);
    let exact: Vec<String> = rows
        .iter()
        .map(|r| {
            let rho = ideal.mix(&err, 1.0 - r.fidelity_before);
            num(rho.distill(r.copies).fidelity_with_pure(&psi))
        })
        .collect();
    row("Fidelity after (exact rho^k)", &exact);
    println!();
    println!("Paper reference: before 0.84 / 0.872, after 0.9994 / 0.984.");
}
