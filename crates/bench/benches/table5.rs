//! Table 5: error-corrected query cost — noisy Fat-Tree with encoded
//! addresses vs fully encoded BB QRAM.

use qram_bench::{header, num, row};
use qram_metrics::Capacity;
use qram_noise::{bb_encoded_query_cost, fat_tree_encoded_query_cost, QecCode};

fn main() {
    header("Table 5: error-corrected query cost ([[m,1,d]] code, syndrome depth D)");
    // A compact [[5,1,3]]-style code so m <= log2(N) at practical sizes.
    let code = QecCode {
        m: 5,
        d: 3,
        syndrome_depth: 3,
    };
    println!(
        "Code: [[{}, 1, {}]], syndrome extraction depth D = {}",
        code.m, code.d, code.syndrome_depth
    );
    for n_exp in [10u32, 15, 20] {
        let capacity = Capacity::from_address_width(n_exp);
        let ft = fat_tree_encoded_query_cost(capacity, &code);
        let bb = bb_encoded_query_cost(capacity, &code);
        println!();
        println!("capacity N = 2^{n_exp}:");
        row(
            "",
            &["Fat-Tree (noisy QRAM)", "BB (encoded QRAM)"]
                .iter()
                .map(|s| (*s).to_owned())
                .collect::<Vec<_>>(),
        );
        row(
            "Physical qubits",
            [
                num(ft.physical_qubits as f64),
                num(bb.physical_qubits as f64),
            ]
            .as_ref(),
        );
        row(
            "Logical query parallelism",
            [
                num(f64::from(ft.logical_query_parallelism)),
                num(f64::from(bb.logical_query_parallelism)),
            ]
            .as_ref(),
        );
        row(
            "Logical query latency",
            [
                num(ft.logical_query_latency as f64),
                num(bb.logical_query_latency as f64),
            ]
            .as_ref(),
        );
    }
    println!();
    println!(
        "Paper reference (Big-O): Fat-Tree N qubits, floor(logN/m) parallelism, \
         D*logN + m latency; BB m*N qubits, parallelism 1, D*logN latency."
    );
}
