//! Shared formatting helpers for the benchmark harness that regenerates
//! every table and figure of the Fat-Tree QRAM paper.
//!
//! Each bench target (`cargo bench -p qram-bench`) prints the same rows or
//! series the paper reports; see `EXPERIMENTS.md` at the workspace root
//! for the paper-vs-measured record.

/// Prints a section header for a table/figure reproduction.
pub fn header(title: &str) {
    println!();
    println!("=== {title} ===");
}

/// Formats a floating-point cell with engineering-friendly precision.
#[must_use]
pub fn num(v: f64) -> String {
    if v == 0.0 {
        "0".to_owned()
    } else if v.abs() >= 1e5 || v.abs() < 1e-3 {
        format!("{v:.4e}")
    } else if (v - v.round()).abs() < 1e-9 {
        format!("{v:.0}")
    } else {
        format!("{v:.4}")
    }
}

/// Prints one table row with a fixed-width label column.
pub fn row(label: &str, cells: &[String]) {
    print!("{label:<28}");
    for c in cells {
        print!("{c:>16}");
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn number_formatting() {
        assert_eq!(num(0.0), "0");
        assert_eq!(num(16384.0), "16384");
        assert_eq!(num(1.2121e5), "1.2121e5");
        assert_eq!(num(0.125), "0.1250");
        assert_eq!(num(4.5e-4), "4.5000e-4");
    }
}
