//! Figure 10: synthetic-algorithm sweeps over processing/query ratio and
//! parallel algorithm count, for BB and Fat-Tree QRAM.
//!
//! Each synthetic algorithm repeats (query → process) ten times with
//! processing depth `d = ratio · t₁` (§6.3); the sweep measures overall
//! algorithm depth (Fig. 10(a)) and average QRAM utilization
//! (Fig. 10(b)).

use qram_arch::Architecture;
use qram_core::QramModel;
use qram_metrics::{Capacity, Layers, TimingModel, Utilization};
use qram_sched::{process_depth_from_ratio, simulate_streams, QramServer, StreamWorkload};

/// Queries per synthetic algorithm (the paper repeats query+process 10×).
pub const SYNTHETIC_ITERATIONS: u32 = 10;

/// One cell of the Fig. 10 heatmaps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepCell {
    /// Processing depth / single-query latency ratio (`d/t₁`).
    pub ratio: f64,
    /// Number of parallel synthetic algorithms `p`.
    pub parallel_count: u32,
    /// Overall algorithm depth.
    pub depth: Layers,
    /// Average QRAM utilization over the run.
    pub utilization: Utilization,
}

/// Runs one synthetic-sweep cell on a pipelined server (the shared engine
/// behind both the backend-generic and table-architecture entry points).
fn sweep_cell_on_server(server: &QramServer, ratio: f64, parallel_count: u32) -> SweepCell {
    assert!(parallel_count >= 1, "at least one algorithm");
    assert!(ratio >= 0.0, "ratio must be non-negative");
    let d = process_depth_from_ratio(server, ratio);
    let streams =
        vec![StreamWorkload::alternating(SYNTHETIC_ITERATIONS, d); parallel_count as usize];
    let report = simulate_streams(&streams, server);
    SweepCell {
        ratio,
        parallel_count,
        depth: report.makespan(),
        utilization: report.average_utilization(),
    }
}

/// Runs one synthetic-sweep cell on any [`QramModel`] backend.
///
/// # Panics
///
/// Panics if `parallel_count == 0` or `ratio < 0`.
#[must_use]
pub fn sweep_cell_on<M: QramModel + ?Sized>(
    model: &M,
    timing: &TimingModel,
    ratio: f64,
    parallel_count: u32,
) -> SweepCell {
    sweep_cell_on_server(&QramServer::for_model(model, timing), ratio, parallel_count)
}

/// Runs one synthetic-sweep cell on a named table architecture.
///
/// # Panics
///
/// Panics if `parallel_count == 0` or `ratio < 0`.
#[must_use]
pub fn sweep_cell(
    architecture: Architecture,
    capacity: Capacity,
    timing: TimingModel,
    ratio: f64,
    parallel_count: u32,
) -> SweepCell {
    sweep_cell_on_server(
        &QramServer::for_architecture(architecture, capacity, timing),
        ratio,
        parallel_count,
    )
}

/// Computes a full Fig. 10 heatmap grid for one architecture.
#[must_use]
pub fn sweep_grid(
    architecture: Architecture,
    capacity: Capacity,
    timing: TimingModel,
    ratios: &[f64],
    parallel_counts: &[u32],
) -> Vec<SweepCell> {
    let mut cells = Vec::with_capacity(ratios.len() * parallel_counts.len());
    for &ratio in ratios {
        for &p in parallel_counts {
            cells.push(sweep_cell(architecture, capacity, timing, ratio, p));
        }
    }
    cells
}

/// The paper's sweep axes: `d/t₁ ∈ [0, 2]`, `p ∈ [1, 30]` at `N = 1024`.
#[must_use]
pub fn paper_axes() -> (Vec<f64>, Vec<u32>) {
    let ratios = (0..=8).map(|i| f64::from(i) * 0.25).collect();
    let counts = (1..=30).collect();
    (ratios, counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(arch: Architecture, ratio: f64, p: u32) -> SweepCell {
        sweep_cell(
            arch,
            Capacity::new(1024).unwrap(),
            TimingModel::paper_default(),
            ratio,
            p,
        )
    }

    #[test]
    fn bb_hits_memory_bandwidth_bound_quickly() {
        // Fig. 10(a1): on BB, depth grows linearly with p almost
        // immediately — the memory bandwidth bound.
        let d5 = cell(Architecture::BucketBrigade, 0.5, 5).depth.get();
        let d10 = cell(Architecture::BucketBrigade, 0.5, 10).depth.get();
        let growth = d10 / d5;
        assert!((1.8..2.2).contains(&growth), "growth {growth} not linear");
    }

    #[test]
    fn fat_tree_absorbs_parallelism_until_pipeline_full() {
        // Fig. 10(a2): with high processing ratio, extra algorithms ride
        // the pipeline for free until p exceeds log N + d/interval.
        let d1 = cell(Architecture::FatTree, 2.0, 1).depth.get();
        let d10 = cell(Architecture::FatTree, 2.0, 10).depth.get();
        assert!(
            d10 < d1 * 1.6,
            "10 algorithms ({d10}) should cost little over 1 ({d1})"
        );
        // But 30 algorithms exceed the pipeline and queuing appears.
        let d30 = cell(Architecture::FatTree, 2.0, 30).depth.get();
        assert!(d30 > d10 * 1.05);
        // With no processing at all, the bandwidth bound dominates sooner.
        let q10 = cell(Architecture::FatTree, 0.0, 10).depth.get();
        let q30 = cell(Architecture::FatTree, 0.0, 30).depth.get();
        assert!(q30 > q10 * 1.5, "q10={q10} q30={q30}");
    }

    #[test]
    fn fat_tree_beats_bb_across_the_grid() {
        for ratio in [0.0, 1.0, 2.0] {
            for p in [5u32, 15, 30] {
                let ft = cell(Architecture::FatTree, ratio, p).depth.get();
                let bb = cell(Architecture::BucketBrigade, ratio, p).depth.get();
                assert!(
                    ft < bb,
                    "ratio={ratio} p={p}: Fat-Tree {ft} not below BB {bb}"
                );
            }
        }
    }

    #[test]
    fn bb_utilization_saturates_fat_tree_varies() {
        // Fig. 10(b1/b2): BB's single slot is always busy under load, while
        // Fat-Tree's utilization reflects the processing/query balance.
        let bb = cell(Architecture::BucketBrigade, 0.25, 10)
            .utilization
            .get();
        assert!(bb > 0.9, "BB utilization {bb}");
        let ft_low = cell(Architecture::FatTree, 2.0, 2).utilization.get();
        let ft_high = cell(Architecture::FatTree, 0.0, 20).utilization.get();
        assert!(ft_low < 0.4, "few algorithms + heavy processing: {ft_low}");
        assert!(ft_high > 0.8, "many algorithms, pure querying: {ft_high}");
    }

    #[test]
    fn utilization_increases_with_parallel_count() {
        let mut prev = 0.0;
        for p in [1u32, 4, 8, 16] {
            let u = cell(Architecture::FatTree, 1.0, p).utilization.get();
            assert!(u >= prev - 1e-9, "p={p}: {u} < {prev}");
            prev = u;
        }
    }

    #[test]
    fn backend_generic_cells_match_table_cells() {
        use qram_core::{BucketBrigadeQram, FatTreeQram};
        let capacity = Capacity::new(1024).unwrap();
        let timing = TimingModel::paper_default();
        for (ratio, p) in [(0.0, 1u32), (1.0, 10), (2.0, 30)] {
            let ft = sweep_cell_on(&FatTreeQram::new(capacity), &timing, ratio, p);
            assert_eq!(ft, cell(Architecture::FatTree, ratio, p));
            let bb = sweep_cell_on(&BucketBrigadeQram::new(capacity), &timing, ratio, p);
            assert_eq!(bb, cell(Architecture::BucketBrigade, ratio, p));
        }
    }

    #[test]
    fn sharded_backend_sweeps_and_absorbs_more_parallelism() {
        use qram_core::{FatTreeQram, ShardedQram};
        let capacity = Capacity::new(1024).unwrap();
        let timing = TimingModel::paper_default();
        // Heavy pure-query contention (ratio 0, 30 algorithms): four
        // shards quadruple admission bandwidth, so the sweep cell must be
        // strictly shallower than the monolithic Fat-Tree's.
        let mono = sweep_cell_on(&FatTreeQram::new(capacity), &timing, 0.0, 30);
        let sharded = sweep_cell_on(&ShardedQram::fat_tree(capacity, 4), &timing, 0.0, 30);
        assert!(
            sharded.depth < mono.depth,
            "sharded {} not below monolithic {}",
            sharded.depth.get(),
            mono.depth.get()
        );
    }

    #[test]
    fn grid_dimensions() {
        let (ratios, counts) = paper_axes();
        assert_eq!(ratios.len(), 9);
        assert_eq!(counts.len(), 30);
        let grid = sweep_grid(
            Architecture::FatTree,
            Capacity::new(64).unwrap(),
            TimingModel::paper_default(),
            &[0.0, 1.0],
            &[1, 2, 3],
        );
        assert_eq!(grid.len(), 6);
    }
}
