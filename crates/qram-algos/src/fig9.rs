//! Figure 9: overall circuit depth of parallel algorithms across the five
//! shared-QRAM architectures at `N = 2¹⁰`.

use qram_arch::Architecture;
use qram_core::QramModel;
use qram_metrics::{Capacity, Layers, TimingModel};
use qram_sched::{simulate_streams, QramServer};

use crate::parallel::ParallelAlgorithm;

/// One bar of Fig. 9: an algorithm's overall circuit depth on one
/// architecture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Figure9Bar {
    /// The benchmark.
    pub algorithm: ParallelAlgorithm,
    /// The serving architecture.
    pub architecture: Architecture,
    /// Overall circuit depth (weighted layers) until all streams finish.
    pub depth: Layers,
}

/// Computes one bar for any [`QramModel`] backend: the algorithm's
/// `p = log₂ N` streams run on the backend's pipelined-server model. New
/// architectures plug in without touching this call site.
#[must_use]
pub fn algorithm_depth_on<M: QramModel + ?Sized>(
    algorithm: ParallelAlgorithm,
    model: &M,
    timing: &TimingModel,
) -> Layers {
    algorithm.depth_on(model, timing)
}

/// Computes one bar for a named table architecture (including the
/// distributed and virtual baselines, which are compositions without an
/// instruction-level backend), via its closed-form cost model.
#[must_use]
pub fn algorithm_depth(
    algorithm: ParallelAlgorithm,
    architecture: Architecture,
    capacity: Capacity,
    timing: TimingModel,
) -> Layers {
    let p = capacity.address_width();
    let server = QramServer::for_architecture(architecture, capacity, timing);
    let streams = algorithm.streams(capacity, p);
    simulate_streams(&streams, &server).makespan()
}

/// Computes the full Fig. 9 grid (4 algorithms × 5 architectures).
#[must_use]
pub fn figure9(capacity: Capacity, timing: TimingModel) -> Vec<Figure9Bar> {
    let mut bars = Vec::with_capacity(20);
    for algorithm in ParallelAlgorithm::figure9_suite() {
        for architecture in Architecture::ALL {
            bars.push(Figure9Bar {
                algorithm,
                architecture,
                depth: algorithm_depth(algorithm, architecture, capacity, timing),
            });
        }
    }
    bars
}

#[cfg(test)]
mod tests {
    use super::*;

    fn depth(algorithm: ParallelAlgorithm, architecture: Architecture) -> f64 {
        algorithm_depth(
            algorithm,
            architecture,
            Capacity::new(1024).unwrap(),
            TimingModel::paper_default(),
        )
        .get()
    }

    #[test]
    fn fat_tree_beats_bb_by_large_factor_on_grover() {
        // The paper reports up to ~10× depth reduction vs BB at N = 2¹⁰.
        let ft = depth(ParallelAlgorithm::Grover, Architecture::FatTree);
        let bb = depth(ParallelAlgorithm::Grover, Architecture::BucketBrigade);
        let ratio = bb / ft;
        assert!(
            (4.0..15.0).contains(&ratio),
            "BB/Fat-Tree depth ratio {ratio} outside the paper's regime"
        );
    }

    #[test]
    fn fat_tree_beats_virtual_on_every_benchmark() {
        for algorithm in ParallelAlgorithm::figure9_suite() {
            let ft = depth(algorithm, Architecture::FatTree);
            let virt = depth(algorithm, Architecture::Virtual);
            assert!(
                virt > 1.5 * ft,
                "{algorithm}: Virtual {virt} not clearly worse than Fat-Tree {ft}"
            );
        }
    }

    #[test]
    fn distributed_variants_win_by_brute_force() {
        // D-BB uses log N× more qubits and should at least match Fat-Tree's
        // order of magnitude (they appear comparable in Fig. 9).
        for algorithm in ParallelAlgorithm::figure9_suite() {
            let ft = depth(algorithm, Architecture::FatTree);
            let dbb = depth(algorithm, Architecture::DistributedBucketBrigade);
            assert!(
                dbb < 2.5 * ft,
                "{algorithm}: D-BB {dbb} unexpectedly far above Fat-Tree {ft}"
            );
            let dft = depth(algorithm, Architecture::DistributedFatTree);
            assert!(dft <= ft * 1.01, "{algorithm}: D-Fat-Tree must be fastest");
        }
    }

    #[test]
    fn generic_executor_matches_table_architectures() {
        use qram_core::{BucketBrigadeQram, FatTreeQram};
        let capacity = Capacity::new(1024).unwrap();
        let timing = TimingModel::paper_default();
        for algorithm in ParallelAlgorithm::figure9_suite() {
            let ft = algorithm_depth_on(algorithm, &FatTreeQram::new(capacity), &timing);
            assert_eq!(
                ft,
                algorithm_depth(algorithm, Architecture::FatTree, capacity, timing),
                "{algorithm} on Fat-Tree"
            );
            let bb = algorithm_depth_on(algorithm, &BucketBrigadeQram::new(capacity), &timing);
            assert_eq!(
                bb,
                algorithm_depth(algorithm, Architecture::BucketBrigade, capacity, timing),
                "{algorithm} on BB"
            );
        }
    }

    #[test]
    fn figure9_grid_is_complete() {
        let bars = figure9(Capacity::new(64).unwrap(), TimingModel::paper_default());
        assert_eq!(bars.len(), 20);
        for bar in &bars {
            assert!(bar.depth.get() > 0.0);
        }
    }

    #[test]
    fn qsp_depth_reduction_scales_with_parallelism() {
        // QSP: O(poly(d)) → O(poly(d)/log N): Fat-Tree should cut depth by
        // nearly the full parallelism factor versus BB.
        let ft = depth(ParallelAlgorithm::Qsp { degree: 30 }, Architecture::FatTree);
        let bb = depth(
            ParallelAlgorithm::Qsp { degree: 30 },
            Architecture::BucketBrigade,
        );
        assert!(bb / ft > 5.0, "ratio {}", bb / ft);
    }
}
