//! Parallel quantum algorithm workloads and per-architecture executors
//! (§6.3, §7.3–7.4 of the Fat-Tree QRAM paper).
//!
//! # Examples
//!
//! ```
//! use qram_algos::{algorithm_depth, ParallelAlgorithm};
//! use qram_arch::Architecture;
//! use qram_metrics::{Capacity, TimingModel};
//!
//! // Parallel Grover on a shared Fat-Tree vs a shared BB QRAM (Fig. 9).
//! let capacity = Capacity::new(1024)?;
//! let timing = TimingModel::paper_default();
//! let ft = algorithm_depth(ParallelAlgorithm::Grover, Architecture::FatTree,
//!                          capacity, timing);
//! let bb = algorithm_depth(ParallelAlgorithm::Grover, Architecture::BucketBrigade,
//!                          capacity, timing);
//! assert!(bb.get() > 4.0 * ft.get());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fig10;
pub mod fig9;
pub mod parallel;
pub mod scaling;

pub use fig10::{
    paper_axes, sweep_cell, sweep_cell_on, sweep_grid, SweepCell, SYNTHETIC_ITERATIONS,
};
pub use fig9::{algorithm_depth, algorithm_depth_on, figure9, Figure9Bar};
pub use parallel::ParallelAlgorithm;
pub use scaling::{
    depth_reduction_factor, fat_tree_depth_scaling, measured_reduction_factor,
    sequential_depth_scaling,
};
