//! Parallel quantum algorithm workload models (§6.3, §7.3, Fig. 9).
//!
//! Each algorithm is decomposed into `p` parallel streams that alternate
//! QRAM queries with QPU processing; the shared QRAM architecture then
//! determines how the streams' queries serialize or pipeline. Query counts
//! follow the paper's complexity statements with all problem-independent
//! parameters (sparsity, precision) fixed to constants.

use qram_core::QramModel;
use qram_metrics::{Capacity, Layers, TimingModel};
use qram_sched::{simulate_streams, QramServer, StreamWorkload};

/// A parallel quantum algorithm benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ParallelAlgorithm {
    /// Parallel Grover search over `p` database segments
    /// (Zalka 1999): each segment runs `⌈(π/4)·√(N/p)⌉` iterations.
    Grover,
    /// Parallel `k`-Sum via quantum walk: `O((N/p)^{k/(k+1)})` queries per
    /// stream.
    KSum {
        /// The `k` of `k`-Sum (e.g. 2 for element distinctness style
        /// walks).
        k: u32,
    },
    /// Parallel Hamiltonian simulation by parallel quantum walks
    /// (Zhang et al. 2024): `O(log N)` query rounds with
    /// `O(log log N)`-depth processing.
    HamiltonianSimulation,
    /// Parallel quantum signal processing (Martyn et al. 2024): a degree-`d`
    /// polynomial factored into `p` pieces of degree `O(d/p)`; total
    /// queries `poly(d) = d²`.
    Qsp {
        /// Polynomial degree (the paper's Fig. 9 uses `d = 30`).
        degree: u32,
    },
}

impl ParallelAlgorithm {
    /// The four benchmarks of Fig. 9, in its panel order.
    #[must_use]
    pub fn figure9_suite() -> [ParallelAlgorithm; 4] {
        [
            ParallelAlgorithm::Grover,
            ParallelAlgorithm::KSum { k: 2 },
            ParallelAlgorithm::HamiltonianSimulation,
            ParallelAlgorithm::Qsp { degree: 30 },
        ]
    }

    /// The benchmark's display name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ParallelAlgorithm::Grover => "Grover",
            ParallelAlgorithm::KSum { .. } => "k-Sum",
            ParallelAlgorithm::HamiltonianSimulation => "Hamiltonian Sim.",
            ParallelAlgorithm::Qsp { .. } => "QSP",
        }
    }

    /// Queries issued *per stream* when parallelized `p` ways over a
    /// capacity-`N` memory.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    #[must_use]
    pub fn queries_per_stream(&self, capacity: Capacity, p: u32) -> u32 {
        assert!(p >= 1, "at least one stream");
        let n_cells = capacity.capacity_f64();
        let n = capacity.n_f64();
        let per_segment = n_cells / f64::from(p);
        let count = match self {
            ParallelAlgorithm::Grover => (std::f64::consts::FRAC_PI_4 * per_segment.sqrt()).ceil(),
            ParallelAlgorithm::KSum { k } => {
                let kf = f64::from(*k);
                per_segment.powf(kf / (kf + 1.0)).ceil()
            }
            ParallelAlgorithm::HamiltonianSimulation => n.ceil(),
            ParallelAlgorithm::Qsp { degree } => {
                (f64::from(*degree) * f64::from(*degree) / f64::from(p)).ceil()
            }
        };
        u32::try_from(count.max(1.0) as u64).expect("query count fits in u32")
    }

    /// Per-iteration QPU processing depth (in circuit layers) between
    /// consecutive queries of one stream.
    #[must_use]
    pub fn processing_depth(&self, capacity: Capacity) -> Layers {
        let n = capacity.n_f64();
        match self {
            // Oracle phase flip + diffusion over log N qubits.
            ParallelAlgorithm::Grover => Layers::new(n),
            // Quantum-walk step: a few reflections over the segment.
            ParallelAlgorithm::KSum { .. } => Layers::new(2.0 * n),
            // O(log log N)-depth local processing.
            ParallelAlgorithm::HamiltonianSimulation => Layers::new(n.log2().max(1.0).ceil()),
            // A single-qubit phase rotation between queries.
            ParallelAlgorithm::Qsp { .. } => Layers::new(2.0),
        }
    }

    /// Builds the `p` parallel streams of this algorithm on a capacity-`N`
    /// memory.
    #[must_use]
    pub fn streams(&self, capacity: Capacity, p: u32) -> Vec<StreamWorkload> {
        let queries = self.queries_per_stream(capacity, p);
        let d = self.processing_depth(capacity);
        vec![StreamWorkload::alternating(queries, d); p as usize]
    }

    /// Simulates this algorithm end-to-end on any [`QramModel`] backend:
    /// the paper's `p = log₂ N` parallel streams run against the backend's
    /// pipelined-server model, and the overall circuit depth until all
    /// streams finish is returned. The executor is architecture-agnostic —
    /// the backend only enters through the trait.
    #[must_use]
    pub fn depth_on<M: QramModel + ?Sized>(&self, model: &M, timing: &TimingModel) -> Layers {
        let capacity = model.capacity();
        let p = capacity.address_width();
        let server = QramServer::for_model(model, timing);
        simulate_streams(&self.streams(capacity, p), &server).makespan()
    }
}

impl std::fmt::Display for ParallelAlgorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cap1024() -> Capacity {
        Capacity::new(1024).unwrap()
    }

    #[test]
    fn grover_query_count_scales_with_segment_size() {
        // N = 1024, p = 10: ceil(0.785 · √102.4) = 8.
        assert_eq!(
            ParallelAlgorithm::Grover.queries_per_stream(cap1024(), 10),
            8
        );
        // Fewer segments → more iterations each.
        assert!(
            ParallelAlgorithm::Grover.queries_per_stream(cap1024(), 1)
                > ParallelAlgorithm::Grover.queries_per_stream(cap1024(), 10)
        );
    }

    #[test]
    fn ksum_query_count() {
        // (102.4)^(2/3) = 21.9 → 22.
        assert_eq!(
            ParallelAlgorithm::KSum { k: 2 }.queries_per_stream(cap1024(), 10),
            22
        );
    }

    #[test]
    fn qsp_queries_split_over_streams() {
        let qsp = ParallelAlgorithm::Qsp { degree: 30 };
        assert_eq!(qsp.queries_per_stream(cap1024(), 10), 90);
        assert_eq!(qsp.queries_per_stream(cap1024(), 1), 900);
    }

    #[test]
    fn hamiltonian_rounds_are_logarithmic() {
        assert_eq!(
            ParallelAlgorithm::HamiltonianSimulation.queries_per_stream(cap1024(), 10),
            10
        );
    }

    #[test]
    fn streams_have_uniform_shape() {
        let streams = ParallelAlgorithm::Grover.streams(cap1024(), 10);
        assert_eq!(streams.len(), 10);
        for s in &streams {
            assert_eq!(s.query_count(), 8);
        }
    }

    #[test]
    fn generic_executor_prefers_fat_tree() {
        use qram_core::{BucketBrigadeQram, FatTreeQram};
        let timing = TimingModel::paper_default();
        let capacity = cap1024();
        for algorithm in ParallelAlgorithm::figure9_suite() {
            let ft = algorithm.depth_on(&FatTreeQram::new(capacity), &timing);
            let bb = algorithm.depth_on(&BucketBrigadeQram::new(capacity), &timing);
            assert!(ft < bb, "{algorithm}: {} vs {}", ft.get(), bb.get());
        }
    }

    #[test]
    fn suite_has_four_panels() {
        let names: Vec<&str> = ParallelAlgorithm::figure9_suite()
            .iter()
            .map(ParallelAlgorithm::name)
            .collect();
        assert_eq!(names, vec!["Grover", "k-Sum", "Hamiltonian Sim.", "QSP"]);
    }
}
