//! Asymptotic circuit-depth scalings of §7.3.
//!
//! With problem-independent parameters (precision, sparsity) fixed to
//! constants, the paper reports these overall-depth reductions when moving
//! the four parallel algorithms from a sequential shared QRAM (BB /
//! Virtual) to Fat-Tree:
//!
//! * Grover: `O(log²N·√N)` → `O(log N·√N)`
//! * k-Sum: `O(log²N·(N/log N)^{k/(k+1)})` → `O(log N·(…))`
//! * Hamiltonian simulation: `O(log N·log log N + log²N)` →
//!   `O(log N·log log N + log N)`
//! * QSP: `O(poly(d))` → `O(poly(d)/log N)`

use qram_core::QramModel;
use qram_metrics::{Capacity, TimingModel};

use crate::parallel::ParallelAlgorithm;

/// Asymptotic overall depth of an algorithm on a *sequential* shared QRAM
/// (BB-style), up to constant factors.
#[must_use]
pub fn sequential_depth_scaling(algorithm: ParallelAlgorithm, capacity: Capacity) -> f64 {
    let n_cells = capacity.capacity_f64();
    let n = capacity.n_f64().max(1.0);
    match algorithm {
        ParallelAlgorithm::Grover => n * n * n_cells.sqrt(),
        ParallelAlgorithm::KSum { k } => {
            let kf = f64::from(k);
            n * n * (n_cells / n).powf(kf / (kf + 1.0))
        }
        ParallelAlgorithm::HamiltonianSimulation => n * n.log2().max(1.0) + n * n,
        ParallelAlgorithm::Qsp { degree } => f64::from(degree) * f64::from(degree),
    }
}

/// Asymptotic overall depth of the same algorithm on a Fat-Tree QRAM.
#[must_use]
pub fn fat_tree_depth_scaling(algorithm: ParallelAlgorithm, capacity: Capacity) -> f64 {
    let n_cells = capacity.capacity_f64();
    let n = capacity.n_f64().max(1.0);
    match algorithm {
        ParallelAlgorithm::Grover => n * n_cells.sqrt(),
        ParallelAlgorithm::KSum { k } => {
            let kf = f64::from(k);
            n * (n_cells / n).powf(kf / (kf + 1.0))
        }
        ParallelAlgorithm::HamiltonianSimulation => n * n.log2().max(1.0) + n,
        ParallelAlgorithm::Qsp { degree } => f64::from(degree) * f64::from(degree) / n,
    }
}

/// The asymptotic depth-reduction factor Fat-Tree buys for an algorithm.
#[must_use]
pub fn depth_reduction_factor(algorithm: ParallelAlgorithm, capacity: Capacity) -> f64 {
    sequential_depth_scaling(algorithm, capacity) / fat_tree_depth_scaling(algorithm, capacity)
}

/// Measured depth-reduction factor between any two [`QramModel`] backends,
/// from the pipelined-server simulation — the backend-generic counterpart
/// of the asymptotic [`depth_reduction_factor`]. `baseline` is the slower
/// architecture (e.g. bucket-brigade), `contender` the faster one.
#[must_use]
pub fn measured_reduction_factor<A: QramModel + ?Sized, B: QramModel + ?Sized>(
    algorithm: ParallelAlgorithm,
    baseline: &A,
    contender: &B,
    timing: &TimingModel,
) -> f64 {
    algorithm.depth_on(baseline, timing) / algorithm.depth_on(contender, timing)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fig9::algorithm_depth;
    use qram_arch::Architecture;
    use qram_metrics::TimingModel;

    fn cap(width: u32) -> Capacity {
        Capacity::from_address_width(width)
    }

    #[test]
    fn grover_reduction_is_log_n() {
        for width in [6u32, 10, 16] {
            let r = depth_reduction_factor(ParallelAlgorithm::Grover, cap(width));
            assert!((r - f64::from(width)).abs() < 1e-9, "width {width}");
        }
    }

    #[test]
    fn ksum_reduction_is_log_n() {
        let r = depth_reduction_factor(ParallelAlgorithm::KSum { k: 2 }, cap(10));
        assert!((r - 10.0).abs() < 1e-9);
    }

    #[test]
    fn hamsim_reduction_is_sublogarithmic() {
        // (n·loglog n + n²) / (n·loglog n + n) → between 1 and log N.
        let r = depth_reduction_factor(ParallelAlgorithm::HamiltonianSimulation, cap(16));
        assert!(r > 2.0 && r < 16.0, "r = {r}");
    }

    #[test]
    fn qsp_reduction_is_log_n() {
        let r = depth_reduction_factor(ParallelAlgorithm::Qsp { degree: 30 }, cap(10));
        assert!((r - 10.0).abs() < 1e-9);
    }

    #[test]
    fn scalings_grow_monotonically_in_capacity() {
        for algorithm in ParallelAlgorithm::figure9_suite() {
            let mut prev = 0.0;
            for width in [4u32, 8, 12, 16] {
                if matches!(algorithm, ParallelAlgorithm::Qsp { .. }) {
                    continue; // QSP depth depends on d, not N
                }
                let d = fat_tree_depth_scaling(algorithm, cap(width));
                assert!(d > prev, "{algorithm} width {width}");
                prev = d;
            }
        }
    }

    #[test]
    fn measured_reduction_tracks_asymptotics() {
        use qram_core::{BucketBrigadeQram, FatTreeQram};
        let capacity = Capacity::new(1024).unwrap();
        let timing = TimingModel::paper_default();
        let bb = BucketBrigadeQram::new(capacity);
        let ft = FatTreeQram::new(capacity);
        for algorithm in ParallelAlgorithm::figure9_suite() {
            let measured = measured_reduction_factor(algorithm, &bb, &ft, &timing);
            let asymptotic = depth_reduction_factor(algorithm, capacity);
            let ratio = measured / asymptotic;
            assert!(
                (0.3..3.0).contains(&ratio),
                "{algorithm}: measured {measured} vs asymptotic {asymptotic}"
            );
        }
    }

    #[test]
    fn simulation_reductions_track_asymptotics_within_constant() {
        // The simulated Fig. 9 speedups must lie within a constant factor
        // of the asymptotic predictions (they include pipeline fill/drain
        // and processing overlap that the asymptotics ignore).
        let capacity = Capacity::new(1024).unwrap();
        let timing = TimingModel::paper_default();
        for algorithm in ParallelAlgorithm::figure9_suite() {
            let simulated =
                algorithm_depth(algorithm, Architecture::BucketBrigade, capacity, timing).get()
                    / algorithm_depth(algorithm, Architecture::FatTree, capacity, timing).get();
            let asymptotic = depth_reduction_factor(algorithm, capacity);
            let ratio = simulated / asymptotic;
            assert!(
                (0.3..3.0).contains(&ratio),
                "{algorithm}: simulated {simulated} vs asymptotic {asymptotic}"
            );
        }
    }
}
