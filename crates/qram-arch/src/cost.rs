//! Resource and performance cost models for the five shared-QRAM
//! architectures of §6.1 — the closed forms behind Tables 1 and 2 and
//! Fig. 8.

use qram_core::latency;
use qram_metrics::{Bandwidth, Capacity, Layers, QueryRate, SpaceTimeVolume, TimingModel};

/// The shared-QRAM architectures compared in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Architecture {
    /// The paper's contribution: one Fat-Tree QRAM of capacity `N`.
    FatTree,
    /// `log₂ N` distributed Fat-Tree QRAMs of capacity `N` each.
    DistributedFatTree,
    /// One Bucket-Brigade QRAM (sequential queries).
    BucketBrigade,
    /// `log₂ N` distributed Bucket-Brigade QRAMs.
    DistributedBucketBrigade,
    /// Virtual QRAM (Xu et al., MICRO '23): `K = n/2` pages of size
    /// `M = N/K` on the Fat-Tree's qubit budget.
    Virtual,
}

impl Architecture {
    /// All five architectures in the paper's table order.
    pub const ALL: [Architecture; 5] = [
        Architecture::FatTree,
        Architecture::DistributedFatTree,
        Architecture::BucketBrigade,
        Architecture::DistributedBucketBrigade,
        Architecture::Virtual,
    ];

    /// The display name used in the paper's tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Architecture::FatTree => "Fat-Tree",
            Architecture::DistributedFatTree => "D-Fat-Tree",
            Architecture::BucketBrigade => "BB",
            Architecture::DistributedBucketBrigade => "D-BB",
            Architecture::Virtual => "Virtual",
        }
    }

    /// True for the distributed variants, which use `O(N log N)` qubits —
    /// asymptotically more than the `O(N)` group (§6.1).
    #[must_use]
    pub fn is_distributed(self) -> bool {
        matches!(
            self,
            Architecture::DistributedFatTree | Architecture::DistributedBucketBrigade
        )
    }
}

impl std::fmt::Display for Architecture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The closed-form cost model of one architecture at one capacity
/// (Tables 1–2).
///
/// # Examples
///
/// ```
/// use qram_arch::{Architecture, CostModel};
/// use qram_metrics::{Capacity, TimingModel};
///
/// let m = CostModel::new(Architecture::FatTree, Capacity::new(1024)?,
///                        TimingModel::paper_default());
/// assert_eq!(m.qubit_count(), 16 * 1024);
/// assert_eq!(m.query_parallelism(), 10);
/// // Constant bandwidth ≈ 1.21 × 10⁵ qubit/s, independent of N (Table 2).
/// assert!((m.bandwidth(1).get() - 1.2121e5).abs() < 10.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    architecture: Architecture,
    capacity: Capacity,
    timing: TimingModel,
}

impl CostModel {
    /// Creates a cost model.
    #[must_use]
    pub fn new(architecture: Architecture, capacity: Capacity, timing: TimingModel) -> Self {
        CostModel {
            architecture,
            capacity,
            timing,
        }
    }

    /// The architecture being modelled.
    #[must_use]
    pub fn architecture(&self) -> Architecture {
        self.architecture
    }

    /// The memory capacity `N`.
    #[must_use]
    pub fn capacity(&self) -> Capacity {
        self.capacity
    }

    fn n(&self) -> f64 {
        self.capacity.n_f64()
    }

    fn n_u64(&self) -> u64 {
        u64::from(self.capacity.address_width())
    }

    /// Total qubit count, Table 1 row 1: `16N` for Fat-Tree/Virtual,
    /// `8N` for BB, `×log₂ N` for the distributed variants.
    ///
    /// The per-router constant is 8 physical elements (4 cavity qubits —
    /// input, router, two outputs — plus their transmon/coupler ancillas,
    /// Fig. 4(c)); Fat-Tree has `≈2N` routers, BB `≈N`.
    #[must_use]
    pub fn qubit_count(&self) -> u64 {
        let n_cells = self.capacity.get();
        match self.architecture {
            Architecture::FatTree | Architecture::Virtual => 16 * n_cells,
            Architecture::BucketBrigade => 8 * n_cells,
            Architecture::DistributedFatTree => 16 * n_cells * self.n_u64(),
            Architecture::DistributedBucketBrigade => 8 * n_cells * self.n_u64(),
        }
    }

    /// Query parallelism, Table 1 row 2.
    #[must_use]
    pub fn query_parallelism(&self) -> u32 {
        let n = self.capacity.address_width();
        match self.architecture {
            Architecture::FatTree => n,
            Architecture::DistributedFatTree => n * n,
            Architecture::BucketBrigade => 1,
            Architecture::DistributedBucketBrigade => n,
            Architecture::Virtual => n,
        }
    }

    /// Weighted latency of a single query (`t₁`, Table 1 row 3).
    #[must_use]
    pub fn single_query_latency(&self) -> Layers {
        match self.architecture {
            Architecture::FatTree | Architecture::DistributedFatTree => {
                latency::fat_tree_single_query(self.capacity, &self.timing)
            }
            Architecture::BucketBrigade | Architecture::DistributedBucketBrigade => {
                latency::bb_single_query(self.capacity, &self.timing)
            }
            Architecture::Virtual => latency::virtual_single_query(self.capacity, &self.timing),
        }
    }

    /// Weighted latency for `p` concurrent query requests: queries beyond
    /// the parallelism queue up (round-robin over distributed copies;
    /// pipelined admission for Fat-Tree).
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    #[must_use]
    pub fn parallel_queries_latency(&self, p: u32) -> Layers {
        assert!(p >= 1, "at least one query");
        let n = self.capacity.address_width().max(1);
        match self.architecture {
            Architecture::FatTree => {
                latency::fat_tree_parallel_queries(self.capacity, p, &self.timing)
            }
            Architecture::DistributedFatTree => {
                // p queries round-robin over n Fat-Trees.
                let per_tree = p.div_ceil(n);
                latency::fat_tree_parallel_queries(self.capacity, per_tree, &self.timing)
            }
            Architecture::BucketBrigade => {
                latency::bb_parallel_queries(self.capacity, p, &self.timing)
            }
            Architecture::DistributedBucketBrigade => {
                latency::bb_parallel_queries(self.capacity, p.div_ceil(n), &self.timing)
            }
            Architecture::Virtual => {
                // n virtual QRAMs, each serving queries sequentially.
                self.single_query_latency() * f64::from(p.div_ceil(n))
            }
        }
    }

    /// Amortized per-query latency at full parallel load (Table 1 row 5):
    /// `8.25` layers for Fat-Tree independent of `N`.
    #[must_use]
    pub fn amortized_query_latency(&self) -> Layers {
        let n = self.n();
        match self.architecture {
            Architecture::FatTree => latency::fat_tree_pipeline_interval(&self.timing),
            Architecture::DistributedFatTree => {
                latency::fat_tree_pipeline_interval(&self.timing) / n
            }
            Architecture::BucketBrigade => self.single_query_latency(),
            Architecture::DistributedBucketBrigade => self.single_query_latency() / n,
            Architecture::Virtual => self.single_query_latency() / n,
        }
    }

    /// Max query rate: inverse of the amortized single-query time (§6.2).
    #[must_use]
    pub fn max_query_rate(&self) -> QueryRate {
        let seconds = self
            .timing
            .layers_to_seconds(self.amortized_query_latency());
        QueryRate::new(1.0 / seconds)
    }

    /// QRAM bandwidth = max query rate × bus width (Table 2 row 1).
    #[must_use]
    pub fn bandwidth(&self, bus_width: u32) -> Bandwidth {
        self.max_query_rate().bandwidth(bus_width)
    }

    /// Space-time volume per query: qubits × amortized latency
    /// (Table 2 row 2) — `132N` for Fat-Tree.
    #[must_use]
    pub fn spacetime_volume_per_query(&self) -> SpaceTimeVolume {
        SpaceTimeVolume::new(self.qubit_count() as f64 * self.amortized_query_latency().get())
    }

    /// Time budget for classical memory swap: the interval between
    /// consecutive data retrievals, in µs (Table 2 row 3).
    #[must_use]
    pub fn classical_swap_budget_micros(&self) -> f64 {
        let interval = match self.architecture {
            Architecture::FatTree | Architecture::DistributedFatTree => {
                latency::fat_tree_pipeline_interval(&self.timing)
            }
            Architecture::BucketBrigade | Architecture::DistributedBucketBrigade => {
                latency::bb_single_query(self.capacity, &self.timing)
            }
            Architecture::Virtual => self.single_query_latency(),
        };
        self.timing.layers_to_micros(interval)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(a: Architecture, n: u64) -> CostModel {
        CostModel::new(a, Capacity::new(n).unwrap(), TimingModel::paper_default())
    }

    #[test]
    fn table1_qubit_row() {
        assert_eq!(model(Architecture::FatTree, 1024).qubit_count(), 16 * 1024);
        assert_eq!(
            model(Architecture::BucketBrigade, 1024).qubit_count(),
            8 * 1024
        );
        assert_eq!(model(Architecture::Virtual, 1024).qubit_count(), 16 * 1024);
        assert_eq!(
            model(Architecture::DistributedFatTree, 1024).qubit_count(),
            16 * 1024 * 10
        );
        assert_eq!(
            model(Architecture::DistributedBucketBrigade, 1024).qubit_count(),
            8 * 1024 * 10
        );
    }

    #[test]
    fn table1_parallelism_row() {
        assert_eq!(model(Architecture::FatTree, 1024).query_parallelism(), 10);
        assert_eq!(
            model(Architecture::DistributedFatTree, 1024).query_parallelism(),
            100
        );
        assert_eq!(
            model(Architecture::BucketBrigade, 1024).query_parallelism(),
            1
        );
        assert_eq!(
            model(Architecture::DistributedBucketBrigade, 1024).query_parallelism(),
            10
        );
        assert_eq!(model(Architecture::Virtual, 1024).query_parallelism(), 10);
    }

    #[test]
    fn table1_single_query_latency_row() {
        let n = 10.0_f64;
        assert!(
            (model(Architecture::FatTree, 1024)
                .single_query_latency()
                .get()
                - (8.25 * n - 0.125))
                .abs()
                < 1e-9
        );
        assert!(
            (model(Architecture::BucketBrigade, 1024)
                .single_query_latency()
                .get()
                - (8.0 * n + 0.125))
                .abs()
                < 1e-9
        );
        let virt = model(Architecture::Virtual, 1024)
            .single_query_latency()
            .get();
        let expect = 4.0 * n * n + 4.0625 * n - 4.0 * n * n.log2();
        assert!((virt - expect).abs() < 1e-9);
    }

    #[test]
    fn table1_parallel_latency_row() {
        // t_logN for Fat-Tree: 16.5n − 8.375.
        let n = 10u32;
        let got = model(Architecture::FatTree, 1024)
            .parallel_queries_latency(n)
            .get();
        assert!((got - (16.5 * 10.0 - 8.375)).abs() < 1e-9);
        // BB serializes: 10 × (80.125).
        let bb = model(Architecture::BucketBrigade, 1024)
            .parallel_queries_latency(n)
            .get();
        assert!((bb - 10.0 * 80.125).abs() < 1e-9);
        // D-BB runs them all at once.
        let dbb = model(Architecture::DistributedBucketBrigade, 1024)
            .parallel_queries_latency(n)
            .get();
        assert!((dbb - 80.125).abs() < 1e-9);
    }

    #[test]
    fn table2_bandwidth_row() {
        // Fat-Tree: 1/(8.25 µs) ≈ 1.2121 × 10⁵, independent of N.
        for cap in [64u64, 1024, 1 << 16] {
            let bw = model(Architecture::FatTree, cap).bandwidth(1).get();
            assert!((bw - 1.0e6 / 8.25).abs() < 1.0, "N={cap}: {bw}");
        }
        // BB: 10⁶ / (8n + 0.125) — decays with N.
        let bb = model(Architecture::BucketBrigade, 1024).bandwidth(1).get();
        assert!((bb - 1.0e6 / 80.125).abs() < 1.0);
        // D-BB: n × BB rate (constant-ish) — Table 2's 10⁶·log N/(8 log N + 0.125).
        let dbb = model(Architecture::DistributedBucketBrigade, 1024)
            .bandwidth(1)
            .get();
        assert!((dbb - 10.0e6 / 80.125).abs() < 10.0);
        // Virtual: 10⁶ / (4n + 4.0625 − 4·log₂ log₂ N).
        let v = model(Architecture::Virtual, 1024).bandwidth(1).get();
        let n = 10.0_f64;
        let expect = 1.0e6 / (4.0 * n + 4.0625 - 4.0 * n.log2());
        assert!((v - expect).abs() < 1.0, "{v} vs {expect}");
    }

    #[test]
    fn table2_spacetime_volume_row() {
        let n = 10.0_f64;
        let cells = 1024.0;
        // Fat-Tree: 132N.
        let ft = model(Architecture::FatTree, 1024)
            .spacetime_volume_per_query()
            .get();
        assert!((ft - 132.0 * cells).abs() < 1e-6);
        // D-Fat-Tree: also 132N.
        let dft = model(Architecture::DistributedFatTree, 1024)
            .spacetime_volume_per_query()
            .get();
        assert!((dft - 132.0 * cells).abs() < 1e-6);
        // BB: 64N·log N + N.
        let bb = model(Architecture::BucketBrigade, 1024)
            .spacetime_volume_per_query()
            .get();
        assert!((bb - (64.0 * cells * n + cells)).abs() < 1e-6);
        // Virtual: 64N·log N + 65N − 64N·log log N.
        let v = model(Architecture::Virtual, 1024)
            .spacetime_volume_per_query()
            .get();
        let expect = 64.0 * cells * n + 65.0 * cells - 64.0 * cells * n.log2();
        assert!((v - expect).abs() < 1e-6);
    }

    #[test]
    fn table2_swap_budget_row() {
        // Fat-Tree needs rapid constant-interval swapping: 8.25 µs.
        assert!(
            (model(Architecture::FatTree, 1024).classical_swap_budget_micros() - 8.25).abs() < 1e-9
        );
        // BB: 8·log N + 0.125 µs.
        assert!(
            (model(Architecture::BucketBrigade, 1024).classical_swap_budget_micros() - 80.125)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn fat_tree_bandwidth_is_capacity_independent_bb_is_not() {
        // Fig. 8's headline: Fat-Tree flat, BB decaying.
        let ft4 = model(Architecture::FatTree, 4).bandwidth(1).get();
        let ft1024 = model(Architecture::FatTree, 1024).bandwidth(1).get();
        assert!((ft4 - ft1024).abs() < 1e-6);
        let bb4 = model(Architecture::BucketBrigade, 4).bandwidth(1).get();
        let bb1024 = model(Architecture::BucketBrigade, 1024).bandwidth(1).get();
        assert!(bb4 > 4.0 * bb1024);
    }

    #[test]
    fn architecture_metadata() {
        assert_eq!(Architecture::FatTree.name(), "Fat-Tree");
        assert_eq!(Architecture::ALL.len(), 5);
        assert!(Architecture::DistributedBucketBrigade.is_distributed());
        assert!(!Architecture::Virtual.is_distributed());
        assert_eq!(Architecture::Virtual.to_string(), "Virtual");
    }

    #[test]
    fn bus_width_scales_bandwidth() {
        let m = model(Architecture::FatTree, 256);
        assert_eq!(m.bandwidth(4).get(), m.bandwidth(1).get() * 4.0);
    }
}
