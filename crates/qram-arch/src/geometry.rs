//! Minimal 2-D geometry: points, segments, and proper-crossing tests.
//!
//! Used to verify that physical layouts (H-tree floorplans, intra-node
//! wiring) are free of wire crossings within a chip plane (§4.2).

/// A point in the plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// X coordinate.
    pub x: f64,
    /// Y coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point.
    #[must_use]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point.
    #[must_use]
    pub fn distance(self, other: Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// A straight wire segment between two points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Start point.
    pub a: Point,
    /// End point.
    pub b: Point,
}

impl Segment {
    /// Creates a segment.
    #[must_use]
    pub const fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// Length of the segment.
    #[must_use]
    pub fn length(self) -> f64 {
        self.a.distance(self.b)
    }

    /// True when the two segments *properly* cross: they intersect at a
    /// single interior point of both. Touching at endpoints (shared ports)
    /// does not count as a crossing.
    #[must_use]
    pub fn crosses(self, other: Segment) -> bool {
        let d1 = orient(other.a, other.b, self.a);
        let d2 = orient(other.a, other.b, self.b);
        let d3 = orient(self.a, self.b, other.a);
        let d4 = orient(self.a, self.b, other.b);
        // Strict straddling on both sides = proper interior crossing.
        (d1 * d2 < 0.0) && (d3 * d4 < 0.0)
    }
}

/// Twice the signed area of the triangle `abc`: positive for
/// counter-clockwise orientation.
fn orient(a: Point, b: Point, c: Point) -> f64 {
    let v = (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
    // Snap near-zero determinants to exactly zero so collinear contacts
    // are not misclassified as crossings by floating-point noise.
    if v.abs() < 1e-12 {
        0.0
    } else {
        v
    }
}

/// Counts proper pairwise crossings among a set of segments.
#[must_use]
pub fn crossing_count(segments: &[Segment]) -> usize {
    let mut count = 0;
    for i in 0..segments.len() {
        for j in (i + 1)..segments.len() {
            if segments[i].crosses(segments[j]) {
                count += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn crossing_x_shape() {
        assert!(seg(0.0, 0.0, 1.0, 1.0).crosses(seg(0.0, 1.0, 1.0, 0.0)));
    }

    #[test]
    fn parallel_segments_do_not_cross() {
        assert!(!seg(0.0, 0.0, 1.0, 0.0).crosses(seg(0.0, 1.0, 1.0, 1.0)));
    }

    #[test]
    fn shared_endpoint_is_not_a_crossing() {
        assert!(!seg(0.0, 0.0, 1.0, 1.0).crosses(seg(1.0, 1.0, 2.0, 0.0)));
    }

    #[test]
    fn t_junction_is_not_a_proper_crossing() {
        // One endpoint lying on the interior of the other segment.
        assert!(!seg(0.0, 0.0, 2.0, 0.0).crosses(seg(1.0, 0.0, 1.0, 1.0)));
    }

    #[test]
    fn disjoint_segments_do_not_cross() {
        assert!(!seg(0.0, 0.0, 1.0, 0.0).crosses(seg(2.0, 2.0, 3.0, 3.0)));
    }

    #[test]
    fn crossing_count_counts_pairs() {
        let segments = vec![
            seg(0.0, 0.0, 2.0, 2.0),
            seg(0.0, 2.0, 2.0, 0.0),
            seg(0.0, 1.0, 2.0, 1.0),
        ];
        // Diagonals cross each other, and the horizontal crosses both.
        assert_eq!(crossing_count(&segments), 3);
    }

    #[test]
    fn distances_and_lengths() {
        assert_eq!(Point::new(0.0, 0.0).distance(Point::new(3.0, 4.0)), 5.0);
        assert_eq!(seg(0.0, 0.0, 0.0, 2.0).length(), 2.0);
    }
}
