//! H-tree floorplan of the QRAM router tree (Fig. 2(c), Fig. 3).
//!
//! Both BB and Fat-Tree QRAM adopt the classic H-tree embedding: the root
//! at the center, children placed alternately along the x and y axes with
//! geometrically shrinking arms, so a capacity-`N` memory occupies an
//! `O(√N) × O(√N)` footprint and the leaves land on a regular grid.

use qram_core::NodeId;
use qram_metrics::Capacity;

use crate::geometry::{crossing_count, Point, Segment};

/// The H-tree floorplan of a depth-`n` router tree.
///
/// # Examples
///
/// ```
/// use qram_arch::HTreeLayout;
/// use qram_metrics::Capacity;
///
/// let layout = HTreeLayout::new(Capacity::new(64)?);
/// // Inter-node wires drawn as straight segments never cross: the H-tree
/// // embedding is planar.
/// assert_eq!(layout.edge_crossings(), 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct HTreeLayout {
    capacity: Capacity,
    positions: Vec<(NodeId, Point)>,
}

impl HTreeLayout {
    /// Builds the floorplan for the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if the capacity exceeds 2²⁰ nodes (layout enumeration is
    /// dense).
    #[must_use]
    pub fn new(capacity: Capacity) -> Self {
        assert!(
            capacity.get() <= (1 << 20),
            "H-tree layout limited to 2^20 leaves"
        );
        let depth = capacity.address_width();
        let mut positions = Vec::with_capacity((capacity.get() - 1) as usize);
        // Root at the origin; arm lengths halve every two levels,
        // alternating axes — the classic H-tree recursion.
        let mut stack = vec![(NodeId::ROOT, Point::new(0.0, 0.0))];
        while let Some((node, at)) = stack.pop() {
            positions.push((node, at));
            if node.level + 1 < depth {
                let arm = arm_length(node.level);
                let (dx, dy) = if node.level % 2 == 0 {
                    (arm, 0.0)
                } else {
                    (0.0, arm)
                };
                stack.push((node.left_child(), Point::new(at.x - dx, at.y - dy)));
                stack.push((node.right_child(), Point::new(at.x + dx, at.y + dy)));
            }
        }
        positions.sort_by_key(|(node, _)| *node);
        HTreeLayout {
            capacity,
            positions,
        }
    }

    /// The capacity this layout was built for.
    #[must_use]
    pub fn capacity(&self) -> Capacity {
        self.capacity
    }

    /// The position of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node does not belong to this tree.
    #[must_use]
    pub fn position(&self, node: NodeId) -> Point {
        let idx = self
            .positions
            .binary_search_by_key(&node, |(n, _)| *n)
            .expect("node belongs to this tree");
        self.positions[idx].1
    }

    /// All `(node, position)` pairs in breadth-first order.
    #[must_use]
    pub fn positions(&self) -> &[(NodeId, Point)] {
        &self.positions
    }

    /// The parent→child wire segments of the router tree (leaf level links
    /// to classical cells are omitted — single wires to memory).
    #[must_use]
    pub fn edges(&self) -> Vec<(NodeId, NodeId, Segment)> {
        let mut out = Vec::new();
        for &(node, at) in &self.positions {
            if node.level + 1 < self.capacity.address_width() {
                for child in [node.left_child(), node.right_child()] {
                    out.push((node, child, Segment::new(at, self.position(child))));
                }
            }
        }
        out
    }

    /// Proper crossings among inter-node wires — zero for a planar H-tree.
    #[must_use]
    pub fn edge_crossings(&self) -> usize {
        let segments: Vec<Segment> = self.edges().into_iter().map(|(_, _, s)| s).collect();
        crossing_count(&segments)
    }

    /// The side length of the square bounding box of the floorplan.
    #[must_use]
    pub fn bounding_box_side(&self) -> f64 {
        let xs = self.positions.iter().map(|(_, p)| p.x);
        let ys = self.positions.iter().map(|(_, p)| p.y);
        let (min_x, max_x) = min_max(xs);
        let (min_y, max_y) = min_max(ys);
        (max_x - min_x).max(max_y - min_y)
    }

    /// Total wire length of all inter-node links.
    #[must_use]
    pub fn total_wire_length(&self) -> f64 {
        self.edges().iter().map(|(_, _, s)| s.length()).sum()
    }
}

fn arm_length(level: u32) -> f64 {
    // Both children of a level-l node sit at distance 1/2^(l/2) from it;
    // halving every two levels keeps subtrees disjoint.
    1.0 / f64::from(1u32 << (level / 2))
}

fn min_max(values: impl Iterator<Item = f64>) -> (f64, f64) {
    values.fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| {
        (lo.min(v), hi.max(v))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout(n: u64) -> HTreeLayout {
        HTreeLayout::new(Capacity::new(n).unwrap())
    }

    #[test]
    fn all_node_positions_distinct() {
        for n in [4u64, 8, 16, 64, 256] {
            let l = layout(n);
            let ps = l.positions();
            for i in 0..ps.len() {
                for j in (i + 1)..ps.len() {
                    assert!(
                        ps[i].1.distance(ps[j].1) > 1e-9,
                        "N={n}: nodes {} and {} collide",
                        ps[i].0,
                        ps[j].0
                    );
                }
            }
        }
    }

    #[test]
    fn embedding_is_planar() {
        for n in [4u64, 8, 16, 64, 256, 1024] {
            assert_eq!(layout(n).edge_crossings(), 0, "N={n}");
        }
    }

    #[test]
    fn footprint_scales_as_sqrt_capacity() {
        // Doubling depth by 2 (4× capacity) should ~2× the side length...
        // in an H-tree the bounding box is Θ(√N) for the *leaf* grid; with
        // fixed arm normalization the box converges, so compare wire totals
        // instead: total wire length grows ~√N per level pair.
        let small = layout(64).total_wire_length();
        let large = layout(1024).total_wire_length();
        // 16× capacity → total wire length grows by ~4–8×, far below 16×.
        let ratio = large / small;
        assert!((3.0..10.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn children_alternate_axes() {
        let l = layout(16);
        let root = l.position(NodeId::ROOT);
        let left = l.position(NodeId::ROOT.left_child());
        // Level 0 splits along x.
        assert!((root.y - left.y).abs() < 1e-12);
        assert!((root.x - left.x).abs() > 0.0);
        // Level 1 splits along y.
        let ll = l.position(NodeId::ROOT.left_child().left_child());
        assert!((left.x - ll.x).abs() < 1e-12);
        assert!((left.y - ll.y).abs() > 0.0);
    }

    #[test]
    fn edge_count_matches_internal_nodes() {
        let l = layout(32); // depth 5: nodes at levels 0..4, edges from 0..3
        let internal: u64 = (0..4).map(|i| 1u64 << i).sum();
        assert_eq!(l.edges().len() as u64, 2 * internal);
    }

    #[test]
    #[should_panic(expected = "belongs to this tree")]
    fn position_of_foreign_node_panics() {
        let l = layout(4);
        let _ = l.position(NodeId::new(5, 0));
    }
}
