//! Hardware architecture models for shared QRAM (§4, §6.1, §7.1–7.2).
//!
//! * [`cost`] — closed-form resource/latency/bandwidth models for the five
//!   architectures compared in the paper (Tables 1–2, Fig. 8).
//! * [`htree`] — the planar H-tree floorplan (Fig. 2(c), Fig. 3).
//! * [`node_layout`] — intra-node wiring of multiplexed routers and the
//!   bi-planar decomposition theorem of §4.2.2 (verified geometrically).
//! * [`onchip`] — the thickness-2 chip plane assignment with TSV counting
//!   (Fig. 4(d,e)).
//! * [`modular`] — the modular implementation's hardware bill of materials
//!   (Fig. 4(a–c)).
//!
//! # Examples
//!
//! ```
//! use qram_arch::{Architecture, CostModel};
//! use qram_metrics::{Capacity, TimingModel};
//!
//! // Fig. 8: Fat-Tree bandwidth is flat in N, BB decays.
//! let timing = TimingModel::paper_default();
//! for n in [64, 1024] {
//!     let ft = CostModel::new(Architecture::FatTree, Capacity::new(n)?, timing);
//!     assert!((ft.bandwidth(1).get() - 1.0e6 / 8.25).abs() < 1.0);
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod geometry;
pub mod htree;
pub mod modular;
pub mod node_layout;
pub mod onchip;
pub mod partial;

pub use cost::{Architecture, CostModel};
pub use geometry::{crossing_count, Point, Segment};
pub use htree::HTreeLayout;
pub use modular::{HardwareBom, ModularPlan};
pub use node_layout::{NodeLayout, Plane};
pub use onchip::OnChipPlan;
pub use partial::PartialFatTree;
