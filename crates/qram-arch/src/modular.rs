//! The modular implementation of Fat-Tree nodes (§4.2.1, Fig. 4(a–c)):
//! every node is an independently manufactured module; modules are linked
//! by bendable superconducting coaxial cables through tunable couplers.

use qram_core::TreeShape;
use qram_metrics::Capacity;

/// Hardware bill of materials for a modular Fat-Tree QRAM.
///
/// Per router (Fig. 4(c)): an input cavity and a router cavity, each with
/// an attached transmon enabling the native cavity-controlled CSWAP, plus
/// two output cavities (absent on the last router of each node, which acts
/// as transient storage). Adjacent routers are linked by beam splitters;
/// node ports attach tunable couplers driving the inter-node coax cables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HardwareBom {
    /// Microwave cavities (the qubits of the architecture).
    pub cavities: u64,
    /// Transmons attached to input/router cavities for CSWAP control.
    pub transmons: u64,
    /// Beam splitters providing intra-node nearest-neighbour swaps.
    pub beam_splitters: u64,
    /// Tunable couplers at module ports.
    pub couplers: u64,
    /// Bendable coaxial inter-module cables.
    pub coax_cables: u64,
}

impl HardwareBom {
    /// Total physical elements.
    #[must_use]
    pub fn total_components(&self) -> u64 {
        self.cavities + self.transmons + self.beam_splitters + self.couplers + self.coax_cables
    }
}

/// The modular floorplan of a Fat-Tree QRAM: one module per tree node.
///
/// # Examples
///
/// ```
/// use qram_arch::ModularPlan;
/// use qram_metrics::Capacity;
///
/// let plan = ModularPlan::new(Capacity::new(32)?);
/// assert_eq!(plan.module_count(), 31);
/// // Inter-module cable count: n at the root + (n−i−1) wires per
/// // parent→child link.
/// assert!(plan.bom().coax_cables > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModularPlan {
    capacity: Capacity,
}

impl ModularPlan {
    /// Creates the modular plan for a capacity.
    #[must_use]
    pub fn new(capacity: Capacity) -> Self {
        ModularPlan { capacity }
    }

    /// The capacity.
    #[must_use]
    pub fn capacity(&self) -> Capacity {
        self.capacity
    }

    /// Number of modules — one per tree node, `N − 1`.
    #[must_use]
    pub fn module_count(&self) -> u64 {
        self.capacity.get() - 1
    }

    /// Cavity count inside the module at tree level `i` (which hosts
    /// `R = n − i` routers): `2R` input/router cavities plus `2(R − 1)`
    /// output cavities.
    ///
    /// # Panics
    ///
    /// Panics if `level ≥ n`.
    #[must_use]
    pub fn cavities_in_module(&self, level: u32) -> u64 {
        let r = u64::from(TreeShape::new(self.capacity).routers_in_node(level));
        2 * r + 2 * (r - 1)
    }

    /// The full bill of materials.
    #[must_use]
    pub fn bom(&self) -> HardwareBom {
        let shape = TreeShape::new(self.capacity);
        let depth = self.capacity.address_width();
        let mut bom = HardwareBom::default();
        for level in 0..depth {
            let nodes = 1u64 << level;
            let r = u64::from(shape.routers_in_node(level));
            bom.cavities += nodes * (2 * r + 2 * (r - 1));
            // One transmon on the input cavity and one on the router cavity
            // of every router (native CSWAP, Fig. 4(c)).
            bom.transmons += nodes * 2 * r;
            // Beam splitters between horizontally adjacent routers.
            bom.beam_splitters += nodes * (r - 1);
            // Couplers: one per external port. Incoming ports = r wires from
            // the parent (n at the root); outgoing = 2(r−1) toward children
            // (leaf-level nodes wire directly to classical cells instead).
            let incoming = r;
            let outgoing = if level + 1 < depth { 2 * (r - 1) } else { 0 };
            bom.couplers += nodes * (incoming + outgoing);
        }
        // Coax cables: the root's n external escape wires, plus the
        // parent→child bundles (n − i − 1 wires each).
        bom.coax_cables += u64::from(depth);
        for level in 0..depth.saturating_sub(1) {
            let nodes = 1u64 << level;
            bom.coax_cables += nodes * 2 * u64::from(shape.wires_to_child(level));
        }
        bom
    }

    /// Physical qubits (cavities + transmons) — the quantity reported as
    /// `16N` in Table 1 (leading order).
    #[must_use]
    pub fn physical_qubits(&self) -> u64 {
        let bom = self.bom();
        bom.cavities + bom.transmons
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(n: u64) -> ModularPlan {
        ModularPlan::new(Capacity::new(n).unwrap())
    }

    #[test]
    fn module_count_is_node_count() {
        assert_eq!(plan(32).module_count(), 31);
    }

    #[test]
    fn figure_4a_node_shape() {
        // Node (1, j) of a capacity-32 QRAM: 4 routers → 8 input/router
        // cavities + 6 output cavities.
        assert_eq!(plan(32).cavities_in_module(1), 14);
    }

    #[test]
    fn leaf_level_modules_are_smallest() {
        let p = plan(64);
        let depth = 6;
        for level in 0..depth - 1 {
            assert!(p.cavities_in_module(level) > p.cavities_in_module(level + 1));
        }
        // A leaf-level node has a single router: 2 cavities + 0 outputs.
        assert_eq!(p.cavities_in_module(depth - 1), 2);
    }

    #[test]
    fn physical_qubits_scale_like_table_1() {
        // Cavities + transmons ≈ 6 per router × 2N routers ≈ 12N; the
        // Table-1 constant 16N additionally counts couplers. Verify the
        // leading behaviour: between 8N and 16N, linear in N.
        for n in [64u64, 256, 1024] {
            let q = plan(n).physical_qubits();
            assert!(
                q >= 8 * n && q <= 16 * n,
                "N={n}: physical qubits {q} outside [8N, 16N]"
            );
        }
        let r = plan(2048).physical_qubits() as f64 / plan(1024).physical_qubits() as f64;
        assert!((r - 2.0).abs() < 0.05, "not linear: ratio {r}");
    }

    #[test]
    fn coax_cables_match_wire_formula() {
        // Total inter-node wires: n (root) + Σ_{i<n−1} 2^{i+1} (n−i−1).
        let p = plan(32);
        let n = 5u64;
        let mut expect = n;
        for i in 0..4u64 {
            expect += (1u64 << (i + 1)) * (n - i - 1);
        }
        assert_eq!(p.bom().coax_cables, expect);
    }

    #[test]
    fn bom_totals_are_consistent() {
        let bom = plan(16).bom();
        assert_eq!(
            bom.total_components(),
            bom.cavities + bom.transmons + bom.beam_splitters + bom.couplers + bom.coax_cables
        );
        assert!(bom.transmons < bom.cavities);
    }
}
