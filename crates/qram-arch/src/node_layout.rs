//! Intra-node wiring of a multiplexed Fat-Tree node (§4.2, Fig. 4).
//!
//! A node `(i, j)` packs `R = n − i` routers side by side. Each of the
//! first `R − 1` routers sends one output wire toward the left child and
//! one toward the right child (the last router has no outputs and serves as
//! transient storage). Routing every L and R wire in a single layer forces
//! wire crossings; the paper's key observation is that the connectivity
//! splits into two *planar* subsets — all L wires on one plane, all R wires
//! on the other — implementable with a thickness-2 chip and TSVs.

use crate::geometry::{crossing_count, Point, Segment};

/// Which chip plane a wire is assigned to in the on-chip design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Plane {
    /// The plane carrying wires toward the left child.
    Left,
    /// The plane carrying wires toward the right child.
    Right,
}

/// The geometric wiring plan of one multiplexed Fat-Tree node.
///
/// The node occupies the unit square: input ports on the top edge, routers
/// on the middle row, left-child ports on the bottom-left, right-child
/// ports on the bottom-right.
///
/// # Examples
///
/// ```
/// use qram_arch::NodeLayout;
///
/// // A root node of a capacity-32 QRAM has 5 routers.
/// let node = NodeLayout::new(5);
/// // Forcing all output wires into one layer crosses wires...
/// assert!(node.single_plane_crossings() > 0);
/// // ...but the bi-planar split of §4.2.2 is crossing-free.
/// assert_eq!(node.biplanar_crossings(), 0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NodeLayout {
    routers: u32,
}

impl NodeLayout {
    /// Lays out a node with `routers ≥ 1` multiplexed routers.
    ///
    /// # Panics
    ///
    /// Panics if `routers == 0`.
    #[must_use]
    pub fn new(routers: u32) -> Self {
        assert!(routers >= 1, "a node has at least one router");
        NodeLayout { routers }
    }

    /// Number of multiplexed routers `R = n − i`.
    #[must_use]
    pub fn router_count(&self) -> u32 {
        self.routers
    }

    /// Number of output wires toward each child: `R − 1` (the last router
    /// is transient storage and has no outputs, §4.2.1).
    #[must_use]
    pub fn output_wires_per_side(&self) -> u32 {
        self.routers - 1
    }

    /// Position of router `r` on the middle row.
    #[must_use]
    pub fn router_position(&self, r: u32) -> Point {
        assert!(r < self.routers);
        let w = 1.0 / f64::from(self.routers);
        Point::new((f64::from(r) + 0.5) * w, 0.5)
    }

    /// Position of input port `r` on the top edge (directly above its
    /// router, so input wiring is vertical and crossing-free).
    #[must_use]
    pub fn input_port(&self, r: u32) -> Point {
        let p = self.router_position(r);
        Point::new(p.x, 1.0)
    }

    /// Position of the `r`-th left-child port on the bottom-left edge.
    #[must_use]
    pub fn left_port(&self, r: u32) -> Point {
        assert!(r < self.output_wires_per_side());
        let w = 0.5 / f64::from(self.output_wires_per_side());
        Point::new((f64::from(r) + 0.5) * w, 0.0)
    }

    /// Position of the `r`-th right-child port on the bottom-right edge.
    #[must_use]
    pub fn right_port(&self, r: u32) -> Point {
        assert!(r < self.output_wires_per_side());
        let w = 0.5 / f64::from(self.output_wires_per_side());
        Point::new(0.5 + (f64::from(r) + 0.5) * w, 0.0)
    }

    /// The input wires (top ports straight down to routers).
    #[must_use]
    pub fn input_wires(&self) -> Vec<Segment> {
        (0..self.routers)
            .map(|r| Segment::new(self.input_port(r), self.router_position(r)))
            .collect()
    }

    /// The output wires of one plane: router `r` to the `r`-th child port
    /// on that side (order-preserving, hence planar).
    #[must_use]
    pub fn output_wires(&self, plane: Plane) -> Vec<Segment> {
        (0..self.output_wires_per_side())
            .map(|r| {
                let port = match plane {
                    Plane::Left => self.left_port(r),
                    Plane::Right => self.right_port(r),
                };
                Segment::new(self.router_position(r), port)
            })
            .collect()
    }

    /// Wire crossings when *all* wires (inputs + both output sides) share a
    /// single layer — positive for `R ≥ 3`, motivating the two-plane chip.
    #[must_use]
    pub fn single_plane_crossings(&self) -> usize {
        let mut wires = self.input_wires();
        wires.extend(self.output_wires(Plane::Left));
        wires.extend(self.output_wires(Plane::Right));
        crossing_count(&wires)
    }

    /// Wire crossings under the bi-planar decomposition: inputs + L wires
    /// on one plane, R wires on the other. Zero for every node size — the
    /// claim of §4.2.2.
    #[must_use]
    pub fn biplanar_crossings(&self) -> usize {
        let mut plane_a = self.input_wires();
        plane_a.extend(self.output_wires(Plane::Left));
        let plane_b = self.output_wires(Plane::Right);
        crossing_count(&plane_a) + crossing_count(&plane_b)
    }

    /// Beam-splitter links between horizontally adjacent routers
    /// (`R − 1` of them), providing the nearest-neighbour connectivity the
    /// local swap steps need (§4.2.1).
    #[must_use]
    pub fn beam_splitter_count(&self) -> u32 {
        self.routers - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn biplanar_split_is_always_crossing_free() {
        for routers in 1..=24 {
            let node = NodeLayout::new(routers);
            assert_eq!(node.biplanar_crossings(), 0, "R={routers}");
        }
    }

    #[test]
    fn single_plane_crossings_appear_from_three_routers() {
        assert_eq!(NodeLayout::new(1).single_plane_crossings(), 0);
        assert_eq!(NodeLayout::new(2).single_plane_crossings(), 0);
        for routers in 3..=16 {
            assert!(
                NodeLayout::new(routers).single_plane_crossings() > 0,
                "R={routers}"
            );
        }
    }

    #[test]
    fn crossings_grow_with_multiplexing() {
        let c4 = NodeLayout::new(4).single_plane_crossings();
        let c8 = NodeLayout::new(8).single_plane_crossings();
        assert!(c8 > c4);
    }

    #[test]
    fn wire_counts_match_figure_4a() {
        // Node (1, j) of a capacity-32 QRAM: 4 routers, 4 input wires,
        // 3 output wires per side.
        let node = NodeLayout::new(4);
        assert_eq!(node.input_wires().len(), 4);
        assert_eq!(node.output_wires(Plane::Left).len(), 3);
        assert_eq!(node.output_wires(Plane::Right).len(), 3);
        assert_eq!(node.beam_splitter_count(), 3);
    }

    #[test]
    fn ports_are_ordered_and_separated() {
        let node = NodeLayout::new(5);
        for r in 0..3 {
            assert!(node.left_port(r).x < node.left_port(r + 1).x);
            assert!(node.right_port(r).x < node.right_port(r + 1).x);
        }
        // Left ports stay in the left half, right ports in the right half.
        for r in 0..4 {
            assert!(node.left_port(r).x < 0.5);
            assert!(node.right_port(r).x > 0.5);
        }
    }

    #[test]
    #[should_panic(expected = "at least one router")]
    fn zero_router_node_rejected() {
        let _ = NodeLayout::new(0);
    }
}
