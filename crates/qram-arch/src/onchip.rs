//! The on-chip two-plane (thickness-2) implementation of §4.2.2, Fig. 4(d,e).
//!
//! Each node resides fully in one plane; a router's L output leads to the
//! *opposite* plane and its R output stays in the *same* plane, so the
//! plane of a node is determined by the number of left turns on its
//! root-to-node path. Inter-plane hops are realized with
//! Through-Substrate Vias (TSVs).

use qram_core::{NodeId, TreeShape};
use qram_metrics::Capacity;

/// The plane assignment of a capacity-`N` on-chip Fat-Tree QRAM.
///
/// # Examples
///
/// ```
/// use qram_arch::OnChipPlan;
/// use qram_metrics::Capacity;
///
/// let plan = OnChipPlan::new(Capacity::new(32)?);
/// // The alternating-plane rule keeps every parent→right-child wire
/// // in-plane, and sends every parent→left-child wire through a TSV.
/// assert_eq!(plan.tsv_count(), 32 / 2 - 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OnChipPlan {
    capacity: Capacity,
}

impl OnChipPlan {
    /// Creates the plan for a capacity.
    #[must_use]
    pub fn new(capacity: Capacity) -> Self {
        OnChipPlan { capacity }
    }

    /// The capacity.
    #[must_use]
    pub fn capacity(&self) -> Capacity {
        self.capacity
    }

    /// The plane (0 or 1) hosting a node: the root sits in plane 0; taking
    /// a left branch flips planes, a right branch stays.
    ///
    /// # Panics
    ///
    /// Panics if the node is outside the tree.
    #[must_use]
    pub fn plane_of(&self, node: NodeId) -> u8 {
        assert!(
            node.level < self.capacity.address_width(),
            "node {node} outside tree"
        );
        // A node's path from the root is encoded in its index bits
        // (MSB-first). Left turns are 0-bits; count them.
        let right_turns = node.index.count_ones().min(node.level);
        let left_turns = node.level - right_turns;
        u8::try_from(left_turns % 2).expect("parity is 0 or 1")
    }

    /// Number of TSV (inter-plane) connections: one per parent→left-child
    /// wire among router nodes, `N/2 − 1` in total.
    #[must_use]
    pub fn tsv_count(&self) -> u64 {
        // Left children exist at levels 1..n−1: Σ_{i=1}^{n−1} 2^{i−1}
        // = 2^{n−1} − 1.
        self.capacity.get() / 2 - 1
    }

    /// Verifies the defining property: every right-child edge is in-plane
    /// and every left-child edge crosses planes.
    #[must_use]
    pub fn verify_alternation(&self) -> bool {
        let shape = TreeShape::new(self.capacity);
        let ok = shape.nodes().all(|node| {
            if node.level + 1 >= self.capacity.address_width() {
                return true;
            }
            let here = self.plane_of(node);
            self.plane_of(node.right_child()) == here
                && self.plane_of(node.left_child()) == 1 - here
        });
        ok
    }

    /// Nodes hosted on each plane, `(plane0, plane1)`.
    #[must_use]
    pub fn node_split(&self) -> (u64, u64) {
        let shape = TreeShape::new(self.capacity);
        let plane1 = shape
            .nodes()
            .filter(|&node| self.plane_of(node) == 1)
            .count() as u64;
        (shape.node_count() - plane1, plane1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(n: u64) -> OnChipPlan {
        OnChipPlan::new(Capacity::new(n).unwrap())
    }

    #[test]
    fn root_is_plane_zero() {
        assert_eq!(plan(8).plane_of(NodeId::ROOT), 0);
    }

    #[test]
    fn alternation_holds_for_all_capacities() {
        for n in [4u64, 8, 16, 64, 256, 1024] {
            assert!(plan(n).verify_alternation(), "N={n}");
        }
    }

    #[test]
    fn left_child_flips_right_child_stays() {
        let p = plan(16);
        let l = NodeId::ROOT.left_child();
        let r = NodeId::ROOT.right_child();
        assert_eq!(p.plane_of(l), 1);
        assert_eq!(p.plane_of(r), 0);
        assert_eq!(p.plane_of(l.left_child()), 0);
        assert_eq!(p.plane_of(l.right_child()), 1);
    }

    #[test]
    fn tsv_count_matches_left_edges() {
        for n in [4u64, 8, 32, 256] {
            let p = plan(n);
            // Count left-child edges among router nodes directly.
            let shape = TreeShape::new(p.capacity());
            let depth = p.capacity().address_width();
            let left_edges = shape.nodes().filter(|node| node.level + 1 < depth).count() as u64;
            assert_eq!(p.tsv_count(), left_edges, "N={n}");
        }
    }

    #[test]
    fn planes_are_roughly_balanced() {
        let (p0, p1) = plan(1024).node_split();
        assert_eq!(p0 + p1, 1023);
        let imbalance = (p0 as f64 - p1 as f64).abs() / 1023.0;
        assert!(imbalance < 0.2, "plane imbalance {imbalance}");
    }

    #[test]
    #[should_panic(expected = "outside tree")]
    fn foreign_node_panics() {
        let _ = plan(4).plane_of(NodeId::new(7, 0));
    }
}
