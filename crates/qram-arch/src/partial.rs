//! Ablation: partially multiplexed Fat-Trees.
//!
//! A full Fat-Tree duplicates the level-`i` routers `n − i` times. This
//! module studies the design space *between* bucket-brigade (no
//! duplication) and the full Fat-Tree by capping the number of router
//! copies per node at `c`: level `i` hosts `min(c, n − i)` routers. The
//! cap trades query parallelism (≤ `c` pipelined queries) against qubit
//! overhead — quantifying the paper's claim (§3) that a "moderate, small
//! constant factor increase" in qubits buys immense parallelism.

use qram_metrics::{Bandwidth, Capacity, Layers, QueryRate, SpaceTimeVolume, TimingModel};

use qram_core::latency;

/// A Fat-Tree with at most `copies_cap` router copies per node.
///
/// `copies_cap = 1` degenerates to a bucket-brigade QRAM;
/// `copies_cap ≥ n` is the full Fat-Tree.
///
/// # Examples
///
/// ```
/// use qram_arch::PartialFatTree;
/// use qram_metrics::{Capacity, TimingModel};
///
/// let capacity = Capacity::new(1024)?;
/// let bb = PartialFatTree::new(capacity, 1);
/// let half = PartialFatTree::new(capacity, 5);
/// let full = PartialFatTree::new(capacity, 10);
/// assert!(bb.qubit_count() < half.qubit_count());
/// assert!(half.qubit_count() < full.qubit_count());
/// // Parallelism grows with the cap...
/// assert_eq!(half.query_parallelism(), 5);
/// // ...while the qubit overhead stays below 2x of bucket-brigade.
/// assert!(full.qubit_count() < 2 * bb.qubit_count());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartialFatTree {
    capacity: Capacity,
    copies_cap: u32,
}

impl PartialFatTree {
    /// Physical elements per router (see `CostModel::qubit_count`).
    pub const QUBITS_PER_ROUTER: u64 = 8;

    /// Creates a capped Fat-Tree.
    ///
    /// # Panics
    ///
    /// Panics if `copies_cap == 0`.
    #[must_use]
    pub fn new(capacity: Capacity, copies_cap: u32) -> Self {
        assert!(copies_cap >= 1, "at least one router per node");
        PartialFatTree {
            capacity,
            copies_cap,
        }
    }

    /// The memory capacity.
    #[must_use]
    pub fn capacity(&self) -> Capacity {
        self.capacity
    }

    /// The per-node router cap `c`.
    #[must_use]
    pub fn copies_cap(&self) -> u32 {
        self.copies_cap
    }

    /// The effective cap (`min(c, n)`) — caps above the tree depth add
    /// nothing.
    #[must_use]
    pub fn effective_cap(&self) -> u32 {
        self.copies_cap.min(self.capacity.address_width())
    }

    /// Total routers: `Σᵢ min(c, n − i) · 2^i`.
    #[must_use]
    pub fn router_count(&self) -> u64 {
        let n = self.capacity.address_width();
        let c = self.copies_cap;
        (0..n)
            .map(|i| u64::from((n - i).min(c)) * (1u64 << i))
            .sum()
    }

    /// Total qubits (8 per router, matching Table 1's constants).
    #[must_use]
    pub fn qubit_count(&self) -> u64 {
        Self::QUBITS_PER_ROUTER * self.router_count()
    }

    /// Queries that can be pipelined: one per available sub-QRAM lane,
    /// `min(c, n)`.
    #[must_use]
    pub fn query_parallelism(&self) -> u32 {
        self.effective_cap()
    }

    /// Single-query latency: the full Fat-Tree stream when multiplexed
    /// (`c ≥ 2`), the bucket-brigade stream at `c = 1` (no swap steps
    /// needed).
    #[must_use]
    pub fn single_query_latency(&self, timing: &TimingModel) -> Layers {
        if self.copies_cap == 1 {
            latency::bb_single_query(self.capacity, timing)
        } else {
            latency::fat_tree_single_query(self.capacity, timing)
        }
    }

    /// Amortized per-query latency at full pipeline load: `t₁ / min(c, n)`
    /// — interpolating bucket-brigade (`c = 1`: t₁) and the full Fat-Tree
    /// (`c = n`: the 8.25-layer pipeline interval).
    #[must_use]
    pub fn amortized_query_latency(&self, timing: &TimingModel) -> Layers {
        let c = self.effective_cap();
        if c == self.capacity.address_width() {
            latency::fat_tree_pipeline_interval(timing)
        } else {
            self.single_query_latency(timing) / f64::from(c)
        }
    }

    /// Sustained bandwidth at bus width 1.
    #[must_use]
    pub fn bandwidth(&self, timing: &TimingModel) -> Bandwidth {
        let seconds = timing.layers_to_seconds(self.amortized_query_latency(timing));
        QueryRate::new(1.0 / seconds).bandwidth(1)
    }

    /// Space-time volume per query.
    #[must_use]
    pub fn spacetime_volume_per_query(&self, timing: &TimingModel) -> SpaceTimeVolume {
        SpaceTimeVolume::new(self.qubit_count() as f64 * self.amortized_query_latency(timing).get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cap(n: u64) -> Capacity {
        Capacity::new(n).unwrap()
    }

    fn timing() -> TimingModel {
        TimingModel::paper_default()
    }

    #[test]
    fn endpoints_match_bb_and_fat_tree() {
        let c = cap(1024);
        let bb = PartialFatTree::new(c, 1);
        assert_eq!(bb.router_count(), 1023);
        assert_eq!(bb.qubit_count(), 8 * 1023);
        assert_eq!(bb.query_parallelism(), 1);
        assert!((bb.amortized_query_latency(&timing()).get() - 80.125).abs() < 1e-9);

        let full = PartialFatTree::new(c, 10);
        assert_eq!(full.router_count(), 2 * 1024 - 2 - 10);
        assert_eq!(full.query_parallelism(), 10);
        assert!((full.amortized_query_latency(&timing()).get() - 8.25).abs() < 1e-9);
    }

    #[test]
    fn cap_above_depth_changes_nothing() {
        let c = cap(256);
        let full = PartialFatTree::new(c, 8);
        let over = PartialFatTree::new(c, 100);
        assert_eq!(full.router_count(), over.router_count());
        assert_eq!(full.query_parallelism(), over.query_parallelism());
    }

    #[test]
    fn qubits_grow_monotonically_but_stay_below_2x() {
        let c = cap(1 << 12);
        let base = PartialFatTree::new(c, 1).qubit_count();
        let mut prev = 0;
        for cap_c in 1..=12u32 {
            let q = PartialFatTree::new(c, cap_c).qubit_count();
            assert!(q > prev);
            assert!(q <= 2 * base, "cap {cap_c}: {q} vs 2x base {base}");
            prev = q;
        }
    }

    #[test]
    fn parallelism_per_marginal_qubit_is_a_bargain() {
        // Doubling qubits (c: 1 → n) multiplies bandwidth by ~n·(t1_bb/t1_ft).
        let c = cap(1024);
        let t = timing();
        let bb = PartialFatTree::new(c, 1);
        let full = PartialFatTree::new(c, 10);
        let qubit_ratio = full.qubit_count() as f64 / bb.qubit_count() as f64;
        let bandwidth_ratio = full.bandwidth(&t).get() / bb.bandwidth(&t).get();
        assert!(qubit_ratio < 2.0);
        assert!(bandwidth_ratio > 9.0, "bandwidth ratio {bandwidth_ratio}");
    }

    #[test]
    fn volume_per_query_improves_with_cap() {
        let c = cap(1024);
        let t = timing();
        let mut prev = f64::INFINITY;
        for cap_c in 1..=10u32 {
            // Skip c=2..: latency model switches at c=2; volume still must
            // decrease monotonically beyond that point.
            let v = PartialFatTree::new(c, cap_c)
                .spacetime_volume_per_query(&t)
                .get();
            if cap_c >= 2 {
                assert!(v < prev, "cap {cap_c}: {v} vs {prev}");
            }
            prev = v;
        }
    }

    #[test]
    #[should_panic(expected = "at least one router")]
    fn zero_cap_rejected() {
        let _ = PartialFatTree::new(cap(8), 0);
    }
}
