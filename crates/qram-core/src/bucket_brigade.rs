//! The Bucket-Brigade QRAM baseline (Giovannetti et al. 2008; §2.2).

use std::sync::Arc;

use qram_metrics::{Capacity, Layers, TimingModel};

use crate::exec::{compiled_query, interned_layers, CompiledQuery, LayerArch};
use crate::latency;
use crate::model::QramModel;
use crate::query_ops::{bb_query_layers, bb_stage_finish_layers, QueryLayer};
use crate::tree::TreeShape;

/// A Bucket-Brigade QRAM of capacity `N`: a binary tree of quantum routers
/// serving one query at a time in `O(log N)` circuit layers.
///
/// The query-serving surface lives on the [`QramModel`] trait, shared with
/// [`FatTreeQram`](crate::FatTreeQram).
///
/// # Examples
///
/// ```
/// use qram_core::{BucketBrigadeQram, QramModel};
/// use qram_metrics::Capacity;
/// use qsim::branch::{AddressState, ClassicalMemory};
///
/// let qram = BucketBrigadeQram::new(Capacity::new(8)?);
/// assert_eq!(qram.single_query_layers_integer(), 25); // Fig. 2(a)
///
/// let memory = ClassicalMemory::from_words(1, &[0, 1, 1, 0, 1, 0, 0, 1])?;
/// let address = AddressState::uniform(3, &[1, 4])?;
/// let outcome = qram.execute_query(&memory, &address)?;
/// assert_eq!(outcome.data_for(1), Some(1));
/// assert_eq!(outcome.data_for(4), Some(1));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketBrigadeQram {
    capacity: Capacity,
}

impl BucketBrigadeQram {
    /// Creates a bucket-brigade QRAM of the given capacity.
    #[must_use]
    pub fn new(capacity: Capacity) -> Self {
        BucketBrigadeQram { capacity }
    }

    /// The static tree geometry.
    #[must_use]
    pub fn shape(&self) -> TreeShape {
        TreeShape::new(self.capacity)
    }

    /// The stage finish times of Fig. 2(a).
    #[must_use]
    pub fn stage_finish_layers(&self) -> Vec<u32> {
        bb_stage_finish_layers(self.capacity.address_width())
    }
}

impl QramModel for BucketBrigadeQram {
    fn name(&self) -> &'static str {
        "Bucket-Brigade"
    }

    fn capacity(&self) -> Capacity {
        self.capacity
    }

    /// Number of quantum routers: `N − 1`.
    fn router_count(&self) -> u64 {
        self.shape().bucket_brigade_router_count()
    }

    /// A bucket-brigade QRAM serves exactly one query at a time (the root
    /// is the sole escape route, §3).
    fn query_parallelism(&self) -> u32 {
        1
    }

    /// The layered instruction stream of one query (Alg. 2 + CG + Alg. 3).
    fn query_layers(&self) -> Vec<QueryLayer> {
        bb_query_layers(self.address_width())
    }

    /// The interned per-capacity stream: generated once per process,
    /// shared by every batch and fidelity estimate at this capacity.
    fn interned_query_layers(&self) -> Arc<[QueryLayer]> {
        interned_layers(LayerArch::BucketBrigade, self.address_width())
    }

    /// The interned compiled plan: the stream is partially evaluated once
    /// per capacity, collapsing per-branch execution to one memory read.
    fn compiled_query(&self) -> Option<Arc<CompiledQuery>> {
        Some(compiled_query(
            LayerArch::BucketBrigade,
            self.address_width(),
        ))
    }

    /// Integer circuit-layer count of a single query: `8n + 1`.
    fn single_query_layers_integer(&self) -> u64 {
        latency::bb_single_query_integer(self.capacity)
    }

    /// Weighted single-query latency (`8n + 0.125` with paper defaults).
    fn single_query_latency(&self, timing: &TimingModel) -> Layers {
        latency::bb_single_query(self.capacity, timing)
    }

    /// Query `q` of a back-to-back batch spans layers
    /// `[q(8n+1) + 1, (q+1)(8n+1)]` and retrieves at `q(8n+1) + 4n + 1`
    /// (the CG stage of Fig. 2(a)).
    fn retrieval_layer(&self, query_index: usize) -> u64 {
        let n = u64::from(self.address_width());
        query_index as u64 * (8 * n + 1) + 4 * n + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::branch::{AddressState, ClassicalMemory};

    fn qram8() -> BucketBrigadeQram {
        BucketBrigadeQram::new(Capacity::new(8).unwrap())
    }

    #[test]
    fn figure_2a_numbers() {
        let q = qram8();
        assert_eq!(q.single_query_layers_integer(), 25);
        assert_eq!(q.stage_finish_layers(), vec![4, 8, 12, 13, 17, 21, 25]);
        assert_eq!(q.router_count(), 7);
        assert_eq!(q.query_parallelism(), 1);
        assert_eq!(q.name(), "Bucket-Brigade");
    }

    #[test]
    fn executes_full_superposition_correctly() {
        let q = qram8();
        let mem = ClassicalMemory::from_words(1, &[1, 1, 0, 0, 1, 0, 1, 0]).unwrap();
        let addr = AddressState::full_superposition(3);
        let out = q.execute_query(&mem, &addr).unwrap();
        assert!((out.fidelity(&mem.ideal_query(&addr)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn multibit_bus_words() {
        let q = BucketBrigadeQram::new(Capacity::new(4).unwrap());
        let mem = ClassicalMemory::from_words(8, &[200, 13, 0, 255]).unwrap();
        let addr = AddressState::uniform(2, &[0, 3]).unwrap();
        let out = q.execute_query(&mem, &addr).unwrap();
        assert_eq!(out.data_for(0), Some(200));
        assert_eq!(out.data_for(3), Some(255));
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn mismatched_memory_panics() {
        let q = qram8();
        let mem = ClassicalMemory::zeros(4);
        let addr = AddressState::classical(2, 0).unwrap();
        let _ = q.execute_query(&mem, &addr);
    }
}
