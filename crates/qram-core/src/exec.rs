//! Functional execution of query instruction streams.
//!
//! For a fixed address, every router in a bucket-brigade tree is in a
//! definite classical state, so a query over a superposition of addresses
//! decomposes into independent *branches* (see `qsim::branch`). This module
//! walks the layered instruction stream of `query_ops` for each branch,
//! validating every precondition (a `STORE` must find its address qubit at
//! the right input, routers must be waiting, the bus must reach the leaves
//! before retrieval, and the tree must be returned to the all-`|W⟩` state),
//! and produces the resulting [`QueryOutcome`] together with per-class gate
//! counts used by the fidelity analysis (§8.1).
//!
//! Two hot-path services live here alongside the executor:
//!
//! * [`interned_layers`] — a process-wide intern table of per-capacity
//!   instruction streams, so batch execution and the fidelity estimators
//!   stop re-generating (and re-allocating) the same layered stream on
//!   every call.
//! * Branch-parallel execution (the `parallel` cargo feature) — branches
//!   of a superposed query are independent `BranchMachine` runs, so
//!   [`execute_layers`] fans them out across scoped threads once the
//!   branch count crosses [`PARALLEL_BRANCH_THRESHOLD`].

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

use qsim::branch::{AddressState, ClassicalMemory, QueryOutcome};

use crate::ops::{GateClass, Op, QubitTag};
use crate::query_ops::{bb_query_layers, fat_tree_query_layers, QueryLayer};

/// Gate counts per hardware class accumulated along one query branch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GateCounts {
    /// Routing CSWAPs (error rate ε₀).
    pub cswap: u64,
    /// Inter-node SWAPs: LOAD/TRANSPORT/STORE and inverses (ε₁).
    pub inter_node_swap: u64,
    /// Intra-node local SWAPs: Fat-Tree swap steps (ε₂).
    pub local_swap: u64,
    /// Classically controlled data-retrieval gates.
    pub classical: u64,
}

impl GateCounts {
    /// Total quantum gates (excluding classical retrieval gates).
    #[must_use]
    pub fn total_quantum(&self) -> u64 {
        self.cswap + self.inter_node_swap + self.local_swap
    }

    fn record(&mut self, class: GateClass, count: u64) {
        match class {
            GateClass::Cswap => self.cswap += count,
            GateClass::InterNodeSwap => self.inter_node_swap += count,
            GateClass::LocalSwap => self.local_swap += count,
            GateClass::Classical => self.classical += count,
        }
    }
}

/// An execution error: the instruction stream violated a precondition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecError {
    /// 1-based circuit layer at which the violation occurred (0 = final
    /// validation).
    pub layer: usize,
    /// The violated condition.
    pub message: String,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "layer {}: {}", self.layer, self.message)
    }
}

impl std::error::Error for ExecError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Flyer {
    tag: QubitTag,
    level: u32,
    at_output: bool,
}

/// Classical simulation of one query branch walking the instruction stream.
struct BranchMachine<'m> {
    n: u32,
    address: u64,
    memory: &'m ClassicalMemory,
    /// Per-level router state along the active path: `None` = `|W⟩`.
    routers: Vec<Option<bool>>,
    flyers: Vec<Flyer>,
    bus_data: u64,
    bus_exited: Option<u64>,
    counts: GateCounts,
}

impl<'m> BranchMachine<'m> {
    fn new(n: u32, address: u64, memory: &'m ClassicalMemory) -> Self {
        BranchMachine {
            n,
            address,
            memory,
            routers: vec![None; n as usize],
            flyers: Vec::new(),
            bus_data: 0,
            bus_exited: None,
            counts: GateCounts::default(),
        }
    }

    /// Address bit consumed at tree level `i` (MSB first).
    fn address_bit(&self, level: u32) -> bool {
        (self.address >> (self.n - 1 - level)) & 1 == 1
    }

    fn err(&self, layer: usize, message: impl Into<String>) -> ExecError {
        ExecError {
            layer,
            message: message.into(),
        }
    }

    fn find_flyer(&mut self, level: u32, at_output: bool) -> Option<usize> {
        self.flyers
            .iter()
            .position(|f| f.level == level && f.at_output == at_output)
    }

    fn apply(&mut self, layer: usize, op: Op) -> Result<(), ExecError> {
        match op {
            Op::Load(tag) => {
                if self.find_flyer(0, false).is_some() {
                    return Err(self.err(layer, format!("LOAD {tag}: root input occupied")));
                }
                self.flyers.push(Flyer {
                    tag,
                    level: 0,
                    at_output: false,
                });
                self.counts.record(GateClass::InterNodeSwap, 1);
            }
            Op::Transport(i) => {
                let idx = self.find_flyer(i - 1, true).ok_or_else(|| {
                    self.err(
                        layer,
                        format!("TRANSPORT to level {i}: no qubit at level {} output", i - 1),
                    )
                })?;
                if self.find_flyer(i, false).is_some() {
                    return Err(self.err(layer, format!("TRANSPORT to level {i}: input occupied")));
                }
                self.flyers[idx] = Flyer {
                    tag: self.flyers[idx].tag,
                    level: i,
                    at_output: false,
                };
                self.counts.record(GateClass::InterNodeSwap, 1);
            }
            Op::Route(i) => {
                let idx = self.find_flyer(i, false).ok_or_else(|| {
                    self.err(layer, format!("ROUTE level {i}: no qubit at input"))
                })?;
                if self.routers[i as usize].is_none() {
                    return Err(self.err(layer, format!("ROUTE level {i}: router still |W>")));
                }
                self.flyers[idx].at_output = true;
                self.counts.record(GateClass::Cswap, 1);
            }
            Op::Store(i) => {
                let idx = self.find_flyer(i, false).ok_or_else(|| {
                    self.err(layer, format!("STORE level {i}: no qubit at input"))
                })?;
                let tag = self.flyers[idx].tag;
                if tag != QubitTag::Address(i) {
                    return Err(self.err(
                        layer,
                        format!("STORE level {i}: qubit {tag} is not address {}", i + 1),
                    ));
                }
                if self.routers[i as usize].is_some() {
                    return Err(self.err(layer, format!("STORE level {i}: router already active")));
                }
                self.routers[i as usize] = Some(self.address_bit(i));
                self.flyers.swap_remove(idx);
                self.counts.record(GateClass::InterNodeSwap, 1);
            }
            Op::ClassicalGates => {
                let leaves = self.n - 1;
                if self.find_flyer(leaves, true).map(|i| self.flyers[i].tag) != Some(QubitTag::Bus)
                {
                    return Err(self.err(layer, "CLASSICAL-GATES: bus has not reached the leaves"));
                }
                if self.routers.iter().any(Option::is_none) {
                    return Err(self.err(layer, "CLASSICAL-GATES: address not fully loaded"));
                }
                self.bus_data ^= self.memory.read(self.address);
                self.counts.record(GateClass::Classical, 1);
            }
            Op::Unroute(i) => {
                let idx = self.find_flyer(i, true).ok_or_else(|| {
                    self.err(layer, format!("UNROUTE level {i}: no qubit at output"))
                })?;
                if self.routers[i as usize].is_none() {
                    return Err(self.err(layer, format!("UNROUTE level {i}: router still |W>")));
                }
                self.flyers[idx].at_output = false;
                self.counts.record(GateClass::Cswap, 1);
            }
            Op::Untransport(i) => {
                let idx = self.find_flyer(i, false).ok_or_else(|| {
                    self.err(
                        layer,
                        format!("UNTRANSPORT from level {i}: no qubit at input"),
                    )
                })?;
                if self.find_flyer(i - 1, true).is_some() {
                    return Err(self.err(
                        layer,
                        format!(
                            "UNTRANSPORT from level {i}: level {} output occupied",
                            i - 1
                        ),
                    ));
                }
                self.flyers[idx] = Flyer {
                    tag: self.flyers[idx].tag,
                    level: i - 1,
                    at_output: true,
                };
                self.counts.record(GateClass::InterNodeSwap, 1);
            }
            Op::Unstore(i) => {
                let stored = self.routers[i as usize]
                    .ok_or_else(|| self.err(layer, format!("UNSTORE level {i}: router is |W>")))?;
                if stored != self.address_bit(i) {
                    return Err(self.err(layer, format!("UNSTORE level {i}: router bit corrupted")));
                }
                if self.find_flyer(i, false).is_some() {
                    return Err(self.err(layer, format!("UNSTORE level {i}: input occupied")));
                }
                self.routers[i as usize] = None;
                self.flyers.push(Flyer {
                    tag: QubitTag::Address(i),
                    level: i,
                    at_output: false,
                });
                self.counts.record(GateClass::InterNodeSwap, 1);
            }
            Op::Unload(tag) => {
                let idx = self.find_flyer(0, false).ok_or_else(|| {
                    self.err(layer, format!("UNLOAD {tag}: no qubit at root input"))
                })?;
                let found = self.flyers[idx].tag;
                if found != tag {
                    return Err(self.err(layer, format!("UNLOAD {tag}: found {found} instead")));
                }
                self.flyers.swap_remove(idx);
                if tag == QubitTag::Bus {
                    self.bus_exited = Some(self.bus_data);
                }
                self.counts.record(GateClass::InterNodeSwap, 1);
            }
            Op::SwapStepI | Op::SwapStepII => {
                // A local swap moves the query's stored router qubits and
                // in-flight qubits between adjacent sub-QRAM copies: one
                // intra-node SWAP per qubit involved.
                let involved =
                    self.routers.iter().filter(|r| r.is_some()).count() + self.flyers.len();
                self.counts.record(GateClass::LocalSwap, involved as u64);
            }
        }
        Ok(())
    }

    fn finish(self, total_layers: usize) -> Result<(u64, GateCounts), ExecError> {
        if let Some(router) = self.routers.iter().position(Option::is_some) {
            return Err(ExecError {
                layer: total_layers,
                message: format!("router at level {router} not reverted to |W>"),
            });
        }
        if !self.flyers.is_empty() {
            return Err(ExecError {
                layer: total_layers,
                message: format!("{} qubit(s) still in flight", self.flyers.len()),
            });
        }
        let data = self.bus_exited.ok_or(ExecError {
            layer: total_layers,
            message: "bus never exited the tree".to_owned(),
        })?;
        Ok((data, self.counts))
    }
}

/// The result of executing a query instruction stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Execution {
    /// The entangled address–bus output state (Eq. 1).
    pub outcome: QueryOutcome,
    /// Gate counts along one branch (identical across branches).
    pub gate_counts: GateCounts,
}

/// The architectures whose instruction streams are globally interned —
/// the key space of [`interned_layers`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerArch {
    /// Bucket-brigade stream ([`bb_query_layers`]).
    BucketBrigade,
    /// Fat-Tree stream ([`fat_tree_query_layers`]).
    FatTree,
}

/// The per-capacity single-query instruction stream of `arch`, interned in
/// a process-wide table: the first call for an `(arch, n)` pair generates
/// the layered stream once, every later call returns a cheap [`Arc`]
/// clone. Batch execution and the fidelity estimators call this through
/// [`QramModel::interned_query_layers`], so the stream is no longer
/// re-allocated per query or per Monte-Carlo estimate.
///
/// Streams are immutable and small (`O(log² N)` ops), so the table is
/// never evicted; with capacities up to `2^20` it holds at most 40
/// entries per process.
///
/// [`QramModel::interned_query_layers`]: crate::QramModel::interned_query_layers
///
/// # Panics
///
/// Panics if `n == 0` (no zero-width address registers).
#[must_use]
pub fn interned_layers(arch: LayerArch, n: u32) -> Arc<[QueryLayer]> {
    type InternTable = Mutex<HashMap<(LayerArch, u32), Arc<[QueryLayer]>>>;
    static TABLE: OnceLock<InternTable> = OnceLock::new();
    let table = TABLE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = table.lock().expect("layer intern table poisoned");
    Arc::clone(map.entry((arch, n)).or_insert_with(|| {
        match arch {
            LayerArch::BucketBrigade => bb_query_layers(n),
            LayerArch::FatTree => fat_tree_query_layers(n),
        }
        .into()
    }))
}

/// Data word and gate counts of one completed branch, or the violation
/// that aborted it.
type BranchResult = Result<(u64, GateCounts), ExecError>;

/// Runs one branch (a fixed classical address) through the full stream.
fn run_branch(
    n: u32,
    address: u64,
    layers: &[QueryLayer],
    memory: &ClassicalMemory,
) -> BranchResult {
    let mut machine = BranchMachine::new(n, address, memory);
    for (layer_idx, layer) in layers.iter().enumerate() {
        for &op in &layer.ops {
            machine.apply(layer_idx + 1, op)?;
        }
    }
    machine.finish(layers.len())
}

/// Branch count below which [`execute_layers`] stays sequential even with
/// the `parallel` feature enabled: spawning scoped threads costs a few
/// microseconds, which only pays for itself once each worker gets a
/// meaningful slice of branches.
pub const PARALLEL_BRANCH_THRESHOLD: usize = 64;

/// Worker threads used by branch-parallel execution: the
/// `QRAM_NUM_THREADS` environment variable when set (useful for A/B
/// speedup measurements), otherwise [`std::thread::available_parallelism`].
/// Read once per process and cached — changing the variable after the
/// first dispatch has no effect, and the hot path never touches the
/// (lock-guarded, and on glibc mutation-unsafe) process environment again.
#[cfg(feature = "parallel")]
pub(crate) fn parallel_worker_count() -> usize {
    static WORKERS: OnceLock<usize> = OnceLock::new();
    *WORKERS.get_or_init(|| {
        std::env::var("QRAM_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
            })
    })
}

/// Executes a single-query instruction stream over an address superposition
/// against a classical memory.
///
/// With the `parallel` cargo feature enabled, superpositions of at least
/// [`PARALLEL_BRANCH_THRESHOLD`] branches fan out across scoped worker
/// threads (`execute_layers_parallel`, only compiled with the feature);
/// otherwise (and always without the feature) execution is sequential.
/// Both paths run the identical
/// per-branch machine and combine branches in address order, so the
/// returned [`Execution`] — including which [`ExecError`] surfaces when a
/// stream is malformed — is bit-for-bit independent of the path taken.
///
/// # Errors
///
/// Returns an [`ExecError`] if the stream violates any router/qubit
/// precondition or fails to restore the tree to the all-`|W⟩` state.
///
/// # Panics
///
/// Panics if the address width of `address` does not match the memory.
pub fn execute_layers(
    layers: &[QueryLayer],
    memory: &ClassicalMemory,
    address: &AddressState,
) -> Result<Execution, ExecError> {
    #[cfg(feature = "parallel")]
    {
        if address.num_branches() >= PARALLEL_BRANCH_THRESHOLD && parallel_worker_count() > 1 {
            return execute_layers_parallel(layers, memory, address);
        }
    }
    execute_layers_sequential(layers, memory, address)
}

/// [`execute_layers`] pinned to the sequential path — the reference
/// implementation the parallel path is property-tested against, and the
/// baseline side of the `parallel_execution` A/B benchmark.
///
/// # Errors
///
/// See [`execute_layers`].
///
/// # Panics
///
/// Panics if the address width of `address` does not match the memory.
pub fn execute_layers_sequential(
    layers: &[QueryLayer],
    memory: &ClassicalMemory,
    address: &AddressState,
) -> Result<Execution, ExecError> {
    let n = memory.address_width();
    assert_eq!(
        address.address_width(),
        n,
        "address width must match memory capacity"
    );
    let mut terms = Vec::with_capacity(address.num_branches());
    let mut counts: Option<GateCounts> = None;
    for &(amp, addr) in address.iter() {
        let (data, branch_counts) = run_branch(n, addr, layers, memory)?;
        debug_assert!(
            counts.is_none() || counts == Some(branch_counts),
            "gate counts must be branch-independent"
        );
        counts = Some(branch_counts);
        terms.push((amp, addr, data));
    }
    Ok(Execution {
        outcome: QueryOutcome::from_terms(n, memory.bus_width(), terms),
        gate_counts: counts.expect("at least one branch"),
    })
}

/// [`execute_layers`] pinned to the branch-parallel path: branches are
/// split into contiguous chunks, one scoped worker thread per chunk, and
/// recombined in address order. Deterministic: the outcome, gate counts,
/// and any reported error are identical to [`execute_layers_sequential`]
/// (errors are surfaced for the earliest branch in address order, even
/// when a later chunk's worker fails first in wall-clock time).
///
/// # Errors
///
/// See [`execute_layers`].
///
/// # Panics
///
/// Panics if the address width of `address` does not match the memory.
#[cfg(feature = "parallel")]
pub fn execute_layers_parallel(
    layers: &[QueryLayer],
    memory: &ClassicalMemory,
    address: &AddressState,
) -> Result<Execution, ExecError> {
    let n = memory.address_width();
    assert_eq!(
        address.address_width(),
        n,
        "address width must match memory capacity"
    );
    let branches = address.terms();
    let workers = parallel_worker_count();
    // Contiguous chunks, at least a threshold's worth of work per worker.
    let chunk_size = branches
        .len()
        .div_ceil(workers)
        .max(PARALLEL_BRANCH_THRESHOLD / 2)
        .max(1);
    let mut results: Vec<Option<BranchResult>> = vec![None; branches.len()];
    std::thread::scope(|scope| {
        for (chunk, slots) in branches
            .chunks(chunk_size)
            .zip(results.chunks_mut(chunk_size))
        {
            scope.spawn(move || {
                for (&(_, addr), slot) in chunk.iter().zip(slots.iter_mut()) {
                    *slot = Some(run_branch(n, addr, layers, memory));
                }
            });
        }
    });
    let mut terms = Vec::with_capacity(branches.len());
    let mut counts: Option<GateCounts> = None;
    for (&(amp, addr), result) in branches.iter().zip(results) {
        let (data, branch_counts) = result.expect("every branch executed")?;
        debug_assert!(
            counts.is_none() || counts == Some(branch_counts),
            "gate counts must be branch-independent"
        );
        counts = Some(branch_counts);
        terms.push((amp, addr, data));
    }
    Ok(Execution {
        outcome: QueryOutcome::from_terms(n, memory.bus_width(), terms),
        gate_counts: counts.expect("at least one branch"),
    })
}

/// Executes a stream while injecting stochastic gate faults: for each gate
/// applied along a branch, `fault(class)` decides whether it fails. A branch
/// with any fault is marked *corrupted* (its state is assumed orthogonal to
/// the ideal output — the worst case). Returns the survival weight
/// `Σ |α|²` over uncorrupted branches; the trajectory fidelity is its
/// square.
///
/// # Errors
///
/// Returns an [`ExecError`] if the stream itself is malformed (faults do
/// not cause errors; they only corrupt branches).
pub fn execute_layers_noisy(
    layers: &[QueryLayer],
    memory: &ClassicalMemory,
    address: &AddressState,
    mut fault: impl FnMut(GateClass) -> bool,
) -> Result<f64, ExecError> {
    let n = memory.address_width();
    assert_eq!(address.address_width(), n);
    let mut survival = 0.0;
    for &(amp, addr) in address.iter() {
        let mut machine = BranchMachine::new(n, addr, memory);
        let mut before = GateCounts::default();
        let mut corrupted = false;
        for (layer_idx, layer) in layers.iter().enumerate() {
            for &op in &layer.ops {
                machine.apply(layer_idx + 1, op)?;
                let after = machine.counts;
                // Sample one fault decision per newly applied gate.
                for (class, delta) in [
                    (GateClass::Cswap, after.cswap - before.cswap),
                    (
                        GateClass::InterNodeSwap,
                        after.inter_node_swap - before.inter_node_swap,
                    ),
                    (GateClass::LocalSwap, after.local_swap - before.local_swap),
                ] {
                    for _ in 0..delta {
                        if fault(class) {
                            corrupted = true;
                        }
                    }
                }
                before = after;
            }
        }
        machine.finish(layers.len())?;
        if !corrupted {
            survival += amp.norm_sqr();
        }
    }
    Ok(survival)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query_ops::{bb_query_layers, fat_tree_query_layers};
    use qsim::branch::AddressState;

    fn memory8() -> ClassicalMemory {
        ClassicalMemory::from_words(1, &[1, 0, 0, 1, 1, 0, 1, 0]).unwrap()
    }

    #[test]
    fn bb_execution_matches_ideal_query() {
        let mem = memory8();
        let addr = AddressState::full_superposition(3);
        let layers = bb_query_layers(3);
        let exec = execute_layers(&layers, &mem, &addr).unwrap();
        let ideal = mem.ideal_query(&addr);
        assert!((exec.outcome.fidelity(&ideal) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fat_tree_execution_matches_ideal_query() {
        let mem = memory8();
        let addr = AddressState::uniform(3, &[0, 2, 7]).unwrap();
        let layers = fat_tree_query_layers(3);
        let exec = execute_layers(&layers, &mem, &addr).unwrap();
        let ideal = mem.ideal_query(&addr);
        assert!((exec.outcome.fidelity(&ideal) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn execution_works_across_capacities() {
        for n in 1..=7u32 {
            let cells: Vec<u64> = (0..(1u64 << n)).map(|i| i % 2).collect();
            let mem = ClassicalMemory::from_words(1, &cells).unwrap();
            let addr = AddressState::uniform(n, &[0, (1 << n) - 1]).unwrap();
            for layers in [bb_query_layers(n), fat_tree_query_layers(n)] {
                let exec = execute_layers(&layers, &mem, &addr).unwrap();
                assert_eq!(exec.outcome.data_for(0), Some(0), "n={n}");
                assert_eq!(
                    exec.outcome.data_for((1 << n) - 1),
                    Some(((1u64 << n) - 1) % 2),
                    "n={n}"
                );
            }
        }
    }

    #[test]
    fn gate_counts_scale_quadratically_not_linearly_in_capacity() {
        // The error-resilience argument (§8.1): gates touched along a
        // branch grow as log²(N), not as the router count O(N).
        let mut prev = 0u64;
        for n in [2u32, 4, 8] {
            let cells: Vec<u64> = vec![0; 1 << n];
            let mem = ClassicalMemory::from_words(1, &cells).unwrap();
            let addr = AddressState::classical(n, 0).unwrap();
            let exec = execute_layers(&fat_tree_query_layers(n), &mem, &addr).unwrap();
            let total = exec.gate_counts.total_quantum();
            // Quadratic growth: doubling n should ~4x the count, far less
            // than the ~2^n growth of the router count.
            if prev > 0 {
                let ratio = total as f64 / prev as f64;
                assert!(
                    (3.0..6.0).contains(&ratio),
                    "n={n}: ratio {ratio} not quadratic-like"
                );
            }
            prev = total;
        }
    }

    #[test]
    fn bb_cswap_count_formula() {
        // Along a branch: address qubit i routes through i levels (twice,
        // load+unload) and the bus through n down + n up:
        // 2·(Σ_{i<n} i + n) = n² + n CSWAPs.
        for n in 1..=6u32 {
            let cells: Vec<u64> = vec![0; 1 << n];
            let mem = ClassicalMemory::from_words(1, &cells).unwrap();
            let addr = AddressState::classical(n, 0).unwrap();
            let exec = execute_layers(&bb_query_layers(n), &mem, &addr).unwrap();
            assert_eq!(exec.gate_counts.cswap, u64::from(n * n + n), "n={n}");
            assert_eq!(exec.gate_counts.classical, 1);
            assert_eq!(exec.gate_counts.local_swap, 0, "BB has no local swaps");
        }
    }

    #[test]
    fn fat_tree_local_swap_count_scales_quadratically() {
        // 2n−1 swap steps, each touching the (up to n+1) qubits of the
        // query: ~2n² local swaps.
        for n in 2..=6u32 {
            let cells: Vec<u64> = vec![0; 1 << n];
            let mem = ClassicalMemory::from_words(1, &cells).unwrap();
            let addr = AddressState::classical(n, 0).unwrap();
            let exec = execute_layers(&fat_tree_query_layers(n), &mem, &addr).unwrap();
            let ls = exec.gate_counts.local_swap;
            let n64 = u64::from(n);
            assert!(
                ls >= n64 * n64 && ls <= 3 * n64 * n64,
                "n={n}: local swaps {ls} outside [n², 3n²]"
            );
            // CSWAP count identical to BB (same gate steps).
            assert_eq!(exec.gate_counts.cswap, n64 * n64 + n64);
        }
    }

    #[test]
    fn interned_layers_match_generators_and_share_storage() {
        for n in 1..=8u32 {
            let bb = interned_layers(LayerArch::BucketBrigade, n);
            assert_eq!(bb.as_ref(), bb_query_layers(n).as_slice());
            let ft = interned_layers(LayerArch::FatTree, n);
            assert_eq!(ft.as_ref(), fat_tree_query_layers(n).as_slice());
            // Second lookup returns the same allocation, not a copy.
            let bb2 = interned_layers(LayerArch::BucketBrigade, n);
            assert!(Arc::ptr_eq(&bb, &bb2), "n={n}: intern table must share");
        }
    }

    #[test]
    fn interned_layers_execute_identically_to_generated() {
        let mem = memory8();
        let addr = AddressState::full_superposition(3);
        let generated = execute_layers(&fat_tree_query_layers(3), &mem, &addr).unwrap();
        let interned =
            execute_layers(&interned_layers(LayerArch::FatTree, 3), &mem, &addr).unwrap();
        assert_eq!(generated, interned);
    }

    #[test]
    fn sequential_path_matches_dispatching_entry_point_above_threshold() {
        // 128 branches ≥ PARALLEL_BRANCH_THRESHOLD: with the `parallel`
        // feature this exercises the scoped-thread path and pins its
        // equality to the sequential reference; without the feature both
        // calls take the sequential path and the test is a tautology.
        let n = 7u32;
        let cells: Vec<u64> = (0..(1u64 << n)).map(|i| (i * 3 + 1) % 2).collect();
        let mem = ClassicalMemory::from_words(1, &cells).unwrap();
        let addr = AddressState::full_superposition(n);
        assert!(addr.num_branches() >= PARALLEL_BRANCH_THRESHOLD);
        for layers in [bb_query_layers(n), fat_tree_query_layers(n)] {
            let seq = execute_layers_sequential(&layers, &mem, &addr).unwrap();
            let auto = execute_layers(&layers, &mem, &addr).unwrap();
            assert_eq!(seq, auto);
        }
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_path_reports_same_error_as_sequential() {
        // Corrupt the stream so every branch fails: both paths must report
        // the identical (earliest-layer) error deterministically.
        let n = 7u32;
        let cells: Vec<u64> = vec![0; 1 << n];
        let mem = ClassicalMemory::from_words(1, &cells).unwrap();
        let addr = AddressState::full_superposition(n);
        let mut layers = bb_query_layers(n);
        layers[1].ops.push(Op::Store(0)); // double store
        let seq = execute_layers_sequential(&layers, &mem, &addr).unwrap_err();
        let par = execute_layers_parallel(&layers, &mem, &addr).unwrap_err();
        assert_eq!(seq, par);
    }

    #[test]
    fn corrupt_stream_is_rejected() {
        // Dropping the final unload leaves a qubit in flight.
        let mem = memory8();
        let addr = AddressState::classical(3, 5).unwrap();
        let mut layers = bb_query_layers(3);
        let last = layers.last_mut().unwrap();
        last.ops.clear();
        let err = execute_layers(&layers, &mem, &addr).unwrap_err();
        assert!(err.message.contains("in flight") || err.message.contains("UNLOAD"));
    }

    #[test]
    fn double_store_is_rejected() {
        let mem = memory8();
        let addr = AddressState::classical(3, 0).unwrap();
        let mut layers = bb_query_layers(3);
        // Duplicate the first store.
        layers[1].ops.push(Op::Store(0));
        let err = execute_layers(&layers, &mem, &addr).unwrap_err();
        assert!(err.message.contains("STORE"), "{err}");
    }

    #[test]
    fn noiseless_noisy_execution_survives_fully() {
        let mem = memory8();
        let addr = AddressState::full_superposition(3);
        let layers = fat_tree_query_layers(3);
        let survival = execute_layers_noisy(&layers, &mem, &addr, |_| false).unwrap();
        assert!((survival - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fully_faulty_execution_survives_nothing() {
        let mem = memory8();
        let addr = AddressState::full_superposition(3);
        let layers = bb_query_layers(3);
        let survival = execute_layers_noisy(&layers, &mem, &addr, |_| true).unwrap();
        assert_eq!(survival, 0.0);
    }

    #[test]
    fn selective_faults_corrupt_expected_fraction() {
        // Fault only CSWAPs deterministically every k-th call: survival
        // must be 0 (every branch routes through CSWAPs).
        let mem = memory8();
        let addr = AddressState::uniform(3, &[1, 6]).unwrap();
        let layers = bb_query_layers(3);
        let mut count = 0u64;
        let survival = execute_layers_noisy(&layers, &mem, &addr, |class| {
            if class == GateClass::Cswap {
                count += 1;
                count == 1 // fault exactly the first CSWAP per run
            } else {
                false
            }
        })
        .unwrap();
        // First branch corrupted, second survives with weight 1/2.
        assert!((survival - 0.5).abs() < 1e-12);
    }
}
