//! Functional execution of query instruction streams.
//!
//! For a fixed address, every router in a bucket-brigade tree is in a
//! definite classical state, so a query over a superposition of addresses
//! decomposes into independent *branches* (see `qsim::branch`). This module
//! walks the layered instruction stream of `query_ops` for each branch,
//! validating every precondition (a `STORE` must find its address qubit at
//! the right input, routers must be waiting, the bus must reach the leaves
//! before retrieval, and the tree must be returned to the all-`|W⟩` state),
//! and produces the resulting [`QueryOutcome`] together with per-class gate
//! counts used by the fidelity analysis (§8.1).
//!
//! # The interpret → intern → compile → columnar pipeline
//!
//! Query execution goes through four stages, each feeding the next:
//!
//! 1. **Interpret** — [`execute_layers`] walks every op of every layer per
//!    branch through the `BranchMachine` validator. This is the
//!    reference semantics: it runs for explicitly supplied (possibly
//!    mutated) streams, for the pinned `*_sequential` /
//!    `execute_batch_unmemoized` reference paths that the faster paths
//!    are property-tested against, and for any
//!    [`QramModel`](crate::QramModel) backend that does not opt into
//!    compilation.
//! 2. **Intern** — [`interned_layers`] caches the per-capacity stream of
//!    each built-in architecture in a process-wide table of
//!    `Arc<[QueryLayer]>`, so batch execution and the fidelity estimators
//!    stop re-generating (and re-allocating) the same layered stream on
//!    every call.
//! 3. **Compile** — [`compiled_query`] partially evaluates an interned
//!    stream exactly once per `(arch, n)`: a symbolic `BranchMachine` run
//!    proves every precondition (including the address-dependent
//!    `STORE`/`UNSTORE` bit round-trips) holds for *every* address, and
//!    extracts the address-independent [`GateCounts`] and per-layer gate
//!    trajectory. The resulting [`CompiledQuery`] answers a branch with
//!    one `memory.read(address)` — O(1) residual work instead of the
//!    interpreter's O(log² N) op walk — and is what
//!    `QramModel::compiled_query` routes the hot paths
//!    (`execute_query_traced`, `execute_batch`,
//!    `ShardedQram::execute_queries`, and the Monte-Carlo / extended /
//!    analytic fidelity estimators) through.
//! 4. **Columnar** — the SoA batch kernel (`soa` module, reached through
//!    [`execute_batch`](crate::execute_batch) and
//!    `ShardedQram::execute_queries` whenever a compiled plan exists)
//!    restructures a whole *batch* around the plan's O(1) residual:
//!    every query's `(amplitude, address)` terms are flattened into one
//!    structure-of-arrays column with per-query offset ranges, memo
//!    accounting is batched per memory epoch (sort the index column by
//!    address set once, count distinct sets once — no per-query hashing),
//!    retrieval parities for 1-bit buses are gathered bit-parallel from a
//!    packed memory image (64 branches per `u64` word), sharded batches
//!    radix-partition the column by the low-order shard bits instead of
//!    building per-shard sub-batch maps, and per-query outcomes are
//!    constant-size views into one shared term column
//!    (`QueryOutcome::from_shared_column`) — one column allocation per
//!    memory epoch instead of one `Vec` per query.
//!
//! A corrupted stream is rejected at *compile* time with the same
//! [`ExecError`] (layer index and message) the interpreter reports, by
//! construction: both run the one shared validator (`MachineCore`),
//! differing only in whether a router bit is a concrete address bit or
//! its level symbol.
//!
//! Branch-parallel execution (the `parallel` cargo feature) composes with
//! the interpreter stage: branches of a superposed query are independent
//! `BranchMachine` runs, so [`execute_layers`] fans them out across
//! scoped worker threads once the branch count crosses
//! [`PARALLEL_BRANCH_THRESHOLD`]. Workers pull branch chunks from a
//! work-stealing deque (each pops its own queue back, then steals other
//! queues' fronts), so skewed per-branch costs no longer serialize on the
//! slowest contiguous chunk. Compiled plans never spawn threads — their
//! per-branch residual (one classical memory read) is far below the cost
//! of a thread handoff.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

use qsim::branch::{AddressState, ClassicalMemory, QueryOutcome};

use crate::ops::{GateClass, Op, QubitTag};
use crate::query_ops::{bb_query_layers, fat_tree_query_layers, QueryLayer};

/// Gate counts per hardware class accumulated along one query branch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GateCounts {
    /// Routing CSWAPs (error rate ε₀).
    pub cswap: u64,
    /// Inter-node SWAPs: LOAD/TRANSPORT/STORE and inverses (ε₁).
    pub inter_node_swap: u64,
    /// Intra-node local SWAPs: Fat-Tree swap steps (ε₂).
    pub local_swap: u64,
    /// Classically controlled data-retrieval gates.
    pub classical: u64,
}

impl GateCounts {
    /// Total quantum gates (excluding classical retrieval gates).
    #[must_use]
    pub fn total_quantum(&self) -> u64 {
        self.cswap + self.inter_node_swap + self.local_swap
    }

    fn record(&mut self, class: GateClass, count: u64) {
        match class {
            GateClass::Cswap => self.cswap += count,
            GateClass::InterNodeSwap => self.inter_node_swap += count,
            GateClass::LocalSwap => self.local_swap += count,
            GateClass::Classical => self.classical += count,
        }
    }
}

/// An execution error: the instruction stream violated a precondition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecError {
    /// 1-based circuit layer at which the violation occurred (0 = final
    /// validation).
    pub layer: usize,
    /// The violated condition.
    pub message: String,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "layer {}: {}", self.layer, self.message)
    }
}

impl std::error::Error for ExecError {}

/// Flyer slot index of a `(level, input/output)` tree position: each level
/// holds at most one in-flight qubit per side, so occupancy is a flat
/// table indexed by `2·level + at_output` instead of a scanned list.
#[inline]
fn slot_index(level: u32, at_output: bool) -> usize {
    level as usize * 2 + usize::from(at_output)
}

/// The shared per-branch validator behind both the interpreter and the
/// compiler: walks ops over a generic router-bit type `B`, tracking flyer
/// slots, router occupancy, gate counts, and the classical-read parity.
///
/// The two instantiations differ only in what `bit(i)` — the value a
/// router stores at `STORE i` and must still hold at `UNSTORE i` —
/// evaluates to:
///
/// * interpreter ([`BranchMachine`], `B = bool`): the concrete address
///   bit at level `i` of one branch;
/// * compiler ([`CompiledQuery::compile`], `B = u32`): the *level* `i`
///   itself, so one symbolic run proves the `STORE`/`UNSTORE` round-trip
///   self-consistent for every address at once.
///
/// Data retrieval counts XOR parity (`reads`) instead of touching
/// memory: the classical memory is immutable within a branch run, so the
/// exiting bus carries `memory.read(address)` iff the read count at bus
/// exit is odd — the interpreter applies that read in
/// [`BranchMachine::finish`], the compiler keeps the parity itself. One
/// machine, two bit semantics: the compiler rejects a corrupted stream
/// with the exact [`ExecError`] the interpreter reports *by
/// construction*, not by keeping two checkers synchronized.
struct MachineCore<B> {
    n: u32,
    /// Per-level router state along the active path: `None` = `|W⟩`.
    routers: Vec<Option<B>>,
    /// In-flight qubit per `(level, side)` slot (see [`slot_index`]); the
    /// executor validates collisions as stream errors, so one slot never
    /// holds two qubits.
    slots: Vec<Option<QubitTag>>,
    /// Number of occupied slots (qubits in flight).
    in_flight: usize,
    /// Number of active (non-`|W⟩`) routers.
    active_routers: usize,
    /// Number of classical data reads XOR-ed into the bus so far.
    reads: u32,
    /// Read count captured when the bus unloaded from the tree.
    exited_reads: Option<u32>,
    counts: GateCounts,
}

impl<B: Copy + Eq> MachineCore<B> {
    fn new(n: u32) -> Self {
        MachineCore {
            n,
            routers: vec![None; n as usize],
            slots: vec![None; slot_index(n, true) + 1],
            in_flight: 0,
            active_routers: 0,
            reads: 0,
            exited_reads: None,
            counts: GateCounts::default(),
        }
    }

    /// Rewinds the machine to the all-`|W⟩` start state for a new branch,
    /// keeping the router and slot allocations.
    fn reset(&mut self) {
        self.routers.iter_mut().for_each(|r| *r = None);
        self.slots.iter_mut().for_each(|s| *s = None);
        self.in_flight = 0;
        self.active_routers = 0;
        self.reads = 0;
        self.exited_reads = None;
        self.counts = GateCounts::default();
    }

    fn err(layer: usize, message: impl Into<String>) -> ExecError {
        ExecError {
            layer,
            message: message.into(),
        }
    }

    /// The qubit occupying `(level, side)`, if any. Levels beyond the tree
    /// are simply vacant (mirroring the old scan over a flyer list).
    fn occupant(&self, level: u32, at_output: bool) -> Option<QubitTag> {
        self.slots.get(slot_index(level, at_output)).copied()?
    }

    /// Places a qubit into a (vacant) slot, growing the table if a
    /// corrupted stream transports past the leaves.
    fn place(&mut self, level: u32, at_output: bool, tag: QubitTag) {
        let idx = slot_index(level, at_output);
        if idx >= self.slots.len() {
            self.slots.resize(idx + 1, None);
        }
        debug_assert!(self.slots[idx].is_none(), "slot collision must be rejected");
        self.slots[idx] = Some(tag);
        self.in_flight += 1;
    }

    /// Vacates a slot, returning its occupant.
    fn remove(&mut self, level: u32, at_output: bool) -> Option<QubitTag> {
        let tag = self.slots.get_mut(slot_index(level, at_output))?.take()?;
        self.in_flight -= 1;
        Some(tag)
    }

    fn apply(&mut self, layer: usize, op: Op, bit: impl Fn(u32) -> B) -> Result<(), ExecError> {
        match op {
            Op::Load(tag) => {
                if self.occupant(0, false).is_some() {
                    return Err(Self::err(layer, format!("LOAD {tag}: root input occupied")));
                }
                self.place(0, false, tag);
                self.counts.record(GateClass::InterNodeSwap, 1);
            }
            Op::Transport(i) => {
                let Some(tag) = self.occupant(i - 1, true) else {
                    return Err(Self::err(
                        layer,
                        format!("TRANSPORT to level {i}: no qubit at level {} output", i - 1),
                    ));
                };
                if self.occupant(i, false).is_some() {
                    return Err(Self::err(
                        layer,
                        format!("TRANSPORT to level {i}: input occupied"),
                    ));
                }
                self.remove(i - 1, true);
                self.place(i, false, tag);
                self.counts.record(GateClass::InterNodeSwap, 1);
            }
            Op::Route(i) => {
                let Some(tag) = self.occupant(i, false) else {
                    return Err(Self::err(
                        layer,
                        format!("ROUTE level {i}: no qubit at input"),
                    ));
                };
                if self.routers[i as usize].is_none() {
                    return Err(Self::err(
                        layer,
                        format!("ROUTE level {i}: router still |W>"),
                    ));
                }
                if self.occupant(i, true).is_some() {
                    return Err(Self::err(
                        layer,
                        format!("ROUTE level {i}: output occupied"),
                    ));
                }
                self.remove(i, false);
                self.place(i, true, tag);
                self.counts.record(GateClass::Cswap, 1);
            }
            Op::Store(i) => {
                let Some(tag) = self.occupant(i, false) else {
                    return Err(Self::err(
                        layer,
                        format!("STORE level {i}: no qubit at input"),
                    ));
                };
                if tag != QubitTag::Address(i) {
                    return Err(Self::err(
                        layer,
                        format!("STORE level {i}: qubit {tag} is not address {}", i + 1),
                    ));
                }
                if self.routers[i as usize].is_some() {
                    return Err(Self::err(
                        layer,
                        format!("STORE level {i}: router already active"),
                    ));
                }
                self.routers[i as usize] = Some(bit(i));
                self.active_routers += 1;
                self.remove(i, false);
                self.counts.record(GateClass::InterNodeSwap, 1);
            }
            Op::ClassicalGates => {
                let leaves = self.n - 1;
                if self.occupant(leaves, true) != Some(QubitTag::Bus) {
                    return Err(Self::err(
                        layer,
                        "CLASSICAL-GATES: bus has not reached the leaves",
                    ));
                }
                if self.active_routers < self.routers.len() {
                    return Err(Self::err(
                        layer,
                        "CLASSICAL-GATES: address not fully loaded",
                    ));
                }
                self.reads += 1;
                self.counts.record(GateClass::Classical, 1);
            }
            Op::Unroute(i) => {
                let Some(tag) = self.occupant(i, true) else {
                    return Err(Self::err(
                        layer,
                        format!("UNROUTE level {i}: no qubit at output"),
                    ));
                };
                if self.routers[i as usize].is_none() {
                    return Err(Self::err(
                        layer,
                        format!("UNROUTE level {i}: router still |W>"),
                    ));
                }
                if self.occupant(i, false).is_some() {
                    return Err(Self::err(
                        layer,
                        format!("UNROUTE level {i}: input occupied"),
                    ));
                }
                self.remove(i, true);
                self.place(i, false, tag);
                self.counts.record(GateClass::Cswap, 1);
            }
            Op::Untransport(i) => {
                let Some(tag) = self.occupant(i, false) else {
                    return Err(Self::err(
                        layer,
                        format!("UNTRANSPORT from level {i}: no qubit at input"),
                    ));
                };
                if self.occupant(i - 1, true).is_some() {
                    return Err(Self::err(
                        layer,
                        format!(
                            "UNTRANSPORT from level {i}: level {} output occupied",
                            i - 1
                        ),
                    ));
                }
                self.remove(i, false);
                self.place(i - 1, true, tag);
                self.counts.record(GateClass::InterNodeSwap, 1);
            }
            Op::Unstore(i) => {
                let stored = self.routers[i as usize]
                    .ok_or_else(|| Self::err(layer, format!("UNSTORE level {i}: router is |W>")))?;
                // The round-trip check: the router must still hold exactly
                // the bit `UNSTORE` reverts. Interpreted, this compares
                // concrete bits of one address; compiled, it compares
                // level symbols — a mismatch would corrupt the router for
                // every address whose bits at the two levels differ, so
                // it is rejected for all addresses at once.
                if stored != bit(i) {
                    return Err(Self::err(
                        layer,
                        format!("UNSTORE level {i}: router bit corrupted"),
                    ));
                }
                if self.occupant(i, false).is_some() {
                    return Err(Self::err(
                        layer,
                        format!("UNSTORE level {i}: input occupied"),
                    ));
                }
                self.routers[i as usize] = None;
                self.active_routers -= 1;
                self.place(i, false, QubitTag::Address(i));
                self.counts.record(GateClass::InterNodeSwap, 1);
            }
            Op::Unload(tag) => {
                let Some(found) = self.occupant(0, false) else {
                    return Err(Self::err(
                        layer,
                        format!("UNLOAD {tag}: no qubit at root input"),
                    ));
                };
                if found != tag {
                    return Err(Self::err(
                        layer,
                        format!("UNLOAD {tag}: found {found} instead"),
                    ));
                }
                self.remove(0, false);
                if tag == QubitTag::Bus {
                    self.exited_reads = Some(self.reads);
                }
                self.counts.record(GateClass::InterNodeSwap, 1);
            }
            Op::SwapStepI | Op::SwapStepII => {
                // A local swap moves the query's stored router qubits and
                // in-flight qubits between adjacent sub-QRAM copies: one
                // intra-node SWAP per qubit involved.
                let involved = self.active_routers + self.in_flight;
                self.counts.record(GateClass::LocalSwap, involved as u64);
            }
        }
        Ok(())
    }

    /// Final validation: every router reverted, no qubit in flight, and
    /// the bus exited. Returns the read count captured at bus exit.
    fn finish(&self, total_layers: usize) -> Result<u32, ExecError> {
        if let Some(router) = self.routers.iter().position(Option::is_some) {
            return Err(ExecError {
                layer: total_layers,
                message: format!("router at level {router} not reverted to |W>"),
            });
        }
        if self.in_flight > 0 {
            return Err(ExecError {
                layer: total_layers,
                message: format!("{} qubit(s) still in flight", self.in_flight),
            });
        }
        self.exited_reads.ok_or(ExecError {
            layer: total_layers,
            message: "bus never exited the tree".to_owned(),
        })
    }
}

/// Classical interpretation of one query branch: a [`MachineCore`] over
/// the concrete address bits of one branch, plus that branch's single
/// residual memory access.
///
/// One machine is reused across the branches of a superposition
/// ([`Self::reset`] clears state without reallocating), and flyer lookups
/// are O(1) slot-table reads rather than the linear scan of earlier
/// revisions.
struct BranchMachine<'m> {
    core: MachineCore<bool>,
    memory: &'m ClassicalMemory,
    address: u64,
}

impl<'m> BranchMachine<'m> {
    fn new(n: u32, memory: &'m ClassicalMemory) -> Self {
        BranchMachine {
            core: MachineCore::new(n),
            memory,
            address: 0,
        }
    }

    /// Rewinds the machine for a new branch.
    fn reset(&mut self, address: u64) {
        self.address = address;
        self.core.reset();
    }

    /// Gate counts accumulated so far on the current branch.
    fn counts(&self) -> GateCounts {
        self.core.counts
    }

    fn apply(&mut self, layer: usize, op: Op) -> Result<(), ExecError> {
        let (n, address) = (self.core.n, self.address);
        // Address bit consumed at tree level `i` (MSB first).
        self.core
            .apply(layer, op, |level| (address >> (n - 1 - level)) & 1 == 1)
    }

    /// Runs one branch (a fixed classical address) through the full stream.
    fn run(&mut self, address: u64, layers: &[QueryLayer]) -> BranchResult {
        self.reset(address);
        for (layer_idx, layer) in layers.iter().enumerate() {
            for &op in &layer.ops {
                self.apply(layer_idx + 1, op)?;
            }
        }
        self.finish(layers.len())
    }

    /// Final validation plus the branch's residual memory access: the
    /// exiting bus carries the addressed word iff the read parity at exit
    /// is odd (repeated reads XOR-cancel; memory is immutable within a
    /// branch run).
    fn finish(&self, total_layers: usize) -> BranchResult {
        let exited_reads = self.core.finish(total_layers)?;
        let data = if exited_reads % 2 == 1 {
            self.memory.read(self.address)
        } else {
            0
        };
        Ok((data, self.core.counts))
    }
}

/// The result of executing a query instruction stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Execution {
    /// The entangled address–bus output state (Eq. 1).
    pub outcome: QueryOutcome,
    /// Gate counts along one branch (identical across branches).
    pub gate_counts: GateCounts,
}

/// The architectures whose instruction streams are globally interned —
/// the key space of [`interned_layers`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerArch {
    /// Bucket-brigade stream ([`bb_query_layers`]).
    BucketBrigade,
    /// Fat-Tree stream ([`fat_tree_query_layers`]).
    FatTree,
}

/// The per-capacity single-query instruction stream of `arch`, interned in
/// a process-wide table: the first call for an `(arch, n)` pair generates
/// the layered stream once, every later call returns a cheap [`Arc`]
/// clone. Batch execution and the fidelity estimators call this through
/// [`QramModel::interned_query_layers`], so the stream is no longer
/// re-allocated per query or per Monte-Carlo estimate.
///
/// Streams are immutable and small (`O(log² N)` ops), so the table is
/// never evicted; with capacities up to `2^20` it holds at most 40
/// entries per process.
///
/// [`QramModel::interned_query_layers`]: crate::QramModel::interned_query_layers
///
/// # Panics
///
/// Panics if `n == 0` (no zero-width address registers).
#[must_use]
pub fn interned_layers(arch: LayerArch, n: u32) -> Arc<[QueryLayer]> {
    type InternTable = Mutex<HashMap<(LayerArch, u32), Arc<[QueryLayer]>>>;
    static TABLE: OnceLock<InternTable> = OnceLock::new();
    let table = TABLE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = table.lock().expect("layer intern table poisoned");
    Arc::clone(map.entry((arch, n)).or_insert_with(|| {
        match arch {
            LayerArch::BucketBrigade => bb_query_layers(n),
            LayerArch::FatTree => fat_tree_query_layers(n),
        }
        .into()
    }))
}

/// An instruction stream partially evaluated into an O(1)-per-branch query
/// plan.
///
/// [`CompiledQuery::compile`] runs the stream once through the shared
/// `MachineCore` validator with *symbolic* router bits (a router stores
/// the level of the address bit it holds): every precondition is proven
/// to hold for *every* address (not just a sampled one), and the
/// address-independent results —
/// total [`GateCounts`], the per-layer gate trajectory, the retrieval
/// layer, and the bus read parity — are extracted. [`Self::execute`] then
/// answers each branch of a superposition with a single
/// `memory.read(address)` (or a constant, when the stream's reads cancel),
/// with no per-branch validation, allocation, or op walk left.
///
/// Plans for the built-in architectures are interned process-wide by
/// [`compiled_query`] and reach the hot paths through
/// [`QramModel::compiled_query`]; the interpreter ([`execute_layers`])
/// remains the reference semantics for mutated or non-interned streams.
///
/// [`QramModel::compiled_query`]: crate::QramModel::compiled_query
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledQuery {
    n: u32,
    gate_counts: GateCounts,
    layer_counts: Vec<GateCounts>,
    reads_data: bool,
    retrieval_layer: Option<usize>,
}

impl CompiledQuery {
    /// Partially evaluates `layers` (a stream for address width `n`) into
    /// a plan, proving it valid for every address.
    ///
    /// # Errors
    ///
    /// Returns the same [`ExecError`] (layer index and message) the
    /// interpreter would report, if the stream violates any precondition
    /// for any address.
    pub fn compile(n: u32, layers: &[QueryLayer]) -> Result<Self, ExecError> {
        // The symbolic instantiation of the shared validator: `bit(i)` is
        // the level `i` itself, so a `STORE`/`UNSTORE` pair round-trips
        // exactly when the symbols match — for every address at once.
        let mut machine = MachineCore::<u32>::new(n);
        let mut layer_counts = Vec::with_capacity(layers.len());
        let mut before = GateCounts::default();
        let mut retrieval_layer = None;
        for (layer_idx, layer) in layers.iter().enumerate() {
            for &op in &layer.ops {
                machine.apply(layer_idx + 1, op, |level| level)?;
            }
            if retrieval_layer.is_none() && machine.reads > 0 {
                retrieval_layer = Some(layer_idx + 1);
            }
            let after = machine.counts;
            layer_counts.push(GateCounts {
                cswap: after.cswap - before.cswap,
                inter_node_swap: after.inter_node_swap - before.inter_node_swap,
                local_swap: after.local_swap - before.local_swap,
                classical: after.classical - before.classical,
            });
            before = after;
        }
        let exited_reads = machine.finish(layers.len())?;
        Ok(CompiledQuery {
            n,
            gate_counts: machine.counts,
            layer_counts,
            reads_data: exited_reads % 2 == 1,
            retrieval_layer,
        })
    }

    /// The address width `n` the plan was compiled for.
    #[must_use]
    pub fn address_width(&self) -> u32 {
        self.n
    }

    /// Gate counts along one branch (branch-independent by construction).
    #[must_use]
    pub fn gate_counts(&self) -> GateCounts {
        self.gate_counts
    }

    /// Per-layer gate counts — the address-independent gate trajectory of
    /// the stream (sums to [`Self::gate_counts`]). Extended noise models
    /// use it to attribute correlated per-layer bursts exactly.
    #[must_use]
    pub fn layer_gate_counts(&self) -> &[GateCounts] {
        &self.layer_counts
    }

    /// The 1-based circuit layer at which the stream first reads the
    /// classical memory, if it ever does.
    #[must_use]
    pub fn retrieval_layer(&self) -> Option<usize> {
        self.retrieval_layer
    }

    /// Whether the stream's retrieval parity is odd — i.e. whether
    /// [`Self::read_data`] performs a real memory read rather than
    /// returning the XOR-cancelled constant `0`. Batch kernels branch on
    /// this once per batch to pick a gather strategy.
    #[must_use]
    pub fn reads_data(&self) -> bool {
        self.reads_data
    }

    /// The residual per-branch work: the data word branch `address`
    /// carries out of the tree. One memory read when the stream's
    /// retrieval parity is odd; the XOR-cancelled constant `0` otherwise.
    #[must_use]
    pub fn read_data(&self, memory: &ClassicalMemory, address: u64) -> u64 {
        if self.reads_data {
            memory.read(address)
        } else {
            0
        }
    }

    /// Executes the compiled plan over an address superposition: O(1)
    /// residual work per branch, no validation (the stream was proven
    /// valid for every address at compile time), and gate counts straight
    /// from the plan. Equal to [`execute_layers`] on the source stream.
    ///
    /// # Panics
    ///
    /// Panics if the memory or address width does not match the plan.
    #[must_use]
    pub fn execute(&self, memory: &ClassicalMemory, address: &AddressState) -> Execution {
        assert_eq!(
            memory.address_width(),
            self.n,
            "memory capacity must match the compiled plan"
        );
        assert_eq!(
            address.address_width(),
            self.n,
            "address width must match memory capacity"
        );
        let terms = address
            .iter()
            .map(|&(amp, addr)| (amp, addr, self.read_data(memory, addr)))
            .collect();
        Execution {
            outcome: QueryOutcome::from_terms(self.n, memory.bus_width(), terms),
            gate_counts: self.gate_counts,
        }
    }

    /// Compiled counterpart of [`execute_layers_noisy`]: samples
    /// `fault(class)` once per quantum gate per branch (walking the
    /// per-layer gate counts instead of the ops) and returns the surviving
    /// amplitude weight `Σ |α|²` over uncorrupted branches. Same per-branch
    /// fault statistics as the interpreter — each branch draws exactly
    /// [`Self::gate_counts`] decisions per class.
    ///
    /// # Panics
    ///
    /// Panics if the address width does not match the plan (the same
    /// mismatch the interpreter rejects against its memory).
    pub fn noisy_survival(
        &self,
        address: &AddressState,
        mut fault: impl FnMut(GateClass) -> bool,
    ) -> f64 {
        assert_eq!(
            address.address_width(),
            self.n,
            "address width must match the compiled plan"
        );
        let mut survival = 0.0;
        for &(amp, _) in address.iter() {
            let mut corrupted = false;
            for counts in &self.layer_counts {
                for (class, count) in [
                    (GateClass::Cswap, counts.cswap),
                    (GateClass::InterNodeSwap, counts.inter_node_swap),
                    (GateClass::LocalSwap, counts.local_swap),
                ] {
                    for _ in 0..count {
                        if fault(class) {
                            corrupted = true;
                        }
                    }
                }
            }
            if !corrupted {
                survival += amp.norm_sqr();
            }
        }
        survival
    }
}

/// The compiled query plan of `arch` at capacity `2^n`, interned in a
/// process-wide table beside [`interned_layers`]: the first call for an
/// `(arch, n)` pair compiles the interned stream once
/// ([`CompiledQuery::compile`]), every later call returns a cheap [`Arc`]
/// clone. The built-in backends route the execution and fidelity hot
/// paths through this table via `QramModel::compiled_query`, which
/// fetches the plan *per query* — so the table is one `OnceLock` cell
/// per `(arch, n)` (a single atomic load once initialized), not a
/// lock-guarded map.
///
/// # Panics
///
/// Panics if `n` is zero or exceeds 64 (addresses are `u64`), or if the
/// generated stream fails compilation (a generator bug — generated
/// streams are valid by construction).
#[must_use]
pub fn compiled_query(arch: LayerArch, n: u32) -> Arc<CompiledQuery> {
    const MAX_WIDTH: usize = 64;
    type PlanCell = OnceLock<Arc<CompiledQuery>>;
    static PLANS: [[PlanCell; MAX_WIDTH + 1]; 2] =
        [const { [const { OnceLock::new() }; MAX_WIDTH + 1] }; 2];
    assert!(
        (1..=MAX_WIDTH as u32).contains(&n),
        "address width {n} outside 1..=64"
    );
    let row = match arch {
        LayerArch::BucketBrigade => 0,
        LayerArch::FatTree => 1,
    };
    Arc::clone(PLANS[row][n as usize].get_or_init(|| {
        let layers = interned_layers(arch, n);
        Arc::new(
            CompiledQuery::compile(n, &layers)
                .expect("generated instruction streams compile (generator bug otherwise)"),
        )
    }))
}

/// Data word and gate counts of one completed branch, or the violation
/// that aborted it.
type BranchResult = Result<(u64, GateCounts), ExecError>;

/// Branch count below which [`execute_layers`] stays sequential even with
/// the `parallel` feature enabled: spawning scoped threads costs a few
/// microseconds, which only pays for itself once each worker gets a
/// meaningful slice of branches.
pub const PARALLEL_BRANCH_THRESHOLD: usize = 64;

/// Worker threads used by branch-parallel execution: the
/// `QRAM_NUM_THREADS` environment variable when set (useful for A/B
/// speedup measurements), otherwise [`std::thread::available_parallelism`].
/// Read once per process and cached — changing the variable after the
/// first dispatch has no effect, and the hot path never touches the
/// (lock-guarded, and on glibc mutation-unsafe) process environment again.
#[cfg(feature = "parallel")]
pub(crate) fn parallel_worker_count() -> usize {
    static WORKERS: OnceLock<usize> = OnceLock::new();
    *WORKERS.get_or_init(|| {
        std::env::var("QRAM_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
            })
    })
}

/// A hand-rolled work-stealing pool of per-worker deques (`std` only; the
/// vendored tree has no crossbeam). Items are seeded round-robin; a worker
/// pops its own queue from the back (LIFO, cache-warm) and, when empty,
/// steals from other queues' fronts scanning cyclically from its right
/// neighbour. No item spawns further items, so a full empty scan in
/// [`Self::next`] is a sound termination condition: the worker simply
/// exits its drain loop.
///
/// Mutex-per-queue is deliberate — work items here are branch *chunks*
/// worth tens of microseconds, so a ~20ns uncontended lock per item is
/// noise, and it keeps the implementation safe under the workspace-wide
/// `forbid(unsafe_code)`.
#[cfg(feature = "parallel")]
pub(crate) struct StealQueues<T> {
    queues: Vec<Mutex<std::collections::VecDeque<T>>>,
}

#[cfg(feature = "parallel")]
impl<T> StealQueues<T> {
    /// Distributes `items` round-robin across `workers` queues.
    pub(crate) fn seeded(workers: usize, items: impl IntoIterator<Item = T>) -> Self {
        let workers = workers.max(1);
        let mut queues: Vec<std::collections::VecDeque<T>> = (0..workers)
            .map(|_| std::collections::VecDeque::new())
            .collect();
        for (i, item) in items.into_iter().enumerate() {
            queues[i % workers].push_back(item);
        }
        StealQueues {
            queues: queues.into_iter().map(Mutex::new).collect(),
        }
    }

    /// The next item for `worker`: its own queue's back, else the first
    /// successful steal from another queue's front, else `None` (done).
    pub(crate) fn next(&self, worker: usize) -> Option<T> {
        if let Some(item) = self.queues[worker]
            .lock()
            .expect("steal queue poisoned")
            .pop_back()
        {
            return Some(item);
        }
        let k = self.queues.len();
        for offset in 1..k {
            let victim = (worker + offset) % k;
            if let Some(item) = self.queues[victim]
                .lock()
                .expect("steal queue poisoned")
                .pop_front()
            {
                return Some(item);
            }
        }
        None
    }
}

/// Executes a single-query instruction stream over an address superposition
/// against a classical memory.
///
/// With the `parallel` cargo feature enabled, superpositions of at least
/// [`PARALLEL_BRANCH_THRESHOLD`] branches fan out across scoped worker
/// threads (`execute_layers_parallel`, only compiled with the feature);
/// otherwise (and always without the feature) execution is sequential.
/// Both paths run the identical
/// per-branch machine and combine branches in address order, so the
/// returned [`Execution`] — including which [`ExecError`] surfaces when a
/// stream is malformed — is bit-for-bit independent of the path taken.
///
/// # Errors
///
/// Returns an [`ExecError`] if the stream violates any router/qubit
/// precondition or fails to restore the tree to the all-`|W⟩` state.
///
/// # Panics
///
/// Panics if the address width of `address` does not match the memory.
pub fn execute_layers(
    layers: &[QueryLayer],
    memory: &ClassicalMemory,
    address: &AddressState,
) -> Result<Execution, ExecError> {
    #[cfg(feature = "parallel")]
    {
        if address.num_branches() >= PARALLEL_BRANCH_THRESHOLD && parallel_worker_count() > 1 {
            return execute_layers_parallel(layers, memory, address);
        }
    }
    execute_layers_sequential(layers, memory, address)
}

/// [`execute_layers`] pinned to the sequential path — the reference
/// implementation the parallel path is property-tested against, and the
/// baseline side of the `parallel_execution` A/B benchmark.
///
/// # Errors
///
/// See [`execute_layers`].
///
/// # Panics
///
/// Panics if the address width of `address` does not match the memory.
pub fn execute_layers_sequential(
    layers: &[QueryLayer],
    memory: &ClassicalMemory,
    address: &AddressState,
) -> Result<Execution, ExecError> {
    let n = memory.address_width();
    assert_eq!(
        address.address_width(),
        n,
        "address width must match memory capacity"
    );
    let mut terms = Vec::with_capacity(address.num_branches());
    let mut counts: Option<GateCounts> = None;
    // One machine reused across branches: reset clears state in place, so
    // the per-branch cost carries no router/slot reallocation.
    let mut machine = BranchMachine::new(n, memory);
    for &(amp, addr) in address.iter() {
        let (data, branch_counts) = machine.run(addr, layers)?;
        debug_assert!(
            counts.is_none() || counts == Some(branch_counts),
            "gate counts must be branch-independent"
        );
        counts = Some(branch_counts);
        terms.push((amp, addr, data));
    }
    Ok(Execution {
        outcome: QueryOutcome::from_terms(n, memory.bus_width(), terms),
        gate_counts: counts.expect("at least one branch"),
    })
}

/// [`execute_layers`] pinned to the branch-parallel path, with the worker
/// count taken from the process-wide configuration
/// (`QRAM_NUM_THREADS` / available parallelism).
///
/// # Errors
///
/// See [`execute_layers`].
///
/// # Panics
///
/// Panics if the address width of `address` does not match the memory.
#[cfg(feature = "parallel")]
pub fn execute_layers_parallel(
    layers: &[QueryLayer],
    memory: &ClassicalMemory,
    address: &AddressState,
) -> Result<Execution, ExecError> {
    execute_layers_parallel_with_workers(layers, memory, address, parallel_worker_count())
}

/// The branch-parallel executor with an explicit worker count: branches
/// are split into small chunks seeded round-robin into a work-stealing
/// deque (`StealQueues`), drained by `workers` scoped threads, and
/// recombined in address order. Deterministic: the outcome, gate counts,
/// and any reported error are identical to [`execute_layers_sequential`]
/// for every `workers` value (errors are surfaced for the earliest branch
/// in address order, even when a later chunk's worker fails first in
/// wall-clock time), which the skewed-load property tests pin for
/// `workers ∈ {1, 2, 8}`.
///
/// # Errors
///
/// See [`execute_layers`].
///
/// # Panics
///
/// Panics if the address width of `address` does not match the memory.
#[cfg(feature = "parallel")]
pub fn execute_layers_parallel_with_workers(
    layers: &[QueryLayer],
    memory: &ClassicalMemory,
    address: &AddressState,
    workers: usize,
) -> Result<Execution, ExecError> {
    let n = memory.address_width();
    assert_eq!(
        address.address_width(),
        n,
        "address width must match memory capacity"
    );
    let branches = address.terms();
    let workers = workers.max(1);
    // Several chunks per worker so stealing can rebalance skewed
    // per-branch costs, but never below a quarter-threshold of branches
    // per chunk — the queue lock must stay amortized.
    let chunk_size = branches
        .len()
        .div_ceil(workers * 4)
        .max(PARALLEL_BRANCH_THRESHOLD / 4)
        .max(1);
    let mut results: Vec<Option<BranchResult>> = vec![None; branches.len()];
    // Work items pair each branch chunk with its result slots, so workers
    // write disjoint regions and order is positional, not temporal.
    let queues = StealQueues::seeded(
        workers,
        branches
            .chunks(chunk_size)
            .zip(results.chunks_mut(chunk_size)),
    );
    std::thread::scope(|scope| {
        for worker in 0..workers {
            let queues = &queues;
            scope.spawn(move || {
                // One reusable machine per worker, like the sequential path.
                let mut machine = BranchMachine::new(n, memory);
                while let Some((chunk, slots)) = queues.next(worker) {
                    for (&(_, addr), slot) in chunk.iter().zip(slots.iter_mut()) {
                        *slot = Some(machine.run(addr, layers));
                    }
                }
            });
        }
    });
    drop(queues);
    let mut terms = Vec::with_capacity(branches.len());
    let mut counts: Option<GateCounts> = None;
    for (&(amp, addr), result) in branches.iter().zip(results) {
        let (data, branch_counts) = result.expect("every branch executed")?;
        debug_assert!(
            counts.is_none() || counts == Some(branch_counts),
            "gate counts must be branch-independent"
        );
        counts = Some(branch_counts);
        terms.push((amp, addr, data));
    }
    Ok(Execution {
        outcome: QueryOutcome::from_terms(n, memory.bus_width(), terms),
        gate_counts: counts.expect("at least one branch"),
    })
}

/// Executes a stream while injecting stochastic gate faults: for each gate
/// applied along a branch, `fault(class)` decides whether it fails. A branch
/// with any fault is marked *corrupted* (its state is assumed orthogonal to
/// the ideal output — the worst case). Returns the survival weight
/// `Σ |α|²` over uncorrupted branches; the trajectory fidelity is its
/// square.
///
/// # Errors
///
/// Returns an [`ExecError`] if the stream itself is malformed (faults do
/// not cause errors; they only corrupt branches).
pub fn execute_layers_noisy(
    layers: &[QueryLayer],
    memory: &ClassicalMemory,
    address: &AddressState,
    mut fault: impl FnMut(GateClass) -> bool,
) -> Result<f64, ExecError> {
    let n = memory.address_width();
    assert_eq!(address.address_width(), n);
    let mut survival = 0.0;
    let mut machine = BranchMachine::new(n, memory);
    for &(amp, addr) in address.iter() {
        machine.reset(addr);
        let mut before = GateCounts::default();
        let mut corrupted = false;
        for (layer_idx, layer) in layers.iter().enumerate() {
            for &op in &layer.ops {
                machine.apply(layer_idx + 1, op)?;
                let after = machine.counts();
                // Sample one fault decision per newly applied gate.
                for (class, delta) in [
                    (GateClass::Cswap, after.cswap - before.cswap),
                    (
                        GateClass::InterNodeSwap,
                        after.inter_node_swap - before.inter_node_swap,
                    ),
                    (GateClass::LocalSwap, after.local_swap - before.local_swap),
                ] {
                    for _ in 0..delta {
                        if fault(class) {
                            corrupted = true;
                        }
                    }
                }
                before = after;
            }
        }
        machine.finish(layers.len())?;
        if !corrupted {
            survival += amp.norm_sqr();
        }
    }
    Ok(survival)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query_ops::{bb_query_layers, fat_tree_query_layers};
    use qsim::branch::AddressState;

    fn memory8() -> ClassicalMemory {
        ClassicalMemory::from_words(1, &[1, 0, 0, 1, 1, 0, 1, 0]).unwrap()
    }

    #[test]
    fn bb_execution_matches_ideal_query() {
        let mem = memory8();
        let addr = AddressState::full_superposition(3);
        let layers = bb_query_layers(3);
        let exec = execute_layers(&layers, &mem, &addr).unwrap();
        let ideal = mem.ideal_query(&addr);
        assert!((exec.outcome.fidelity(&ideal) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fat_tree_execution_matches_ideal_query() {
        let mem = memory8();
        let addr = AddressState::uniform(3, &[0, 2, 7]).unwrap();
        let layers = fat_tree_query_layers(3);
        let exec = execute_layers(&layers, &mem, &addr).unwrap();
        let ideal = mem.ideal_query(&addr);
        assert!((exec.outcome.fidelity(&ideal) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn execution_works_across_capacities() {
        for n in 1..=7u32 {
            let cells: Vec<u64> = (0..(1u64 << n)).map(|i| i % 2).collect();
            let mem = ClassicalMemory::from_words(1, &cells).unwrap();
            let addr = AddressState::uniform(n, &[0, (1 << n) - 1]).unwrap();
            for layers in [bb_query_layers(n), fat_tree_query_layers(n)] {
                let exec = execute_layers(&layers, &mem, &addr).unwrap();
                assert_eq!(exec.outcome.data_for(0), Some(0), "n={n}");
                assert_eq!(
                    exec.outcome.data_for((1 << n) - 1),
                    Some(((1u64 << n) - 1) % 2),
                    "n={n}"
                );
            }
        }
    }

    #[test]
    fn gate_counts_scale_quadratically_not_linearly_in_capacity() {
        // The error-resilience argument (§8.1): gates touched along a
        // branch grow as log²(N), not as the router count O(N).
        let mut prev = 0u64;
        for n in [2u32, 4, 8] {
            let cells: Vec<u64> = vec![0; 1 << n];
            let mem = ClassicalMemory::from_words(1, &cells).unwrap();
            let addr = AddressState::classical(n, 0).unwrap();
            let exec = execute_layers(&fat_tree_query_layers(n), &mem, &addr).unwrap();
            let total = exec.gate_counts.total_quantum();
            // Quadratic growth: doubling n should ~4x the count, far less
            // than the ~2^n growth of the router count.
            if prev > 0 {
                let ratio = total as f64 / prev as f64;
                assert!(
                    (3.0..6.0).contains(&ratio),
                    "n={n}: ratio {ratio} not quadratic-like"
                );
            }
            prev = total;
        }
    }

    #[test]
    fn bb_cswap_count_formula() {
        // Along a branch: address qubit i routes through i levels (twice,
        // load+unload) and the bus through n down + n up:
        // 2·(Σ_{i<n} i + n) = n² + n CSWAPs.
        for n in 1..=6u32 {
            let cells: Vec<u64> = vec![0; 1 << n];
            let mem = ClassicalMemory::from_words(1, &cells).unwrap();
            let addr = AddressState::classical(n, 0).unwrap();
            let exec = execute_layers(&bb_query_layers(n), &mem, &addr).unwrap();
            assert_eq!(exec.gate_counts.cswap, u64::from(n * n + n), "n={n}");
            assert_eq!(exec.gate_counts.classical, 1);
            assert_eq!(exec.gate_counts.local_swap, 0, "BB has no local swaps");
        }
    }

    #[test]
    fn fat_tree_local_swap_count_scales_quadratically() {
        // 2n−1 swap steps, each touching the (up to n+1) qubits of the
        // query: ~2n² local swaps.
        for n in 2..=6u32 {
            let cells: Vec<u64> = vec![0; 1 << n];
            let mem = ClassicalMemory::from_words(1, &cells).unwrap();
            let addr = AddressState::classical(n, 0).unwrap();
            let exec = execute_layers(&fat_tree_query_layers(n), &mem, &addr).unwrap();
            let ls = exec.gate_counts.local_swap;
            let n64 = u64::from(n);
            assert!(
                ls >= n64 * n64 && ls <= 3 * n64 * n64,
                "n={n}: local swaps {ls} outside [n², 3n²]"
            );
            // CSWAP count identical to BB (same gate steps).
            assert_eq!(exec.gate_counts.cswap, n64 * n64 + n64);
        }
    }

    #[test]
    fn interned_layers_match_generators_and_share_storage() {
        for n in 1..=8u32 {
            let bb = interned_layers(LayerArch::BucketBrigade, n);
            assert_eq!(bb.as_ref(), bb_query_layers(n).as_slice());
            let ft = interned_layers(LayerArch::FatTree, n);
            assert_eq!(ft.as_ref(), fat_tree_query_layers(n).as_slice());
            // Second lookup returns the same allocation, not a copy.
            let bb2 = interned_layers(LayerArch::BucketBrigade, n);
            assert!(Arc::ptr_eq(&bb, &bb2), "n={n}: intern table must share");
        }
    }

    #[test]
    fn interned_layers_execute_identically_to_generated() {
        let mem = memory8();
        let addr = AddressState::full_superposition(3);
        let generated = execute_layers(&fat_tree_query_layers(3), &mem, &addr).unwrap();
        let interned =
            execute_layers(&interned_layers(LayerArch::FatTree, 3), &mem, &addr).unwrap();
        assert_eq!(generated, interned);
    }

    #[test]
    fn sequential_path_matches_dispatching_entry_point_above_threshold() {
        // 128 branches ≥ PARALLEL_BRANCH_THRESHOLD: with the `parallel`
        // feature this exercises the scoped-thread path and pins its
        // equality to the sequential reference; without the feature both
        // calls take the sequential path and the test is a tautology.
        let n = 7u32;
        let cells: Vec<u64> = (0..(1u64 << n)).map(|i| (i * 3 + 1) % 2).collect();
        let mem = ClassicalMemory::from_words(1, &cells).unwrap();
        let addr = AddressState::full_superposition(n);
        assert!(addr.num_branches() >= PARALLEL_BRANCH_THRESHOLD);
        for layers in [bb_query_layers(n), fat_tree_query_layers(n)] {
            let seq = execute_layers_sequential(&layers, &mem, &addr).unwrap();
            let auto = execute_layers(&layers, &mem, &addr).unwrap();
            assert_eq!(seq, auto);
        }
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_path_reports_same_error_as_sequential() {
        // Corrupt the stream so every branch fails: both paths must report
        // the identical (earliest-layer) error deterministically.
        let n = 7u32;
        let cells: Vec<u64> = vec![0; 1 << n];
        let mem = ClassicalMemory::from_words(1, &cells).unwrap();
        let addr = AddressState::full_superposition(n);
        let mut layers = bb_query_layers(n);
        layers[1].ops.push(Op::Store(0)); // double store
        let seq = execute_layers_sequential(&layers, &mem, &addr).unwrap_err();
        let par = execute_layers_parallel(&layers, &mem, &addr).unwrap_err();
        assert_eq!(seq, par);
    }

    #[test]
    fn compiled_plan_matches_interpreter_across_capacities() {
        for n in 1..=7u32 {
            let cells: Vec<u64> = (0..(1u64 << n)).map(|i| (i * 5 + 2) % 2).collect();
            let mem = ClassicalMemory::from_words(1, &cells).unwrap();
            let addr = AddressState::uniform(n, &[0, (1 << n) - 1]).unwrap();
            for arch in [LayerArch::BucketBrigade, LayerArch::FatTree] {
                let layers = interned_layers(arch, n);
                let plan = CompiledQuery::compile(n, &layers).unwrap();
                let interpreted = execute_layers(&layers, &mem, &addr).unwrap();
                let compiled = plan.execute(&mem, &addr);
                assert_eq!(compiled, interpreted, "{arch:?} n={n}");
                assert_eq!(plan.gate_counts(), interpreted.gate_counts);
            }
        }
    }

    #[test]
    fn compiled_plans_are_interned() {
        let a = compiled_query(LayerArch::FatTree, 5);
        let b = compiled_query(LayerArch::FatTree, 5);
        assert!(Arc::ptr_eq(&a, &b), "plan intern table must share");
        assert_eq!(
            a.as_ref(),
            &CompiledQuery::compile(5, &interned_layers(LayerArch::FatTree, 5)).unwrap()
        );
    }

    #[test]
    fn compile_rejects_corrupted_streams_with_interpreter_error() {
        let mem = memory8();
        let addr = AddressState::classical(3, 5).unwrap();
        // Three corruption shapes: double store, truncated final layer,
        // and a bus-less stream.
        let mut double_store = bb_query_layers(3);
        double_store[1].ops.push(Op::Store(0));
        let mut truncated = fat_tree_query_layers(3);
        truncated.last_mut().unwrap().ops.clear();
        let mut early_classical = bb_query_layers(3);
        early_classical[0].ops.insert(0, Op::ClassicalGates);
        for layers in [double_store, truncated, early_classical] {
            let interp = execute_layers(&layers, &mem, &addr).unwrap_err();
            let compiled = CompiledQuery::compile(3, &layers).unwrap_err();
            assert_eq!(
                compiled, interp,
                "compile must report the interpreter's layer and message"
            );
        }
    }

    #[test]
    fn repeated_reads_cancel_in_both_paths() {
        // Duplicating the CLASSICAL-GATES op makes the two reads XOR-
        // cancel: the interpreter carries 0 out of the tree, and the
        // compiled plan proves the even parity at compile time.
        let mem = memory8();
        let addr = AddressState::uniform(3, &[0, 3, 6]).unwrap();
        let mut layers = bb_query_layers(3);
        let cg_layer = layers
            .iter()
            .position(|l| l.ops.contains(&Op::ClassicalGates))
            .unwrap();
        layers[cg_layer].ops.push(Op::ClassicalGates);
        let interpreted = execute_layers(&layers, &mem, &addr).unwrap();
        let plan = CompiledQuery::compile(3, &layers).unwrap();
        assert_eq!(plan.execute(&mem, &addr), interpreted);
        assert_eq!(interpreted.outcome.data_for(0), Some(0));
    }

    #[test]
    fn compiled_layer_trajectory_sums_to_totals() {
        for arch in [LayerArch::BucketBrigade, LayerArch::FatTree] {
            let plan = compiled_query(arch, 4);
            let mut sum = GateCounts::default();
            for c in plan.layer_gate_counts() {
                sum.cswap += c.cswap;
                sum.inter_node_swap += c.inter_node_swap;
                sum.local_swap += c.local_swap;
                sum.classical += c.classical;
            }
            assert_eq!(sum, plan.gate_counts(), "{arch:?}");
        }
    }

    #[test]
    fn compiled_retrieval_layer_matches_closed_forms() {
        // BB retrieves at layer 4n + 1; Fat-Tree at layer 5n (Fig. 6).
        for n in 1..=6u32 {
            let bb = compiled_query(LayerArch::BucketBrigade, n);
            assert_eq!(bb.retrieval_layer(), Some(4 * n as usize + 1), "n={n}");
            let ft = compiled_query(LayerArch::FatTree, n);
            assert_eq!(ft.retrieval_layer(), Some(5 * n as usize), "n={n}");
        }
    }

    #[test]
    fn compiled_noisy_survival_matches_interpreter_statistics() {
        // Same fault-callback count per class per branch as the
        // interpreter, and the same all-or-nothing extremes.
        let mem = memory8();
        let addr = AddressState::uniform(3, &[1, 4, 6]).unwrap();
        let layers = fat_tree_query_layers(3);
        let plan = CompiledQuery::compile(3, &layers).unwrap();
        assert!((plan.noisy_survival(&addr, |_| false) - 1.0).abs() < 1e-12);
        assert_eq!(plan.noisy_survival(&addr, |_| true), 0.0);
        let mut interp_calls = GateCounts::default();
        execute_layers_noisy(&layers, &mem, &addr, |class| {
            interp_calls.record(class, 1);
            false
        })
        .unwrap();
        let mut plan_calls = GateCounts::default();
        plan.noisy_survival(&addr, |class| {
            plan_calls.record(class, 1);
            false
        });
        assert_eq!(plan_calls, interp_calls);
    }

    #[test]
    fn corrupt_stream_is_rejected() {
        // Dropping the final unload leaves a qubit in flight.
        let mem = memory8();
        let addr = AddressState::classical(3, 5).unwrap();
        let mut layers = bb_query_layers(3);
        let last = layers.last_mut().unwrap();
        last.ops.clear();
        let err = execute_layers(&layers, &mem, &addr).unwrap_err();
        assert!(err.message.contains("in flight") || err.message.contains("UNLOAD"));
    }

    #[test]
    fn double_store_is_rejected() {
        let mem = memory8();
        let addr = AddressState::classical(3, 0).unwrap();
        let mut layers = bb_query_layers(3);
        // Duplicate the first store.
        layers[1].ops.push(Op::Store(0));
        let err = execute_layers(&layers, &mem, &addr).unwrap_err();
        assert!(err.message.contains("STORE"), "{err}");
    }

    #[test]
    fn noiseless_noisy_execution_survives_fully() {
        let mem = memory8();
        let addr = AddressState::full_superposition(3);
        let layers = fat_tree_query_layers(3);
        let survival = execute_layers_noisy(&layers, &mem, &addr, |_| false).unwrap();
        assert!((survival - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fully_faulty_execution_survives_nothing() {
        let mem = memory8();
        let addr = AddressState::full_superposition(3);
        let layers = bb_query_layers(3);
        let survival = execute_layers_noisy(&layers, &mem, &addr, |_| true).unwrap();
        assert_eq!(survival, 0.0);
    }

    #[test]
    fn selective_faults_corrupt_expected_fraction() {
        // Fault only CSWAPs deterministically every k-th call: survival
        // must be 0 (every branch routes through CSWAPs).
        let mem = memory8();
        let addr = AddressState::uniform(3, &[1, 6]).unwrap();
        let layers = bb_query_layers(3);
        let mut count = 0u64;
        let survival = execute_layers_noisy(&layers, &mem, &addr, |class| {
            if class == GateClass::Cswap {
                count += 1;
                count == 1 // fault exactly the first CSWAP per run
            } else {
                false
            }
        })
        .unwrap();
        // First branch corrupted, second survives with weight 1/2.
        assert!((survival - 0.5).abs() < 1e-12);
    }
}
