//! The Fat-Tree QRAM architecture (§4) — the paper's contribution.

use qram_metrics::{Capacity, Layers, TimingModel};
use qsim::branch::{AddressState, ClassicalMemory, QueryOutcome};

use crate::exec::{execute_layers, ExecError, Execution};
use crate::latency;
use crate::pipeline::PipelineSchedule;
use crate::query_ops::{fat_tree_query_layers, QueryLayer};
use crate::tree::TreeShape;

/// A Fat-Tree QRAM of capacity `N`: a binary tree whose level-`i` nodes
/// multiplex `n − i` quantum routers, pipelining up to `log₂ N` independent
/// queries with a new query admitted every 10 circuit layers (§4.3).
///
/// # Examples
///
/// ```
/// use qram_core::FatTreeQram;
/// use qram_metrics::Capacity;
///
/// let qram = FatTreeQram::new(Capacity::new(1024)?);
/// assert_eq!(qram.query_parallelism(), 10);       // log₂(1024) queries
/// assert_eq!(qram.router_count(), 2 * 1024 - 2 - 10);
/// assert_eq!(qram.single_query_layers_integer(), 99); // 10n − 1
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FatTreeQram {
    capacity: Capacity,
}

impl FatTreeQram {
    /// Creates a Fat-Tree QRAM of the given capacity.
    #[must_use]
    pub fn new(capacity: Capacity) -> Self {
        FatTreeQram { capacity }
    }

    /// The memory capacity `N`.
    #[must_use]
    pub fn capacity(&self) -> Capacity {
        self.capacity
    }

    /// The address width / tree depth `n`.
    #[must_use]
    pub fn address_width(&self) -> u32 {
        self.capacity.address_width()
    }

    /// The static tree geometry (router multiplexing, wires, sub-QRAMs).
    #[must_use]
    pub fn shape(&self) -> TreeShape {
        TreeShape::new(self.capacity)
    }

    /// Number of quantum routers: `2N − 2 − n`, about double a BB QRAM.
    #[must_use]
    pub fn router_count(&self) -> u64 {
        self.shape().fat_tree_router_count()
    }

    /// Query parallelism: `log₂ N` pipelined queries (Fig. 1(b)).
    #[must_use]
    pub fn query_parallelism(&self) -> u32 {
        self.address_width()
    }

    /// The layered instruction stream of one query, including the local
    /// swap steps (Fig. 12).
    #[must_use]
    pub fn query_layers(&self) -> Vec<QueryLayer> {
        fat_tree_query_layers(self.address_width())
    }

    /// Integer circuit-layer count of a single query: `10n − 1`.
    #[must_use]
    pub fn single_query_layers_integer(&self) -> u64 {
        latency::fat_tree_single_query_integer(self.capacity)
    }

    /// Weighted single-query latency (`8.25n − 0.125` with paper defaults).
    #[must_use]
    pub fn single_query_latency(&self, timing: &TimingModel) -> Layers {
        latency::fat_tree_single_query(self.capacity, timing)
    }

    /// Weighted pipeline interval — the amortized per-query latency at full
    /// utilization (`8.25` with paper defaults).
    #[must_use]
    pub fn pipeline_interval(&self, timing: &TimingModel) -> Layers {
        latency::fat_tree_pipeline_interval(timing)
    }

    /// Weighted latency of `p` pipelined queries
    /// (`16.5n − 8.375` at `p = n`, Table 1).
    #[must_use]
    pub fn parallel_queries_latency(&self, p: u32, timing: &TimingModel) -> Layers {
        latency::fat_tree_parallel_queries(self.capacity, p, timing)
    }

    /// Builds the pipelined schedule for `num_queries` back-to-back queries
    /// (Fig. 6): start layers, retrieval layers, sub-QRAM trajectories, and
    /// conflict validation.
    #[must_use]
    pub fn pipeline(&self, num_queries: usize) -> PipelineSchedule {
        PipelineSchedule::new(self.capacity, num_queries)
    }

    /// Executes one query functionally (Eq. 1).
    ///
    /// # Errors
    ///
    /// Returns an error if the generated instruction stream fails
    /// validation — see [`ExecError`].
    ///
    /// # Panics
    ///
    /// Panics if `memory` does not match the QRAM capacity.
    pub fn execute_query(
        &self,
        memory: &ClassicalMemory,
        address: &AddressState,
    ) -> Result<QueryOutcome, ExecError> {
        self.execute_query_traced(memory, address)
            .map(|exec| exec.outcome)
    }

    /// Like [`Self::execute_query`] but also returns gate counts.
    ///
    /// # Errors
    ///
    /// See [`Self::execute_query`].
    pub fn execute_query_traced(
        &self,
        memory: &ClassicalMemory,
        address: &AddressState,
    ) -> Result<Execution, ExecError> {
        assert_eq!(
            memory.capacity() as u64,
            self.capacity.get(),
            "memory capacity must match QRAM capacity"
        );
        execute_layers(&self.query_layers(), memory, address)
    }

    /// Executes a batch of pipelined queries against a shared memory,
    /// validating that the pipeline schedule is conflict-free, and returns
    /// one outcome per query.
    ///
    /// Memory snapshots are taken at each query's *data-retrieval layer*;
    /// `memory_updates` maps a global circuit layer to cell writes applied
    /// at that layer (modelling the classical memory swap of §7.2). Updates
    /// must respect the classical-swap time budget: a query sees exactly
    /// the memory contents current at its retrieval layer.
    ///
    /// # Errors
    ///
    /// Returns an error if any query's instruction stream fails validation.
    ///
    /// # Panics
    ///
    /// Panics if the memory capacity mismatches or more queries than
    /// addresses are supplied.
    pub fn execute_queries(
        &self,
        memory: &ClassicalMemory,
        addresses: &[AddressState],
        memory_updates: &[(u64, u64, u64)], // (layer, address, value)
    ) -> Result<Vec<QueryOutcome>, ExecError> {
        let schedule = self.pipeline(addresses.len());
        schedule
            .validate_no_conflicts()
            .expect("generated pipeline must be conflict-free");
        let mut mem = memory.clone();
        let mut updates: Vec<&(u64, u64, u64)> = memory_updates.iter().collect();
        updates.sort_by_key(|&&(layer, _, _)| layer);
        let mut next_update = 0usize;
        let mut outcomes = Vec::with_capacity(addresses.len());
        // Process queries in retrieval order, applying memory writes that
        // land before each retrieval layer.
        let mut order: Vec<usize> = (0..addresses.len()).collect();
        order.sort_by_key(|&q| schedule.timing(q).retrieval_layer);
        let mut results: Vec<Option<QueryOutcome>> = vec![None; addresses.len()];
        for q in order {
            let retrieval = schedule.timing(q).retrieval_layer;
            while next_update < updates.len() && updates[next_update].0 <= retrieval {
                let &(_, addr, value) = updates[next_update];
                mem.write(addr, value);
                next_update += 1;
            }
            let exec = execute_layers(&self.query_layers(), &mem, &addresses[q])?;
            results[q] = Some(exec.outcome);
        }
        for r in results {
            outcomes.push(r.expect("every query executed"));
        }
        Ok(outcomes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qram8() -> FatTreeQram {
        FatTreeQram::new(Capacity::new(8).unwrap())
    }

    #[test]
    fn figure_6_numbers() {
        let q = qram8();
        assert_eq!(q.single_query_layers_integer(), 29);
        assert_eq!(q.query_parallelism(), 3);
        assert_eq!(q.router_count(), 2 * 8 - 2 - 3);
    }

    #[test]
    fn single_query_matches_ideal() {
        let q = qram8();
        let mem = ClassicalMemory::from_words(1, &[0, 1, 0, 1, 1, 1, 0, 0]).unwrap();
        let addr = AddressState::full_superposition(3);
        let out = q.execute_query(&mem, &addr).unwrap();
        assert!((out.fidelity(&mem.ideal_query(&addr)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pipelined_batch_returns_per_query_outcomes() {
        let q = qram8();
        let mem = ClassicalMemory::from_words(1, &[1, 0, 0, 1, 0, 1, 1, 0]).unwrap();
        let addresses: Vec<AddressState> = vec![
            AddressState::uniform(3, &[0, 1]).unwrap(),
            AddressState::classical(3, 3).unwrap(),
            AddressState::uniform(3, &[5, 6, 7]).unwrap(),
        ];
        let outs = q.execute_queries(&mem, &addresses, &[]).unwrap();
        assert_eq!(outs.len(), 3);
        assert_eq!(outs[0].data_for(0), Some(1));
        assert_eq!(outs[1].data_for(3), Some(1));
        assert_eq!(outs[2].data_for(6), Some(1));
        assert_eq!(outs[2].data_for(7), Some(0));
    }

    #[test]
    fn memory_update_between_retrievals_is_visible_to_later_queries() {
        let q = qram8();
        let mem = ClassicalMemory::zeros(8);
        let addresses: Vec<AddressState> = (0..3)
            .map(|_| AddressState::classical(3, 2).unwrap())
            .collect();
        // Retrieval layers for n=3: 15, 25, 35. Write cell 2 := 1 at layer 20:
        // queries 2 and 3 see the new value, query 1 the old.
        let outs = q
            .execute_queries(&mem, &addresses, &[(20, 2, 1)])
            .unwrap();
        assert_eq!(outs[0].data_for(2), Some(0));
        assert_eq!(outs[1].data_for(2), Some(1));
        assert_eq!(outs[2].data_for(2), Some(1));
    }

    #[test]
    fn more_queries_than_parallelism_still_executes() {
        let q = qram8();
        let mem = ClassicalMemory::from_words(1, &[1, 0, 1, 0, 1, 0, 1, 0]).unwrap();
        let addresses: Vec<AddressState> = (0..7u64)
            .map(|i| AddressState::classical(3, i).unwrap())
            .collect();
        let outs = q.execute_queries(&mem, &addresses, &[]).unwrap();
        for (i, out) in outs.iter().enumerate() {
            assert_eq!(out.data_for(i as u64), Some(mem.read(i as u64)));
        }
    }
}
