//! The Fat-Tree QRAM architecture (§4) — the paper's contribution.

use qram_metrics::{Capacity, Layers, TimingModel};
use qsim::branch::{AddressState, ClassicalMemory, QueryOutcome};

use std::sync::Arc;

use crate::exec::{compiled_query, interned_layers, CompiledQuery, ExecError, LayerArch};
use crate::latency;
use crate::model::{execute_batch, QramModel};
use crate::pipeline::PipelineSchedule;
use crate::query_ops::{fat_tree_query_layers, QueryLayer};
use crate::tree::TreeShape;

/// A Fat-Tree QRAM of capacity `N`: a binary tree whose level-`i` nodes
/// multiplex `n − i` quantum routers, pipelining up to `log₂ N` independent
/// queries with a new query admitted every 10 circuit layers (§4.3).
///
/// The query-serving surface lives on the [`QramModel`] trait, shared with
/// [`BucketBrigadeQram`](crate::BucketBrigadeQram).
///
/// # Examples
///
/// ```
/// use qram_core::{FatTreeQram, QramModel};
/// use qram_metrics::Capacity;
///
/// let qram = FatTreeQram::new(Capacity::new(1024)?);
/// assert_eq!(qram.query_parallelism(), 10);       // log₂(1024) queries
/// assert_eq!(qram.router_count(), 2 * 1024 - 2 - 10);
/// assert_eq!(qram.single_query_layers_integer(), 99); // 10n − 1
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FatTreeQram {
    capacity: Capacity,
}

impl FatTreeQram {
    /// Creates a Fat-Tree QRAM of the given capacity.
    #[must_use]
    pub fn new(capacity: Capacity) -> Self {
        FatTreeQram { capacity }
    }

    /// The static tree geometry (router multiplexing, wires, sub-QRAMs).
    #[must_use]
    pub fn shape(&self) -> TreeShape {
        TreeShape::new(self.capacity)
    }

    /// Weighted pipeline interval — the amortized per-query latency at full
    /// utilization (`8.25` with paper defaults).
    #[must_use]
    pub fn pipeline_interval(&self, timing: &TimingModel) -> Layers {
        latency::fat_tree_pipeline_interval(timing)
    }

    /// Builds the pipelined schedule for `num_queries` back-to-back queries
    /// (Fig. 6): start layers, retrieval layers, sub-QRAM trajectories, and
    /// conflict validation.
    #[must_use]
    pub fn pipeline(&self, num_queries: usize) -> PipelineSchedule {
        PipelineSchedule::new(self.capacity, num_queries)
    }
}

impl QramModel for FatTreeQram {
    fn name(&self) -> &'static str {
        "Fat-Tree"
    }

    fn capacity(&self) -> Capacity {
        self.capacity
    }

    /// Number of quantum routers: `2N − 2 − n`, about double a BB QRAM.
    fn router_count(&self) -> u64 {
        self.shape().fat_tree_router_count()
    }

    /// Query parallelism: `log₂ N` pipelined queries (Fig. 1(b)).
    fn query_parallelism(&self) -> u32 {
        self.address_width()
    }

    /// The layered instruction stream of one query, including the local
    /// swap steps (Fig. 12).
    fn query_layers(&self) -> Vec<QueryLayer> {
        fat_tree_query_layers(self.address_width())
    }

    /// The interned per-capacity stream: generated once per process,
    /// shared by every batch and fidelity estimate at this capacity.
    fn interned_query_layers(&self) -> Arc<[QueryLayer]> {
        interned_layers(LayerArch::FatTree, self.address_width())
    }

    /// The interned compiled plan: the stream is partially evaluated once
    /// per capacity, collapsing per-branch execution to one memory read.
    fn compiled_query(&self) -> Option<Arc<CompiledQuery>> {
        Some(compiled_query(LayerArch::FatTree, self.address_width()))
    }

    /// Integer circuit-layer count of a single query: `10n − 1`.
    fn single_query_layers_integer(&self) -> u64 {
        latency::fat_tree_single_query_integer(self.capacity)
    }

    /// Weighted single-query latency (`8.25n − 0.125` with paper defaults).
    fn single_query_latency(&self, timing: &TimingModel) -> Layers {
        latency::fat_tree_single_query(self.capacity, timing)
    }

    /// The pipeline admits a new query every 10 integer layers — `8.25`
    /// weighted layers with paper defaults (§4.3.1), independent of `N`.
    fn admission_interval(&self, timing: &TimingModel) -> Layers {
        latency::fat_tree_pipeline_interval(timing)
    }

    /// Query `q` retrieves at global layer `10q + 5n` (Fig. 6) — the
    /// closed form of [`PipelineSchedule::timing`], evaluated directly so
    /// batched execution never rebuilds a schedule per query.
    fn retrieval_layer(&self, query_index: usize) -> u64 {
        10 * query_index as u64 + 5 * u64::from(self.address_width())
    }

    /// Batched execution additionally validates that the pipelined
    /// schedule is conflict-free before running the shared snapshotting
    /// engine — memory updates must respect the classical-swap time budget
    /// of §7.2. Validation is memoized process-wide per capacity (see
    /// [`crate::pipeline::ensure_conflict_free`]), so steady-state batches
    /// pay a lock instead of an `O(gate steps)` sweep.
    fn execute_queries(
        &self,
        memory: &ClassicalMemory,
        addresses: &[AddressState],
        memory_updates: &[(u64, u64, u64)],
    ) -> Result<Vec<QueryOutcome>, ExecError> {
        crate::pipeline::ensure_conflict_free(self.capacity(), addresses.len())
            .expect("generated pipeline must be conflict-free");
        execute_batch(self, memory, addresses, memory_updates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qram8() -> FatTreeQram {
        FatTreeQram::new(Capacity::new(8).unwrap())
    }

    #[test]
    fn figure_6_numbers() {
        let q = qram8();
        assert_eq!(q.single_query_layers_integer(), 29);
        assert_eq!(q.query_parallelism(), 3);
        assert_eq!(q.router_count(), 2 * 8 - 2 - 3);
        assert_eq!(q.name(), "Fat-Tree");
    }

    #[test]
    fn single_query_matches_ideal() {
        let q = qram8();
        let mem = ClassicalMemory::from_words(1, &[0, 1, 0, 1, 1, 1, 0, 0]).unwrap();
        let addr = AddressState::full_superposition(3);
        let out = q.execute_query(&mem, &addr).unwrap();
        assert!((out.fidelity(&mem.ideal_query(&addr)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pipelined_batch_returns_per_query_outcomes() {
        let q = qram8();
        let mem = ClassicalMemory::from_words(1, &[1, 0, 0, 1, 0, 1, 1, 0]).unwrap();
        let addresses: Vec<AddressState> = vec![
            AddressState::uniform(3, &[0, 1]).unwrap(),
            AddressState::classical(3, 3).unwrap(),
            AddressState::uniform(3, &[5, 6, 7]).unwrap(),
        ];
        let outs = q.execute_queries(&mem, &addresses, &[]).unwrap();
        assert_eq!(outs.len(), 3);
        assert_eq!(outs[0].data_for(0), Some(1));
        assert_eq!(outs[1].data_for(3), Some(1));
        assert_eq!(outs[2].data_for(6), Some(1));
        assert_eq!(outs[2].data_for(7), Some(0));
    }

    #[test]
    fn memory_update_between_retrievals_is_visible_to_later_queries() {
        let q = qram8();
        let mem = ClassicalMemory::zeros(8);
        let addresses: Vec<AddressState> = (0..3)
            .map(|_| AddressState::classical(3, 2).unwrap())
            .collect();
        // Retrieval layers for n=3: 15, 25, 35. Write cell 2 := 1 at layer 20:
        // queries 2 and 3 see the new value, query 1 the old.
        let outs = q.execute_queries(&mem, &addresses, &[(20, 2, 1)]).unwrap();
        assert_eq!(outs[0].data_for(2), Some(0));
        assert_eq!(outs[1].data_for(2), Some(1));
        assert_eq!(outs[2].data_for(2), Some(1));
    }

    #[test]
    fn more_queries_than_parallelism_still_executes() {
        let q = qram8();
        let mem = ClassicalMemory::from_words(1, &[1, 0, 1, 0, 1, 0, 1, 0]).unwrap();
        let addresses: Vec<AddressState> = (0..7u64)
            .map(|i| AddressState::classical(3, i).unwrap())
            .collect();
        let outs = q.execute_queries(&mem, &addresses, &[]).unwrap();
        for (i, out) in outs.iter().enumerate() {
            assert_eq!(out.data_for(i as u64), Some(mem.read(i as u64)));
        }
    }

    #[test]
    fn retrieval_layers_match_pipeline_schedule() {
        let q = qram8();
        let schedule = q.pipeline(5);
        for i in 0..5 {
            assert_eq!(q.retrieval_layer(i), schedule.timing(i).retrieval_layer);
        }
    }
}
