//! Closed-form query latencies (Table 1 of the paper).
//!
//! All functions return *weighted* circuit layers under a [`TimingModel`]:
//! standard (CSWAP) layers count 1, intra-node swap and classical layers
//! count by their relative gate time (⅛ with the paper's defaults). The
//! `*_integer` variants count raw circuit layers as drawn in Figs. 2/6.

use qram_metrics::{Capacity, LayerKind, Layers, TimingModel};

/// Integer circuit layers of a single bucket-brigade query: `8n + 1`
/// (25 for `N = 8`, Fig. 2(a)).
#[must_use]
pub fn bb_single_query_integer(capacity: Capacity) -> u64 {
    8 * u64::from(capacity.address_width()) + 1
}

/// Weighted layers of a single bucket-brigade query: `8n + w_cg` where
/// `w_cg` is the classical-layer weight (`8n + 0.125` by default,
/// Table 1).
#[must_use]
pub fn bb_single_query(capacity: Capacity, timing: &TimingModel) -> Layers {
    let n = capacity.n_f64();
    Layers::new(8.0 * n + timing.layer_weight(LayerKind::Classical))
}

/// Weighted latency of `p` queries on a (sequential) bucket-brigade QRAM:
/// `p · (8n + w_cg)`.
#[must_use]
pub fn bb_parallel_queries(capacity: Capacity, p: u32, timing: &TimingModel) -> Layers {
    bb_single_query(capacity, timing) * f64::from(p)
}

/// Integer circuit layers of a single Fat-Tree query: `10n − 1`
/// (29 for `N = 8`, Fig. 6).
#[must_use]
pub fn fat_tree_single_query_integer(capacity: Capacity) -> u64 {
    10 * u64::from(capacity.address_width()) - 1
}

/// Weighted layers of a single Fat-Tree query: `8n + (2n−1)·w_s`
/// (`8.25n − 0.125` by default, Table 1): `2n` gate steps of four standard
/// layers plus `2n − 1` interleaved swap layers, one of which hosts data
/// retrieval.
#[must_use]
pub fn fat_tree_single_query(capacity: Capacity, timing: &TimingModel) -> Layers {
    let n = capacity.n_f64();
    let w = timing.layer_weight(LayerKind::IntraNode);
    Layers::new(8.0 * n + (2.0 * n - 1.0) * w)
}

/// Integer circuit layers of the Fat-Tree pipeline interval (10): a new
/// query may start every `gate step (4) + SWAP-I (1) + gate step (4) +
/// SWAP-II (1)` layers (§4.3.1).
#[must_use]
pub fn fat_tree_pipeline_interval_integer() -> u64 {
    10
}

/// Weighted Fat-Tree pipeline interval: `8 + 2·w_s` (`8.25` by default) —
/// also the amortized single-query latency at full utilization (Table 1).
#[must_use]
pub fn fat_tree_pipeline_interval(timing: &TimingModel) -> Layers {
    Layers::new(8.0 + 2.0 * timing.layer_weight(LayerKind::IntraNode))
}

/// Weighted latency for `p` pipelined Fat-Tree queries: the last query
/// starts `(p−1)` intervals in and runs for a full single-query latency.
/// For `p = log₂ N` this is `16.5n − 8.375` (Table 1).
#[must_use]
pub fn fat_tree_parallel_queries(capacity: Capacity, p: u32, timing: &TimingModel) -> Layers {
    assert!(p >= 1, "at least one query");
    fat_tree_pipeline_interval(timing) * f64::from(p - 1) + fat_tree_single_query(capacity, timing)
}

/// Integer-layer latency for `p` pipelined Fat-Tree queries:
/// `10(p−1) + 10n − 1`.
#[must_use]
pub fn fat_tree_parallel_queries_integer(capacity: Capacity, p: u32) -> u64 {
    assert!(p >= 1, "at least one query");
    10 * u64::from(p - 1) + fat_tree_single_query_integer(capacity)
}

/// Weighted single-query latency of the Virtual QRAM baseline (Xu et al.
/// 2023) on the Fat-Tree's qubit budget: `K` pages of size `M = N/K` with
/// `K = n/2`, each page queried by a `(8·log M + w_cg)`-layer BB query:
/// `4n² + (4 + w/2)n − 4n·log₂ n` (Table 1's
/// `4 log²N + 4.0625 log N − 4 log N log log N`).
#[must_use]
pub fn virtual_single_query(capacity: Capacity, timing: &TimingModel) -> Layers {
    let n = capacity.n_f64();
    let w = timing.layer_weight(LayerKind::Classical);
    if n < 2.0 {
        // Degenerate: a single page is an ordinary BB QRAM.
        return bb_single_query(capacity, timing);
    }
    let k = n / 2.0; // number of pages
    let m_log = n - n.log2() + 1.0; // log₂(M) with M = N/K = 2N/n
    Layers::new(k * (8.0 * m_log + w))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cap(n: u64) -> Capacity {
        Capacity::new(n).unwrap()
    }

    fn paper() -> TimingModel {
        TimingModel::paper_default()
    }

    #[test]
    fn bb_matches_table_1() {
        // 8·log N + 0.125.
        assert_eq!(bb_single_query(cap(8), &paper()).get(), 24.125);
        assert_eq!(bb_single_query(cap(1024), &paper()).get(), 80.125);
        assert_eq!(bb_single_query_integer(cap(8)), 25);
    }

    #[test]
    fn fat_tree_matches_table_1() {
        // 8.25·log N − 0.125.
        assert_eq!(fat_tree_single_query(cap(8), &paper()).get(), 24.625);
        assert_eq!(
            fat_tree_single_query(cap(1024), &paper()).get(),
            8.25 * 10.0 - 0.125
        );
        assert_eq!(fat_tree_single_query_integer(cap(8)), 29);
    }

    #[test]
    fn fat_tree_parallel_matches_table_1() {
        // t_logN = 16.5·log N − 8.375.
        for n_exp in [3u32, 5, 10] {
            let c = Capacity::from_address_width(n_exp);
            let got = fat_tree_parallel_queries(c, n_exp, &paper()).get();
            let expect = 16.5 * f64::from(n_exp) - 8.375;
            assert!((got - expect).abs() < 1e-9, "n={n_exp}: {got} vs {expect}");
        }
    }

    #[test]
    fn bb_parallel_is_sequential() {
        let c = cap(1024);
        let one = bb_single_query(c, &paper()).get();
        assert_eq!(bb_parallel_queries(c, 10, &paper()).get(), 10.0 * one);
    }

    #[test]
    fn amortized_interval_is_8_25() {
        assert_eq!(fat_tree_pipeline_interval(&paper()).get(), 8.25);
        assert_eq!(fat_tree_pipeline_interval_integer(), 10);
    }

    #[test]
    fn virtual_matches_table_1_formula() {
        // 4n² + 4.0625n − 4n·log₂(n) at n = 10:
        let got = virtual_single_query(cap(1024), &paper()).get();
        let n: f64 = 10.0;
        let expect = 4.0 * n * n + 4.0625 * n - 4.0 * n * n.log2();
        assert!((got - expect).abs() < 1e-9, "{got} vs {expect}");
    }

    #[test]
    fn virtual_degenerates_to_bb_at_n2() {
        let c = cap(2);
        assert_eq!(
            virtual_single_query(c, &paper()),
            bb_single_query(c, &paper())
        );
    }

    #[test]
    fn fat_tree_faster_than_bb_for_parallel_queries() {
        // The headline result: for log N parallel queries Fat-Tree wins
        // asymptotically (16.5n vs 8n²).
        for n_exp in 2..=16u32 {
            let c = Capacity::from_address_width(n_exp);
            let ft = fat_tree_parallel_queries(c, n_exp, &paper());
            let bb = bb_parallel_queries(c, n_exp, &paper());
            assert!(ft < bb, "n={n_exp}");
        }
    }

    #[test]
    fn fat_tree_single_query_overhead_is_constant_factor() {
        // Single-query latency overhead vs BB is 29:25-like, bounded.
        for n_exp in 1..=16u32 {
            let c = Capacity::from_address_width(n_exp);
            let ratio = fat_tree_single_query(c, &paper()) / bb_single_query(c, &paper());
            assert!(ratio < 1.04, "n={n_exp}: ratio {ratio}");
        }
    }
}
