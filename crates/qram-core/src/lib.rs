//! Bucket-Brigade and Fat-Tree QRAM: the core models of the ASPLOS '25
//! Fat-Tree QRAM paper.
//!
//! This crate implements the paper's primary contribution and its baseline:
//!
//! * [`tree`] — the `(i, j, k)` router indexing of §4.1, including the
//!   sub-component-QRAM decomposition of Fig. 5.
//! * [`ops`] / [`query_ops`] — the elementary instruction set
//!   (Appendix A.1) and exact layer-by-layer instruction streams for both
//!   architectures (Algs. 2 & 3, Figs. 2(a), 6, 12).
//! * [`exec`] — functional branch-based execution validating Eq. (1) and
//!   counting gates per hardware class for the fidelity analysis, plus
//!   the interpret → intern → compile → columnar pipeline that partially
//!   evaluates interned streams into O(1)-per-branch [`CompiledQuery`]
//!   plans and batches them through a structure-of-arrays kernel.
//! * [`pipeline`] — query-level pipelining with conflict-freedom proofs
//!   and diagram rendering.
//! * [`latency`] — the closed-form latencies of Table 1.
//! * [`model`] — the [`QramModel`] backend trait unifying all
//!   architectures behind one lookup interface.
//! * [`store`] — crash-consistent persistence for the fleet's
//!   replicated write stream: a CRC32-framed write-ahead log, atomic
//!   checkpoints with WAL compaction, kill-point-tested recovery, and
//!   the chunked digests behind anti-entropy scrubbing.
//! * [`BucketBrigadeQram`] / [`FatTreeQram`] — the two architectures as
//!   ready-to-use types.
//! * [`ShardedQram`] — `K` shards of either architecture behind an
//!   address-interleaved router, serving as one capacity-`N` backend with
//!   `K×` admission bandwidth.
//!
//! # Examples
//!
//! ```
//! use qram_core::{BucketBrigadeQram, FatTreeQram, QramModel};
//! use qram_metrics::{Capacity, TimingModel};
//!
//! let capacity = Capacity::new(1024)?;
//! let timing = TimingModel::paper_default();
//!
//! let bb = BucketBrigadeQram::new(capacity);
//! let ft = FatTreeQram::new(capacity);
//!
//! // Ten parallel queries: BB must serialize, Fat-Tree pipelines.
//! let bb_latency = bb.parallel_queries_latency(10, &timing);
//! let ft_latency = ft.parallel_queries_latency(10, &timing);
//! assert!(ft_latency.get() < bb_latency.get() / 4.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exec;
pub mod latency;
pub mod model;
pub mod ops;
pub mod pipeline;
pub mod query_ops;
pub mod store;
pub mod tree;

mod bucket_brigade;
mod fat_tree;
mod replication;
mod sharded;
mod soa;

pub use bucket_brigade::BucketBrigadeQram;
pub use exec::{
    compiled_query, interned_layers, CompiledQuery, ExecError, Execution, GateCounts, LayerArch,
    PARALLEL_BRANCH_THRESHOLD,
};
pub use fat_tree::FatTreeQram;
pub use model::{
    execute_batch, execute_batch_rowwise, execute_batch_traced, execute_batch_unmemoized,
    BatchCacheStats, QramModel,
};
pub use ops::{GateClass, Op, QubitTag};
pub use pipeline::{ensure_conflict_free, ConflictError, PipelineSchedule, QueryTiming};
pub use replication::{ReplicatedMemory, ReplicatedWrite};
pub use sharded::{sub_batch_split_count, ShardedQram};
pub use tree::{NodeId, RouterId, TreeShape};
