//! The [`QramModel`] backend trait: one lookup interface over many QRAM
//! engines.
//!
//! Every QRAM architecture in this workspace — today [`BucketBrigadeQram`]
//! and [`FatTreeQram`], tomorrow sharded or distributed backends — exposes
//! the same surface: static geometry (capacity, routers, parallelism),
//! closed-form latencies, the exact layered instruction stream of one
//! query, and functional execution of single and batched queries. Callers
//! in `qram-sched`, `qram-noise`, and `qram-algos` are generic over this
//! trait, so adding an architecture never touches a call site.
//!
//! [`BucketBrigadeQram`]: crate::BucketBrigadeQram
//! [`FatTreeQram`]: crate::FatTreeQram
//!
//! # Examples
//!
//! ```
//! use qram_core::{BucketBrigadeQram, FatTreeQram, QramModel};
//! use qram_metrics::{Capacity, TimingModel};
//!
//! fn throughput_win(model: &impl QramModel, timing: &TimingModel) -> f64 {
//!     let p = model.query_parallelism();
//!     let serial = model.single_query_latency(timing) * f64::from(p);
//!     serial / model.parallel_queries_latency(p, timing)
//! }
//!
//! let capacity = Capacity::new(1024)?;
//! let timing = TimingModel::paper_default();
//! // BB serves queries one at a time: no win. Fat-Tree pipelines log N.
//! assert!((throughput_win(&BucketBrigadeQram::new(capacity), &timing) - 1.0).abs() < 1e-9);
//! assert!(throughput_win(&FatTreeQram::new(capacity), &timing) > 5.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::HashMap;
use std::sync::Arc;

use qram_metrics::{Capacity, Layers, TimingModel};
use qsim::branch::{AddressState, ClassicalMemory, QueryOutcome};

use crate::exec::{execute_layers, CompiledQuery, ExecError, Execution};
use crate::query_ops::QueryLayer;

/// A QRAM architecture viewed as a query-serving backend.
///
/// Required methods describe the architecture (geometry, instruction
/// stream, closed-form latencies); provided methods derive the rest —
/// admission interval, batched latency, and functional execution via the
/// instruction-level executor. Implementations override a provided method
/// only when the architecture has a stronger guarantee (e.g. the Fat-Tree
/// pipeline interval, or conflict-validated batched execution).
pub trait QramModel {
    /// The architecture's display name (as used in the paper's tables).
    fn name(&self) -> &'static str;

    /// The memory capacity `N`.
    fn capacity(&self) -> Capacity;

    /// The address width / tree depth `n = log₂ N`.
    fn address_width(&self) -> u32 {
        self.capacity().address_width()
    }

    /// Number of quantum routers in the architecture.
    fn router_count(&self) -> u64;

    /// Maximum number of queries concurrently in flight.
    fn query_parallelism(&self) -> u32;

    /// The layered instruction stream of one query.
    fn query_layers(&self) -> Vec<QueryLayer>;

    /// The layered instruction stream of one query as a shared, cached
    /// allocation — what every hot path (batched execution, fidelity
    /// estimators) should consume instead of [`Self::query_layers`].
    ///
    /// The default builds the stream once per call; the built-in backends
    /// override it to return a clone of the process-wide intern table
    /// entry ([`crate::exec::interned_layers`]), making repeated calls
    /// allocation-free.
    fn interned_query_layers(&self) -> Arc<[QueryLayer]> {
        self.query_layers().into()
    }

    /// The architecture's compiled query plan, when its instruction stream
    /// has been partially evaluated into an O(1)-per-branch
    /// [`CompiledQuery`] (see [`crate::exec::compiled_query`]).
    ///
    /// `None` (the default) keeps every execution path on the interpreter
    /// — correct for backends whose streams are not interned or may
    /// change between queries. The built-in backends override this with
    /// the process-wide interned plan, which routes
    /// [`Self::execute_query_traced`], batched execution, and the
    /// fidelity estimators through the compiled fast path; the
    /// interpreter remains the property-tested reference
    /// ([`execute_layers`], [`execute_batch_unmemoized`], and the pinned
    /// `*_sequential` variants).
    fn compiled_query(&self) -> Option<Arc<CompiledQuery>> {
        None
    }

    /// Integer circuit-layer count of a single query.
    fn single_query_layers_integer(&self) -> u64;

    /// Weighted single-query latency under a timing model.
    fn single_query_latency(&self, timing: &TimingModel) -> Layers;

    /// Minimum weighted spacing between consecutive query admissions.
    ///
    /// Defaults to `latency / parallelism` — exact for sequential machines
    /// (`parallelism = 1`) and for round-robin banks; pipelined
    /// architectures override it with their pipeline interval.
    fn admission_interval(&self, timing: &TimingModel) -> Layers {
        self.single_query_latency(timing) / f64::from(self.query_parallelism())
    }

    /// Weighted latency of `p` concurrent queries: the last query is
    /// admitted `(p − 1)` intervals in and then runs to completion.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    fn parallel_queries_latency(&self, p: u32, timing: &TimingModel) -> Layers {
        assert!(p >= 1, "at least one query");
        self.admission_interval(timing) * f64::from(p - 1) + self.single_query_latency(timing)
    }

    /// The global circuit layer at which query `query_index` (0-based, in
    /// a back-to-back batch) performs data retrieval — the instant at which
    /// it observes the classical memory.
    fn retrieval_layer(&self, query_index: usize) -> u64;

    /// Executes one query functionally over an address superposition,
    /// returning the entangled output state of Eq. (1) of the paper.
    ///
    /// # Errors
    ///
    /// Returns an error if the internally generated instruction stream
    /// fails validation (a bug) — see [`ExecError`].
    ///
    /// # Panics
    ///
    /// Panics if `memory` does not match the QRAM capacity.
    fn execute_query(
        &self,
        memory: &ClassicalMemory,
        address: &AddressState,
    ) -> Result<QueryOutcome, ExecError> {
        self.execute_query_traced(memory, address)
            .map(|exec| exec.outcome)
    }

    /// Like [`Self::execute_query`] but also returns per-class gate counts.
    ///
    /// Backends exposing a [`Self::compiled_query`] plan answer in O(1)
    /// residual work per branch (the stream was proven valid for every
    /// address at compile time); everything else walks the interpreter.
    ///
    /// # Errors
    ///
    /// See [`Self::execute_query`].
    ///
    /// # Panics
    ///
    /// Panics if `memory` does not match the QRAM capacity.
    fn execute_query_traced(
        &self,
        memory: &ClassicalMemory,
        address: &AddressState,
    ) -> Result<Execution, ExecError> {
        assert_eq!(
            memory.capacity() as u64,
            self.capacity().get(),
            "memory capacity must match QRAM capacity"
        );
        if let Some(plan) = self.compiled_query() {
            return Ok(plan.execute(memory, address));
        }
        execute_layers(&self.interned_query_layers(), memory, address)
    }

    /// Executes a batch of back-to-back queries against a shared memory,
    /// returning one outcome per query.
    ///
    /// Memory snapshots are taken at each query's *data-retrieval layer*
    /// ([`Self::retrieval_layer`]); `memory_updates` maps a global circuit
    /// layer to cell writes applied at that layer (modelling the classical
    /// memory swap of §7.2 of the paper). A query sees exactly the memory
    /// contents current at its retrieval layer, including an update whose
    /// layer *equals* that retrieval layer (see [`execute_batch`] for the
    /// tie semantics).
    ///
    /// # Errors
    ///
    /// Returns an error if any query's instruction stream fails validation.
    ///
    /// # Panics
    ///
    /// Panics if the memory capacity mismatches the QRAM capacity.
    fn execute_queries(
        &self,
        memory: &ClassicalMemory,
        addresses: &[AddressState],
        memory_updates: &[(u64, u64, u64)], // (layer, address, value)
    ) -> Result<Vec<QueryOutcome>, ExecError> {
        execute_batch(self, memory, addresses, memory_updates)
    }
}

/// Hit/miss counters of the per-batch query-outcome memo cache of
/// [`execute_batch_traced`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchCacheStats {
    /// Queries answered from the memo cache (no instruction-stream walk).
    pub hits: u64,
    /// Queries that executed the instruction stream.
    pub misses: u64,
}

impl BatchCacheStats {
    /// Fraction of queries answered from the cache (`0.0` for an empty
    /// batch).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Shared batched-execution engine behind
/// [`QramModel::execute_queries`]: processes queries in retrieval order,
/// applying each memory write at its layer, so every query observes the
/// memory contents current at its own retrieval layer.
///
/// Retrieval layers are computed once per query up front (one
/// [`QramModel::retrieval_layer`] call each), never inside the sort or the
/// execution loop — backends may answer from a pipeline schedule, and a
/// `B`-query batch must stay `O(B)` in schedule constructions. The
/// instruction stream is taken from
/// [`QramModel::interned_query_layers`], so it is generated at most once
/// per process rather than once per batch; when the backend exposes a
/// [`QramModel::compiled_query`] plan, cache misses skip the interpreter
/// entirely and answer each branch with the plan's O(1) residual read.
///
/// # Memoization
///
/// Branch data is a pure function of the memory contents and the address
/// set, so outcomes are memoized within the batch keyed on
/// `(write_epoch, address set)`: a query whose address set was already
/// executed against the same memory epoch reuses the cached per-address
/// data (amplitudes are applied per query, so superpositions with
/// different amplitudes over the same addresses still hit). Every memory
/// update bumps the epoch ([`ClassicalMemory::write_epoch`]), which
/// invalidates the whole cache — exactly the §7.2 semantics. Repeated
/// classical addresses across a batch (the common serving pattern) hit
/// the cache; hit rates are observable through [`execute_batch_traced`].
///
/// # Tie semantics (§7.2)
///
/// An update whose layer exactly *equals* a query's retrieval layer **is
/// visible** to that query: the classical memory swap of §7.2 completes
/// within the swap step that precedes the query's CLASSICAL-GATES
/// retrieval in the same circuit layer, so the write lands first. Updates
/// strictly after the retrieval layer are seen only by later queries.
///
/// # Errors
///
/// Returns an error if any query's instruction stream fails validation.
///
/// # Panics
///
/// Panics if the memory capacity mismatches the QRAM capacity.
pub fn execute_batch<M: QramModel + ?Sized>(
    model: &M,
    memory: &ClassicalMemory,
    addresses: &[AddressState],
    memory_updates: &[(u64, u64, u64)],
) -> Result<Vec<QueryOutcome>, ExecError> {
    execute_batch_traced(model, memory, addresses, memory_updates).map(|(outcomes, _)| outcomes)
}

/// [`execute_batch`] with the memo-cache hit/miss counters alongside the
/// outcomes — the instrumented entry point behind the Zipf cache-hit-rate
/// benchmark.
///
/// Backends exposing a [`QramModel::compiled_query`] plan are served by
/// the columnar structure-of-arrays kernel (`soa` module): one flattened
/// term column per batch, per-epoch memo accounting, bit-parallel
/// retrieval for 1-bit buses, and per-query outcomes that are views into
/// one shared column. Outcomes, panics, and [`BatchCacheStats`] are
/// bit-equal to the row-at-a-time path ([`execute_batch_rowwise`]), which
/// remains pinned as the A/B baseline; plan-less backends take the
/// row-at-a-time interpreter sweep as before.
///
/// # Errors
///
/// See [`execute_batch`].
///
/// # Panics
///
/// Panics if the memory capacity mismatches the QRAM capacity.
pub fn execute_batch_traced<M: QramModel + ?Sized>(
    model: &M,
    memory: &ClassicalMemory,
    addresses: &[AddressState],
    memory_updates: &[(u64, u64, u64)],
) -> Result<(Vec<QueryOutcome>, BatchCacheStats), ExecError> {
    assert_eq!(
        memory.capacity() as u64,
        model.capacity().get(),
        "memory capacity must match QRAM capacity"
    );
    if let Some(plan) = model.compiled_query() {
        if addresses.is_empty() {
            return Ok((Vec::new(), BatchCacheStats::default()));
        }
        // Retrieval layers only order queries against memory writes; an
        // update-free batch is one epoch in query order and needs none.
        let retrievals: Vec<u64> = if memory_updates.is_empty() {
            Vec::new()
        } else {
            (0..addresses.len())
                .map(|q| model.retrieval_layer(q))
                .collect()
        };
        return Ok(crate::soa::execute_batch_columnar(
            &plan,
            memory,
            addresses,
            &retrievals,
            memory_updates,
        ));
    }
    execute_batch_impl(model, memory, addresses, memory_updates, true, true)
}

/// The row-at-a-time memoized batch path: the same §7.2 sweep as
/// [`execute_batch_traced`] with the per-query memo cache and compiled-
/// plan dispatch, but *without* the columnar kernel — each query probes
/// the memo hash individually and builds its own outcome terms. Pinned as
/// the baseline side of the `columnar_exec` A/B benchmark and of the
/// columnar property tests; behaviourally identical to the columnar path
/// by construction (outcomes, error surfaces, and [`BatchCacheStats`]).
///
/// # Errors
///
/// See [`execute_batch`].
///
/// # Panics
///
/// Panics if the memory capacity mismatches the QRAM capacity.
pub fn execute_batch_rowwise<M: QramModel + ?Sized>(
    model: &M,
    memory: &ClassicalMemory,
    addresses: &[AddressState],
    memory_updates: &[(u64, u64, u64)],
) -> Result<(Vec<QueryOutcome>, BatchCacheStats), ExecError> {
    execute_batch_impl(model, memory, addresses, memory_updates, true, true)
}

/// [`execute_batch`] with memoization *and* the compiled-plan fast path
/// disabled: every query walks the instruction stream through the
/// interpreter, even for a repeated `(epoch, address set)`. The reference
/// side of both A/Bs (property tests, the `cache_hit_rate` and
/// `compiled_exec` benchmarks) — the same sweep as [`execute_batch`] with
/// only the cache lookup and plan dispatch disabled, so the paths cannot
/// drift apart.
///
/// # Errors
///
/// See [`execute_batch`].
///
/// # Panics
///
/// Panics if the memory capacity mismatches the QRAM capacity.
pub fn execute_batch_unmemoized<M: QramModel + ?Sized>(
    model: &M,
    memory: &ClassicalMemory,
    addresses: &[AddressState],
    memory_updates: &[(u64, u64, u64)],
) -> Result<Vec<QueryOutcome>, ExecError> {
    execute_batch_impl(model, memory, addresses, memory_updates, false, false)
        .map(|(outcomes, _)| outcomes)
}

/// The shared §7.2 sweep behind [`execute_batch_traced`] (memoize and
/// plan dispatch on) and [`execute_batch_unmemoized`] (both off): one
/// body, so the reference path cannot silently diverge from the cached
/// path.
fn execute_batch_impl<M: QramModel + ?Sized>(
    model: &M,
    memory: &ClassicalMemory,
    addresses: &[AddressState],
    memory_updates: &[(u64, u64, u64)],
    memoize: bool,
    use_plan: bool,
) -> Result<(Vec<QueryOutcome>, BatchCacheStats), ExecError> {
    assert_eq!(
        memory.capacity() as u64,
        model.capacity().get(),
        "memory capacity must match QRAM capacity"
    );
    if addresses.is_empty() {
        return Ok((Vec::new(), BatchCacheStats::default()));
    }
    let plan = if use_plan {
        model.compiled_query()
    } else {
        None
    };
    // The instruction stream is only walked when no plan services the
    // misses; don't make a backend with a default (regenerating)
    // `interned_query_layers` build a stream nobody reads.
    let layers = if plan.is_none() {
        Some(model.interned_query_layers())
    } else {
        None
    };
    let n = memory.address_width();
    let bus_width = memory.bus_width();
    let mut mem = memory.clone();
    let retrievals: Vec<u64> = (0..addresses.len())
        .map(|q| model.retrieval_layer(q))
        .collect();
    let mut results: Vec<Option<QueryOutcome>> = vec![None; addresses.len()];
    // Address set → per-address data in address order, valid for the
    // memoized write epoch only: epochs are monotone, so a write bumping
    // the epoch makes every existing entry permanently unreachable —
    // clearing the map is equivalent to (and cheaper than) keying on the
    // epoch. The cached value intentionally excludes amplitudes: data
    // depends only on the memory and the addresses, so any superposition
    // over the same address set reuses it. Lookups borrow `key_scratch`
    // as a plain `&[u64]`, so cache hits allocate nothing; the key is
    // cloned into the map only on a miss.
    let mut memo: HashMap<Vec<u64>, Arc<[u64]>> = HashMap::new();
    let mut memo_epoch = mem.write_epoch();
    let mut key_scratch: Vec<u64> = Vec::new();
    let mut stats = BatchCacheStats::default();
    retrieval_order_sweep(&retrievals, memory_updates, |event| match event {
        SweepEvent::Update { address, value } => {
            mem.write(address, value);
            Ok(())
        }
        SweepEvent::Query(q) => {
            let address = &addresses[q];
            // The miss path asserts this inside `execute_layers`; repeat
            // it here so a width-mismatched query also panics when it
            // would otherwise be answered from the cache.
            assert_eq!(
                address.address_width(),
                n,
                "address width must match memory capacity"
            );
            let run_query = |mem: &ClassicalMemory| -> Result<Arc<[u64]>, ExecError> {
                // Outcome terms share the ascending address order of
                // `AddressState`, so cached data aligns positionally.
                match &plan {
                    Some(plan) => Ok(address
                        .iter()
                        .map(|&(_, a)| plan.read_data(mem, a))
                        .collect()),
                    None => {
                        let layers = layers.as_ref().expect("layers fetched when no plan");
                        let exec = execute_layers(layers, mem, address)?;
                        Ok(exec.outcome.iter().map(|&(_, _, d)| d).collect())
                    }
                }
            };
            let data: Arc<[u64]> = if memoize {
                if mem.write_epoch() != memo_epoch {
                    memo.clear();
                    memo_epoch = mem.write_epoch();
                }
                key_scratch.clear();
                key_scratch.extend(address.iter().map(|&(_, a)| a));
                if let Some(cached) = memo.get(key_scratch.as_slice()) {
                    stats.hits += 1;
                    Arc::clone(cached)
                } else {
                    stats.misses += 1;
                    let data = run_query(&mem)?;
                    memo.insert(key_scratch.clone(), Arc::clone(&data));
                    data
                }
            } else {
                stats.misses += 1;
                run_query(&mem)?
            };
            // Outcome terms and cached data share the address ordering of
            // `AddressState` (sorted ascending), so a positional zip
            // reattaches this query's amplitudes.
            let terms: Vec<_> = address
                .iter()
                .zip(data.iter())
                .map(|(&(amp, addr), &d)| (amp, addr, d))
                .collect();
            results[q] = Some(QueryOutcome::from_terms(n, bus_width, terms));
            Ok(())
        }
    })?;
    Ok((
        results
            .into_iter()
            .map(|r| r.expect("every query executed"))
            .collect(),
        stats,
    ))
}

/// One step of the §7.2 retrieval-order sweep of
/// [`retrieval_order_sweep`].
pub(crate) enum SweepEvent {
    /// Deliver a classical memory write (global address, value).
    Update {
        /// The written global cell address.
        address: u64,
        /// The written value.
        value: u64,
    },
    /// Execute query `q` against the memory contents delivered so far.
    Query(usize),
}

/// The §7.2 retrieval-order sweep shared by [`execute_batch`] and the
/// sharded backend: visits queries in ascending retrieval-layer order,
/// delivering every pending memory update whose layer is `<=` the query's
/// retrieval layer *before* that query executes. The `<=` is the tie
/// rule — a write at exactly the retrieval layer IS visible — and lives
/// only here, so both engines stay in lockstep.
pub(crate) fn retrieval_order_sweep<E>(
    retrievals: &[u64],
    memory_updates: &[(u64, u64, u64)],
    mut on_event: impl FnMut(SweepEvent) -> Result<(), E>,
) -> Result<(), E> {
    let mut order: Vec<usize> = (0..retrievals.len()).collect();
    order.sort_by_key(|&q| retrievals[q]);
    let mut updates: Vec<&(u64, u64, u64)> = memory_updates.iter().collect();
    updates.sort_by_key(|&&(layer, _, _)| layer);
    let mut next_update = 0usize;
    for q in order {
        while next_update < updates.len() && updates[next_update].0 <= retrievals[q] {
            let &(_, address, value) = updates[next_update];
            on_event(SweepEvent::Update { address, value })?;
            next_update += 1;
        }
        on_event(SweepEvent::Query(q))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BucketBrigadeQram, FatTreeQram};

    fn models(n: u64) -> (BucketBrigadeQram, FatTreeQram) {
        let capacity = Capacity::new(n).unwrap();
        (BucketBrigadeQram::new(capacity), FatTreeQram::new(capacity))
    }

    #[test]
    fn trait_objects_are_usable() {
        let (bb, ft) = models(8);
        let backends: Vec<&dyn QramModel> = vec![&bb, &ft];
        let mem = ClassicalMemory::from_words(1, &[1, 0, 1, 0, 0, 1, 0, 1]).unwrap();
        let addr = AddressState::uniform(3, &[0, 5]).unwrap();
        for backend in backends {
            let out = backend.execute_query(&mem, &addr).unwrap();
            assert_eq!(out.data_for(0), Some(1));
            assert_eq!(out.data_for(5), Some(1));
        }
    }

    #[test]
    fn default_parallel_latency_matches_closed_forms() {
        let timing = TimingModel::paper_default();
        let (bb, ft) = models(1024);
        // BB: p sequential queries.
        let p = 10u32;
        let bb_expect = crate::latency::bb_parallel_queries(bb.capacity(), p, &timing);
        assert!((bb.parallel_queries_latency(p, &timing).get() - bb_expect.get()).abs() < 1e-9);
        // Fat-Tree: pipelined admission, Table 1's 16.5n − 8.375.
        let ft_expect = crate::latency::fat_tree_parallel_queries(ft.capacity(), p, &timing);
        assert!((ft.parallel_queries_latency(p, &timing).get() - ft_expect.get()).abs() < 1e-9);
    }

    #[test]
    fn admission_intervals() {
        let timing = TimingModel::paper_default();
        let (bb, ft) = models(1024);
        // Sequential machine: interval == latency.
        assert_eq!(
            bb.admission_interval(&timing),
            bb.single_query_latency(&timing)
        );
        // Pipelined machine: the paper's 8.25-layer interval.
        assert_eq!(ft.admission_interval(&timing).get(), 8.25);
    }

    #[test]
    fn retrieval_layers_are_increasing_on_both_backends() {
        let (bb, ft) = models(8);
        for model in [&bb as &dyn QramModel, &ft as &dyn QramModel] {
            let mut prev = 0;
            for q in 0..5 {
                let r = model.retrieval_layer(q);
                assert!(r > prev, "{}: retrieval {r} at query {q}", model.name());
                prev = r;
            }
        }
    }

    #[test]
    fn batched_execution_agrees_across_backends() {
        let (bb, ft) = models(8);
        let mem = ClassicalMemory::from_words(1, &[1, 0, 0, 1, 0, 1, 1, 0]).unwrap();
        let addresses: Vec<AddressState> = (0..4u64)
            .map(|i| AddressState::classical(3, i * 2).unwrap())
            .collect();
        let bb_out = bb.execute_queries(&mem, &addresses, &[]).unwrap();
        let ft_out = ft.execute_queries(&mem, &addresses, &[]).unwrap();
        assert_eq!(bb_out.len(), ft_out.len());
        for (b, f) in bb_out.iter().zip(&ft_out) {
            assert!((b.fidelity(f) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_batch_returns_no_outcomes() {
        let (bb, ft) = models(4);
        let mem = ClassicalMemory::zeros(4);
        assert!(bb.execute_queries(&mem, &[], &[]).unwrap().is_empty());
        assert!(ft.execute_queries(&mem, &[], &[]).unwrap().is_empty());
    }

    #[test]
    fn memory_updates_respect_retrieval_order_on_bb() {
        // BB queries serialize: retrievals at 4n+1, then (8n+1)+4n+1, …
        let (bb, _) = models(8);
        assert_eq!(bb.retrieval_layer(0), 13);
        assert_eq!(bb.retrieval_layer(1), 25 + 13);
        let mem = ClassicalMemory::zeros(8);
        let addresses: Vec<AddressState> = (0..2)
            .map(|_| AddressState::classical(3, 4).unwrap())
            .collect();
        // Write lands between the two retrievals.
        let outs = bb.execute_queries(&mem, &addresses, &[(20, 4, 1)]).unwrap();
        assert_eq!(outs[0].data_for(4), Some(0));
        assert_eq!(outs[1].data_for(4), Some(1));
    }

    #[test]
    fn update_at_exact_retrieval_layer_is_visible_on_both_backends() {
        // §7.2 tie semantics: the classical swap completes within the swap
        // step preceding retrieval in the same layer, so a write at layer
        // == retrieval_layer(q) IS seen by query q; one layer later is not.
        let (bb, ft) = models(8);
        for model in [&bb as &dyn QramModel, &ft as &dyn QramModel] {
            let mem = ClassicalMemory::zeros(8);
            let addresses: Vec<AddressState> = (0..2)
                .map(|_| AddressState::classical(3, 6).unwrap())
                .collect();
            let r0 = model.retrieval_layer(0);
            // Write lands exactly at query 0's retrieval layer: visible.
            let outs = model
                .execute_queries(&mem, &addresses, &[(r0, 6, 1)])
                .unwrap();
            assert_eq!(outs[0].data_for(6), Some(1), "{}: tie write", model.name());
            assert_eq!(outs[1].data_for(6), Some(1), "{}", model.name());
            // One layer later: query 0 sees the old value, query 1 the new.
            let outs = model
                .execute_queries(&mem, &addresses, &[(r0 + 1, 6, 1)])
                .unwrap();
            assert_eq!(outs[0].data_for(6), Some(0), "{}: late write", model.name());
            assert_eq!(outs[1].data_for(6), Some(1), "{}", model.name());
        }
    }

    #[test]
    fn retrieval_layers_match_closed_forms() {
        let (bb, ft) = models(8);
        for q in 0..6 {
            // Fat-Tree: 10q + 5n; BB: q(8n + 1) + 4n + 1 (n = 3).
            assert_eq!(ft.retrieval_layer(q), 10 * q as u64 + 15);
            assert_eq!(bb.retrieval_layer(q), q as u64 * 25 + 13);
        }
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn batch_rejects_mismatched_memory() {
        let (_, ft) = models(8);
        let mem = ClassicalMemory::zeros(4);
        let _ = ft.execute_queries(&mem, &[], &[]);
    }

    #[test]
    fn repeated_addresses_hit_the_memo_cache() {
        let (_, ft) = models(8);
        let mem = ClassicalMemory::from_words(1, &[1, 0, 0, 1, 1, 0, 1, 0]).unwrap();
        // 6 queries over 2 distinct address sets → 2 misses, 4 hits.
        let addresses: Vec<AddressState> = (0..6u64)
            .map(|i| AddressState::classical(3, i % 2).unwrap())
            .collect();
        let (outs, stats) = execute_batch_traced(&ft, &mem, &addresses, &[]).unwrap();
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.hits, 4);
        assert!((stats.hit_rate() - 4.0 / 6.0).abs() < 1e-12);
        for (i, out) in outs.iter().enumerate() {
            assert_eq!(out.data_for(i as u64 % 2), Some(mem.read(i as u64 % 2)));
        }
    }

    #[test]
    fn memo_hits_apply_per_query_amplitudes() {
        // Two superpositions over the SAME address set with different
        // amplitudes: the second must hit the cache yet keep its own
        // amplitudes in the outcome.
        let (_, ft) = models(8);
        let mem = ClassicalMemory::from_words(1, &[1, 0, 0, 1, 1, 0, 1, 0]).unwrap();
        let uniform = AddressState::uniform(3, &[2, 5]).unwrap();
        let skewed = AddressState::new(
            3,
            [
                (qsim::Complex::real(2.0), 2u64),
                (qsim::Complex::real(1.0), 5u64),
            ],
        )
        .unwrap();
        let (outs, stats) =
            execute_batch_traced(&ft, &mem, &[uniform.clone(), skewed.clone()], &[]).unwrap();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert!((outs[0].fidelity(&mem.ideal_query(&uniform)) - 1.0).abs() < 1e-12);
        assert!((outs[1].fidelity(&mem.ideal_query(&skewed)) - 1.0).abs() < 1e-12);
        // And the two outcomes differ (different amplitude profiles).
        assert!(outs[0].fidelity(&outs[1]) < 1.0 - 1e-6);
    }

    #[test]
    fn memory_write_invalidates_the_memo_cache() {
        // Same address queried before and after a write: the write bumps
        // the epoch, so the second query must MISS and see the new value.
        let (bb, _) = models(8);
        let mem = ClassicalMemory::zeros(8);
        let addresses: Vec<AddressState> = (0..3)
            .map(|_| AddressState::classical(3, 4).unwrap())
            .collect();
        // BB retrievals at 13, 38, 63; write lands between q0 and q1.
        let (outs, stats) = execute_batch_traced(&bb, &mem, &addresses, &[(20, 4, 1)]).unwrap();
        assert_eq!(outs[0].data_for(4), Some(0));
        assert_eq!(outs[1].data_for(4), Some(1));
        assert_eq!(outs[2].data_for(4), Some(1));
        assert_eq!(stats.misses, 2, "epoch bump must force a re-execution");
        assert_eq!(stats.hits, 1, "third query re-hits the post-write entry");
    }

    #[test]
    fn memoized_and_unmemoized_batches_agree() {
        let (bb, ft) = models(8);
        let mem = ClassicalMemory::from_words(1, &[1, 0, 0, 1, 1, 0, 1, 0]).unwrap();
        let addresses: Vec<AddressState> = vec![
            AddressState::uniform(3, &[0, 3, 5]).unwrap(),
            AddressState::classical(3, 3).unwrap(),
            AddressState::uniform(3, &[0, 3, 5]).unwrap(),
            AddressState::classical(3, 3).unwrap(),
        ];
        let updates = [(14u64, 3u64, 1u64), (30, 5, 1)];
        for model in [&bb as &dyn QramModel, &ft as &dyn QramModel] {
            let memoized = execute_batch(model, &mem, &addresses, &updates).unwrap();
            let plain = execute_batch_unmemoized(model, &mem, &addresses, &updates).unwrap();
            assert_eq!(memoized, plain, "{}", model.name());
        }
    }

    #[test]
    fn empty_batch_reports_empty_stats() {
        let (_, ft) = models(4);
        let mem = ClassicalMemory::zeros(4);
        let (outs, stats) = execute_batch_traced(&ft, &mem, &[], &[]).unwrap();
        assert!(outs.is_empty());
        assert_eq!(stats, BatchCacheStats::default());
        assert_eq!(stats.hit_rate(), 0.0);
    }

    #[test]
    fn builtin_backends_return_interned_streams() {
        let (bb, ft) = models(16);
        // Same Arc on repeated calls — the intern table is doing the work.
        assert!(std::sync::Arc::ptr_eq(
            &bb.interned_query_layers(),
            &bb.interned_query_layers()
        ));
        assert!(std::sync::Arc::ptr_eq(
            &ft.interned_query_layers(),
            &ft.interned_query_layers()
        ));
        // And the interned stream is the generated stream.
        assert_eq!(bb.interned_query_layers().as_ref(), bb.query_layers());
        assert_eq!(ft.interned_query_layers().as_ref(), ft.query_layers());
    }
}
