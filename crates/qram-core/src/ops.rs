//! The elementary QRAM instruction set (Appendix A.1 of the paper).

use std::fmt;

/// A qubit flowing through the QRAM tree during a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QubitTag {
    /// The `i`-th address qubit (0-based; address qubit `i` is stored at
    /// tree level `i`).
    Address(u32),
    /// The bus qubit carrying the retrieved data.
    Bus,
}

impl fmt::Display for QubitTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QubitTag::Address(i) => write!(f, "a{}", i + 1),
            QubitTag::Bus => write!(f, "B"),
        }
    }
}

/// The elementary operations of Appendix A.1 plus the Fat-Tree local swap
/// steps of §4.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// `LOAD`: inject a qubit through the escape into the root input.
    Load(QubitTag),
    /// `TRANSPORT`: SWAP a qubit from a level-`i−1` output to a level-`i`
    /// input. The field is the destination level `i ≥ 1`.
    Transport(u32),
    /// `ROUTE`: CSWAP a qubit from a level-`i` input to its outputs,
    /// directed by the router qubit.
    Route(u32),
    /// `STORE`: swap the qubit at the level-`i` input into the router
    /// qubit, activating it.
    Store(u32),
    /// `CLASSICAL-GATES`: classically controlled writes of the memory onto
    /// the delocalized bus at the leaves.
    ClassicalGates,
    /// `UNLOAD`: inverse of `LOAD` — the qubit at the root input exits.
    Unload(QubitTag),
    /// `UNTRANSPORT`: inverse of `TRANSPORT` (field = level the qubit
    /// leaves, moving to level `i−1`'s output).
    Untransport(u32),
    /// `UNROUTE`: inverse of `ROUTE` at the given level.
    Unroute(u32),
    /// `UNSTORE`: inverse of `STORE` — the router qubit at level `i`
    /// becomes an in-flight qubit again.
    Unstore(u32),
    /// Fat-Tree `SWAP-I`: local swap of sub-QRAMs `k ↔ k+1` for even `k`.
    SwapStepI,
    /// Fat-Tree `SWAP-II`: local swap of sub-QRAMs `k ↔ k+1` for odd `k`.
    SwapStepII,
}

/// Hardware gate classes with distinct speeds and error rates (§8.1):
/// `ε₀` for CSWAPs, `ε₁` for inter-node SWAPs, `ε₂` for intra-node local
/// SWAPs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateClass {
    /// Routing CSWAP (error rate ε₀).
    Cswap,
    /// Inter-node SWAP: LOAD / TRANSPORT / STORE and inverses (ε₁).
    InterNodeSwap,
    /// Intra-node local SWAP: Fat-Tree swap steps (ε₂).
    LocalSwap,
    /// Classically controlled gates (data retrieval); treated as
    /// effectively error-free quantum-side in the paper's fidelity model.
    Classical,
}

impl Op {
    /// The gate class implementing this operation.
    #[must_use]
    pub fn gate_class(self) -> GateClass {
        match self {
            Op::Route(_) | Op::Unroute(_) => GateClass::Cswap,
            Op::Load(_)
            | Op::Unload(_)
            | Op::Transport(_)
            | Op::Untransport(_)
            | Op::Store(_)
            | Op::Unstore(_) => GateClass::InterNodeSwap,
            Op::SwapStepI | Op::SwapStepII => GateClass::LocalSwap,
            Op::ClassicalGates => GateClass::Classical,
        }
    }

    /// True for the inverse (unloading-stage) operations.
    #[must_use]
    pub fn is_inverse(self) -> bool {
        matches!(
            self,
            Op::Unload(_) | Op::Untransport(_) | Op::Unroute(_) | Op::Unstore(_)
        )
    }

    /// The mnemonic used in the paper's Fig. 12 pipeline diagrams
    /// (`L1`, `T2`, `R3`, `S1`, `CG`, `S-I`, primes for inverses).
    #[must_use]
    pub fn mnemonic(self) -> String {
        match self {
            Op::Load(q) => format!("L{}", suffix(q)),
            Op::Unload(q) => format!("L'{}", suffix(q)),
            Op::Transport(l) => format!("T{}", l + 1),
            Op::Untransport(l) => format!("T'{}", l + 1),
            Op::Route(l) => format!("R{}", l + 1),
            Op::Unroute(l) => format!("R'{}", l + 1),
            Op::Store(l) => format!("S{}", l + 1),
            Op::Unstore(l) => format!("S'{}", l + 1),
            Op::ClassicalGates => "CG".to_owned(),
            Op::SwapStepI => "S-I".to_owned(),
            Op::SwapStepII => "S-II".to_owned(),
        }
    }
}

fn suffix(q: QubitTag) -> String {
    match q {
        QubitTag::Address(i) => format!("{}", i + 1),
        QubitTag::Bus => "B".to_owned(),
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_classes() {
        assert_eq!(Op::Route(0).gate_class(), GateClass::Cswap);
        assert_eq!(Op::Unroute(2).gate_class(), GateClass::Cswap);
        assert_eq!(
            Op::Load(QubitTag::Bus).gate_class(),
            GateClass::InterNodeSwap
        );
        assert_eq!(Op::Store(1).gate_class(), GateClass::InterNodeSwap);
        assert_eq!(Op::SwapStepI.gate_class(), GateClass::LocalSwap);
        assert_eq!(Op::ClassicalGates.gate_class(), GateClass::Classical);
    }

    #[test]
    fn mnemonics_match_figure_12() {
        assert_eq!(Op::Load(QubitTag::Address(0)).mnemonic(), "L1");
        assert_eq!(Op::Load(QubitTag::Bus).mnemonic(), "LB");
        assert_eq!(Op::Store(0).mnemonic(), "S1");
        assert_eq!(Op::Route(1).mnemonic(), "R2");
        assert_eq!(Op::Unroute(2).mnemonic(), "R'3");
        assert_eq!(Op::Unload(QubitTag::Bus).mnemonic(), "L'B");
        assert_eq!(Op::SwapStepI.mnemonic(), "S-I");
        assert_eq!(Op::SwapStepII.mnemonic(), "S-II");
        assert_eq!(Op::ClassicalGates.mnemonic(), "CG");
    }

    #[test]
    fn inverses_flagged() {
        assert!(Op::Unstore(0).is_inverse());
        assert!(!Op::Store(0).is_inverse());
        assert!(!Op::SwapStepI.is_inverse());
    }

    #[test]
    fn qubit_tag_display() {
        assert_eq!(QubitTag::Address(2).to_string(), "a3");
        assert_eq!(QubitTag::Bus.to_string(), "B");
    }
}
