//! Pipelined query scheduling and diagram rendering (Figs. 6, 7, 12).
//!
//! A Fat-Tree QRAM admits a new query every 10 circuit layers. Each query's
//! trajectory through the sub-component QRAMs of Fig. 5 follows an even–odd
//! transposition pattern: enter at sub-QRAM 0, ascend one position per swap
//! step, hold one swap step at the top (data retrieval), descend back to 0,
//! and exit. [`PipelineSchedule`] materializes these trajectories and
//! proves conflict-freedom ("no conflicting colors in the same layer",
//! Fig. 6).

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use qram_metrics::{Capacity, Layers, TimingModel, Utilization, UtilizationTrace};

/// Process-wide count of [`PipelineSchedule`] constructions.
static SCHEDULE_CONSTRUCTIONS: AtomicU64 = AtomicU64::new(0);

/// Per-capacity memo of the largest batch size whose pipeline has already
/// been proven conflict-free, keyed by `Capacity::get()`.
static VALIDATED_BATCHES: OnceLock<Mutex<HashMap<u64, usize>>> = OnceLock::new();

/// Proves the pipeline for `num_queries` back-to-back queries at
/// `capacity` conflict-free, memoizing the result process-wide.
///
/// A query's trajectory `position_at(q, t)` depends only on its index,
/// the gate step, and the capacity — never on the batch size — so a
/// conflict between queries `i < j` in a `B`-query batch is also a
/// conflict in every batch of at least `j + 1` queries. Conflict-freedom
/// is therefore monotone: proving it for `B` proves it for all `B' ≤ B`,
/// and the memo only has to record the largest batch validated per
/// capacity. Steady-state batch execution pays one mutex lock here
/// instead of an `O(gate steps)` sweep per batch.
///
/// # Errors
///
/// Returns the first conflict found, if any (never, for the Fat-Tree
/// schedule — the even–odd transposition pattern is conflict-free by
/// construction, which this check re-proves rather than assumes).
pub fn ensure_conflict_free(capacity: Capacity, num_queries: usize) -> Result<(), ConflictError> {
    if num_queries == 0 {
        return Ok(());
    }
    let memo = VALIDATED_BATCHES.get_or_init(|| Mutex::new(HashMap::new()));
    {
        let validated = memo.lock().expect("validation memo poisoned");
        if validated
            .get(&capacity.get())
            .is_some_and(|&max| num_queries <= max)
        {
            return Ok(());
        }
    }
    PipelineSchedule::new(capacity, num_queries).validate_no_conflicts()?;
    let mut validated = memo.lock().expect("validation memo poisoned");
    let max = validated.entry(capacity.get()).or_insert(0);
    *max = (*max).max(num_queries);
    Ok(())
}

/// Number of [`PipelineSchedule`] values constructed since process start.
///
/// A diagnostic for regression tests: batched execution of a `B`-query
/// batch must stay `O(B)` in schedule constructions (it was once
/// `O(B log B)` from rebuilding a schedule inside a sort comparator).
#[must_use]
pub fn schedule_construction_count() -> u64 {
    SCHEDULE_CONSTRUCTIONS.load(Ordering::Relaxed)
}

use crate::latency;
use crate::ops::{Op, QubitTag};
use crate::query_ops::{fat_tree_gate_step_position, QueryLayer};

/// Start, retrieval, and completion layers of one pipelined query
/// (1-based global circuit layers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryTiming {
    /// Query index (admission order).
    pub query: usize,
    /// First circuit layer of the query.
    pub start_layer: u64,
    /// The layer at which data retrieval (CLASSICAL-GATES) occurs.
    pub retrieval_layer: u64,
    /// Last circuit layer of the query.
    pub end_layer: u64,
}

/// Error raised when two queries would occupy the same sub-QRAM in the
/// same gate step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConflictError {
    /// The global gate step at which the conflict occurs.
    pub gate_step: u64,
    /// The contended sub-QRAM position.
    pub position: u32,
    /// The two conflicting queries.
    pub queries: (usize, usize),
}

impl fmt::Display for ConflictError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "queries {} and {} both occupy sub-QRAM {} at gate step {}",
            self.queries.0, self.queries.1, self.position, self.gate_step
        )
    }
}

impl std::error::Error for ConflictError {}

/// The pipelined schedule of a batch of back-to-back Fat-Tree queries.
///
/// # Examples
///
/// ```
/// use qram_core::FatTreeQram;
/// use qram_metrics::Capacity;
///
/// // The Fig. 6 scenario: capacity 8, three concurrent queries.
/// let schedule = FatTreeQram::new(Capacity::new(8)?).pipeline(3);
/// assert_eq!(schedule.timing(0).end_layer, 29);
/// assert_eq!(schedule.timing(2).start_layer, 21);
/// assert_eq!(schedule.makespan_integer(), 49);
/// assert!(schedule.validate_no_conflicts().is_ok());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineSchedule {
    capacity: Capacity,
    num_queries: usize,
}

impl PipelineSchedule {
    /// Builds the schedule for `num_queries` back-to-back queries.
    ///
    /// # Panics
    ///
    /// Panics if `num_queries` is zero.
    #[must_use]
    pub fn new(capacity: Capacity, num_queries: usize) -> Self {
        assert!(num_queries >= 1, "at least one query is required");
        SCHEDULE_CONSTRUCTIONS.fetch_add(1, Ordering::Relaxed);
        PipelineSchedule {
            capacity,
            num_queries,
        }
    }

    /// The QRAM capacity.
    #[must_use]
    pub fn capacity(&self) -> Capacity {
        self.capacity
    }

    /// Number of queries in the batch.
    #[must_use]
    pub fn num_queries(&self) -> usize {
        self.num_queries
    }

    fn n(&self) -> u64 {
        u64::from(self.capacity.address_width())
    }

    /// Timing of query `q` (0-based): starts at `10q + 1`, retrieves at
    /// `10q + 5n`, ends at `10q + 10n − 1`.
    ///
    /// # Panics
    ///
    /// Panics if `q ≥ num_queries`.
    #[must_use]
    pub fn timing(&self, q: usize) -> QueryTiming {
        assert!(q < self.num_queries, "query {q} out of range");
        let base = 10 * q as u64;
        let n = self.n();
        QueryTiming {
            query: q,
            start_layer: base + 1,
            retrieval_layer: base + 5 * n,
            end_layer: base + 10 * n - 1,
        }
    }

    /// All query timings in admission order.
    #[must_use]
    pub fn timings(&self) -> Vec<QueryTiming> {
        (0..self.num_queries).map(|q| self.timing(q)).collect()
    }

    /// Total integer circuit layers until the last query completes:
    /// `10(q−1) + 10n − 1`.
    #[must_use]
    pub fn makespan_integer(&self) -> u64 {
        self.timing(self.num_queries - 1).end_layer
    }

    /// Weighted makespan under a timing model.
    #[must_use]
    pub fn makespan(&self, timing: &TimingModel) -> Layers {
        latency::fat_tree_parallel_queries(
            self.capacity,
            u32::try_from(self.num_queries).expect("query count fits in u32"),
            timing,
        )
    }

    /// Total global gate steps spanned by the batch (each gate step is four
    /// standard layers; swap layers sit between gate steps).
    #[must_use]
    pub fn total_gate_steps(&self) -> u64 {
        2 * (self.num_queries as u64 - 1) + 2 * self.n()
    }

    /// The sub-QRAM position of query `q` during global gate step `t`
    /// (1-based), or `None` if the query is not active then.
    #[must_use]
    pub fn position_at(&self, q: usize, t: u64) -> Option<u32> {
        let first = 2 * q as u64 + 1;
        let last = first + 2 * self.n() - 1;
        if t < first || t > last {
            return None;
        }
        let local = u32::try_from(t - first + 1).expect("gate step fits in u32");
        Some(fat_tree_gate_step_position(
            self.capacity.address_width(),
            local,
        ))
    }

    /// The queries active during global gate step `t`, with their sub-QRAM
    /// positions.
    ///
    /// Only the queries whose active window `[2q + 1, 2q + 2n]` can contain
    /// `t` are inspected, so one call is `O(log N)` regardless of batch
    /// size (at most `n` queries are ever in flight).
    #[must_use]
    pub fn occupancy_at(&self, t: u64) -> Vec<(usize, u32)> {
        // Query q is active iff 2q + 1 <= t <= 2q + 2n.
        let first = usize::try_from(t.saturating_sub(2 * self.n()).div_ceil(2)).expect("fits");
        let last = usize::try_from(t.saturating_sub(1) / 2).expect("fits");
        (first..=last.min(self.num_queries.saturating_sub(1)))
            .filter_map(|q| self.position_at(q, t).map(|p| (q, p)))
            .collect()
    }

    /// Verifies that no two queries ever occupy the same sub-QRAM in the
    /// same gate step — the Fat-Tree pipelining invariant (Fig. 6).
    ///
    /// # Errors
    ///
    /// Returns the first conflict found, if any.
    pub fn validate_no_conflicts(&self) -> Result<(), ConflictError> {
        for t in 1..=self.total_gate_steps() {
            let occ = self.occupancy_at(t);
            for i in 0..occ.len() {
                for j in (i + 1)..occ.len() {
                    if occ[i].1 == occ[j].1 {
                        return Err(ConflictError {
                            gate_step: t,
                            position: occ[i].1,
                            queries: (occ[i].0, occ[j].0),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// The QRAM utilization staircase over the batch: per gate step, the
    /// fraction of the `log₂ N` pipeline slots in use (Fig. 7, bottom).
    #[must_use]
    pub fn utilization_trace(&self, timing: &TimingModel) -> UtilizationTrace {
        let slots = self.capacity.address_width();
        let gate_step_duration =
            Layers::new(4.0) + Layers::new(timing.layer_weight(qram_metrics::LayerKind::IntraNode));
        let mut trace = UtilizationTrace::new();
        for t in 1..=self.total_gate_steps() {
            let busy = u32::try_from(self.occupancy_at(t).len()).expect("fits");
            trace.push(
                gate_step_duration,
                Utilization::from_slots(busy.min(slots), slots),
            );
        }
        trace
    }

    /// Renders the Fig. 6-style occupancy chart: one row per query, one
    /// column per global gate step, cells showing the sub-QRAM position.
    #[must_use]
    pub fn render_occupancy(&self) -> String {
        let mut out = String::new();
        let steps = self.total_gate_steps();
        out.push_str("gate step |");
        for t in 1..=steps {
            out.push_str(&format!("{t:>3}"));
        }
        out.push('\n');
        for q in 0..self.num_queries {
            out.push_str(&format!("query {:>3} |", q + 1));
            for t in 1..=steps {
                match self.position_at(q, t) {
                    Some(p) => out.push_str(&format!("{p:>3}")),
                    None => out.push_str("  ."),
                }
            }
            out.push('\n');
        }
        out
    }
}

/// Renders a Fig. 12-style instruction pipeline diagram for one query's
/// layer stream: one row per qubit (address qubits then bus) plus a row for
/// swap steps, one column per circuit layer.
#[must_use]
pub fn render_instruction_diagram(layers: &[QueryLayer], address_width: u32) -> String {
    let n = address_width as usize;
    // Row 0..n-1: address qubits; row n: bus; row n+1: swap/CG row.
    let mut grid: Vec<Vec<String>> = vec![vec![String::new(); layers.len()]; n + 2];
    // Track flyer positions to attribute position-addressed ops to qubits.
    #[derive(Clone, Copy, PartialEq)]
    struct Pos {
        level: u32,
        at_output: bool,
    }
    let mut where_is: Vec<Option<Pos>> = vec![None; n + 1]; // index n = bus
    let row_of = |tag: QubitTag| -> usize {
        match tag {
            QubitTag::Address(i) => i as usize,
            QubitTag::Bus => n,
        }
    };
    let find_at = |where_is: &[Option<Pos>], level: u32, at_output: bool| -> Option<usize> {
        where_is
            .iter()
            .position(|p| *p == Some(Pos { level, at_output }))
    };
    for (col, layer) in layers.iter().enumerate() {
        for &op in &layer.ops {
            match op {
                Op::Load(tag) => {
                    where_is[row_of(tag)] = Some(Pos {
                        level: 0,
                        at_output: false,
                    });
                    grid[row_of(tag)][col] = op.mnemonic();
                }
                Op::Unload(tag) => {
                    where_is[row_of(tag)] = None;
                    grid[row_of(tag)][col] = op.mnemonic();
                }
                Op::Transport(l) => {
                    if let Some(idx) = find_at(&where_is, l - 1, true) {
                        where_is[idx] = Some(Pos {
                            level: l,
                            at_output: false,
                        });
                        grid[idx][col] = op.mnemonic();
                    }
                }
                Op::Untransport(l) => {
                    if let Some(idx) = find_at(&where_is, l, false) {
                        where_is[idx] = Some(Pos {
                            level: l - 1,
                            at_output: true,
                        });
                        grid[idx][col] = op.mnemonic();
                    }
                }
                Op::Route(l) => {
                    if let Some(idx) = find_at(&where_is, l, false) {
                        where_is[idx] = Some(Pos {
                            level: l,
                            at_output: true,
                        });
                        grid[idx][col] = op.mnemonic();
                    }
                }
                Op::Unroute(l) => {
                    if let Some(idx) = find_at(&where_is, l, true) {
                        where_is[idx] = Some(Pos {
                            level: l,
                            at_output: false,
                        });
                        grid[idx][col] = op.mnemonic();
                    }
                }
                Op::Store(l) => {
                    where_is[l as usize] = None;
                    grid[l as usize][col] = op.mnemonic();
                }
                Op::Unstore(l) => {
                    where_is[l as usize] = Some(Pos {
                        level: l,
                        at_output: false,
                    });
                    grid[l as usize][col] = op.mnemonic();
                }
                Op::ClassicalGates => {
                    grid[n + 1][col] = op.mnemonic();
                }
                Op::SwapStepI | Op::SwapStepII => {
                    grid[n + 1][col] = op.mnemonic();
                }
            }
        }
    }
    let mut out = String::new();
    let width = 5;
    out.push_str(&format!("{:>8} |", "layer"));
    for col in 1..=layers.len() {
        out.push_str(&format!("{col:>width$}"));
    }
    out.push('\n');
    for (row, cells) in grid.iter().enumerate() {
        let label = if row < n {
            format!("a{}", row + 1)
        } else if row == n {
            "bus".to_owned()
        } else {
            "swap/CG".to_owned()
        };
        out.push_str(&format!("{label:>8} |"));
        for cell in cells {
            out.push_str(&format!("{cell:>width$}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query_ops::{bb_query_layers, fat_tree_query_layers};

    fn cap(n: u64) -> Capacity {
        Capacity::new(n).unwrap()
    }

    #[test]
    fn figure_6_timings() {
        // Capacity 8, 3 queries: starts 1/11/21, retrievals 15/25/35,
        // completions 29/39/49.
        let s = PipelineSchedule::new(cap(8), 3);
        assert_eq!(
            s.timings()
                .iter()
                .map(|t| (t.start_layer, t.retrieval_layer, t.end_layer))
                .collect::<Vec<_>>(),
            vec![(1, 15, 29), (11, 25, 39), (21, 35, 49)]
        );
        assert_eq!(s.makespan_integer(), 49);
    }

    #[test]
    fn conflict_freedom_for_many_shapes() {
        for n_exp in 1..=8u32 {
            for queries in 1..=(3 * n_exp as usize) {
                let s = PipelineSchedule::new(Capacity::from_address_width(n_exp), queries);
                assert!(
                    s.validate_no_conflicts().is_ok(),
                    "n=2^{n_exp}, q={queries}"
                );
            }
        }
    }

    #[test]
    fn at_most_parallelism_queries_active() {
        let s = PipelineSchedule::new(cap(1024), 30);
        for t in 1..=s.total_gate_steps() {
            assert!(s.occupancy_at(t).len() <= 10, "gate step {t}");
        }
    }

    #[test]
    fn steady_state_reaches_full_utilization() {
        let s = PipelineSchedule::new(cap(256), 40);
        let trace = s.utilization_trace(&TimingModel::paper_default());
        let avg = trace.average().get();
        assert!(avg > 0.8, "average utilization {avg} too low");
        // Some gate step must use all 8 slots.
        let full = (1..=s.total_gate_steps()).any(|t| s.occupancy_at(t).len() == 8);
        assert!(full, "pipeline never saturated");
    }

    #[test]
    fn single_query_positions_match_trajectory() {
        let s = PipelineSchedule::new(cap(16), 1);
        let positions: Vec<u32> = (1..=8).map(|t| s.position_at(0, t).unwrap()).collect();
        assert_eq!(positions, vec![0, 1, 2, 3, 3, 2, 1, 0]);
        assert_eq!(s.position_at(0, 9), None);
    }

    #[test]
    fn occupancy_chart_renders() {
        let s = PipelineSchedule::new(cap(8), 3);
        let chart = s.render_occupancy();
        assert!(chart.contains("query   1"));
        assert!(chart.lines().count() == 4);
    }

    #[test]
    fn instruction_diagram_matches_figure_12_row_one() {
        let layers = fat_tree_query_layers(3);
        let diagram = render_instruction_diagram(&layers, 3);
        // Row a1 carries L1 at layer 1 and S1 at layer 2.
        let a1 = diagram.lines().nth(1).unwrap();
        assert!(a1.trim_start().starts_with("a1"));
        assert!(a1.contains("L1"));
        assert!(a1.contains("S1"));
        assert!(a1.contains("L'1"));
        // Swap row contains both swap types and CG.
        let swap_row = diagram.lines().nth(5).unwrap();
        assert!(swap_row.contains("S-I"));
        assert!(swap_row.contains("S-II"));
        assert!(swap_row.contains("CG"));
    }

    #[test]
    fn bb_diagram_has_cg_column() {
        let layers = bb_query_layers(2);
        let diagram = render_instruction_diagram(&layers, 2);
        assert!(diagram.contains("CG"));
        assert!(diagram.contains("LB"));
    }

    #[test]
    fn makespan_weighted_matches_formula() {
        let s = PipelineSchedule::new(cap(1024), 10);
        let t = TimingModel::paper_default();
        assert!((s.makespan(&t).get() - (16.5 * 10.0 - 8.375)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one query")]
    fn empty_batch_rejected() {
        let _ = PipelineSchedule::new(cap(8), 0);
    }

    #[test]
    fn validation_memo_builds_at_most_one_schedule_per_growth() {
        // Distinct capacity from other tests so the process-wide memo
        // starts cold for this key.
        let capacity = cap(1 << 9);
        assert!(ensure_conflict_free(capacity, 64).is_ok());
        let after_first = schedule_construction_count();
        // Smaller and equal batches are covered by the recorded maximum.
        assert!(ensure_conflict_free(capacity, 64).is_ok());
        assert!(ensure_conflict_free(capacity, 1).is_ok());
        assert!(ensure_conflict_free(capacity, 0).is_ok());
        assert_eq!(schedule_construction_count(), after_first);
        // A larger batch re-validates once, then is memoized too.
        assert!(ensure_conflict_free(capacity, 128).is_ok());
        let after_growth = schedule_construction_count();
        assert_eq!(after_growth, after_first + 1);
        assert!(ensure_conflict_free(capacity, 100).is_ok());
        assert_eq!(schedule_construction_count(), after_growth);
    }
}
