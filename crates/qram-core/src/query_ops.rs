//! Per-query layered instruction streams (Alg. 2 & 3 of the paper).
//!
//! [`bb_query_layers`] generates the exact circuit-layer sequence of a
//! bucket-brigade query with bit-level pipelining: `n` *gate steps* of four
//! layers for address loading, one classical data-retrieval layer, and `n`
//! mirrored gate steps for unloading — `8n + 1` layers total (25 for
//! `N = 8`, Fig. 2(a)).
//!
//! [`fat_tree_query_layers`] interleaves the Fat-Tree local swap steps
//! (§4.3): one single-layer `SWAP-I`/`SWAP-II` between consecutive gate
//! steps, with data retrieval coinciding with the swap step after the last
//! loading gate step — `10n − 1` layers total (29 for `N = 8`, Fig. 6).

use qram_metrics::LayerKind;

use crate::ops::{Op, QubitTag};

/// One circuit layer of a single query's instruction stream.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryLayer {
    /// Operations executed in parallel within this layer.
    pub ops: Vec<Op>,
    /// The layer's duration class (standard / intra-node / classical).
    pub kind: LayerKind,
}

impl QueryLayer {
    fn standard(ops: Vec<Op>) -> Self {
        QueryLayer {
            ops,
            kind: LayerKind::Standard,
        }
    }

    fn classical(ops: Vec<Op>) -> Self {
        QueryLayer {
            ops,
            kind: LayerKind::Classical,
        }
    }

    fn intra_node(ops: Vec<Op>) -> Self {
        QueryLayer {
            ops,
            kind: LayerKind::IntraNode,
        }
    }
}

fn qubit_by_index(n: u32, index: u32) -> QubitTag {
    if index < n {
        QubitTag::Address(index)
    } else {
        QubitTag::Bus
    }
}

/// Generates one *Load Layer* gate step (Alg. 2): four circuit layers
/// `(T+L)(R+S)(T+L)(R)`, mutating the `loaded` clock and next-store level
/// `s`.
fn load_gate_step(n: u32, loaded: &mut u32, s: &mut u32) -> [QueryLayer; 4] {
    let mut layers: Vec<QueryLayer> = Vec::with_capacity(4);
    for half in 0..2u32 {
        // Layer A/C: TRANSPORT (i, j, k) ∀ i ∈ [max(1, loaded−n), s]; LOAD.
        let mut ops = Vec::new();
        let lo = 1.max(loaded.saturating_sub(n).max(1));
        for i in lo..=*s {
            ops.push(Op::Transport(i));
        }
        if *loaded <= n {
            ops.push(Op::Load(qubit_by_index(n, *loaded)));
        }
        *loaded += 1;
        layers.push(QueryLayer::standard(ops));
        // Layer B/D: ROUTE ∀ i ∈ [max(0, loaded−n−1), hi]; STORE(s) on B.
        let mut ops = Vec::new();
        let lo = loaded.saturating_sub(n + 1);
        let hi = if half == 0 {
            // Layer B routes up to s − 1 and stores at s.
            if *s == 0 {
                None
            } else {
                Some(*s - 1)
            }
        } else {
            Some(*s)
        };
        if let Some(hi) = hi {
            for i in lo..=hi {
                ops.push(Op::Route(i));
            }
        }
        if half == 0 {
            ops.push(Op::Store(*s));
        }
        layers.push(QueryLayer::standard(ops));
    }
    *s += 1;
    layers.try_into().expect("exactly four layers")
}

/// Generates one *Unload Layer* gate step (Alg. 3): four circuit layers
/// `(R')(T'+L')(R'+S')(T'+L')`.
fn unload_gate_step(n: u32, loaded: &mut u32, s: &mut u32) -> [QueryLayer; 4] {
    let mut layers: Vec<QueryLayer> = Vec::with_capacity(4);
    *s = s.checked_sub(1).expect("unload called with s = 0");
    // Layer 1: UNROUTE ∀ i ∈ [max(0, loaded−n−1), s].
    let mut ops = Vec::new();
    for i in loaded.saturating_sub(n + 1)..=*s {
        ops.push(Op::Unroute(i));
    }
    layers.push(QueryLayer::standard(ops));
    *loaded = loaded.checked_sub(1).expect("unload underflow");
    // Layer 2: UNTRANSPORT ∀ i ∈ [max(1, loaded−n), s]; UNLOAD.
    let mut ops = Vec::new();
    for i in 1.max(loaded.saturating_sub(n))..=*s {
        ops.push(Op::Untransport(i));
    }
    if *loaded <= n {
        ops.push(Op::Unload(qubit_by_index(n, *loaded)));
    }
    layers.push(QueryLayer::standard(ops));
    // Layer 3: UNROUTE ∀ i ∈ [max(0, loaded−n−1), s−1]; UNSTORE(s).
    let mut ops = Vec::new();
    if *s > 0 {
        for i in loaded.saturating_sub(n + 1)..=(*s - 1) {
            ops.push(Op::Unroute(i));
        }
    }
    ops.push(Op::Unstore(*s));
    layers.push(QueryLayer::standard(ops));
    *loaded = loaded.checked_sub(1).expect("unload underflow");
    // Layer 4: UNTRANSPORT; UNLOAD.
    let mut ops = Vec::new();
    for i in 1.max(loaded.saturating_sub(n))..=*s {
        ops.push(Op::Untransport(i));
    }
    if *loaded <= n {
        ops.push(Op::Unload(qubit_by_index(n, *loaded)));
    }
    layers.push(QueryLayer::standard(ops));
    layers.try_into().expect("exactly four layers")
}

/// The full bucket-brigade single-query instruction stream:
/// `8n + 1` circuit layers.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn bb_query_layers(n: u32) -> Vec<QueryLayer> {
    assert!(n >= 1, "address width must be at least 1");
    let mut layers = Vec::with_capacity(8 * n as usize + 1);
    let (mut loaded, mut s) = (0u32, 0u32);
    for _ in 0..n {
        layers.extend(load_gate_step(n, &mut loaded, &mut s));
    }
    layers.push(QueryLayer::classical(vec![Op::ClassicalGates]));
    for _ in 0..n {
        layers.extend(unload_gate_step(n, &mut loaded, &mut s));
    }
    debug_assert_eq!(layers.len(), 8 * n as usize + 1);
    debug_assert_eq!(loaded, 0);
    debug_assert_eq!(s, 0);
    layers
}

/// The Fat-Tree single-query instruction stream: `2n` gate steps with a
/// local swap layer between consecutive gate steps (`SWAP-I`, `SWAP-II`
/// alternating, starting with `SWAP-I`), data retrieval coinciding with the
/// `n`-th swap layer — `10n − 1` layers.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn fat_tree_query_layers(n: u32) -> Vec<QueryLayer> {
    assert!(n >= 1, "address width must be at least 1");
    let mut layers = Vec::with_capacity(10 * n as usize - 1);
    let (mut loaded, mut s) = (0u32, 0u32);
    let mut swap_index = 0u32;
    for step in 0..2 * n {
        if step > 0 {
            swap_index += 1;
            let swap_op = if swap_index % 2 == 1 {
                Op::SwapStepI
            } else {
                Op::SwapStepII
            };
            let mut ops = vec![swap_op];
            if swap_index == n {
                // Data retrieval for the fully loaded query coincides with
                // this swap step (Alg. 1 lines 14–16 / 20–22).
                ops.push(Op::ClassicalGates);
            }
            layers.push(QueryLayer::intra_node(ops));
        }
        if step < n {
            layers.extend(load_gate_step(n, &mut loaded, &mut s));
        } else {
            layers.extend(unload_gate_step(n, &mut loaded, &mut s));
        }
    }
    debug_assert_eq!(layers.len(), 10 * n as usize - 1);
    layers
}

/// The stage finish times annotated in Fig. 2(a): the layer at which each
/// address qubit finishes storing (`4, 8, …, 4n`), data retrieval
/// (`4n + 1`), and each unloading stage (`4n + 5, …, 8n + 1`).
#[must_use]
pub fn bb_stage_finish_layers(n: u32) -> Vec<u32> {
    let mut stages: Vec<u32> = (1..=n).map(|i| 4 * i).collect();
    stages.push(4 * n + 1);
    stages.extend((1..=n).map(|i| 4 * n + 1 + 4 * i));
    stages
}

/// The sub-QRAM position occupied by a Fat-Tree query during its `g`-th
/// gate step (1-based, `1 ..= 2n`): ascend `0 .. n−1`, hold, descend.
///
/// # Panics
///
/// Panics if `g` is outside `1..=2n`.
#[must_use]
pub fn fat_tree_gate_step_position(n: u32, g: u32) -> u32 {
    assert!(
        (1..=2 * n).contains(&g),
        "gate step {g} outside 1..={}",
        2 * n
    );
    if g <= n {
        g - 1
    } else {
        2 * n - g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bb_layer_count_is_8n_plus_1() {
        for n in 1..8 {
            assert_eq!(bb_query_layers(n).len(), 8 * n as usize + 1);
        }
    }

    #[test]
    fn bb_n3_matches_figure_2a_stages() {
        assert_eq!(bb_stage_finish_layers(3), vec![4, 8, 12, 13, 17, 21, 25]);
        assert_eq!(bb_query_layers(3).len(), 25);
    }

    #[test]
    fn fat_tree_layer_count_is_10n_minus_1() {
        for n in 1..8 {
            assert_eq!(fat_tree_query_layers(n).len(), 10 * n as usize - 1);
        }
    }

    #[test]
    fn bb_n3_layer_by_layer_against_hand_trace() {
        use Op::*;
        use QubitTag::*;
        let layers = bb_query_layers(3);
        let expect: Vec<Vec<Op>> = vec![
            vec![Load(Address(0))],               // L1
            vec![Store(0)],                       // S1
            vec![Load(Address(1))],               // L2
            vec![Route(0)],                       // R1 (a2)
            vec![Transport(1), Load(Address(2))], // T2, L3
            vec![Route(0), Store(1)],             // R1 (a3), S2
            vec![Transport(1), Load(Bus)],        // T2, LB
            vec![Route(0), Route(1)],             // bus & a3 route
            vec![Transport(1), Transport(2)],     //
            vec![Route(1), Store(2)],             //
            vec![Transport(2)],                   //
            vec![Route(2)],                       // bus reaches leaves
            vec![ClassicalGates],                 // layer 13
        ];
        for (i, want) in expect.iter().enumerate() {
            assert_eq!(&layers[i].ops, want, "layer {}", i + 1);
        }
    }

    #[test]
    fn bb_unloading_mirrors_loading() {
        // The unloading ops, reversed and un-inverted, must equal the
        // loading ops (uncomputation follows the same steps in reverse).
        for n in 1..7u32 {
            let layers = bb_query_layers(n);
            let total = layers.len();
            for offset in 0..(4 * n as usize) {
                let fwd = &layers[offset].ops;
                let bwd = &layers[total - 1 - offset].ops;
                let mut uninverted: Vec<Op> = bwd
                    .iter()
                    .map(|op| match *op {
                        Op::Unload(q) => Op::Load(q),
                        Op::Untransport(l) => Op::Transport(l),
                        Op::Unroute(l) => Op::Route(l),
                        Op::Unstore(l) => Op::Store(l),
                        other => other,
                    })
                    .collect();
                // Parallel ops within a layer are unordered; compare as
                // sets by sorting an index permutation instead of cloning
                // the forward stream.
                let mut fwd_order: Vec<usize> = (0..fwd.len()).collect();
                fwd_order.sort_by_key(|&i| format!("{:?}", fwd[i]));
                uninverted.sort_by_key(|o| format!("{o:?}"));
                assert_eq!(fwd.len(), uninverted.len(), "n={n} offset={offset}");
                for (&i, op) in fwd_order.iter().zip(&uninverted) {
                    assert_eq!(fwd[i], *op, "n={n} offset={offset}");
                }
            }
        }
    }

    #[test]
    fn bb_each_qubit_loaded_and_unloaded_once() {
        for n in 1..7u32 {
            let layers = bb_query_layers(n);
            let loads = layers
                .iter()
                .flat_map(|l| &l.ops)
                .filter(|op| matches!(op, Op::Load(_)))
                .count();
            let unloads = layers
                .iter()
                .flat_map(|l| &l.ops)
                .filter(|op| matches!(op, Op::Unload(_)))
                .count();
            assert_eq!(loads, n as usize + 1);
            assert_eq!(unloads, n as usize + 1);
        }
    }

    #[test]
    fn bb_stores_each_level_once() {
        for n in 1..7u32 {
            let layers = bb_query_layers(n);
            for level in 0..n {
                let stores = layers
                    .iter()
                    .flat_map(|l| &l.ops)
                    .filter(|op| **op == Op::Store(level))
                    .count();
                assert_eq!(stores, 1, "n={n} level={level}");
            }
        }
    }

    #[test]
    fn fat_tree_swap_layers_alternate_types() {
        let layers = fat_tree_query_layers(4);
        let swaps: Vec<&Op> = layers
            .iter()
            .flat_map(|l| &l.ops)
            .filter(|op| matches!(op, Op::SwapStepI | Op::SwapStepII))
            .collect();
        assert_eq!(swaps.len(), 7); // 2n − 1
        for (i, op) in swaps.iter().enumerate() {
            if i % 2 == 0 {
                assert_eq!(**op, Op::SwapStepI);
            } else {
                assert_eq!(**op, Op::SwapStepII);
            }
        }
    }

    #[test]
    fn fat_tree_retrieval_coincides_with_nth_swap() {
        for n in 1..7u32 {
            let layers = fat_tree_query_layers(n);
            let cg_layers: Vec<usize> = layers
                .iter()
                .enumerate()
                .filter(|(_, l)| l.ops.contains(&Op::ClassicalGates))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(cg_layers.len(), 1, "exactly one retrieval");
            let idx = cg_layers[0];
            assert_eq!(layers[idx].kind, LayerKind::IntraNode);
            // It is the n-th swap layer: 0-based layer index 4n + (n−1).
            assert_eq!(idx, 4 * n as usize + n as usize - 1);
            // Retrieval type matches parity (Alg. 1): SWAP-I iff n odd.
            let expected = if n % 2 == 1 {
                Op::SwapStepI
            } else {
                Op::SwapStepII
            };
            assert!(layers[idx].ops.contains(&expected), "n={n}");
        }
    }

    #[test]
    fn fat_tree_gate_layers_match_bb() {
        // Removing swap layers from the Fat-Tree stream recovers the BB
        // stream (minus its dedicated CG layer).
        for n in 1..6u32 {
            let ft: Vec<QueryLayer> = fat_tree_query_layers(n)
                .into_iter()
                .filter(|l| l.kind == LayerKind::Standard)
                .collect();
            let bb: Vec<QueryLayer> = bb_query_layers(n)
                .into_iter()
                .filter(|l| l.kind == LayerKind::Standard)
                .collect();
            assert_eq!(ft, bb, "n={n}");
        }
    }

    #[test]
    fn position_trajectory_ascends_holds_descends() {
        let n = 4;
        let positions: Vec<u32> = (1..=2 * n)
            .map(|g| fat_tree_gate_step_position(n, g))
            .collect();
        assert_eq!(positions, vec![0, 1, 2, 3, 3, 2, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn position_out_of_range_panics() {
        let _ = fat_tree_gate_step_position(3, 7);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_width_rejected() {
        let _ = bb_query_layers(0);
    }
}
