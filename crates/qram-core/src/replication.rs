//! Epoch-replicated classical memory for a QRAM fleet.
//!
//! A fleet serves reads from `R` replicas of one logical memory. Writes
//! commit at a single *origin* replica and replicate to the others
//! asynchronously, so replicas can transiently diverge. [`ReplicatedMemory`]
//! makes that divergence a first-class, checkable quantity by extending the
//! per-memory [`ClassicalMemory::write_epoch`] machinery one level up:
//!
//! * every fleet-visible write bumps a monotone **fleet epoch** and lands
//!   in a totally ordered write log;
//! * each replica tracks the **applied epoch** — the log prefix it has
//!   absorbed. Applying a log entry goes through
//!   [`ClassicalMemory::write`], so the replica's *local* write epoch
//!   advances too and any read memoized against the old memory is
//!   invalidated (the fleet-wide invalidation the batch executor's
//!   `(write_epoch, address set)` cache key needs).
//! * a replica whose applied epoch trails the fleet epoch is **stale**
//!   ([`ReplicatedMemory::is_stale`]); a read dispatched there is
//!   detectably behind and must be flagged, never silently served as
//!   fresh.
//!
//! The consistency model is deliberately simple and property-testable:
//! the log is a single total order (no concurrent conflicting writes), so
//! two replicas at the same applied epoch hold bit-identical memories, and
//! catching a replica up to the fleet epoch always converges it.

use qsim::branch::ClassicalMemory;

/// One committed fleet write: the log entry replicas replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicatedWrite {
    /// The fleet epoch this write established (1-based: the `e`-th write).
    pub epoch: u64,
    /// The replica the write was applied at synchronously.
    pub origin: usize,
    /// The written global cell address.
    pub address: u64,
    /// The written value.
    pub value: u64,
}

/// `R` replicas of one logical [`ClassicalMemory`] under single-order
/// write replication with explicit epochs.
///
/// # Examples
///
/// ```
/// use qram_core::ReplicatedMemory;
/// use qsim::branch::ClassicalMemory;
///
/// let base = ClassicalMemory::from_words(1, &[0; 8])?;
/// let mut fleet = ReplicatedMemory::new(base, 3);
///
/// // A write at replica 1 is immediately visible there ...
/// fleet.write_at(1, 5, 1);
/// assert_eq!(fleet.memory(1).read(5), 1);
/// assert!(!fleet.is_stale(1));
/// // ... while the others are detectably stale until they catch up.
/// assert!(fleet.is_stale(0));
/// assert_eq!(fleet.memory(0).read(5), 0);
/// fleet.catch_up(0);
/// assert_eq!(fleet.memory(0).read(5), 1);
/// assert!(!fleet.is_stale(0));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicatedMemory {
    replicas: Vec<ClassicalMemory>,
    /// `applied[r]` = number of log entries replica `r` has absorbed.
    applied: Vec<u64>,
    /// The totally ordered write log; entry `e − 1` established epoch `e`.
    log: Vec<ReplicatedWrite>,
}

impl ReplicatedMemory {
    /// `num_replicas` replicas initialized from one base memory, all at
    /// epoch 0.
    ///
    /// # Panics
    ///
    /// Panics if `num_replicas` is zero.
    #[must_use]
    pub fn new(base: ClassicalMemory, num_replicas: usize) -> Self {
        assert!(num_replicas >= 1, "a fleet needs at least one replica");
        ReplicatedMemory {
            replicas: vec![base; num_replicas],
            applied: vec![0; num_replicas],
            log: Vec::new(),
        }
    }

    /// Number of replicas.
    #[must_use]
    pub fn num_replicas(&self) -> usize {
        self.replicas.len()
    }

    /// The fleet epoch: total writes committed anywhere.
    #[must_use]
    pub fn fleet_epoch(&self) -> u64 {
        self.log.len() as u64
    }

    /// The epoch replica `replica` has applied up to.
    #[must_use]
    pub fn applied_epoch(&self, replica: usize) -> u64 {
        self.applied[replica]
    }

    /// True when `replica` trails the fleet epoch: a read served there
    /// would observe a superseded memory state and must be flagged stale.
    #[must_use]
    pub fn is_stale(&self, replica: usize) -> bool {
        self.applied[replica] < self.fleet_epoch()
    }

    /// Log entries replica `replica` has yet to apply.
    #[must_use]
    pub fn lag(&self, replica: usize) -> u64 {
        self.fleet_epoch() - self.applied[replica]
    }

    /// The committed write log, in epoch order.
    #[must_use]
    pub fn log(&self) -> &[ReplicatedWrite] {
        &self.log
    }

    /// Replica `replica`'s current memory.
    #[must_use]
    pub fn memory(&self, replica: usize) -> &ClassicalMemory {
        &self.replicas[replica]
    }

    /// Commits a write: appends it to the log at the next fleet epoch and
    /// applies it at `origin` synchronously (catching `origin` up through
    /// any earlier entries it had not yet absorbed — the log is applied in
    /// order, never sparsely). Returns the new fleet epoch.
    ///
    /// # Panics
    ///
    /// Panics if `origin` is out of range or `address` exceeds the memory
    /// capacity (via [`ClassicalMemory::write`]).
    pub fn write_at(&mut self, origin: usize, address: u64, value: u64) -> u64 {
        assert!(
            origin < self.replicas.len(),
            "origin replica {origin} out of range (R = {})",
            self.replicas.len()
        );
        let epoch = self.fleet_epoch() + 1;
        self.log.push(ReplicatedWrite {
            epoch,
            origin,
            address,
            value,
        });
        self.catch_up(origin);
        epoch
    }

    /// Applies every committed write replica `replica` has not yet seen,
    /// in epoch order. Returns the number of entries applied (0 when the
    /// replica was already current — catch-up is idempotent).
    pub fn catch_up(&mut self, replica: usize) -> u64 {
        self.catch_up_to(replica, self.fleet_epoch())
    }

    /// Applies committed writes at `replica` up to (and including) epoch
    /// `upto`, in order. Epochs already applied are skipped; `upto` beyond
    /// the fleet epoch is clamped. Returns the number of entries applied.
    pub fn catch_up_to(&mut self, replica: usize, upto: u64) -> u64 {
        let target = upto.min(self.fleet_epoch());
        let from = self.applied[replica];
        if target <= from {
            return 0;
        }
        for entry in &self.log[from as usize..target as usize] {
            self.replicas[replica].write(entry.address, entry.value);
        }
        self.applied[replica] = target;
        target - from
    }

    /// Applies at most `max_entries` pending writes at `replica`, in epoch
    /// order — the chunked-replay primitive a Recovering replica uses to
    /// drain its backlog across several replay steps (new writes may keep
    /// landing in the log between chunks; they simply extend the backlog).
    /// A `max_entries` of `0` means "no limit": the entire backlog drains
    /// in one step, so a caller-supplied chunk size of zero degrades to
    /// full catch-up instead of replaying nothing per step forever.
    /// Returns the number of entries applied.
    pub fn catch_up_by(&mut self, replica: usize, max_entries: u64) -> u64 {
        if max_entries == 0 {
            return self.catch_up(replica);
        }
        let target = self.applied[replica].saturating_add(max_entries);
        self.catch_up_to(replica, target)
    }

    /// Installs an externally recovered memory image at `replica`, as of
    /// `epoch` — the rejoin path for a replica that rebuilt its state
    /// from a durable checkpoint + WAL replay (or a scrub repair that
    /// re-derives a diverged replica from the durable chain). The
    /// replica continues from `epoch` through ordinary catch-up; writes
    /// it had applied before the reset are superseded wholesale.
    ///
    /// # Panics
    ///
    /// Panics if `replica` is out of range or `epoch` exceeds the fleet
    /// epoch (a recovered image cannot be ahead of the committed log).
    pub fn reset_replica(&mut self, replica: usize, memory: ClassicalMemory, epoch: u64) {
        assert!(
            epoch <= self.fleet_epoch(),
            "recovered epoch {epoch} is ahead of the fleet epoch {}",
            self.fleet_epoch()
        );
        self.replicas[replica] = memory;
        self.applied[replica] = epoch;
    }

    /// Flips the lowest bit of one cell at `replica`, bypassing the write
    /// log — a **fault-injection hook** modeling silent media corruption,
    /// for exercising the anti-entropy scrubber. The replica's applied
    /// epoch is untouched: the divergence is invisible to staleness
    /// tracking and only a digest comparison can find it.
    ///
    /// # Panics
    ///
    /// Panics if `replica` or `address` is out of range.
    pub fn corrupt_replica_cell(&mut self, replica: usize, address: u64) {
        let flipped = self.replicas[replica].read(address) ^ 1;
        self.replicas[replica].write(address, flipped);
    }

    /// Catches every replica up to the fleet epoch, converging the fleet.
    pub fn catch_up_all(&mut self) {
        for r in 0..self.replicas.len() {
            self.catch_up(r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet(r: usize) -> ReplicatedMemory {
        let base = ClassicalMemory::from_words(8, &[0; 16]).unwrap();
        ReplicatedMemory::new(base, r)
    }

    #[test]
    fn writes_bump_the_fleet_epoch_in_order() {
        let mut m = fleet(3);
        assert_eq!(m.fleet_epoch(), 0);
        assert_eq!(m.write_at(0, 1, 1), 1);
        assert_eq!(m.write_at(2, 2, 1), 2);
        assert_eq!(m.write_at(0, 1, 0), 3);
        assert_eq!(m.fleet_epoch(), 3);
        let epochs: Vec<u64> = m.log().iter().map(|w| w.epoch).collect();
        assert_eq!(epochs, vec![1, 2, 3]);
    }

    #[test]
    fn origin_sees_its_write_synchronously_others_lag() {
        let mut m = fleet(3);
        m.write_at(1, 7, 9);
        assert_eq!(m.memory(1).read(7), 9);
        assert!(!m.is_stale(1));
        for r in [0, 2] {
            assert!(m.is_stale(r));
            assert_eq!(m.lag(r), 1);
            assert_eq!(m.memory(r).read(7), 0, "stale replica serves old data");
        }
    }

    #[test]
    fn catch_up_applies_the_log_in_order_and_is_idempotent() {
        let mut m = fleet(2);
        m.write_at(0, 3, 5);
        m.write_at(0, 3, 6); // later write to the same cell wins
        m.write_at(0, 4, 1);
        assert_eq!(m.catch_up(1), 3);
        assert_eq!(m.memory(1).read(3), 6);
        assert_eq!(m.memory(1).read(4), 1);
        assert_eq!(m.catch_up(1), 0, "idempotent");
        assert_eq!(m.memory(0), m.memory(1));
    }

    #[test]
    fn partial_catch_up_stops_at_the_requested_epoch() {
        let mut m = fleet(2);
        m.write_at(0, 1, 1);
        m.write_at(0, 2, 2);
        m.write_at(0, 3, 3);
        assert_eq!(m.catch_up_to(1, 2), 2);
        assert_eq!(m.applied_epoch(1), 2);
        assert!(m.is_stale(1));
        assert_eq!(m.memory(1).read(2), 2);
        assert_eq!(m.memory(1).read(3), 0);
        // Clamped beyond the fleet epoch; converges exactly.
        assert_eq!(m.catch_up_to(1, 99), 1);
        assert!(!m.is_stale(1));
        assert_eq!(m.memory(0), m.memory(1));
    }

    #[test]
    fn interleaved_origins_converge_to_one_total_order() {
        let mut m = fleet(4);
        // Writes from different origins race on the same cell; the log
        // order (commit order) decides, everywhere.
        m.write_at(0, 5, 10);
        m.write_at(3, 5, 11);
        m.write_at(1, 5, 12);
        m.catch_up_all();
        for r in 0..4 {
            assert_eq!(m.memory(r).read(5), 12);
            assert!(!m.is_stale(r));
        }
        for r in 1..4 {
            assert_eq!(m.memory(0), m.memory(r), "replica {r} diverged");
        }
    }

    #[test]
    fn applying_replication_advances_the_local_write_epoch() {
        // The tie-in that invalidates memoized reads: replication applies
        // through ClassicalMemory::write, so the replica's local
        // write_epoch (the batch executor's memo key) advances.
        let mut m = fleet(2);
        let before = m.memory(1).write_epoch();
        m.write_at(0, 2, 2);
        m.write_at(0, 6, 6);
        assert_eq!(m.memory(1).write_epoch(), before, "no writes applied yet");
        m.catch_up(1);
        assert_eq!(m.memory(1).write_epoch(), before + 2);
    }

    #[test]
    fn equal_applied_epochs_mean_equal_memories() {
        let mut m = fleet(3);
        for i in 0..10u64 {
            m.write_at((i % 3) as usize, i % 16, i * i);
            let e = m.applied_epoch(2);
            m.catch_up_to(0, e);
            if m.applied_epoch(0) == m.applied_epoch(2) {
                assert_eq!(m.memory(0), m.memory(2));
            }
        }
    }

    #[test]
    fn lag_larger_than_any_single_replication_step_still_converges() {
        // A replica that slept through many epochs: its lag exceeds every
        // chunk it replays, yet ordered prefix replay converges it.
        let mut m = fleet(2);
        for i in 0..12u64 {
            m.write_at(0, i % 16, i + 1);
        }
        assert_eq!(m.lag(1), 12);
        // Requesting far more than the log holds clamps to the log.
        assert_eq!(m.catch_up_by(1, 1_000), 12);
        assert_eq!(m.lag(1), 0);
        assert_eq!(m.memory(0), m.memory(1));
    }

    #[test]
    fn multi_epoch_backlog_drains_in_one_catch_up_step() {
        // Several epochs behind, caught up in a single call: the replica
        // lands exactly at the fleet epoch with the last-writer value.
        let mut m = fleet(3);
        m.write_at(0, 5, 1);
        m.write_at(0, 5, 2);
        m.write_at(0, 5, 3);
        m.write_at(0, 9, 4);
        assert_eq!(m.applied_epoch(2), 0);
        assert_eq!(m.catch_up(2), 4, "all four epochs in one step");
        assert_eq!(m.applied_epoch(2), 4);
        assert_eq!(m.memory(2).read(5), 3);
        assert_eq!(m.memory(2).read(9), 4);
    }

    #[test]
    fn writes_landing_during_chunked_recovery_extend_the_backlog() {
        // A Recovering replica replays in chunks while new writes keep
        // committing: each chunk applies the oldest pending entries, the
        // backlog absorbs the new tail, and replay still converges.
        let mut m = fleet(2);
        for i in 0..6u64 {
            m.write_at(0, i, 10 + i);
        }
        assert_eq!(m.catch_up_by(1, 2), 2);
        assert_eq!(m.applied_epoch(1), 2);
        // Two more writes land mid-recovery.
        m.write_at(0, 6, 100);
        m.write_at(0, 2, 200);
        assert_eq!(m.lag(1), 6, "backlog grew while recovering");
        assert_eq!(m.catch_up_by(1, 4), 4);
        assert!(m.is_stale(1), "still one chunk short");
        assert_eq!(m.catch_up_by(1, 4), 2);
        assert!(!m.is_stale(1));
        assert_eq!(m.memory(1).read(2), 200, "mid-recovery write applied");
        assert_eq!(m.memory(0), m.memory(1));
    }

    #[test]
    fn catch_up_by_zero_means_drain_everything() {
        // A chunk size of zero would otherwise replay nothing per step
        // and loop a chunked-recovery driver forever; it is pinned to
        // mean "no limit" instead.
        let mut m = fleet(2);
        m.write_at(0, 1, 1);
        m.write_at(0, 2, 2);
        m.write_at(0, 3, 3);
        assert_eq!(m.catch_up_by(1, 0), 3, "0 = the whole backlog");
        assert!(!m.is_stale(1));
        assert_eq!(m.memory(0), m.memory(1));
        assert_eq!(m.catch_up_by(1, 0), 0, "idempotent once current");
    }

    #[test]
    fn reset_replica_installs_a_recovered_image() {
        let mut m = fleet(2);
        m.write_at(0, 1, 7);
        m.write_at(0, 2, 9);
        // Replica 1 "restarts" with a disk image as of epoch 1.
        let mut image = ClassicalMemory::from_words(8, &[0; 16]).unwrap();
        image.write(1, 7);
        m.reset_replica(1, image, 1);
        assert_eq!(m.applied_epoch(1), 1);
        assert!(m.is_stale(1));
        // Ordinary catch-up replays the non-durable suffix and converges.
        assert_eq!(m.catch_up(1), 1);
        assert_eq!(m.memory(0), m.memory(1));
    }

    #[test]
    #[should_panic(expected = "ahead of the fleet epoch")]
    fn reset_replica_cannot_outrun_the_log() {
        let mut m = fleet(2);
        m.write_at(0, 1, 1);
        m.reset_replica(1, ClassicalMemory::from_words(8, &[0; 16]).unwrap(), 5);
    }

    #[test]
    fn corrupt_replica_cell_diverges_silently() {
        let mut m = fleet(2);
        m.write_at(0, 3, 4);
        m.catch_up(1);
        m.corrupt_replica_cell(1, 3);
        assert_eq!(m.memory(1).read(3), 5, "low bit flipped");
        assert!(!m.is_stale(1), "staleness tracking cannot see corruption");
        assert_ne!(m.memory(0), m.memory(1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_origin_rejected() {
        let mut m = fleet(2);
        m.write_at(2, 0, 1);
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_replicas_rejected() {
        let base = ClassicalMemory::zeros(8);
        let _ = ReplicatedMemory::new(base, 0);
    }
}
