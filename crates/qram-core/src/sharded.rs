//! Sharded QRAM serving: `K` parallel shards behind an address-interleaved
//! router (the distributed / banked rows of Table 1 as an executable
//! backend).
//!
//! A [`ShardedQram`] splits a capacity-`N` address space across `K`
//! capacity-`N/K` component QRAMs by the *low-order* `log₂ K` address bits
//! (bank interleaving, as in banked lookup-table engines): cell `a` lives
//! in shard `a mod K` at local address `⌊a / K⌋`. A query superposition is
//! split by shard bits into per-shard sub-queries, executed concurrently,
//! and recombined, so the sharded machine is observably equivalent to a
//! monolithic capacity-`N` machine while multiplying admission bandwidth
//! by `K` under round-robin admission.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use qram_metrics::{Capacity, Layers, TimingModel};
use qsim::branch::{AddressState, ClassicalMemory, QueryOutcome};

#[cfg(feature = "parallel")]
use crate::exec::Execution;
use crate::exec::{execute_layers_sequential, CompiledQuery, ExecError};
use crate::model::{retrieval_order_sweep, QramModel, SweepEvent};
use crate::query_ops::QueryLayer;
use crate::{BucketBrigadeQram, FatTreeQram};

/// Process-wide count of per-shard sub-batch splits (`split_terms`
/// invocations).
static SUB_BATCH_SPLITS: AtomicU64 = AtomicU64::new(0);

/// Number of per-shard sub-batch splits performed since process start.
///
/// A diagnostic for regression tests, in the same spirit as
/// [`crate::pipeline::schedule_construction_count`]: a batch whose
/// queries each occupy a single shard must not build the `K`-entry
/// per-shard sub-batch vectors at all (the single-shard fast path), and
/// the compiled/columnar paths never split.
#[must_use]
pub fn sub_batch_split_count() -> u64 {
    SUB_BATCH_SPLITS.load(Ordering::Relaxed)
}

/// Per-shard sub-query of one split superposition: shard index, the
/// original `(amplitude, global address)` branches routed to it, and the
/// local sub-state.
type ShardSubQuery = (usize, Vec<(qsim::Complex, u64)>, AddressState);

/// `K` capacity-`N/K` QRAM shards behind an address-interleaved router,
/// serving as one capacity-`N` [`QramModel`] backend.
///
/// The shard architecture is any [`QramModel`]; all shards are identical.
/// Geometry sums the shards plus the `K − 1` routers of the interleaving
/// fan-out tree; the admission interval divides the shard interval by `K`
/// (round-robin admission); single-query latency is the equivalent
/// monolithic latency (a lookup still resolves all `log₂ N` address bits —
/// sharding buys bandwidth, not depth).
///
/// # Examples
///
/// ```
/// use qram_core::{FatTreeQram, QramModel, ShardedQram};
/// use qram_metrics::{Capacity, TimingModel};
///
/// let sharded = ShardedQram::fat_tree(Capacity::new(4096)?, 4);
/// let timing = TimingModel::paper_default();
/// // Four Fat-Tree shards admit queries 4× faster than one machine.
/// let mono = FatTreeQram::new(Capacity::new(4096)?);
/// assert_eq!(
///     sharded.admission_interval(&timing).get(),
///     mono.admission_interval(&timing).get() / 4.0,
/// );
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedQram<M> {
    capacity: Capacity,
    /// A capacity-`N` reference instance of the shard architecture: the
    /// equivalent monolithic machine, used for the single-query
    /// instruction stream and closed-form latencies.
    template: M,
    shards: Vec<M>,
}

impl<M: QramModel> ShardedQram<M> {
    /// Builds a sharded QRAM of total capacity `N` from `num_shards`
    /// identical shards produced by `make` (called once per shard with the
    /// shard capacity `N/K`, and once with the full capacity `N` for the
    /// equivalent monolithic reference machine).
    ///
    /// # Panics
    ///
    /// Panics if `num_shards` is not a power of two, exceeds `N/2` (each
    /// shard needs at least one address bit), or exceeds the shard's
    /// back-to-back retrieval spacing (the one-layer-per-shard round-robin
    /// stagger would stop being monotone, letting a later query observe an
    /// earlier memory state).
    pub fn new(capacity: Capacity, num_shards: u32, mut make: impl FnMut(Capacity) -> M) -> Self {
        assert!(
            num_shards >= 1 && num_shards.is_power_of_two(),
            "shard count {num_shards} must be a power of two"
        );
        assert!(
            u64::from(num_shards) * 2 <= capacity.get(),
            "shard count {num_shards} leaves fewer than two cells per shard of capacity {}",
            capacity.get()
        );
        let shard_capacity =
            Capacity::new(capacity.get() / u64::from(num_shards)).expect("power of two >= 2");
        let shards: Vec<M> = (0..num_shards).map(|_| make(shard_capacity)).collect();
        for shard in &shards {
            assert_eq!(
                shard.capacity(),
                shard_capacity,
                "factory produced a shard of the wrong capacity"
            );
        }
        // Round-robin retrieval order stays the admission order only while
        // the per-shard stagger (one layer per shard index, K − 1 at most)
        // fits strictly inside the shard's back-to-back retrieval spacing.
        let spacing = shards[0].retrieval_layer(1) - shards[0].retrieval_layer(0);
        assert!(
            u64::from(num_shards) <= spacing,
            "shard count {num_shards} exceeds the shard admission spacing {spacing}: \
             round-robin retrieval layers would not be monotone"
        );
        let template = make(capacity);
        assert_eq!(
            template.capacity(),
            capacity,
            "factory produced a template of the wrong capacity"
        );
        ShardedQram {
            capacity,
            template,
            shards,
        }
    }

    /// Number of shards `K`.
    #[must_use]
    pub fn num_shards(&self) -> u32 {
        u32::try_from(self.shards.len()).expect("shard count fits in u32")
    }

    /// The shard instances, in shard-index order.
    #[must_use]
    pub fn shards(&self) -> &[M] {
        &self.shards
    }

    /// The per-shard capacity `N/K`.
    #[must_use]
    pub fn shard_capacity(&self) -> Capacity {
        self.shards[0].capacity()
    }

    /// Number of low-order address bits selecting the shard: `log₂ K`.
    #[must_use]
    pub fn shard_bits(&self) -> u32 {
        self.num_shards().trailing_zeros()
    }

    /// The per-shard pipeline parallelism `P_shard` (shards are identical
    /// by construction, so one shard speaks for all): the serving layer's
    /// per-queue in-flight bound, with `K · P_shard` the aggregate bound
    /// reported by [`QramModel::query_parallelism`].
    #[must_use]
    pub fn shard_parallelism(&self) -> u32 {
        self.shards[0].query_parallelism()
    }

    /// The per-shard admission interval `I_shard`: one shard admits a
    /// query at most this often, so round-robin over `K` shards admits at
    /// the divided `I_shard / K` interval reported by
    /// [`QramModel::admission_interval`].
    #[must_use]
    pub fn shard_admission_interval(&self, timing: &TimingModel) -> Layers {
        self.shards[0].admission_interval(timing)
    }

    /// The shard whose dispatch queue serves the `query_index`-th admitted
    /// query under round-robin admission (`query_index mod K`) — the same
    /// assignment [`QramModel::retrieval_layer`] stamps onto the batch
    /// timeline, exposed for the serving layer's per-shard queues.
    #[must_use]
    pub fn dispatch_shard(&self, query_index: usize) -> u32 {
        u32::try_from(query_index % self.shards.len()).expect("shard index fits")
    }

    /// The shard serving global address `address` (its low-order bits).
    #[must_use]
    pub fn shard_of(&self, address: u64) -> u32 {
        u32::try_from(address & u64::from(self.num_shards() - 1)).expect("shard index fits")
    }

    /// The shard-local address of global address `address` (its high-order
    /// bits).
    #[must_use]
    pub fn local_address(&self, address: u64) -> u64 {
        address >> self.shard_bits()
    }

    /// Splits a capacity-`N` classical memory into the `K` interleaved
    /// shard memories: shard `s` holds cells `s, s + K, s + 2K, …`.
    ///
    /// # Panics
    ///
    /// Panics if `memory` does not match the total capacity.
    #[must_use]
    pub fn shard_memories(&self, memory: &ClassicalMemory) -> Vec<ClassicalMemory> {
        assert_eq!(
            memory.capacity() as u64,
            self.capacity.get(),
            "memory capacity must match QRAM capacity"
        );
        let k = self.shards.len();
        (0..k)
            .map(|s| {
                let cells: Vec<u64> = memory.cells().iter().copied().skip(s).step_by(k).collect();
                ClassicalMemory::from_words(memory.bus_width(), &cells)
                    .expect("shard memory is a valid power-of-two slice")
            })
            .collect()
    }

    /// Splits an address superposition by shard bits: per shard, the
    /// original `(amplitude, global address)` branches routed to it. The
    /// per-shard states keep the original (globally normalized) amplitudes
    /// alongside, so outcomes can be recombined exactly.
    fn split_terms(&self, address: &AddressState) -> Vec<Vec<(qsim::Complex, u64)>> {
        SUB_BATCH_SPLITS.fetch_add(1, Ordering::Relaxed);
        let mut per_shard: Vec<Vec<(qsim::Complex, u64)>> = vec![Vec::new(); self.shards.len()];
        for &(amp, addr) in address.iter() {
            per_shard[self.shard_of(addr) as usize].push((amp, addr));
        }
        per_shard
    }

    /// Executes one query's per-shard sub-batches against the interleaved
    /// shard memories and recombines the outcomes. With `parallel` set
    /// (only possible under the `parallel` feature), sub-batches fan out
    /// across scoped threads — one per occupied shard — since they touch
    /// disjoint memories; recombination order is fixed by shard index, so
    /// the outcome is identical either way.
    ///
    /// With a compiled `shard_plan`, the per-shard split, sub-state
    /// construction, and thread fan-out all collapse: each branch routes
    /// straight to its shard memory for the plan's O(1) residual read —
    /// cheaper than a single thread handoff.
    fn run_query_across_shards(
        &self,
        address: &AddressState,
        shard_mems: &[ClassicalMemory],
        shard_layers: &[QueryLayer],
        shard_plan: Option<&CompiledQuery>,
        parallel: bool,
    ) -> Result<QueryOutcome, ExecError> {
        let n = self.capacity.address_width();
        let local_width = self.shard_capacity().address_width();
        assert_eq!(
            address.address_width(),
            n,
            "address width must match QRAM capacity"
        );
        if let Some(plan) = shard_plan {
            debug_assert_eq!(plan.address_width(), local_width);
            let terms = address
                .iter()
                .map(|&(amp, addr)| {
                    let mem = &shard_mems[self.shard_of(addr) as usize];
                    (amp, addr, plan.read_data(mem, self.local_address(addr)))
                })
                .collect();
            return Ok(QueryOutcome::from_terms(
                n,
                shard_mems[0].bus_width(),
                terms,
            ));
        }
        // Single-occupied-shard fast path: when every branch routes to one
        // shard (always true for classical queries, and for any
        // superposition whose addresses share their low bits), skip the
        // `K`-entry sub-batch split entirely and run the one local
        // sub-state directly — the dispatching executor still provides
        // branch-level fan-out on the parallel path.
        let first_shard = self.shard_of(address.iter().next().expect("non-empty state").1);
        if address
            .iter()
            .all(|&(_, addr)| self.shard_of(addr) == first_shard)
        {
            let sub = AddressState::new(
                local_width,
                address
                    .iter()
                    .map(|&(amp, addr)| (amp, self.local_address(addr))),
            )
            .expect("shard sub-state is non-empty and duplicate-free");
            let mem = &shard_mems[first_shard as usize];
            let exec = if parallel {
                crate::exec::execute_layers(shard_layers, mem, &sub)?
            } else {
                execute_layers_sequential(shard_layers, mem, &sub)?
            };
            // Local terms align positionally with the global branches:
            // equal low bits make the local order the global order.
            let terms = address
                .iter()
                .zip(exec.outcome.iter())
                .map(|(&(amp, addr), &(_, _, data))| (amp, addr, data))
                .collect();
            return Ok(QueryOutcome::from_terms(
                n,
                shard_mems[0].bus_width(),
                terms,
            ));
        }
        let sub_queries: Vec<ShardSubQuery> = self
            .split_terms(address)
            .into_iter()
            .enumerate()
            .filter(|(_, branches)| !branches.is_empty())
            .map(|(s, branches)| {
                let sub = AddressState::new(
                    local_width,
                    branches
                        .iter()
                        .map(|&(amp, addr)| (amp, self.local_address(addr))),
                )
                .expect("shard sub-state is non-empty and duplicate-free");
                (s, branches, sub)
            })
            .collect();
        #[cfg(feature = "parallel")]
        if parallel && address.num_branches() >= crate::exec::PARALLEL_BRANCH_THRESHOLD {
            return self.run_shards_work_stealing(address, shard_mems, shard_layers, &sub_queries);
        }
        let mut terms = Vec::with_capacity(address.num_branches());
        for (s, branches, sub) in &sub_queries {
            // Shard fan-out did not engage (parallel off or below the
            // branch threshold). On the parallel path, go through the
            // dispatching executor so a wide query concentrated on few
            // shards still gets branch-level fan-out; the sequential
            // reference path stays pinned.
            let exec = if parallel {
                crate::exec::execute_layers(shard_layers, &shard_mems[*s], sub)?
            } else {
                execute_layers_sequential(shard_layers, &shard_mems[*s], sub)?
            };
            for &(amp, addr) in branches {
                let data = exec
                    .outcome
                    .data_for(self.local_address(addr))
                    .expect("executed branch present in shard outcome");
                terms.push((amp, addr, data));
            }
        }
        Ok(QueryOutcome::from_terms(
            n,
            shard_mems[0].bus_width(),
            terms,
        ))
    }

    /// The work-stealing interpreter fan-out behind
    /// [`Self::run_query_across_shards`]: every occupied shard's local
    /// sub-state is cut into small branch chunks, the chunks are seeded
    /// round-robin into a [`crate::exec::StealQueues`] deque, and scoped
    /// workers drain it — so a Zipf-skewed query whose branches pile onto
    /// one hot shard no longer serializes on that shard's single thread.
    ///
    /// Deterministic: chunks are recombined positionally in (shard, chunk)
    /// order, which is exactly the sequential path's branch order, so
    /// outcomes and the first surfaced [`ExecError`] are identical to
    /// [`execute_layers_sequential`] per shard. Chunk sub-states are
    /// re-normalized by `AddressState::new`, which is harmless: branch
    /// *data* is amplitude-independent, and recombination takes amplitudes
    /// from the original global branches.
    #[cfg(feature = "parallel")]
    fn run_shards_work_stealing(
        &self,
        address: &AddressState,
        shard_mems: &[ClassicalMemory],
        shard_layers: &[QueryLayer],
        sub_queries: &[ShardSubQuery],
    ) -> Result<QueryOutcome, ExecError> {
        let n = self.capacity.address_width();
        let local_width = self.shard_capacity().address_width();
        let workers = crate::exec::parallel_worker_count();
        let chunk_size = address
            .num_branches()
            .div_ceil(workers * 4)
            .max(crate::exec::PARALLEL_BRANCH_THRESHOLD / 4)
            .max(1);
        // (sub-query index, branch offset, branch count) per chunk, in
        // (shard, chunk) order.
        let mut chunk_meta: Vec<(usize, usize, usize)> = Vec::new();
        for (i, (_, _, sub)) in sub_queries.iter().enumerate() {
            let branches = sub.num_branches();
            for start in (0..branches).step_by(chunk_size) {
                chunk_meta.push((i, start, chunk_size.min(branches - start)));
            }
        }
        let mut slots: Vec<Option<Result<Execution, ExecError>>> = vec![None; chunk_meta.len()];
        let queues = crate::exec::StealQueues::seeded(
            workers,
            chunk_meta.iter().copied().zip(slots.iter_mut()),
        );
        std::thread::scope(|scope| {
            for worker in 0..workers {
                let queues = &queues;
                scope.spawn(move || {
                    while let Some(((i, start, count), slot)) = queues.next(worker) {
                        let (s, _, sub) = &sub_queries[i];
                        let chunk = AddressState::new(
                            local_width,
                            sub.terms()[start..start + count].iter().copied(),
                        )
                        .expect("chunk of a valid sub-state");
                        *slot = Some(execute_layers_sequential(
                            shard_layers,
                            &shard_mems[*s],
                            &chunk,
                        ));
                    }
                });
            }
        });
        drop(queues);
        let mut terms = Vec::with_capacity(address.num_branches());
        for (&(i, start, count), slot) in chunk_meta.iter().zip(slots) {
            let exec = slot.expect("every chunk executed")?;
            // Chunk outcome terms align positionally with the original
            // branches: both are ascending in (equal-low-bits) address
            // order, so `branches[start + j]` owns outcome term `j`.
            let branches = &sub_queries[i].1[start..start + count];
            for (&(amp, addr), &(_, _, data)) in branches.iter().zip(exec.outcome.iter()) {
                terms.push((amp, addr, data));
            }
        }
        Ok(QueryOutcome::from_terms(
            n,
            shard_mems[0].bus_width(),
            terms,
        ))
    }

    /// The shared sweep behind [`QramModel::execute_queries`] and
    /// [`Self::execute_queries_sequential`].
    fn execute_queries_impl(
        &self,
        memory: &ClassicalMemory,
        addresses: &[AddressState],
        memory_updates: &[(u64, u64, u64)],
        parallel: bool,
        use_plan: bool,
    ) -> Result<Vec<QueryOutcome>, ExecError> {
        let mut shard_mems = self.shard_memories(memory);
        if addresses.is_empty() {
            return Ok(Vec::new());
        }
        // With a compiled shard plan, the whole batch goes through the
        // columnar structure-of-arrays kernel: radix-partitioned per-epoch
        // gathers against the interleaved shard memories, outcomes as
        // views into one shared term column. Bit-equal to the interpreter
        // sweep below (property-tested), infallible by compile-time proof.
        if use_plan {
            if let Some(plan) = self.shards[0].compiled_query() {
                // Retrieval layers only order queries against memory
                // writes; an update-free batch needs none.
                let retrievals: Vec<u64> = if memory_updates.is_empty() {
                    Vec::new()
                } else {
                    (0..addresses.len())
                        .map(|q| self.retrieval_layer(q))
                        .collect()
                };
                return Ok(crate::soa::execute_sharded_columnar(
                    &plan,
                    &mut shard_mems,
                    self.shard_bits(),
                    self.capacity.address_width(),
                    addresses,
                    &retrievals,
                    memory_updates,
                ));
            }
        }
        // Per-batch precomputation: one interned instruction stream
        // (shards are identical) and one retrieval layer per query.
        let shard_layers = self.shards[0].interned_query_layers();
        let retrievals: Vec<u64> = (0..addresses.len())
            .map(|q| self.retrieval_layer(q))
            .collect();
        let mut results: Vec<Option<QueryOutcome>> = vec![None; addresses.len()];
        retrieval_order_sweep(&retrievals, memory_updates, |event| match event {
            SweepEvent::Update { address, value } => {
                shard_mems[self.shard_of(address) as usize]
                    .write(self.local_address(address), value);
                Ok(())
            }
            SweepEvent::Query(q) => {
                results[q] = Some(self.run_query_across_shards(
                    &addresses[q],
                    &shard_mems,
                    &shard_layers,
                    None,
                    parallel,
                )?);
                Ok(())
            }
        })?;
        Ok(results
            .into_iter()
            .map(|r| r.expect("every query executed"))
            .collect())
    }

    /// [`QramModel::execute_queries`] pinned to the fully sequential
    /// interpreter path (no shard-level thread fan-out even with the
    /// `parallel` feature, and no compiled-plan dispatch) — the reference
    /// implementation the parallel and compiled paths are property-tested
    /// against, and the baseline side of the `parallel_execution` and
    /// `compiled_exec` benchmarks' sharded A/Bs.
    ///
    /// # Errors
    ///
    /// Returns an error if any query's instruction stream fails validation.
    ///
    /// # Panics
    ///
    /// Panics if the memory capacity mismatches the QRAM capacity.
    pub fn execute_queries_sequential(
        &self,
        memory: &ClassicalMemory,
        addresses: &[AddressState],
        memory_updates: &[(u64, u64, u64)],
    ) -> Result<Vec<QueryOutcome>, ExecError> {
        self.execute_queries_impl(memory, addresses, memory_updates, false, false)
    }
}

impl ShardedQram<FatTreeQram> {
    /// A sharded Fat-Tree QRAM: `num_shards` capacity-`N/K` Fat-Trees.
    ///
    /// # Panics
    ///
    /// See [`ShardedQram::new`].
    #[must_use]
    pub fn fat_tree(capacity: Capacity, num_shards: u32) -> Self {
        ShardedQram::new(capacity, num_shards, FatTreeQram::new)
    }
}

impl ShardedQram<BucketBrigadeQram> {
    /// A sharded bucket-brigade QRAM: `num_shards` capacity-`N/K` BB trees.
    ///
    /// # Panics
    ///
    /// See [`ShardedQram::new`].
    #[must_use]
    pub fn bucket_brigade(capacity: Capacity, num_shards: u32) -> Self {
        ShardedQram::new(capacity, num_shards, BucketBrigadeQram::new)
    }
}

impl<M: QramModel> QramModel for ShardedQram<M> {
    fn name(&self) -> &'static str {
        "Sharded"
    }

    fn capacity(&self) -> Capacity {
        self.capacity
    }

    /// Total routers: the `K` shards plus the `K − 1` routers of the
    /// address-interleaving fan-out tree.
    fn router_count(&self) -> u64 {
        let fan_out = self.shards.len() as u64 - 1;
        self.shards.iter().map(QramModel::router_count).sum::<u64>() + fan_out
    }

    /// Total parallelism: every shard pipeline runs concurrently.
    fn query_parallelism(&self) -> u32 {
        self.shards.iter().map(QramModel::query_parallelism).sum()
    }

    /// The single-query instruction stream of the *equivalent monolithic*
    /// machine: a query still resolves all `log₂ N` address bits — `log₂ K`
    /// through the interleaving routers, the rest inside one shard — so the
    /// capacity-`N` stream of the shard architecture is the faithful
    /// whole-machine schedule (and what the fidelity analyses consume).
    fn query_layers(&self) -> Vec<QueryLayer> {
        self.template.query_layers()
    }

    /// The equivalent monolithic machine's interned stream (shards of the
    /// built-in architectures hit the process-wide intern table).
    fn interned_query_layers(&self) -> Arc<[QueryLayer]> {
        self.template.interned_query_layers()
    }

    /// The equivalent monolithic machine's compiled plan, when the shard
    /// architecture exposes one — single queries and fidelity estimates
    /// over the sharded machine then run compiled, exactly like the
    /// monolith they are observably equivalent to.
    fn compiled_query(&self) -> Option<Arc<CompiledQuery>> {
        self.template.compiled_query()
    }

    fn single_query_layers_integer(&self) -> u64 {
        self.template.single_query_layers_integer()
    }

    /// Sharding multiplies bandwidth, not depth: one lookup costs the
    /// monolithic latency.
    fn single_query_latency(&self, timing: &TimingModel) -> Layers {
        self.template.single_query_latency(timing)
    }

    /// Round-robin admission over the shards: the aggregate machine admits
    /// `K` queries per shard interval, so the interval is the minimum shard
    /// interval divided by `K`.
    fn admission_interval(&self, timing: &TimingModel) -> Layers {
        let min_shard = self
            .shards
            .iter()
            .map(|s| s.admission_interval(timing))
            .reduce(Layers::min)
            .expect("at least one shard");
        min_shard / f64::from(self.num_shards())
    }

    /// Round-robin admission: query `q` is the `⌊q/K⌋`-th query of shard
    /// `q mod K`, whose timeline is staggered by one integer layer per
    /// shard index (the interleaving router feeds one shard per layer), so
    /// retrieval layers stay strictly increasing for `K` below the shard's
    /// admission spacing.
    fn retrieval_layer(&self, query_index: usize) -> u64 {
        let k = self.shards.len();
        let shard = self.dispatch_shard(query_index) as usize;
        self.shards[shard].retrieval_layer(query_index / k) + shard as u64
    }

    /// Sharded batched execution: splits each query's superposition by
    /// shard bits, executes per-shard sub-batches through the shared
    /// instruction-level engine against interleaved shard memories, and
    /// recombines per-branch outcomes — observably equivalent to the
    /// monolithic machine.
    ///
    /// When the shard architecture exposes a compiled plan
    /// ([`QramModel::compiled_query`]), the whole batch runs through the
    /// columnar structure-of-arrays kernel: per memory epoch, the
    /// flattened term column is radix-partitioned by the low-order shard
    /// bits and gathered per shard segment (bit-parallel from packed
    /// per-shard images for 1-bit buses) — no per-shard sub-state
    /// construction and no threads. Otherwise, with the `parallel` cargo
    /// feature, each query's branches are cut into chunks drained from a
    /// work-stealing deque by scoped threads (the shard memories are
    /// read-only during a query), falling back to sequential below
    /// [`crate::exec::PARALLEL_BRANCH_THRESHOLD`] branches; outcomes are
    /// recombined in deterministic branch order on every path, so results
    /// are identical to [`Self::execute_queries_sequential`].
    ///
    /// Memory updates route to the owning shard and follow the §7.2
    /// classical-swap tie semantics of [`crate::model::execute_batch`]: an
    /// update whose layer *equals* a query's retrieval layer is visible to
    /// that query.
    fn execute_queries(
        &self,
        memory: &ClassicalMemory,
        addresses: &[AddressState],
        memory_updates: &[(u64, u64, u64)],
    ) -> Result<Vec<QueryOutcome>, ExecError> {
        // One worker-count check per batch: on a single-core host the
        // `parallel` feature degrades gracefully to the sequential path
        // (no thread-spawn overhead), so enabling it is never a
        // pessimization.
        #[cfg(feature = "parallel")]
        let parallel = crate::exec::parallel_worker_count() > 1;
        #[cfg(not(feature = "parallel"))]
        let parallel = false;
        self.execute_queries_impl(memory, addresses, memory_updates, parallel, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cap(n: u64) -> Capacity {
        Capacity::new(n).unwrap()
    }

    fn checkerboard(n: u64) -> ClassicalMemory {
        let cells: Vec<u64> = (0..n).map(|i| (i * 5 + 1) % 2).collect();
        ClassicalMemory::from_words(1, &cells).unwrap()
    }

    #[test]
    fn geometry_sums_shards_plus_fan_out() {
        let s = ShardedQram::fat_tree(cap(64), 4);
        assert_eq!(s.num_shards(), 4);
        assert_eq!(s.shard_capacity(), cap(16));
        assert_eq!(s.shard_bits(), 2);
        // 4 capacity-16 Fat-Trees (2·16 − 2 − 4 = 26 routers each) plus
        // the 3-router interleaving fan-out.
        assert_eq!(s.router_count(), 4 * 26 + 3);
        // 4 shards × log₂(16) pipelined queries each.
        assert_eq!(s.query_parallelism(), 16);
        assert_eq!(s.name(), "Sharded");
    }

    #[test]
    fn k1_degenerates_to_monolith() {
        let s = ShardedQram::fat_tree(cap(16), 1);
        let mono = FatTreeQram::new(cap(16));
        let timing = TimingModel::paper_default();
        assert_eq!(s.query_parallelism(), mono.query_parallelism());
        assert_eq!(s.router_count(), mono.router_count());
        assert_eq!(
            s.admission_interval(&timing),
            mono.admission_interval(&timing)
        );
        for q in 0..5 {
            assert_eq!(s.retrieval_layer(q), mono.retrieval_layer(q));
        }
    }

    #[test]
    fn admission_interval_scales_with_shard_count() {
        let timing = TimingModel::paper_default();
        let mono = FatTreeQram::new(cap(4096))
            .admission_interval(&timing)
            .get();
        for k in [2u32, 4, 8] {
            let s = ShardedQram::fat_tree(cap(4096), k);
            let got = s.admission_interval(&timing).get();
            assert!(
                (got - mono / f64::from(k)).abs() < 1e-12,
                "K={k}: {got} vs {}",
                mono / f64::from(k)
            );
        }
    }

    #[test]
    fn single_query_latency_is_monolithic() {
        let timing = TimingModel::paper_default();
        let s = ShardedQram::fat_tree(cap(1024), 8);
        let mono = FatTreeQram::new(cap(1024));
        assert_eq!(
            s.single_query_latency(&timing),
            mono.single_query_latency(&timing)
        );
        assert_eq!(
            s.single_query_layers_integer(),
            mono.single_query_layers_integer()
        );
    }

    #[test]
    fn address_interleaving_routes_low_bits() {
        let s = ShardedQram::fat_tree(cap(64), 4);
        // Global address 22 = local 0b101, shard bits 0b10.
        assert_eq!(s.shard_of(22), 2);
        assert_eq!(s.local_address(22), 0b101);
        let mem = checkerboard(64);
        let shard_mems = s.shard_memories(&mem);
        assert_eq!(shard_mems.len(), 4);
        for (sidx, smem) in shard_mems.iter().enumerate() {
            assert_eq!(smem.capacity(), 16);
            for j in 0..16u64 {
                assert_eq!(smem.read(j), mem.read(j * 4 + sidx as u64));
            }
        }
    }

    #[test]
    fn retrieval_layers_strictly_increase_round_robin() {
        for k in [1u32, 2, 4, 8] {
            let s = ShardedQram::fat_tree(cap(64), k);
            let mut prev = 0;
            for q in 0..24 {
                let r = s.retrieval_layer(q);
                assert!(r > prev || q == 0, "K={k}, q={q}: {r} <= {prev}");
                prev = r;
            }
        }
    }

    #[test]
    fn serving_introspection_exposes_shard_queue_parameters() {
        let timing = TimingModel::paper_default();
        let s = ShardedQram::fat_tree(cap(4096), 4);
        // Shards have capacity 1024: parallelism log₂(1024), the Fat-Tree
        // weighted interval 8.25.
        assert_eq!(s.shard_parallelism(), 10);
        assert!((s.shard_admission_interval(&timing).get() - 8.25).abs() < 1e-12);
        // Aggregate figures are the per-shard ones scaled by K.
        assert_eq!(
            s.query_parallelism(),
            s.num_shards() * s.shard_parallelism()
        );
        assert_eq!(
            s.shard_admission_interval(&timing) / f64::from(s.num_shards()),
            s.admission_interval(&timing)
        );
        // Round-robin dispatch-queue assignment, matching retrieval_layer.
        for q in 0..12usize {
            assert_eq!(s.dispatch_shard(q), (q % 4) as u32);
        }
    }

    #[test]
    fn single_query_matches_ideal_via_monolithic_stream() {
        let s = ShardedQram::fat_tree(cap(16), 4);
        let mem = checkerboard(16);
        let addr = AddressState::full_superposition(4);
        let out = s.execute_query(&mem, &addr).unwrap();
        assert!((out.fidelity(&mem.ideal_query(&addr)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn batched_execution_matches_ideal_on_superpositions() {
        for k in [1u32, 2, 4, 8] {
            let s = ShardedQram::fat_tree(cap(16), k);
            let mem = checkerboard(16);
            let addresses = vec![
                AddressState::uniform(4, &[0, 1, 2, 3]).unwrap(),
                AddressState::classical(4, 9).unwrap(),
                AddressState::uniform(4, &[5, 10, 15]).unwrap(),
                AddressState::full_superposition(4),
            ];
            let outs = s.execute_queries(&mem, &addresses, &[]).unwrap();
            assert_eq!(outs.len(), 4);
            for (address, out) in addresses.iter().zip(&outs) {
                assert!(
                    (out.fidelity(&mem.ideal_query(address)) - 1.0).abs() < 1e-12,
                    "K={k}"
                );
            }
        }
    }

    #[test]
    fn bucket_brigade_shards_work_too() {
        let s = ShardedQram::bucket_brigade(cap(16), 2);
        let mem = checkerboard(16);
        let addresses = vec![
            AddressState::uniform(4, &[1, 6, 11]).unwrap(),
            AddressState::classical(4, 0).unwrap(),
        ];
        let outs = s.execute_queries(&mem, &addresses, &[]).unwrap();
        for (address, out) in addresses.iter().zip(&outs) {
            assert!((out.fidelity(&mem.ideal_query(address)) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn memory_updates_route_to_owning_shard() {
        let s = ShardedQram::fat_tree(cap(16), 4);
        let mem = ClassicalMemory::zeros(16);
        // Global cell 6 = shard 2, local 1. Retrieval layers (n'=2, stagger):
        // q0 → 10, q1 → 11, q2 → 12.
        assert_eq!(s.retrieval_layer(0), 10);
        assert_eq!(s.retrieval_layer(1), 11);
        let addresses: Vec<AddressState> = (0..3)
            .map(|_| AddressState::classical(4, 6).unwrap())
            .collect();
        let outs = s.execute_queries(&mem, &addresses, &[(11, 6, 1)]).unwrap();
        assert_eq!(outs[0].data_for(6), Some(0)); // retrieves at 10, before the write
        assert_eq!(outs[1].data_for(6), Some(1)); // tie layer: write is visible
        assert_eq!(outs[2].data_for(6), Some(1));
    }

    #[test]
    fn multibit_bus_preserved_across_shards() {
        let s = ShardedQram::fat_tree(cap(8), 2);
        let mem = ClassicalMemory::from_words(8, &[200, 13, 0, 255, 7, 99, 128, 1]).unwrap();
        let addr = AddressState::uniform(3, &[0, 3, 6]).unwrap();
        let outs = s
            .execute_queries(&mem, std::slice::from_ref(&addr), &[])
            .unwrap();
        assert_eq!(outs[0].data_for(0), Some(200));
        assert_eq!(outs[0].data_for(3), Some(255));
        assert_eq!(outs[0].data_for(6), Some(128));
    }

    #[test]
    fn empty_batch_returns_no_outcomes() {
        let s = ShardedQram::fat_tree(cap(8), 2);
        let mem = ClassicalMemory::zeros(8);
        assert!(s.execute_queries(&mem, &[], &[]).unwrap().is_empty());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_shard_count_rejected() {
        let _ = ShardedQram::fat_tree(cap(16), 3);
    }

    #[test]
    #[should_panic(expected = "fewer than two cells")]
    fn oversharding_rejected() {
        let _ = ShardedQram::fat_tree(cap(8), 8);
    }

    #[test]
    #[should_panic(expected = "admission spacing")]
    fn shard_count_above_admission_spacing_rejected() {
        // Fat-Tree back-to-back retrievals are 10 layers apart: 16 shards
        // would fold the round-robin stagger past the next retrieval.
        let _ = ShardedQram::fat_tree(cap(64), 16);
    }

    #[test]
    fn bb_shards_allow_wider_round_robin() {
        // BB spacing is 8n' + 1 = 17 at shard capacity 4, so K = 16 fits
        // and retrieval layers stay strictly increasing across the wrap.
        let s = ShardedQram::bucket_brigade(cap(64), 16);
        let mut prev = 0;
        for q in 0..48 {
            let r = s.retrieval_layer(q);
            assert!(r > prev || q == 0, "q={q}: {r} <= {prev}");
            prev = r;
        }
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn batch_rejects_mismatched_memory() {
        let s = ShardedQram::fat_tree(cap(16), 2);
        let mem = ClassicalMemory::zeros(8);
        let _ = s.execute_queries(&mem, &[], &[]);
    }

    #[test]
    fn parallel_and_sequential_shard_execution_agree() {
        // Wide superpositions (≥ the parallel branch threshold) so the
        // `parallel` feature's shard fan-out engages on multi-core hosts;
        // without the feature (or with one worker) both calls share the
        // sequential path. The scoped fan-out itself is exercised
        // unconditionally by `scoped_shard_fanout_matches_sequential`.
        let s = ShardedQram::fat_tree(cap(256), 4);
        let cells: Vec<u64> = (0..256).map(|i| (i * 3 + 1) % 2).collect();
        let mem = ClassicalMemory::from_words(1, &cells).unwrap();
        let addresses = vec![
            AddressState::full_superposition(8),
            AddressState::uniform(8, &(0..128u64).collect::<Vec<_>>()).unwrap(),
            AddressState::classical(8, 17).unwrap(),
        ];
        let updates = [(15u64, 17u64, 1u64), (40, 3, 1)];
        let par = s.execute_queries(&mem, &addresses, &updates).unwrap();
        let seq = s
            .execute_queries_sequential(&mem, &addresses, &updates)
            .unwrap();
        assert_eq!(par, seq);
        for (address, out) in addresses.iter().zip(&seq) {
            assert!(out.num_branches() == address.num_branches());
        }
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn scoped_shard_fanout_matches_sequential() {
        // Drives the scoped-thread fan-out directly (bypassing the
        // per-batch worker-count gate), so the threaded path runs even on
        // single-core CI hosts and must equal the pinned sequential path.
        let s = ShardedQram::fat_tree(cap(256), 4);
        let cells: Vec<u64> = (0..256).map(|i| (i * 7 + 2) % 2).collect();
        let mem = ClassicalMemory::from_words(1, &cells).unwrap();
        let shard_mems = s.shard_memories(&mem);
        let layers = s.shards()[0].interned_query_layers();
        let addr = AddressState::full_superposition(8);
        let par = s
            .run_query_across_shards(&addr, &shard_mems, &layers, None, true)
            .unwrap();
        let seq = s
            .run_query_across_shards(&addr, &shard_mems, &layers, None, false)
            .unwrap();
        assert_eq!(par, seq);
        assert!((par.fidelity(&mem.ideal_query(&addr)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn compiled_shard_plan_matches_interpreter_paths() {
        // The compiled fast path (plan passed) must recombine branch-
        // for-branch identically to the interpreter fan-out paths.
        let s = ShardedQram::fat_tree(cap(64), 4);
        let cells: Vec<u64> = (0..64).map(|i| (i * 11 + 3) % 2).collect();
        let mem = ClassicalMemory::from_words(1, &cells).unwrap();
        let shard_mems = s.shard_memories(&mem);
        let layers = s.shards()[0].interned_query_layers();
        let plan = s.shards()[0].compiled_query().expect("built-in plan");
        for addr in [
            AddressState::full_superposition(6),
            AddressState::uniform(6, &[0, 5, 17, 42]).unwrap(),
            AddressState::classical(6, 63).unwrap(),
        ] {
            let compiled = s
                .run_query_across_shards(&addr, &shard_mems, &layers, Some(&plan), false)
                .unwrap();
            let interpreted = s
                .run_query_across_shards(&addr, &shard_mems, &layers, None, false)
                .unwrap();
            assert_eq!(compiled, interpreted);
        }
    }

    #[test]
    fn sharded_compiled_plan_is_the_monolith_template_plan() {
        let s = ShardedQram::fat_tree(cap(64), 4);
        let mono = FatTreeQram::new(cap(64));
        let plan = s.compiled_query().expect("template plan");
        assert!(std::sync::Arc::ptr_eq(
            &plan,
            &mono.compiled_query().expect("built-in plan")
        ));
        // And the shard-level plan is the shard-capacity plan.
        let shard_plan = s.shards()[0].compiled_query().expect("shard plan");
        assert_eq!(shard_plan.address_width(), 4);
    }

    #[test]
    fn sharded_interned_layers_are_shared() {
        let s = ShardedQram::fat_tree(cap(64), 4);
        assert!(std::sync::Arc::ptr_eq(
            &s.interned_query_layers(),
            &FatTreeQram::new(cap(64)).interned_query_layers()
        ));
    }
}
