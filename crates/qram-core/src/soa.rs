//! The columnar (structure-of-arrays) batch kernel — stage 4 of the
//! interpret → intern → compile → columnar pipeline (see [`crate::exec`]).
//!
//! Once a [`CompiledQuery`] has reduced per-branch work to one classical
//! memory read, a batch's cost is dominated by everything *around* that
//! read: per-query allocator traffic, hash probes of the memo cache, and
//! per-branch virtual dispatch. This kernel restructures the batch so the
//! access pattern, not the per-query abstraction, drives the hot loop:
//!
//! * **Flatten** — all queries' `(amplitude, address)` terms become two
//!   parallel columns (`Vec<Complex>` / `Vec<u64>`) with per-query offset
//!   ranges, built in one pass.
//! * **Epoch batching** — the §7.2 retrieval-order sweep partitions the
//!   batch into *epochs* (maximal runs of queries between memory writes).
//!   Memo-cache accounting is computed per epoch from the address column
//!   directly — distinct single-branch sets via a reusable bitmap,
//!   distinct multi-branch sets by sorting the epoch's query indices by
//!   address slice — instead of one hash probe per query. The counters
//!   are bit-equal to the row-at-a-time memo
//!   ([`execute_batch_rowwise`](crate::execute_batch_rowwise)) because
//!   both count, per epoch, one miss per distinct address set and one hit
//!   for every further query over a set already seen in that epoch.
//! * **Bit-parallel retrieval** — for 1-bit buses the epoch's retrieval
//!   parities are gathered from a packed memory image (cell `a` → bit
//!   `a mod 64` of word `a / 64`), accumulating 64 branches per `u64`
//!   word before scattering into the term column.
//! * **Shard radix partition** — the sharded kernel partitions each
//!   epoch's entries by the low-order shard bits with one counting sort
//!   (no per-shard `HashMap` sub-batches), then gathers per shard
//!   segment, keeping per-shard packed images with dirty flags across
//!   epochs.
//! * **Shared outcome column** — every epoch appends its terms to one
//!   batch-wide `(amplitude, address, data)` column; per-query outcomes
//!   are constant-size views into the final `Arc` of that column
//!   ([`QueryOutcome::from_shared_column`]), so a query costs one
//!   reference-count bump instead of one heap allocation.
//!
//! The interpreter ([`crate::execute_batch_unmemoized`],
//! `ShardedQram::execute_queries_sequential`) stays untouched as the
//! property-tested reference; workspace-level proptests pin this kernel
//! bit-equal to it (outcomes, error ordering, and
//! [`BatchCacheStats`]) on every backend.

use std::sync::Arc;

use qsim::branch::{AddressState, ClassicalMemory, QueryOutcome};
use qsim::Complex;

use crate::exec::CompiledQuery;
use crate::model::{retrieval_order_sweep, BatchCacheStats, SweepEvent};

/// The flattened structure-of-arrays view of a batch: all queries'
/// `(amplitude, address)` terms in query order, with per-query offset
/// ranges `offsets[q]..offsets[q + 1]`.
struct Columns {
    offsets: Vec<usize>,
    amps: Vec<Complex>,
    addrs: Vec<u64>,
}

impl Columns {
    /// One-pass flatten. Asserts every query's address width against the
    /// expected width with the given message (matching the row path's
    /// per-query assertion).
    fn flatten(addresses: &[AddressState], width: u32, width_msg: &'static str) -> Self {
        let total: usize = addresses.iter().map(AddressState::num_branches).sum();
        let mut offsets = Vec::with_capacity(addresses.len() + 1);
        let mut amps = Vec::with_capacity(total);
        let mut addrs = Vec::with_capacity(total);
        offsets.push(0);
        for address in addresses {
            assert_eq!(address.address_width(), width, "{width_msg}");
            for &(amp, addr) in address.iter() {
                amps.push(amp);
                addrs.push(addr);
            }
            offsets.push(addrs.len());
        }
        Columns {
            offsets,
            amps,
            addrs,
        }
    }

    fn range(&self, q: usize) -> (usize, usize) {
        (self.offsets[q], self.offsets[q + 1])
    }

    fn addr_slice(&self, q: usize) -> &[u64] {
        &self.addrs[self.offsets[q]..self.offsets[q + 1]]
    }
}

/// Reusable per-epoch scratch: the distinct-address bitmap (with its undo
/// list) and the multi-branch index buffer for memo accounting, so a
/// multi-epoch batch performs O(1) allocations per epoch, not O(queries).
struct StatsScratch {
    /// One bit per memory cell: "a single-branch query over this address
    /// was already counted in the current epoch".
    seen: Vec<u64>,
    /// Addresses whose bits are set, for an O(distinct) clear per epoch.
    touched: Vec<u64>,
    /// Multi-branch query indices of the current epoch.
    multi: Vec<usize>,
}

impl StatsScratch {
    fn new(cells: usize) -> Self {
        StatsScratch {
            seen: vec![0; cells.div_ceil(64)],
            touched: Vec::new(),
            multi: Vec::new(),
        }
    }

    /// Counts the distinct address sets among `pending` and folds them
    /// into `stats` exactly as the row-at-a-time memo would: per epoch,
    /// one miss per distinct set, one hit per repeat. Single-branch sets
    /// (the common serving shape) are deduplicated through the bitmap in
    /// O(1) each; multi-branch sets by sorting their query indices by
    /// address slice (sets of different sizes can never collide, so the
    /// two classes count independently).
    fn account(&mut self, pending: &[usize], cols: &Columns, stats: &mut BatchCacheStats) {
        let mut distinct = 0u64;
        self.multi.clear();
        for &q in pending {
            let (start, end) = cols.range(q);
            if end - start == 1 {
                let a = cols.addrs[start];
                let (word, bit) = ((a >> 6) as usize, a & 63);
                if self.seen[word] >> bit & 1 == 0 {
                    self.seen[word] |= 1 << bit;
                    self.touched.push(a);
                    distinct += 1;
                }
            } else {
                self.multi.push(q);
            }
        }
        for &a in &self.touched {
            self.seen[(a >> 6) as usize] &= !(1 << (a & 63));
        }
        self.touched.clear();
        if !self.multi.is_empty() {
            self.multi
                .sort_unstable_by(|&a, &b| cols.addr_slice(a).cmp(cols.addr_slice(b)));
            distinct += 1;
            distinct += self
                .multi
                .windows(2)
                .filter(|w| cols.addr_slice(w[0]) != cols.addr_slice(w[1]))
                .count() as u64;
        }
        stats.misses += distinct;
        stats.hits += pending.len() as u64 - distinct;
    }
}

/// Rebuilds the packed 1-bit image of `cells`: cell `a` → bit `a mod 64`
/// of word `a / 64`.
fn pack_image(cells: &[u64], image: &mut Vec<u64>) {
    image.clear();
    image.resize(cells.len().div_ceil(64), 0);
    for (a, &value) in cells.iter().enumerate() {
        image[a >> 6] |= (value & 1) << (a & 63);
    }
}

/// Cell count below which the raw cell array is L1-resident (≤ 32 KiB of
/// `u64` words), where a direct indexed load per term beats any packed
/// image: the image only wins by shrinking the working set 64×, which
/// buys nothing when the full array already sits in L1.
const L1_RESIDENT_CELLS: usize = 4096;

/// Whether the bit-parallel gather pays for a `gathers`-entry epoch
/// against a `cells`-cell memory: the O(cells) image build must be
/// amortized, chunks below one word are pure overhead, and the cell
/// array must be large enough that shrinking it 64× actually moves the
/// working set out of cache-hostile territory.
fn bit_parallel_pays(bus_width: u32, gathers: usize, cells: usize) -> bool {
    bus_width == 1 && gathers >= 64 && gathers >= cells / 8 && cells > L1_RESIDENT_CELLS
}

/// Fills the `data` component of `terms` bit-parallel from a packed
/// image, addressing through `local(address)`: 64 branch parities are
/// accumulated into one `u64` word, then scattered.
fn gather_bits(terms: &mut [(Complex, u64, u64)], image: &[u64], local: impl Fn(u64) -> u64) {
    for chunk in terms.chunks_mut(64) {
        let mut word = 0u64;
        for (j, term) in chunk.iter().enumerate() {
            let a = local(term.1);
            word |= (image[(a >> 6) as usize] >> (a & 63) & 1) << j;
        }
        for (j, term) in chunk.iter_mut().enumerate() {
            term.2 = word >> j & 1;
        }
    }
}

/// The columnar batch kernel for a monolithic backend with a compiled
/// plan — the engine behind
/// [`execute_batch_traced`](crate::execute_batch_traced) whenever
/// [`QramModel::compiled_query`](crate::QramModel::compiled_query) is
/// available. Infallible: the plan was proven valid for every address at
/// compile time.
///
/// `retrievals` is only consulted when `memory_updates` is non-empty (an
/// update-free batch is a single epoch in query order, which needs no
/// sweep); callers may pass an empty slice otherwise.
///
/// # Panics
///
/// Panics if any query's address width mismatches the memory (same
/// message as the row path).
pub(crate) fn execute_batch_columnar(
    plan: &CompiledQuery,
    memory: &ClassicalMemory,
    addresses: &[AddressState],
    retrievals: &[u64],
    memory_updates: &[(u64, u64, u64)],
) -> (Vec<QueryOutcome>, BatchCacheStats) {
    let n = memory.address_width();
    let bus_width = memory.bus_width();
    if memory_updates.is_empty() {
        // Update-free batch: one epoch in query order. Flatten, memo
        // accounting, and the term column fuse into a single pass.
        return execute_single_epoch(plan, memory, addresses, n, bus_width);
    }
    let cols = Columns::flatten(addresses, n, "address width must match memory capacity");
    let total = cols.addrs.len();
    let mut column: Vec<(Complex, u64, u64)> = Vec::with_capacity(total);
    let mut ranges: Vec<(usize, usize)> = vec![(0, 0); addresses.len()];
    let mut stats = BatchCacheStats::default();
    let mut scratch = StatsScratch::new(memory.capacity());
    let mut image: Vec<u64> = Vec::new();
    let mut image_valid = false;
    let reads_data = plan.reads_data();

    let mut process_epoch = |pending: &[usize], mem: &ClassicalMemory, image_valid: &mut bool| {
        scratch.account(pending, &cols, &mut stats);
        let epoch_start = column.len();
        for &q in pending {
            let (start, end) = cols.range(q);
            let out_start = column.len();
            for i in start..end {
                column.push((cols.amps[i], cols.addrs[i], 0));
            }
            ranges[q] = (out_start, column.len());
        }
        if !reads_data {
            return; // XOR-cancelled constant 0: the placeholders stand.
        }
        let cells = mem.cells();
        let epoch = &mut column[epoch_start..];
        if bit_parallel_pays(bus_width, epoch.len(), cells.len()) {
            if !*image_valid {
                pack_image(cells, &mut image);
                *image_valid = true;
            }
            gather_bits(epoch, &image, |a| a);
        } else {
            for term in epoch.iter_mut() {
                term.2 = cells[term.1 as usize];
            }
        }
    };

    let mut pending: Vec<usize> = Vec::with_capacity(addresses.len());
    let mut mem = memory.clone();
    retrieval_order_sweep(retrievals, memory_updates, |event| -> Result<(), ()> {
        match event {
            SweepEvent::Update { address, value } => {
                if !pending.is_empty() {
                    process_epoch(&pending, &mem, &mut image_valid);
                    pending.clear();
                }
                mem.write(address, value);
                image_valid = false;
            }
            SweepEvent::Query(q) => pending.push(q),
        }
        Ok(())
    })
    .expect("columnar sweep is infallible");
    if !pending.is_empty() {
        process_epoch(&pending, &mem, &mut image_valid);
    }

    let column: Arc<[(Complex, u64, u64)]> = column.into();
    let outcomes = ranges
        .iter()
        .map(|&(start, end)| QueryOutcome::from_shared_column(n, bus_width, &column, start, end))
        .collect();
    (outcomes, stats)
}

/// The fused single-epoch kernel behind [`execute_batch_columnar`] for
/// update-free batches — the dominant serving shape. One pass over the
/// queries builds the term column, the per-query offsets, and the memo
/// accounting together (bitmap for single-branch sets, deferred
/// sort-by-address-sequence for multi-branch sets); the retrieval gather
/// then runs over the whole column at once. An all-classical batch never
/// builds the shared `Arc` column at all: every outcome stores its lone
/// term inline ([`QueryOutcome::from_term`]).
fn execute_single_epoch(
    plan: &CompiledQuery,
    memory: &ClassicalMemory,
    addresses: &[AddressState],
    n: u32,
    bus_width: u32,
) -> (Vec<QueryOutcome>, BatchCacheStats) {
    let cells = memory.cells();
    let total: usize = addresses.iter().map(|a| a.terms().len()).sum();
    let mut column: Vec<(Complex, u64, u64)> = Vec::with_capacity(total);
    let mut offsets: Vec<usize> = Vec::with_capacity(addresses.len() + 1);
    offsets.push(0);
    let mut scratch = StatsScratch::new(memory.capacity());
    let mut distinct = 0u64;
    for address in addresses {
        assert_eq!(
            address.address_width(),
            n,
            "address width must match memory capacity"
        );
        let terms = address.terms();
        if terms.len() == 1 {
            let (amp, a) = terms[0];
            column.push((amp, a, 0));
            let (word, bit) = ((a >> 6) as usize, a & 63);
            if scratch.seen[word] >> bit & 1 == 0 {
                scratch.seen[word] |= 1 << bit;
                scratch.touched.push(a);
                distinct += 1;
            }
        } else {
            scratch.multi.push(offsets.len() - 1);
            for &(amp, a) in terms {
                column.push((amp, a, 0));
            }
        }
        offsets.push(column.len());
    }
    for &a in &scratch.touched {
        scratch.seen[(a >> 6) as usize] &= !(1 << (a & 63));
    }
    scratch.touched.clear();
    if !scratch.multi.is_empty() {
        let addr_seq = |q: usize| column[offsets[q]..offsets[q + 1]].iter().map(|t| t.1);
        scratch
            .multi
            .sort_unstable_by(|&a, &b| addr_seq(a).cmp(addr_seq(b)));
        distinct += 1;
        distinct += scratch
            .multi
            .windows(2)
            .filter(|w| !addr_seq(w[0]).eq(addr_seq(w[1])))
            .count() as u64;
    }
    let stats = BatchCacheStats {
        misses: distinct,
        hits: addresses.len() as u64 - distinct,
    };

    if plan.reads_data() {
        if bit_parallel_pays(bus_width, column.len(), cells.len()) {
            let mut image = Vec::new();
            pack_image(cells, &mut image);
            gather_bits(&mut column, &image, |a| a);
        } else {
            for term in column.iter_mut() {
                term.2 = cells[term.1 as usize];
            }
        }
    }

    let outcomes = if column.len() == addresses.len() {
        // All single-branch: inline outcomes, no shared column.
        column
            .iter()
            .map(|&term| QueryOutcome::from_term(n, bus_width, term))
            .collect()
    } else {
        let column: Arc<[(Complex, u64, u64)]> = column.into();
        offsets
            .windows(2)
            .map(|w| QueryOutcome::from_shared_column(n, bus_width, &column, w[0], w[1]))
            .collect()
    };
    (outcomes, stats)
}

/// The columnar batch kernel for [`ShardedQram`](crate::ShardedQram)
/// with a compiled shard plan: the same epoch structure as
/// [`execute_batch_columnar`], with each epoch's entries radix-
/// partitioned across shards by the low-order `shard_bits` address bits
/// (one counting sort — no per-shard sub-batch maps) and gathered per
/// shard segment against the interleaved shard memories. Per-shard packed
/// 1-bit images persist across epochs behind dirty flags, so only shards
/// actually written between epochs rebuild.
///
/// Memory updates arrive in *global* addressing and are routed to the
/// owning shard here, mutating `shard_mems` exactly like the interpreter
/// sweep. No cache statistics: the sharded path has never reported them.
///
/// # Panics
///
/// Panics if any query's address width mismatches the sharded capacity
/// (same message as the interpreter path).
pub(crate) fn execute_sharded_columnar(
    plan: &CompiledQuery,
    shard_mems: &mut [ClassicalMemory],
    shard_bits: u32,
    address_width: u32,
    addresses: &[AddressState],
    retrievals: &[u64],
    memory_updates: &[(u64, u64, u64)],
) -> Vec<QueryOutcome> {
    let bus_width = shard_mems[0].bus_width();
    let mut gather = ShardGather::new(shard_mems, shard_bits);
    let reads_data = plan.reads_data();

    if memory_updates.is_empty() {
        let total: usize = addresses.iter().map(|a| a.terms().len()).sum();
        if total > addresses.len() {
            // Multi-branch queries present: each outcome owns its terms,
            // filled and gathered in place — one write pass per term, no
            // intermediate column to re-copy into shared storage.
            let mut outcomes = Vec::with_capacity(addresses.len());
            for address in addresses {
                assert_eq!(
                    address.address_width(),
                    address_width,
                    "address width must match QRAM capacity"
                );
                let mut terms: Vec<(Complex, u64, u64)> = address
                    .terms()
                    .iter()
                    .map(|&(amp, a)| (amp, a, 0))
                    .collect();
                if reads_data {
                    gather.gather(&mut terms, shard_mems);
                }
                outcomes.push(QueryOutcome::from_terms(address_width, bus_width, terms));
            }
            return outcomes;
        }
        // All single-branch (the serving shape): one epoch in query order,
        // flattened in a single fused pass, outcomes stored inline.
        let mut column: Vec<(Complex, u64, u64)> = Vec::with_capacity(total);
        for address in addresses {
            assert_eq!(
                address.address_width(),
                address_width,
                "address width must match QRAM capacity"
            );
            let &(amp, a) = &address.terms()[0];
            column.push((amp, a, 0));
        }
        if reads_data {
            gather.gather(&mut column, shard_mems);
        }
        return column
            .iter()
            .map(|&term| QueryOutcome::from_term(address_width, bus_width, term))
            .collect();
    }

    let cols = Columns::flatten(
        addresses,
        address_width,
        "address width must match QRAM capacity",
    );
    let total = cols.addrs.len();
    let mut column: Vec<(Complex, u64, u64)> = Vec::with_capacity(total);
    let mut ranges: Vec<(usize, usize)> = vec![(0, 0); addresses.len()];
    let shard_mask = gather.shard_mask;

    let mut process_epoch =
        |pending: &[usize], shard_mems: &[ClassicalMemory], gather: &mut ShardGather| {
            let epoch_start = column.len();
            for &q in pending {
                let (start, end) = cols.range(q);
                let out_start = column.len();
                for i in start..end {
                    column.push((cols.amps[i], cols.addrs[i], 0));
                }
                ranges[q] = (out_start, column.len());
            }
            if reads_data {
                gather.gather(&mut column[epoch_start..], shard_mems);
            }
        };

    let mut pending: Vec<usize> = Vec::with_capacity(addresses.len());
    retrieval_order_sweep(retrievals, memory_updates, |event| -> Result<(), ()> {
        match event {
            SweepEvent::Update { address, value } => {
                if !pending.is_empty() {
                    process_epoch(&pending, shard_mems, &mut gather);
                    pending.clear();
                }
                let s = (address & shard_mask) as usize;
                shard_mems[s].write(address >> shard_bits, value);
                gather.invalidate(s);
            }
            SweepEvent::Query(q) => pending.push(q),
        }
        Ok(())
    })
    .expect("columnar sweep is infallible");
    if !pending.is_empty() {
        process_epoch(&pending, shard_mems, &mut gather);
    }

    let column: Arc<[(Complex, u64, u64)]> = column.into();
    ranges
        .iter()
        .map(|&(start, end)| {
            QueryOutcome::from_shared_column(address_width, bus_width, &column, start, end)
        })
        .collect()
}

/// The per-epoch shard gather of [`execute_sharded_columnar`]: radix-
/// partitions an epoch's term entries by the low-order shard bits with
/// one counting sort (no per-shard `HashMap` sub-batches) and fills each
/// entry's data from its owning shard — bit-parallel from packed 1-bit
/// images where that pays. Per-shard images persist across epochs behind
/// dirty flags ([`Self::invalidate`]); counting-sort scratch is reused.
struct ShardGather {
    images: Vec<Vec<u64>>,
    image_valid: Vec<bool>,
    counts: Vec<usize>,
    cursors: Vec<usize>,
    perm: Vec<usize>,
    shard_bits: u32,
    shard_mask: u64,
    bus_width: u32,
    shard_cells: usize,
}

impl ShardGather {
    fn new(shard_mems: &[ClassicalMemory], shard_bits: u32) -> Self {
        let num_shards = shard_mems.len();
        ShardGather {
            images: vec![Vec::new(); num_shards],
            image_valid: vec![false; num_shards],
            counts: vec![0; num_shards],
            cursors: vec![0; num_shards],
            perm: Vec::new(),
            shard_bits,
            shard_mask: num_shards as u64 - 1,
            bus_width: shard_mems[0].bus_width(),
            shard_cells: shard_mems[0].capacity(),
        }
    }

    /// Marks shard `s`'s packed image stale after a write.
    fn invalidate(&mut self, s: usize) {
        self.image_valid[s] = false;
    }

    fn gather(&mut self, epoch: &mut [(Complex, u64, u64)], shard_mems: &[ClassicalMemory]) {
        // Radix partition by the low-order shard bits: one counting sort
        // over the epoch yields, per shard, the (ascending) entry indices
        // it serves.
        self.counts.fill(0);
        for term in epoch.iter() {
            self.counts[(term.1 & self.shard_mask) as usize] += 1;
        }
        // The partition only earns its keep feeding per-shard packed
        // images; when every shard's cells are L1-resident a direct
        // indexed load per term is cheaper than building the permutation.
        let any_image = self
            .counts
            .iter()
            .any(|&count| bit_parallel_pays(self.bus_width, count, self.shard_cells));
        if !any_image {
            for term in epoch.iter_mut() {
                let s = (term.1 & self.shard_mask) as usize;
                term.2 = shard_mems[s].cells()[(term.1 >> self.shard_bits) as usize];
            }
            return;
        }
        let mut running = 0;
        for (cursor, &count) in self.cursors.iter_mut().zip(&self.counts) {
            *cursor = running;
            running += count;
        }
        self.perm.clear();
        self.perm.resize(epoch.len(), 0);
        for (i, term) in epoch.iter().enumerate() {
            let s = (term.1 & self.shard_mask) as usize;
            self.perm[self.cursors[s]] = i;
            self.cursors[s] += 1;
        }
        let mut segment_start = 0;
        for (s, &count) in self.counts.iter().enumerate() {
            let segment = &self.perm[segment_start..segment_start + count];
            segment_start += count;
            if count == 0 {
                continue;
            }
            let cells = shard_mems[s].cells();
            if bit_parallel_pays(self.bus_width, count, self.shard_cells) {
                if !self.image_valid[s] {
                    pack_image(cells, &mut self.images[s]);
                    self.image_valid[s] = true;
                }
                let image = &self.images[s];
                for chunk in segment.chunks(64) {
                    let mut word = 0u64;
                    for (j, &i) in chunk.iter().enumerate() {
                        let a = epoch[i].1 >> self.shard_bits;
                        word |= (image[(a >> 6) as usize] >> (a & 63) & 1) << j;
                    }
                    for (j, &i) in chunk.iter().enumerate() {
                        epoch[i].2 = word >> j & 1;
                    }
                }
            } else {
                for &i in segment {
                    let a = epoch[i].1 >> self.shard_bits;
                    epoch[i].2 = cells[a as usize];
                }
            }
        }
    }
}
