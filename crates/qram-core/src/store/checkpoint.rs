//! Checkpoint images: a full memory snapshot plus its epoch watermark.
//!
//! A checkpoint bounds recovery time (replay starts from the watermark,
//! not epoch zero) and bounds WAL growth (compaction drops the absorbed
//! prefix). The image is one [`frame`]-wrapped payload:
//!
//! ```text
//!   magic "QCKP" · version u32 · epoch u64 · bus_width u32 · cells u64
//!   · cell words …                               (all little-endian)
//! ```
//!
//! Installation is crash-atomic: the image is written to
//! [`CHECKPOINT_TMP`], synced, and renamed onto [`CHECKPOINT_FILE`]. A
//! crash before the rename leaves the old checkpoint authoritative and
//! at worst some scratch debris; a bit-flipped installed image fails its
//! CRC on load and is reported as *detected* corruption, never silently
//! replayed as state.

use qsim::branch::ClassicalMemory;

use super::dir::Dir;
use super::frame;
use super::StoreError;

/// The installed (authoritative) checkpoint image.
pub const CHECKPOINT_FILE: &str = "checkpoint.img";
/// The install scratch file; only ever observed after a crash.
pub const CHECKPOINT_TMP: &str = "checkpoint.tmp";

const MAGIC: &[u8; 4] = b"QCKP";
const VERSION: u32 = 1;
const HEADER: usize = 4 + 4 + 8 + 4 + 8;

/// Serializes `memory` at `epoch` as an unframed checkpoint payload.
#[must_use]
pub fn encode(memory: &ClassicalMemory, epoch: u64) -> Vec<u8> {
    let cells = memory.cells();
    let mut out = Vec::with_capacity(HEADER + 8 * cells.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&memory.bus_width().to_le_bytes());
    out.extend_from_slice(&(cells.len() as u64).to_le_bytes());
    for &c in cells {
        out.extend_from_slice(&c.to_le_bytes());
    }
    out
}

/// Parses an unframed checkpoint payload back into `(memory, epoch)`.
///
/// # Errors
/// [`StoreError::CorruptCheckpoint`] on any shape violation — wrong
/// magic, unknown version, or a cell count that disagrees with the
/// payload length or memory-geometry rules.
pub fn decode(payload: &[u8]) -> Result<(ClassicalMemory, u64), StoreError> {
    if payload.len() < HEADER {
        return Err(StoreError::CorruptCheckpoint("payload shorter than header"));
    }
    if &payload[..4] != MAGIC {
        return Err(StoreError::CorruptCheckpoint("bad magic"));
    }
    let word32 = |at: usize| u32::from_le_bytes(payload[at..at + 4].try_into().expect("4B"));
    let word64 = |at: usize| u64::from_le_bytes(payload[at..at + 8].try_into().expect("8B"));
    if word32(4) != VERSION {
        return Err(StoreError::CorruptCheckpoint("unknown version"));
    }
    let epoch = word64(8);
    let bus_width = word32(16);
    let cell_count = word64(20);
    let Ok(cell_count) = usize::try_from(cell_count) else {
        return Err(StoreError::CorruptCheckpoint("cell count overflows"));
    };
    if payload.len() != HEADER + 8 * cell_count {
        return Err(StoreError::CorruptCheckpoint(
            "cell count vs payload length",
        ));
    }
    let cells: Vec<u64> = (0..cell_count).map(|i| word64(HEADER + 8 * i)).collect();
    let memory = ClassicalMemory::from_words(bus_width, &cells)
        .map_err(|_| StoreError::CorruptCheckpoint("invalid memory geometry"))?;
    Ok((memory, epoch))
}

/// Atomically installs `memory` at `epoch` as the checkpoint: frame,
/// write to scratch, sync, rename, sync.
///
/// # Errors
/// [`StoreError::Io`] when the directory fails.
pub fn install(dir: &mut dyn Dir, memory: &ClassicalMemory, epoch: u64) -> Result<(), StoreError> {
    let framed = frame::encode_record(&encode(memory, epoch));
    dir.replace(CHECKPOINT_TMP, &framed)?;
    dir.sync()?;
    dir.rename(CHECKPOINT_TMP, CHECKPOINT_FILE)?;
    dir.sync()?;
    Ok(())
}

/// Loads the installed checkpoint. `Ok(None)` when no image exists.
///
/// # Errors
/// [`StoreError::CorruptCheckpoint`] when the image exists but fails
/// framing (CRC), decoding, or holds trailing bytes; [`StoreError::Io`]
/// when the directory fails.
pub fn load(dir: &dyn Dir) -> Result<Option<(ClassicalMemory, u64)>, StoreError> {
    let bytes = match dir.read(CHECKPOINT_FILE) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let scanned = frame::scan(&bytes);
    if scanned.payloads.len() != 1 || scanned.valid_len != bytes.len() {
        return Err(StoreError::CorruptCheckpoint(
            "image is not exactly one intact frame",
        ));
    }
    decode(&scanned.payloads[0]).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::dir::SimDir;

    fn memory() -> ClassicalMemory {
        let cells: Vec<u64> = (0..16).map(|i| i * 3 + 1).collect();
        ClassicalMemory::from_words(16, &cells).unwrap()
    }

    #[test]
    fn install_then_load_roundtrips() {
        let mut d = SimDir::new();
        assert!(load(&d).unwrap().is_none());
        install(&mut d, &memory(), 7).unwrap();
        assert!(!d.exists(CHECKPOINT_TMP), "scratch cleaned by rename");
        let (m, epoch) = load(&d).unwrap().unwrap();
        assert_eq!(epoch, 7);
        assert_eq!(m, memory());
    }

    #[test]
    fn reinstall_supersedes_the_old_image() {
        let mut d = SimDir::new();
        install(&mut d, &memory(), 1).unwrap();
        let mut newer = memory();
        newer.write(0, 999);
        install(&mut d, &newer, 9).unwrap();
        let (m, epoch) = load(&d).unwrap().unwrap();
        assert_eq!((m.read(0), epoch), (999, 9));
    }

    #[test]
    fn every_single_bit_flip_in_the_image_is_detected() {
        let mut d = SimDir::new();
        install(&mut d, &memory(), 3).unwrap();
        let len = d.len_of(CHECKPOINT_FILE).unwrap();
        for offset in 0..len {
            let mut dirty = d.clone();
            dirty.flip_bit(CHECKPOINT_FILE, offset, offset as u32 % 8);
            assert!(
                matches!(load(&dirty), Err(StoreError::CorruptCheckpoint(_))),
                "flip at byte {offset} slipped through"
            );
        }
    }

    #[test]
    fn decode_rejects_every_header_lie() {
        let good = encode(&memory(), 5);
        assert!(decode(&good).is_ok());
        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(decode(&bad_magic).is_err());
        let mut bad_version = good.clone();
        bad_version[4] = 99;
        assert!(decode(&bad_version).is_err());
        let mut bad_count = good.clone();
        bad_count[20] ^= 1;
        assert!(decode(&bad_count).is_err());
        assert!(decode(&good[..10]).is_err());
    }
}
