//! Checkpoint images: a full memory snapshot plus its epoch watermark.
//!
//! A checkpoint bounds recovery time (replay starts from the watermark,
//! not epoch zero) and bounds WAL growth (compaction drops the absorbed
//! prefix). The image is one [`frame`]-wrapped payload:
//!
//! ```text
//!   magic "QCKP" · version u32 · epoch u64 · bus_width u32 · cells u64
//!   · cell words …                               (all little-endian)
//! ```
//!
//! Installation is crash-atomic: the image is written to
//! [`CHECKPOINT_TMP`], synced, and renamed onto [`CHECKPOINT_FILE`]. A
//! crash before the rename leaves the old checkpoint authoritative and
//! at worst some scratch debris; a bit-flipped installed image fails its
//! CRC on load and is reported as *detected* corruption, never silently
//! replayed as state.
//!
//! # Delta chains
//!
//! A full image costs the whole memory every interval. A *delta*
//! ([`Delta`]) records only the cells written since the previous
//! checkpoint, chained off the base image by epoch:
//!
//! ```text
//!   checkpoint.img ── delta.0001 ── delta.0002 ── … ── WAL tail
//!   (base, epoch B)   (base B,      (base E₁,
//!                      epoch E₁)     epoch E₂)
//! ```
//!
//! Each delta names the epoch of the state it extends (`base_epoch`);
//! [`load_chain`] applies deltas only while that linkage is contiguous,
//! so debris from a crashed fold — which removes deltas *descending*,
//! leaving only a contiguous stale prefix at `delta.0001…` — is detected
//! by the epoch mismatch and swept. Each delta installs with the same
//! tmp-sync-rename dance as the base image.

use qsim::branch::ClassicalMemory;

use super::dir::Dir;
use super::frame;
use super::StoreError;

/// The installed (authoritative) checkpoint image.
pub const CHECKPOINT_FILE: &str = "checkpoint.img";
/// The install scratch file; only ever observed after a crash.
pub const CHECKPOINT_TMP: &str = "checkpoint.tmp";
/// The delta install scratch file; only ever observed after a crash.
pub const DELTA_TMP: &str = "delta.tmp";

const MAGIC: &[u8; 4] = b"QCKP";
const VERSION: u32 = 1;
const HEADER: usize = 4 + 4 + 8 + 4 + 8;

const DELTA_MAGIC: &[u8; 4] = b"QDLT";
const DELTA_HEADER: usize = 4 + 4 + 8 + 8 + 8;

/// Name of the `index`-th delta in the chain (1-based: `delta.0001` is
/// the first delta off the base image).
#[must_use]
pub fn delta_file(index: usize) -> String {
    format!("delta.{index:04}")
}

/// One incremental checkpoint: the cells written between two epochs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delta {
    /// Epoch of the state this delta extends (the previous link).
    pub base_epoch: u64,
    /// Epoch of the state after applying this delta.
    pub epoch: u64,
    /// `(address, value)` pairs, last write wins, ascending address.
    pub cells: Vec<(u64, u64)>,
}

/// Serializes `delta` as an unframed payload:
/// `magic "QDLT" · version u32 · base_epoch u64 · epoch u64 · count u64
/// · (address u64 · value u64) …` (all little-endian).
#[must_use]
pub fn encode_delta(delta: &Delta) -> Vec<u8> {
    let mut out = Vec::with_capacity(DELTA_HEADER + 16 * delta.cells.len());
    out.extend_from_slice(DELTA_MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&delta.base_epoch.to_le_bytes());
    out.extend_from_slice(&delta.epoch.to_le_bytes());
    out.extend_from_slice(&(delta.cells.len() as u64).to_le_bytes());
    for &(address, value) in &delta.cells {
        out.extend_from_slice(&address.to_le_bytes());
        out.extend_from_slice(&value.to_le_bytes());
    }
    out
}

/// Parses an unframed delta payload.
///
/// # Errors
/// [`StoreError::CorruptCheckpoint`] on any shape violation.
pub fn decode_delta(payload: &[u8]) -> Result<Delta, StoreError> {
    if payload.len() < DELTA_HEADER {
        return Err(StoreError::CorruptCheckpoint("delta shorter than header"));
    }
    if &payload[..4] != DELTA_MAGIC {
        return Err(StoreError::CorruptCheckpoint("bad delta magic"));
    }
    let word32 = |at: usize| u32::from_le_bytes(payload[at..at + 4].try_into().expect("4B"));
    let word64 = |at: usize| u64::from_le_bytes(payload[at..at + 8].try_into().expect("8B"));
    if word32(4) != VERSION {
        return Err(StoreError::CorruptCheckpoint("unknown delta version"));
    }
    let base_epoch = word64(8);
    let epoch = word64(16);
    let Ok(count) = usize::try_from(word64(24)) else {
        return Err(StoreError::CorruptCheckpoint("delta count overflows"));
    };
    if payload.len() != DELTA_HEADER + 16 * count {
        return Err(StoreError::CorruptCheckpoint("delta count vs length"));
    }
    if epoch <= base_epoch {
        return Err(StoreError::CorruptCheckpoint("delta epoch not after base"));
    }
    let cells = (0..count)
        .map(|i| {
            (
                word64(DELTA_HEADER + 16 * i),
                word64(DELTA_HEADER + 16 * i + 8),
            )
        })
        .collect();
    Ok(Delta {
        base_epoch,
        epoch,
        cells,
    })
}

/// Atomically installs `delta` as the `index`-th chain link: frame,
/// write to scratch, sync, rename, sync.
///
/// # Errors
/// [`StoreError::Io`] when the directory fails.
pub fn install_delta(dir: &mut dyn Dir, index: usize, delta: &Delta) -> Result<(), StoreError> {
    let framed = frame::encode_record(&encode_delta(delta));
    dir.replace(DELTA_TMP, &framed)?;
    dir.sync()?;
    dir.rename(DELTA_TMP, &delta_file(index))?;
    dir.sync()?;
    Ok(())
}

/// Loads the base image and replays every delta whose linkage is
/// contiguous. Returns `(memory, epoch, chain_len)`, or `None` when no
/// base image exists. Deltas that don't link (debris from a crashed
/// fold: a stale contiguous prefix at `delta.0001…`) are removed.
///
/// # Errors
/// [`StoreError::CorruptCheckpoint`] on a damaged image or delta;
/// [`StoreError::Io`] when the directory fails.
pub fn load_chain(dir: &mut dyn Dir) -> Result<Option<(ClassicalMemory, u64, usize)>, StoreError> {
    let Some((mut memory, mut epoch)) = load(dir)? else {
        return Ok(None);
    };
    let mut chain = 0usize;
    loop {
        let name = delta_file(chain + 1);
        let bytes = match dir.read(&name) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => break,
            Err(e) => return Err(e.into()),
        };
        let scanned = frame::scan(&bytes);
        if scanned.payloads.len() != 1 || scanned.valid_len != bytes.len() {
            return Err(StoreError::CorruptCheckpoint(
                "delta is not exactly one intact frame",
            ));
        }
        let delta = decode_delta(&scanned.payloads[0])?;
        if delta.base_epoch != epoch {
            // Stale prefix from a crashed fold: the new base superseded
            // these links. Sweep ascending until the first gap.
            let mut stale = chain + 1;
            while dir.exists(&delta_file(stale)) {
                dir.remove(&delta_file(stale))?;
                stale += 1;
            }
            break;
        }
        for &(address, value) in &delta.cells {
            memory.write(address, value);
        }
        epoch = delta.epoch;
        chain += 1;
    }
    Ok(Some((memory, epoch, chain)))
}

/// Removes a delta chain of length `len`, highest index first, so a
/// crash mid-removal leaves only a contiguous prefix at `delta.0001…`
/// that the next [`load_chain`] detects (epoch mismatch) and sweeps.
///
/// # Errors
/// [`StoreError::Io`] when the directory fails.
pub fn remove_chain(dir: &mut dyn Dir, len: usize) -> Result<(), StoreError> {
    for index in (1..=len).rev() {
        let name = delta_file(index);
        if dir.exists(&name) {
            dir.remove(&name)?;
        }
    }
    Ok(())
}

/// Serializes `memory` at `epoch` as an unframed checkpoint payload.
#[must_use]
pub fn encode(memory: &ClassicalMemory, epoch: u64) -> Vec<u8> {
    let cells = memory.cells();
    let mut out = Vec::with_capacity(HEADER + 8 * cells.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&memory.bus_width().to_le_bytes());
    out.extend_from_slice(&(cells.len() as u64).to_le_bytes());
    for &c in cells {
        out.extend_from_slice(&c.to_le_bytes());
    }
    out
}

/// Parses an unframed checkpoint payload back into `(memory, epoch)`.
///
/// # Errors
/// [`StoreError::CorruptCheckpoint`] on any shape violation — wrong
/// magic, unknown version, or a cell count that disagrees with the
/// payload length or memory-geometry rules.
pub fn decode(payload: &[u8]) -> Result<(ClassicalMemory, u64), StoreError> {
    if payload.len() < HEADER {
        return Err(StoreError::CorruptCheckpoint("payload shorter than header"));
    }
    if &payload[..4] != MAGIC {
        return Err(StoreError::CorruptCheckpoint("bad magic"));
    }
    let word32 = |at: usize| u32::from_le_bytes(payload[at..at + 4].try_into().expect("4B"));
    let word64 = |at: usize| u64::from_le_bytes(payload[at..at + 8].try_into().expect("8B"));
    if word32(4) != VERSION {
        return Err(StoreError::CorruptCheckpoint("unknown version"));
    }
    let epoch = word64(8);
    let bus_width = word32(16);
    let cell_count = word64(20);
    let Ok(cell_count) = usize::try_from(cell_count) else {
        return Err(StoreError::CorruptCheckpoint("cell count overflows"));
    };
    if payload.len() != HEADER + 8 * cell_count {
        return Err(StoreError::CorruptCheckpoint(
            "cell count vs payload length",
        ));
    }
    let cells: Vec<u64> = (0..cell_count).map(|i| word64(HEADER + 8 * i)).collect();
    let memory = ClassicalMemory::from_words(bus_width, &cells)
        .map_err(|_| StoreError::CorruptCheckpoint("invalid memory geometry"))?;
    Ok((memory, epoch))
}

/// Atomically installs `memory` at `epoch` as the checkpoint: frame,
/// write to scratch, sync, rename, sync.
///
/// # Errors
/// [`StoreError::Io`] when the directory fails.
pub fn install(dir: &mut dyn Dir, memory: &ClassicalMemory, epoch: u64) -> Result<(), StoreError> {
    let framed = frame::encode_record(&encode(memory, epoch));
    dir.replace(CHECKPOINT_TMP, &framed)?;
    dir.sync()?;
    dir.rename(CHECKPOINT_TMP, CHECKPOINT_FILE)?;
    dir.sync()?;
    Ok(())
}

/// Loads the installed checkpoint. `Ok(None)` when no image exists.
///
/// # Errors
/// [`StoreError::CorruptCheckpoint`] when the image exists but fails
/// framing (CRC), decoding, or holds trailing bytes; [`StoreError::Io`]
/// when the directory fails.
pub fn load(dir: &dyn Dir) -> Result<Option<(ClassicalMemory, u64)>, StoreError> {
    let bytes = match dir.read(CHECKPOINT_FILE) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let scanned = frame::scan(&bytes);
    if scanned.payloads.len() != 1 || scanned.valid_len != bytes.len() {
        return Err(StoreError::CorruptCheckpoint(
            "image is not exactly one intact frame",
        ));
    }
    decode(&scanned.payloads[0]).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::dir::SimDir;

    fn memory() -> ClassicalMemory {
        let cells: Vec<u64> = (0..16).map(|i| i * 3 + 1).collect();
        ClassicalMemory::from_words(16, &cells).unwrap()
    }

    #[test]
    fn install_then_load_roundtrips() {
        let mut d = SimDir::new();
        assert!(load(&d).unwrap().is_none());
        install(&mut d, &memory(), 7).unwrap();
        assert!(!d.exists(CHECKPOINT_TMP), "scratch cleaned by rename");
        let (m, epoch) = load(&d).unwrap().unwrap();
        assert_eq!(epoch, 7);
        assert_eq!(m, memory());
    }

    #[test]
    fn reinstall_supersedes_the_old_image() {
        let mut d = SimDir::new();
        install(&mut d, &memory(), 1).unwrap();
        let mut newer = memory();
        newer.write(0, 999);
        install(&mut d, &newer, 9).unwrap();
        let (m, epoch) = load(&d).unwrap().unwrap();
        assert_eq!((m.read(0), epoch), (999, 9));
    }

    #[test]
    fn every_single_bit_flip_in_the_image_is_detected() {
        let mut d = SimDir::new();
        install(&mut d, &memory(), 3).unwrap();
        let len = d.len_of(CHECKPOINT_FILE).unwrap();
        for offset in 0..len {
            let mut dirty = d.clone();
            dirty.flip_bit(CHECKPOINT_FILE, offset, offset as u32 % 8);
            assert!(
                matches!(load(&dirty), Err(StoreError::CorruptCheckpoint(_))),
                "flip at byte {offset} slipped through"
            );
        }
    }

    #[test]
    fn decode_rejects_every_header_lie() {
        let good = encode(&memory(), 5);
        assert!(decode(&good).is_ok());
        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(decode(&bad_magic).is_err());
        let mut bad_version = good.clone();
        bad_version[4] = 99;
        assert!(decode(&bad_version).is_err());
        let mut bad_count = good.clone();
        bad_count[20] ^= 1;
        assert!(decode(&bad_count).is_err());
        assert!(decode(&good[..10]).is_err());
    }

    #[test]
    fn delta_encode_decode_roundtrips() {
        let delta = Delta {
            base_epoch: 7,
            epoch: 11,
            cells: vec![(0, 42), (3, 9), (15, u64::MAX)],
        };
        assert_eq!(decode_delta(&encode_delta(&delta)).unwrap(), delta);
    }

    #[test]
    fn decode_delta_rejects_every_header_lie() {
        let good = encode_delta(&Delta {
            base_epoch: 1,
            epoch: 2,
            cells: vec![(0, 5)],
        });
        assert!(decode_delta(&good).is_ok());
        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(decode_delta(&bad_magic).is_err());
        let mut bad_version = good.clone();
        bad_version[4] = 99;
        assert!(decode_delta(&bad_version).is_err());
        let mut bad_count = good.clone();
        bad_count[24] ^= 1;
        assert!(decode_delta(&bad_count).is_err());
        assert!(decode_delta(&good[..10]).is_err());
        // An epoch that fails to advance past its base is nonsense.
        let stuck = encode_delta(&Delta {
            base_epoch: 2,
            epoch: 2,
            cells: Vec::new(),
        });
        assert!(decode_delta(&stuck).is_err());
    }

    #[test]
    fn a_delta_chain_replays_onto_the_base_image() {
        let mut d = SimDir::new();
        install(&mut d, &memory(), 4).unwrap();
        install_delta(
            &mut d,
            1,
            &Delta {
                base_epoch: 4,
                epoch: 6,
                cells: vec![(0, 100), (2, 200)],
            },
        )
        .unwrap();
        install_delta(
            &mut d,
            2,
            &Delta {
                base_epoch: 6,
                epoch: 7,
                cells: vec![(0, 111)],
            },
        )
        .unwrap();
        assert!(!d.exists(DELTA_TMP), "scratch cleaned by rename");
        let (m, epoch, chain) = load_chain(&mut d).unwrap().unwrap();
        assert_eq!((epoch, chain), (7, 2));
        assert_eq!(m.read(0), 111, "later delta wins");
        assert_eq!(m.read(2), 200);
        assert_eq!(m.read(1), memory().read(1), "untouched cells survive");
    }

    #[test]
    fn a_bit_flipped_delta_is_detected_not_replayed() {
        let mut d = SimDir::new();
        install(&mut d, &memory(), 1).unwrap();
        install_delta(
            &mut d,
            1,
            &Delta {
                base_epoch: 1,
                epoch: 2,
                cells: vec![(0, 9)],
            },
        )
        .unwrap();
        let len = d.len_of(&delta_file(1)).unwrap();
        for offset in 0..len {
            let mut dirty = d.clone();
            dirty.flip_bit(&delta_file(1), offset, offset as u32 % 8);
            assert!(
                matches!(
                    load_chain(&mut dirty),
                    Err(StoreError::CorruptCheckpoint(_))
                ),
                "flip at byte {offset} slipped through"
            );
        }
    }

    #[test]
    fn a_stale_chain_prefix_is_swept_not_replayed() {
        // A fold crashed after installing the new base but before
        // removing delta.0001: its base_epoch no longer matches.
        let mut d = SimDir::new();
        install_delta(
            &mut d,
            1,
            &Delta {
                base_epoch: 3,
                epoch: 5,
                cells: vec![(0, 666)],
            },
        )
        .unwrap();
        install(&mut d, &memory(), 5).unwrap();
        let (m, epoch, chain) = load_chain(&mut d).unwrap().unwrap();
        assert_eq!((epoch, chain), (5, 0));
        assert_eq!(m, memory(), "stale delta must not apply");
        assert!(!d.exists(&delta_file(1)), "stale delta swept");
    }

    #[test]
    fn remove_chain_deletes_highest_index_first() {
        let mut d = SimDir::new();
        install(&mut d, &memory(), 1).unwrap();
        for (i, epochs) in [(1usize, (1u64, 2u64)), (2, (2, 3)), (3, (3, 4))] {
            install_delta(
                &mut d,
                i,
                &Delta {
                    base_epoch: epochs.0,
                    epoch: epochs.1,
                    cells: Vec::new(),
                },
            )
            .unwrap();
        }
        let before = d.journal().len();
        remove_chain(&mut d, 3).unwrap();
        for i in 1..=3 {
            assert!(!d.exists(&delta_file(i)));
        }
        // Descending removal: any crash prefix leaves delta.0001… as a
        // contiguous run, never a gap hiding orphans.
        let removed: Vec<String> = d.journal()[before..]
            .iter()
            .filter_map(|op| match op {
                crate::store::dir::DirOp::Remove { name } => Some(name.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(removed, vec![delta_file(3), delta_file(2), delta_file(1)]);
    }
}
