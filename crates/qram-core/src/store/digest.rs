//! Chunked FNV-1a digests with a Merkle-style fold — the currency of
//! anti-entropy scrubbing.
//!
//! The scrubber needs to compare a replica's live memory against the
//! state the durable log vouches for, cheaply and incrementally: equal
//! states must digest equal, a single flipped bit must digest different,
//! and a mismatch must localize to a chunk so repair can be targeted.
//! [`chunk_digests`] hashes fixed-size cell ranges (each seeded with its
//! chunk index, so identical chunks at different positions still digest
//! apart), and [`merkle_root`] folds the chunk digests pairwise into one
//! root for the cheap "anything differ at all?" comparison.

use qsim::branch::ClassicalMemory;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice, seeded: the store's cheap non-cryptographic
/// content hash.
#[must_use]
pub fn fnv1a64(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET ^ seed;
    for &b in bytes {
        h = fnv1a64_step(h, b);
    }
    h
}

/// FNV-1a over a cell slice, seeded, hashing each word's little-endian
/// bytes in place — equal to [`fnv1a64`] of the concatenated encoding
/// without materializing it (scrub passes digest every chunk of every
/// replica every cycle; a per-chunk buffer would be pure overhead).
#[must_use]
pub fn fnv1a64_words(seed: u64, words: &[u64]) -> u64 {
    let mut h = FNV_OFFSET ^ seed;
    for &w in words {
        for b in w.to_le_bytes() {
            h = fnv1a64_step(h, b);
        }
    }
    h
}

fn fnv1a64_step(h: u64, b: u8) -> u64 {
    (h ^ u64::from(b)).wrapping_mul(FNV_PRIME)
}

/// Digests `memory` in chunks of `chunk_cells` cells (the last chunk may
/// be short). Chunk `i`'s digest is seeded with `i`, so swapped chunks
/// do not collide.
///
/// # Panics
/// Panics if `chunk_cells` is zero.
#[must_use]
pub fn chunk_digests(memory: &ClassicalMemory, chunk_cells: usize) -> Vec<u64> {
    assert!(chunk_cells > 0, "digest chunks must hold at least one cell");
    memory
        .cells()
        .chunks(chunk_cells)
        .enumerate()
        .map(|(i, chunk)| fnv1a64_words(i as u64, chunk))
        .collect()
}

/// Folds chunk digests pairwise, level by level, into one root — a
/// Merkle-style reduction (an odd digest promotes unchanged). The root
/// of an empty slice is the digest of nothing.
#[must_use]
pub fn merkle_root(digests: &[u64]) -> u64 {
    if digests.is_empty() {
        return fnv1a64(0, &[]);
    }
    let mut level: Vec<u64> = digests.to_vec();
    while level.len() > 1 {
        level = level
            .chunks(2)
            .map(|pair| {
                if pair.len() == 2 {
                    let mut bytes = [0u8; 16];
                    bytes[..8].copy_from_slice(&pair[0].to_le_bytes());
                    bytes[8..].copy_from_slice(&pair[1].to_le_bytes());
                    fnv1a64(1, &bytes)
                } else {
                    pair[0]
                }
            })
            .collect();
    }
    level[0]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn memory(cells: &[u64]) -> ClassicalMemory {
        ClassicalMemory::from_words(16, cells).unwrap()
    }

    #[test]
    fn equal_memories_digest_equal() {
        let cells: Vec<u64> = (0..32).map(|i| i * 11).collect();
        let a = chunk_digests(&memory(&cells), 8);
        let b = chunk_digests(&memory(&cells), 8);
        assert_eq!(a, b);
        assert_eq!(merkle_root(&a), merkle_root(&b));
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn one_flipped_bit_moves_exactly_its_chunk() {
        let cells: Vec<u64> = (0..32).map(|i| i * 11).collect();
        let clean = chunk_digests(&memory(&cells), 8);
        let mut dirty_cells = cells.clone();
        dirty_cells[19] ^= 1;
        let dirty = chunk_digests(&memory(&dirty_cells), 8);
        let moved: Vec<usize> = (0..4).filter(|&i| clean[i] != dirty[i]).collect();
        assert_eq!(moved, vec![2], "cell 19 lives in chunk 2");
        assert_ne!(merkle_root(&clean), merkle_root(&dirty));
    }

    #[test]
    fn word_hashing_matches_the_byte_encoding() {
        let words = [0u64, 7, u64::MAX, 0x0102_0304_0506_0708];
        let mut bytes = Vec::new();
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        assert_eq!(fnv1a64_words(9, &words), fnv1a64(9, &bytes));
        assert_eq!(fnv1a64_words(0, &[]), fnv1a64(0, &[]));
    }

    #[test]
    fn chunk_position_matters() {
        // Two identical chunks at different indices must digest apart,
        // or a swap would be invisible.
        let d = chunk_digests(&memory(&[7, 7, 7, 7]), 2);
        assert_ne!(d[0], d[1]);
    }

    #[test]
    fn short_tail_and_odd_fold_are_handled() {
        let cells: Vec<u64> = (0..8).collect();
        let d = chunk_digests(&memory(&cells), 3);
        assert_eq!(d.len(), 3, "8 cells in chunks of 3: 3+3+2");
        let _ = merkle_root(&d); // odd level folds without panicking
        assert_eq!(merkle_root(&[]), fnv1a64(0, &[]));
    }
}
