//! The filesystem surface the store runs on, real and simulated.
//!
//! [`Dir`] is deliberately narrow — whole-file reads, appends, replaces,
//! truncation, atomic rename, remove, sync — because every operation in
//! that set has a well-defined crash semantics the kill-point harness
//! can enumerate:
//!
//! * `append`/`replace` may land *partially* (a torn write cuts the
//!   byte stream anywhere);
//! * `rename`, `remove`, and `truncate` are atomic — they happened or
//!   they did not;
//! * `sync` is the durability barrier an acknowledgment waits on.
//!
//! [`OsDir`] maps the surface onto `std::fs` with eager fsyncs.
//! [`SimDir`] keeps files in memory as [`FaultyFile`]s and journals
//! every mutating op as a [`DirOp`]; [`SimDir::replay_prefix`] rebuilds
//! the directory as it would look had the process died after any op —
//! including a byte-level cut of the op in flight — which is exactly the
//! crash model the kill-point property tests iterate over.

use std::any::Any;
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::PathBuf;

/// A directory of named flat files: the only filesystem surface the
/// durability tier touches.
///
/// Implementations must be `'static` (the store owns a `Box<dyn Dir>`),
/// and expose [`Dir::as_any_mut`] so tests can reach simulator-only
/// fault-injection hooks through the trait object.
pub trait Dir: fmt::Debug {
    /// Reads the entire contents of `name`.
    ///
    /// # Errors
    /// `NotFound` if the file does not exist, or the underlying I/O error.
    fn read(&self, name: &str) -> io::Result<Vec<u8>>;

    /// Current size of `name` in bytes.
    ///
    /// # Errors
    /// `NotFound` if the file does not exist, or the underlying I/O error.
    fn size(&self, name: &str) -> io::Result<u64>;

    /// Reads up to `buf.len()` bytes of `name` starting at byte
    /// `offset`, returning how many were read (`0` at or past the end
    /// of the file). The streaming-recovery surface: a scan replays a
    /// large log through one reused window instead of materializing the
    /// whole file.
    ///
    /// # Errors
    /// `NotFound` if the file does not exist, or the underlying I/O error.
    fn read_at(&self, name: &str, offset: u64, buf: &mut [u8]) -> io::Result<usize>;

    /// Whether `name` currently exists.
    fn exists(&self, name: &str) -> bool;

    /// Appends `bytes` to `name`, creating it if absent. Not atomic: a
    /// crash mid-call may leave any prefix of `bytes` behind.
    ///
    /// # Errors
    /// The underlying I/O error, if any.
    fn append(&mut self, name: &str, bytes: &[u8]) -> io::Result<()>;

    /// Replaces the contents of `name` with `bytes`, creating it if
    /// absent. Not atomic: a crash mid-call may leave any prefix of
    /// `bytes`. Atomic installs must go through a temp file plus
    /// [`Dir::rename`].
    ///
    /// # Errors
    /// The underlying I/O error, if any.
    fn replace(&mut self, name: &str, bytes: &[u8]) -> io::Result<()>;

    /// Truncates `name` to its first `len` bytes. Atomic.
    ///
    /// # Errors
    /// `NotFound` if the file does not exist, or the underlying I/O error.
    fn truncate(&mut self, name: &str, len: u64) -> io::Result<()>;

    /// Atomically renames `from` onto `to`, clobbering any existing `to`.
    ///
    /// # Errors
    /// `NotFound` if `from` does not exist, or the underlying I/O error.
    fn rename(&mut self, from: &str, to: &str) -> io::Result<()>;

    /// Removes `name` if it exists; removing an absent file is a no-op.
    ///
    /// # Errors
    /// The underlying I/O error, if any.
    fn remove(&mut self, name: &str) -> io::Result<()>;

    /// Durability barrier: all preceding operations are on stable
    /// storage once this returns.
    ///
    /// # Errors
    /// The underlying I/O error, if any.
    fn sync(&mut self) -> io::Result<()>;

    /// Downcasting hook so callers holding `&mut dyn Dir` can reach
    /// concrete-type fault-injection surfaces (see [`SimDir`]).
    fn as_any_mut(&mut self) -> &mut dyn Any;

    /// Arms a torn write: the *next* `append` or `replace` persists only
    /// its first `keep` bytes while still reporting success — the lying
    /// disk of a power-cut mid-write. Default is a no-op; only
    /// [`SimDir`] simulates torn writes.
    fn tear_next_write(&mut self, keep: usize) {
        let _ = keep;
    }
}

/// [`Dir`] over a real directory via `std::fs`, syncing eagerly.
///
/// Every mutating call opens, writes, and fsyncs the target file before
/// returning, so [`Dir::sync`] only needs to flush the directory entry
/// itself (rename/remove visibility).
#[derive(Debug)]
pub struct OsDir {
    root: PathBuf,
}

impl OsDir {
    /// Opens `root` as a store directory, creating it if absent.
    ///
    /// # Errors
    /// The underlying I/O error, if any.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(OsDir { root })
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }

    fn sync_dir(&self) -> io::Result<()> {
        // Directory fsync is what makes renames and removals durable on
        // POSIX systems; tolerate platforms where opening a directory
        // for sync is unsupported.
        match fs::File::open(&self.root) {
            Ok(d) => d.sync_all().or(Ok(())),
            Err(_) => Ok(()),
        }
    }
}

impl Dir for OsDir {
    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        fs::read(self.path(name))
    }

    fn size(&self, name: &str) -> io::Result<u64> {
        fs::metadata(self.path(name)).map(|m| m.len())
    }

    fn read_at(&self, name: &str, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
        use std::io::{Read as _, Seek as _, SeekFrom};
        let mut f = fs::File::open(self.path(name))?;
        f.seek(SeekFrom::Start(offset))?;
        let mut filled = 0usize;
        while filled < buf.len() {
            let n = f.read(&mut buf[filled..])?;
            if n == 0 {
                break;
            }
            filled += n;
        }
        Ok(filled)
    }

    fn exists(&self, name: &str) -> bool {
        self.path(name).exists()
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> io::Result<()> {
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.path(name))?;
        f.write_all(bytes)?;
        f.sync_all()
    }

    fn replace(&mut self, name: &str, bytes: &[u8]) -> io::Result<()> {
        let mut f = fs::File::create(self.path(name))?;
        f.write_all(bytes)?;
        f.sync_all()
    }

    fn truncate(&mut self, name: &str, len: u64) -> io::Result<()> {
        let f = fs::OpenOptions::new().write(true).open(self.path(name))?;
        f.set_len(len)?;
        f.sync_all()
    }

    fn rename(&mut self, from: &str, to: &str) -> io::Result<()> {
        fs::rename(self.path(from), self.path(to))?;
        self.sync_dir()
    }

    fn remove(&mut self, name: &str) -> io::Result<()> {
        match fs::remove_file(self.path(name)) {
            Ok(()) => self.sync_dir(),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn sync(&mut self) -> io::Result<()> {
        self.sync_dir()
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// An in-memory byte file with write-fault injection hooks: the unit of
/// storage under [`SimDir`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultyFile {
    bytes: Vec<u8>,
}

impl FaultyFile {
    /// An empty file.
    #[must_use]
    pub fn new() -> Self {
        FaultyFile::default()
    }

    /// The current contents.
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Appends `bytes`, keeping only the first `keep` of them when a
    /// short write is injected (`keep >= bytes.len()` writes all).
    pub fn append_short(&mut self, bytes: &[u8], keep: usize) {
        self.bytes
            .extend_from_slice(&bytes[..keep.min(bytes.len())]);
    }

    /// Flips bit `bit` of the byte at `offset` — silent media corruption
    /// for the scrubber and CRC layers to catch. Out-of-range offsets
    /// are ignored (the flip "landed" in unallocated space).
    pub fn flip_bit(&mut self, offset: usize, bit: u32) {
        if let Some(b) = self.bytes.get_mut(offset) {
            *b ^= 1u8 << (bit % 8);
        }
    }

    /// Truncates to the first `len` bytes.
    pub fn truncate(&mut self, len: usize) {
        self.bytes.truncate(len);
    }
}

/// One journaled mutation of a [`SimDir`] — the alphabet the kill-point
/// harness enumerates crash points over.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirOp {
    /// Bytes appended to a file.
    Append {
        /// Target file name.
        name: String,
        /// The appended bytes.
        bytes: Vec<u8>,
    },
    /// A file's contents replaced wholesale.
    Replace {
        /// Target file name.
        name: String,
        /// The new contents.
        bytes: Vec<u8>,
    },
    /// A file truncated to a prefix.
    Truncate {
        /// Target file name.
        name: String,
        /// Surviving byte length.
        len: u64,
    },
    /// An atomic rename.
    Rename {
        /// Source name.
        from: String,
        /// Destination name (clobbered).
        to: String,
    },
    /// A file removed.
    Remove {
        /// Target file name.
        name: String,
    },
    /// A durability barrier.
    Sync,
}

impl DirOp {
    /// Whether a crash *during* this op can leave a partial result. Only
    /// byte writes tear; rename/remove/truncate/sync are atomic.
    #[must_use]
    pub fn can_tear(&self) -> bool {
        matches!(self, DirOp::Append { .. } | DirOp::Replace { .. })
    }

    /// Byte length written by this op (`0` for atomic ops) — the range
    /// of meaningful torn-write cuts.
    #[must_use]
    pub fn write_len(&self) -> usize {
        match self {
            DirOp::Append { bytes, .. } | DirOp::Replace { bytes, .. } => bytes.len(),
            _ => 0,
        }
    }
}

/// In-memory [`Dir`] with an op journal and crash replay.
///
/// Every mutating call is recorded in order; [`SimDir::replay_prefix`]
/// reconstructs the directory state after any journal prefix, optionally
/// cutting the next op's byte stream at an arbitrary point — the full
/// crash model (clean kill between ops, torn write during one) in a
/// deterministic, enumerable form.
#[derive(Debug, Clone, Default)]
pub struct SimDir {
    files: BTreeMap<String, FaultyFile>,
    journal: Vec<DirOp>,
    /// Armed short-write budget for the next append/replace.
    tear_next: Option<usize>,
}

impl SimDir {
    /// An empty simulated directory.
    #[must_use]
    pub fn new() -> Self {
        SimDir::default()
    }

    /// The journal of every mutating op applied so far, in order.
    #[must_use]
    pub fn journal(&self) -> &[DirOp] {
        &self.journal
    }

    /// Rebuilds the directory as it would look had the process died
    /// after `prefix` journal ops completed. When `torn` is
    /// `Some(keep)` and op `prefix` is a byte write, that op addition-
    /// ally lands with only its first `keep` bytes — the crash happened
    /// *during* it. Atomic ops in flight simply never happened.
    ///
    /// The replayed directory has an empty journal of its own: it is the
    /// post-crash disk, ready for recovery.
    #[must_use]
    pub fn replay_prefix(&self, prefix: usize, torn: Option<usize>) -> SimDir {
        let mut crashed = SimDir::new();
        for op in &self.journal[..prefix.min(self.journal.len())] {
            crashed.apply(op, None);
        }
        if let (Some(keep), Some(op)) = (torn, self.journal.get(prefix)) {
            if op.can_tear() {
                crashed.apply(op, Some(keep));
            }
        }
        crashed.journal.clear();
        crashed
    }

    /// Flips bit `bit` of byte `offset` in `name` — silent on-media
    /// corruption, invisible until a CRC or digest check reads it.
    pub fn flip_bit(&mut self, name: &str, offset: usize, bit: u32) {
        if let Some(f) = self.files.get_mut(name) {
            f.flip_bit(offset, bit);
        }
    }

    /// Current length of `name` in bytes, or `None` if absent.
    #[must_use]
    pub fn len_of(&self, name: &str) -> Option<usize> {
        self.files.get(name).map(|f| f.bytes().len())
    }

    /// Applies `op` to the file map, journaling it, with an optional
    /// short-write cut for byte writes.
    fn apply(&mut self, op: &DirOp, torn: Option<usize>) {
        match op {
            DirOp::Append { name, bytes } => {
                let keep = torn.unwrap_or(bytes.len());
                self.files
                    .entry(name.clone())
                    .or_default()
                    .append_short(bytes, keep);
            }
            DirOp::Replace { name, bytes } => {
                let keep = torn.unwrap_or(bytes.len());
                let f = self.files.entry(name.clone()).or_default();
                f.truncate(0);
                f.append_short(bytes, keep);
            }
            DirOp::Truncate { name, len } => {
                if let Some(f) = self.files.get_mut(name) {
                    f.truncate(usize::try_from(*len).unwrap_or(usize::MAX));
                }
            }
            DirOp::Rename { from, to } => {
                if let Some(f) = self.files.remove(from) {
                    self.files.insert(to.clone(), f);
                }
            }
            DirOp::Remove { name } => {
                self.files.remove(name);
            }
            DirOp::Sync => {}
        }
        self.journal.push(op.clone());
    }
}

impl Dir for SimDir {
    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        self.files
            .get(name)
            .map(|f| f.bytes().to_vec())
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("no such file: {name}")))
    }

    fn size(&self, name: &str) -> io::Result<u64> {
        self.files
            .get(name)
            .map(|f| f.bytes().len() as u64)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("no such file: {name}")))
    }

    fn read_at(&self, name: &str, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
        let f = self.files.get(name).ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, format!("no such file: {name}"))
        })?;
        let bytes = f.bytes();
        let start = usize::try_from(offset)
            .unwrap_or(usize::MAX)
            .min(bytes.len());
        let n = (bytes.len() - start).min(buf.len());
        buf[..n].copy_from_slice(&bytes[start..start + n]);
        Ok(n)
    }

    fn exists(&self, name: &str) -> bool {
        self.files.contains_key(name)
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> io::Result<()> {
        let torn = self.tear_next.take();
        self.apply(
            &DirOp::Append {
                name: name.to_string(),
                bytes: bytes.to_vec(),
            },
            torn,
        );
        Ok(())
    }

    fn replace(&mut self, name: &str, bytes: &[u8]) -> io::Result<()> {
        let torn = self.tear_next.take();
        self.apply(
            &DirOp::Replace {
                name: name.to_string(),
                bytes: bytes.to_vec(),
            },
            torn,
        );
        Ok(())
    }

    fn truncate(&mut self, name: &str, len: u64) -> io::Result<()> {
        if !self.exists(name) {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no such file: {name}"),
            ));
        }
        self.apply(
            &DirOp::Truncate {
                name: name.to_string(),
                len,
            },
            None,
        );
        Ok(())
    }

    fn rename(&mut self, from: &str, to: &str) -> io::Result<()> {
        if !self.exists(from) {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no such file: {from}"),
            ));
        }
        self.apply(
            &DirOp::Rename {
                from: from.to_string(),
                to: to.to_string(),
            },
            None,
        );
        Ok(())
    }

    fn remove(&mut self, name: &str) -> io::Result<()> {
        if self.exists(name) {
            self.apply(
                &DirOp::Remove {
                    name: name.to_string(),
                },
                None,
            );
        }
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        self.apply(&DirOp::Sync, None);
        Ok(())
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn tear_next_write(&mut self, keep: usize) {
        self.tear_next = Some(keep);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simdir_basic_file_operations() {
        let mut d = SimDir::new();
        assert!(!d.exists("a"));
        assert!(d.read("a").is_err());
        d.append("a", b"hel").unwrap();
        d.append("a", b"lo").unwrap();
        assert_eq!(d.read("a").unwrap(), b"hello");
        d.replace("a", b"bye").unwrap();
        assert_eq!(d.read("a").unwrap(), b"bye");
        d.truncate("a", 1).unwrap();
        assert_eq!(d.read("a").unwrap(), b"b");
        d.rename("a", "b").unwrap();
        assert!(!d.exists("a"));
        assert_eq!(d.read("b").unwrap(), b"b");
        d.remove("b").unwrap();
        assert!(!d.exists("b"));
        d.remove("b").unwrap(); // absent remove is a no-op
    }

    #[test]
    fn replay_prefix_reconstructs_each_crash_point() {
        let mut d = SimDir::new();
        d.append("f", b"1234").unwrap();
        d.sync().unwrap();
        d.replace("f", b"56").unwrap();
        assert_eq!(d.journal().len(), 3);

        assert!(!d.replay_prefix(0, None).exists("f"));
        assert_eq!(d.replay_prefix(1, None).read("f").unwrap(), b"1234");
        assert_eq!(d.replay_prefix(3, None).read("f").unwrap(), b"56");
        // Torn mid-append: only the first 2 bytes landed.
        assert_eq!(d.replay_prefix(0, Some(2)).read("f").unwrap(), b"12");
        // Torn mid-replace: the old bytes are gone, the new ones partial.
        assert_eq!(d.replay_prefix(2, Some(1)).read("f").unwrap(), b"5");
        // A replayed dir journals from scratch.
        assert!(d.replay_prefix(3, None).journal().is_empty());
    }

    #[test]
    fn armed_tear_cuts_exactly_one_write() {
        let mut d = SimDir::new();
        d.tear_next_write(1);
        d.append("f", b"abc").unwrap();
        d.append("f", b"def").unwrap();
        assert_eq!(d.read("f").unwrap(), b"adef");
    }

    #[test]
    fn flip_bit_corrupts_in_place() {
        let mut d = SimDir::new();
        d.append("f", &[0u8]).unwrap();
        d.flip_bit("f", 0, 3);
        assert_eq!(d.read("f").unwrap(), vec![8u8]);
        d.flip_bit("f", 99, 0); // out of range: ignored
        assert_eq!(d.read("f").unwrap(), vec![8u8]);
    }

    #[test]
    fn read_at_windows_the_file_without_journaling() {
        let mut d = SimDir::new();
        d.append("f", b"0123456789").unwrap();
        let ops_before = d.journal().len();
        assert_eq!(d.size("f").unwrap(), 10);
        let mut buf = [0u8; 4];
        assert_eq!(d.read_at("f", 0, &mut buf).unwrap(), 4);
        assert_eq!(&buf, b"0123");
        assert_eq!(d.read_at("f", 8, &mut buf).unwrap(), 2);
        assert_eq!(&buf[..2], b"89");
        assert_eq!(d.read_at("f", 10, &mut buf).unwrap(), 0, "at EOF");
        assert_eq!(d.read_at("f", 99, &mut buf).unwrap(), 0, "past EOF");
        assert!(d.size("missing").is_err());
        assert!(d.read_at("missing", 0, &mut buf).is_err());
        assert_eq!(d.journal().len(), ops_before, "reads are not mutations");
    }

    #[test]
    fn osdir_roundtrip_in_tempdir() {
        let root =
            std::env::temp_dir().join(format!("qram-store-osdir-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        let mut d = OsDir::open(&root).unwrap();
        d.append("wal", b"abc").unwrap();
        d.append("wal", b"def").unwrap();
        assert_eq!(d.read("wal").unwrap(), b"abcdef");
        assert_eq!(d.size("wal").unwrap(), 6);
        let mut buf = [0u8; 4];
        assert_eq!(d.read_at("wal", 2, &mut buf).unwrap(), 4);
        assert_eq!(&buf, b"cdef");
        assert_eq!(d.read_at("wal", 6, &mut buf).unwrap(), 0);
        d.truncate("wal", 4).unwrap();
        assert_eq!(d.read("wal").unwrap(), b"abcd");
        d.replace("tmp", b"img").unwrap();
        d.rename("tmp", "img").unwrap();
        assert!(d.exists("img") && !d.exists("tmp"));
        d.remove("missing").unwrap();
        d.sync().unwrap();
        fs::remove_dir_all(&root).unwrap();
    }
}
