//! The durable fleet store: WAL + checkpoint lifecycle and recovery.
//!
//! [`DurableFleet`] owns a store directory and maintains one invariant:
//! *the directory always recovers to exactly the acknowledged write
//! prefix*. It keeps a **shadow memory** — the checkpoint image plus
//! every appended write — so checkpoints are taken from the durable
//! chain itself, never from a live replica that might have silently
//! diverged (the scrubber's job is to catch exactly that divergence, so
//! the durable chain must not inherit it).
//!
//! Lifecycle:
//!
//! 1. [`DurableFleet::create`] anchors a fresh directory with a
//!    checkpoint of the base memory at epoch 0.
//! 2. [`DurableFleet::append`] logs each fleet epoch (WAL append +
//!    sync = the acknowledgment point), and every
//!    [`CheckpointPolicy::every`] appends installs a new checkpoint and
//!    compacts the WAL behind it.
//! 3. [`DurableFleet::recover`] (or [`DurableFleet::open`]) rebuilds
//!    state from any crash debris: load the checkpoint, scan the WAL
//!    (truncating torn/corrupt tails), skip entries the checkpoint
//!    already absorbed, replay the rest.
//! 4. [`DurableFleet::rescan`] re-reads the WAL underneath a live store
//!    — the anti-entropy primitive that notices a lying disk (torn
//!    write acknowledged but not persisted) and rolls the durable
//!    watermark back so the caller can re-append from the fleet log.

use qsim::branch::ClassicalMemory;

use super::checkpoint;
use super::dir::Dir;
use super::wal;
use super::StoreError;
use crate::replication::ReplicatedWrite;

/// How often [`DurableFleet::append`] installs a checkpoint: after
/// every `every` WAL entries since the last one. `0` disables automatic
/// checkpoints (the WAL grows until [`DurableFleet::checkpoint`] is
/// called explicitly).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Appends between automatic checkpoints; `0` = never.
    pub every: u64,
}

impl CheckpointPolicy {
    /// Checkpoint every `every` appends (`0` = never).
    #[must_use]
    pub fn every(every: u64) -> Self {
        CheckpointPolicy { every }
    }

    /// No automatic checkpoints; the WAL grows unboundedly.
    #[must_use]
    pub fn never() -> Self {
        CheckpointPolicy { every: 0 }
    }
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        CheckpointPolicy { every: 64 }
    }
}

/// Fleet state rebuilt from a store directory by
/// [`DurableFleet::recover`]: everything a restarted replica needs to
/// rejoin without the in-memory log.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredState {
    /// The memory image at [`RecoveredState::epoch`].
    pub memory: ClassicalMemory,
    /// The durable fleet epoch: checkpoint watermark + replayed WAL.
    pub epoch: u64,
    /// The epoch the recovered checkpoint image was taken at.
    pub checkpoint_epoch: u64,
    /// The WAL writes replayed on top of the checkpoint, in epoch order.
    pub writes: Vec<ReplicatedWrite>,
    /// Torn/corrupt WAL tail bytes truncated during recovery (crash
    /// debris from an unacknowledged write; never part of the durable
    /// prefix).
    pub truncated_bytes: usize,
}

/// Summary of a [`DurableFleet::rescan`] pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RescanSummary {
    /// Torn/corrupt tail bytes truncated from the on-disk WAL.
    pub truncated_bytes: usize,
    /// Acknowledged epochs the disk lost (durable watermark rollback);
    /// the caller re-appends them from the fleet's in-memory log.
    pub lost_epochs: u64,
}

/// A crash-consistent store for one fleet's replicated write stream.
#[derive(Debug)]
pub struct DurableFleet {
    dir: Box<dyn Dir>,
    policy: CheckpointPolicy,
    /// Watermark of the installed checkpoint image.
    checkpoint_epoch: u64,
    /// Cached copy of the installed checkpoint image.
    checkpoint_image: ClassicalMemory,
    /// WAL entries after the checkpoint: epochs
    /// `checkpoint_epoch + 1 ..= durable_epoch()`, in order.
    suffix: Vec<ReplicatedWrite>,
    /// `checkpoint_image` + `suffix` applied: the durable chain's own
    /// view of memory at the durable epoch.
    shadow: ClassicalMemory,
}

impl DurableFleet {
    /// Anchors a fresh store: installs `base` as the epoch-0 checkpoint
    /// and clears any leftover WAL, under the default policy.
    ///
    /// # Errors
    /// [`StoreError::Io`] when the directory fails.
    pub fn create(dir: Box<dyn Dir>, base: &ClassicalMemory) -> Result<Self, StoreError> {
        Self::create_with(dir, base, CheckpointPolicy::default())
    }

    /// [`DurableFleet::create`] with an explicit checkpoint policy.
    ///
    /// # Errors
    /// [`StoreError::Io`] when the directory fails.
    pub fn create_with(
        mut dir: Box<dyn Dir>,
        base: &ClassicalMemory,
        policy: CheckpointPolicy,
    ) -> Result<Self, StoreError> {
        checkpoint::install(dir.as_mut(), base, 0)?;
        dir.remove(wal::WAL_FILE)?;
        dir.remove(wal::WAL_TMP)?;
        dir.sync()?;
        Ok(DurableFleet {
            dir,
            policy,
            checkpoint_epoch: 0,
            checkpoint_image: base.clone(),
            suffix: Vec::new(),
            shadow: base.clone(),
        })
    }

    /// Opens an existing store, repairing crash debris: leftover scratch
    /// files are removed, torn/corrupt WAL tails truncated, and WAL
    /// entries the checkpoint already absorbed skipped.
    ///
    /// # Errors
    /// [`StoreError::MissingCheckpoint`] when the directory was never
    /// [`DurableFleet::create`]d, [`StoreError::CorruptCheckpoint`] when
    /// the installed image fails its CRC (detected, never replayed),
    /// [`StoreError::NonContiguousEpoch`] when the WAL starts past the
    /// checkpoint watermark (acknowledged epochs are unrecoverable), or
    /// [`StoreError::Io`].
    pub fn open(dir: Box<dyn Dir>, policy: CheckpointPolicy) -> Result<Self, StoreError> {
        let (store, _) = Self::open_inner(dir, policy)?;
        Ok(store)
    }

    /// Rebuilds fleet state from a store directory: checkpoint image +
    /// WAL replay. The one-call recovery path a restarted replica uses
    /// to rejoin from disk instead of the in-memory log.
    ///
    /// # Errors
    /// As [`DurableFleet::open`].
    pub fn recover(dir: Box<dyn Dir>) -> Result<RecoveredState, StoreError> {
        let (store, truncated_bytes) = Self::open_inner(dir, CheckpointPolicy::default())?;
        Ok(RecoveredState {
            memory: store.shadow,
            epoch: store.checkpoint_epoch + store.suffix.len() as u64,
            checkpoint_epoch: store.checkpoint_epoch,
            writes: store.suffix,
            truncated_bytes,
        })
    }

    fn open_inner(
        mut dir: Box<dyn Dir>,
        policy: CheckpointPolicy,
    ) -> Result<(Self, usize), StoreError> {
        // Scratch files are pre-crash debris: an install that never
        // reached its rename. The authoritative files win.
        dir.remove(checkpoint::CHECKPOINT_TMP)?;
        dir.remove(wal::WAL_TMP)?;
        let (checkpoint_image, checkpoint_epoch) =
            checkpoint::load(dir.as_ref())?.ok_or(StoreError::MissingCheckpoint)?;
        let scan = wal::load(dir.as_mut())?;
        // A crash between checkpoint install and WAL compaction leaves
        // absorbed entries at the log head; skip them.
        let suffix: Vec<ReplicatedWrite> = scan
            .writes
            .into_iter()
            .filter(|w| w.epoch > checkpoint_epoch)
            .collect();
        if let Some(first) = suffix.first() {
            if first.epoch != checkpoint_epoch + 1 {
                return Err(StoreError::NonContiguousEpoch {
                    expected: checkpoint_epoch + 1,
                    found: first.epoch,
                });
            }
        }
        let mut shadow = checkpoint_image.clone();
        for w in &suffix {
            shadow.write(w.address, w.value);
        }
        Ok((
            DurableFleet {
                dir,
                policy,
                checkpoint_epoch,
                checkpoint_image,
                suffix,
                shadow,
            },
            scan.truncated_bytes,
        ))
    }

    /// The durable fleet epoch: every epoch at or below it is
    /// acknowledged on stable storage (as far as the store knows — see
    /// [`DurableFleet::rescan`] for the lying-disk audit).
    #[must_use]
    pub fn durable_epoch(&self) -> u64 {
        self.checkpoint_epoch + self.suffix.len() as u64
    }

    /// The epoch of the installed checkpoint image.
    #[must_use]
    pub fn checkpoint_epoch(&self) -> u64 {
        self.checkpoint_epoch
    }

    /// The WAL suffix after the checkpoint, in epoch order.
    #[must_use]
    pub fn suffix(&self) -> &[ReplicatedWrite] {
        &self.suffix
    }

    /// The durable chain's memory image at [`DurableFleet::durable_epoch`].
    #[must_use]
    pub fn shadow(&self) -> &ClassicalMemory {
        &self.shadow
    }

    /// The durable chain's memory image at `epoch`, or `None` when the
    /// epoch predates the checkpoint (compacted away) or exceeds the
    /// durable watermark. This is the scrubber's expected state.
    #[must_use]
    pub fn state_at(&self, epoch: u64) -> Option<ClassicalMemory> {
        if epoch < self.checkpoint_epoch || epoch > self.durable_epoch() {
            return None;
        }
        let mut image = self.checkpoint_image.clone();
        for w in self.suffix.iter().take_while(|w| w.epoch <= epoch) {
            image.write(w.address, w.value);
        }
        Some(image)
    }

    /// Logs one fleet write durably (append + sync: the acknowledgment
    /// point), then installs a checkpoint if the policy says so.
    /// Returns `true` when a checkpoint was taken.
    ///
    /// # Errors
    /// [`StoreError::NonContiguousEpoch`] when `w.epoch` does not extend
    /// the durable prefix by one, or [`StoreError::Io`].
    pub fn append(&mut self, w: &ReplicatedWrite) -> Result<bool, StoreError> {
        let expected = self.durable_epoch() + 1;
        if w.epoch != expected {
            return Err(StoreError::NonContiguousEpoch {
                expected,
                found: w.epoch,
            });
        }
        wal::append(self.dir.as_mut(), w)?;
        self.suffix.push(*w);
        self.shadow.write(w.address, w.value);
        if self.policy.every > 0 && self.suffix.len() as u64 >= self.policy.every {
            self.checkpoint()?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Installs a checkpoint of the durable chain at the durable epoch
    /// and compacts the WAL behind it.
    ///
    /// # Errors
    /// [`StoreError::Io`] when the directory fails.
    pub fn checkpoint(&mut self) -> Result<(), StoreError> {
        let watermark = self.checkpoint_epoch + self.suffix.len() as u64;
        checkpoint::install(self.dir.as_mut(), &self.shadow, watermark)?;
        wal::compact(self.dir.as_mut(), &[])?;
        self.checkpoint_epoch = watermark;
        self.checkpoint_image = self.shadow.clone();
        self.suffix.clear();
        Ok(())
    }

    /// Audits the on-disk WAL against the store's in-memory view: a torn
    /// or corrupt tail (e.g. a write the disk acknowledged but never
    /// persisted) is truncated, and the durable watermark rolls back to
    /// what the disk actually holds. The caller re-appends the lost
    /// epochs from the fleet's in-memory log.
    ///
    /// # Errors
    /// [`StoreError::Io`] when the directory fails.
    pub fn rescan(&mut self) -> Result<RescanSummary, StoreError> {
        let before = self.durable_epoch();
        let scan = wal::load(self.dir.as_mut())?;
        let disk_suffix: Vec<ReplicatedWrite> = scan
            .writes
            .into_iter()
            .filter(|w| w.epoch > self.checkpoint_epoch)
            .collect();
        if disk_suffix != self.suffix {
            self.suffix = disk_suffix;
            self.shadow = self.checkpoint_image.clone();
            for w in &self.suffix {
                self.shadow.write(w.address, w.value);
            }
        }
        Ok(RescanSummary {
            truncated_bytes: scan.truncated_bytes,
            lost_epochs: before.saturating_sub(self.durable_epoch()),
        })
    }

    /// The underlying directory — the hook tests use to inject torn
    /// writes and bit flips (downcast via [`Dir::as_any_mut`]).
    pub fn dir_mut(&mut self) -> &mut dyn Dir {
        self.dir.as_mut()
    }

    /// Consumes the store, returning the directory (e.g. to hand to
    /// [`DurableFleet::recover`] as a simulated restart).
    #[must_use]
    pub fn into_dir(self) -> Box<dyn Dir> {
        self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::dir::SimDir;
    use crate::store::{frame, CHECKPOINT_FILE, WAL_FILE};

    fn base() -> ClassicalMemory {
        ClassicalMemory::from_words(16, &(0..16).collect::<Vec<u64>>()).unwrap()
    }

    fn w(epoch: u64) -> ReplicatedWrite {
        ReplicatedWrite {
            epoch,
            origin: (epoch % 3) as usize,
            address: epoch % 16,
            value: (epoch * 13) % 65_536,
        }
    }

    fn sim(store: &mut DurableFleet) -> &mut SimDir {
        store
            .dir_mut()
            .as_any_mut()
            .downcast_mut::<SimDir>()
            .expect("test store runs on SimDir")
    }

    #[test]
    fn create_append_recover_roundtrips() {
        let mut store =
            DurableFleet::create_with(Box::new(SimDir::new()), &base(), CheckpointPolicy::never())
                .unwrap();
        for e in 1..=10 {
            assert!(!store.append(&w(e)).unwrap());
        }
        assert_eq!(store.durable_epoch(), 10);
        let recovered = DurableFleet::recover(store.into_dir()).unwrap();
        assert_eq!(recovered.epoch, 10);
        assert_eq!(recovered.checkpoint_epoch, 0);
        assert_eq!(recovered.writes.len(), 10);
        assert_eq!(recovered.truncated_bytes, 0);
        let mut expect = base();
        for e in 1..=10 {
            expect.write(w(e).address, w(e).value);
        }
        assert_eq!(recovered.memory.cells(), expect.cells());
    }

    #[test]
    fn policy_checkpoints_compact_the_wal() {
        let mut store =
            DurableFleet::create_with(Box::new(SimDir::new()), &base(), CheckpointPolicy::every(4))
                .unwrap();
        let mut checkpoints = 0;
        for e in 1..=10 {
            if store.append(&w(e)).unwrap() {
                checkpoints += 1;
            }
        }
        assert_eq!(checkpoints, 2, "epochs 4 and 8");
        assert_eq!(store.checkpoint_epoch(), 8);
        assert_eq!(store.suffix().len(), 2);
        let wal_len = sim(&mut store).len_of(WAL_FILE).unwrap();
        assert_eq!(
            wal_len,
            2 * (frame::HEADER_LEN + wal::RECORD_PAYLOAD_LEN),
            "WAL holds only the post-checkpoint suffix"
        );
        let recovered = DurableFleet::recover(store.into_dir()).unwrap();
        assert_eq!(recovered.epoch, 10);
        assert_eq!(recovered.checkpoint_epoch, 8);
        assert_eq!(recovered.writes.len(), 2);
    }

    #[test]
    fn non_contiguous_append_is_rejected() {
        let mut store = DurableFleet::create(Box::new(SimDir::new()), &base()).unwrap();
        store.append(&w(1)).unwrap();
        let err = store.append(&w(3)).unwrap_err();
        assert!(matches!(
            err,
            StoreError::NonContiguousEpoch {
                expected: 2,
                found: 3
            }
        ));
        assert_eq!(store.durable_epoch(), 1, "rejected append changes nothing");
    }

    #[test]
    fn state_at_walks_the_durable_chain() {
        let mut store =
            DurableFleet::create_with(Box::new(SimDir::new()), &base(), CheckpointPolicy::never())
                .unwrap();
        for e in 1..=5 {
            store.append(&w(e)).unwrap();
        }
        let at3 = store.state_at(3).unwrap();
        let mut expect = base();
        for e in 1..=3 {
            expect.write(w(e).address, w(e).value);
        }
        assert_eq!(at3.cells(), expect.cells());
        assert_eq!(store.state_at(0).unwrap().cells(), base().cells());
        assert!(store.state_at(6).is_none(), "beyond the durable epoch");
        store.checkpoint().unwrap();
        assert!(store.state_at(3).is_none(), "compacted away");
        assert_eq!(store.state_at(5).unwrap().cells(), store.shadow().cells());
    }

    #[test]
    fn rescan_rolls_back_a_lying_disk_and_reappend_recovers() {
        let mut store =
            DurableFleet::create_with(Box::new(SimDir::new()), &base(), CheckpointPolicy::never())
                .unwrap();
        for e in 1..=3 {
            store.append(&w(e)).unwrap();
        }
        // Epoch 4's append tears on the platter while reporting success.
        sim(&mut store).tear_next_write(frame::HEADER_LEN + 7);
        store.append(&w(4)).unwrap();
        assert_eq!(store.durable_epoch(), 4, "the store believes the disk");
        let summary = store.rescan().unwrap();
        assert_eq!(summary.lost_epochs, 1);
        assert_eq!(summary.truncated_bytes, frame::HEADER_LEN + 7);
        assert_eq!(store.durable_epoch(), 3, "watermark rolled back");
        // The fleet log still has epoch 4: re-append and recover clean.
        store.append(&w(4)).unwrap();
        assert_eq!(store.rescan().unwrap(), RescanSummary::default());
        let recovered = DurableFleet::recover(store.into_dir()).unwrap();
        assert_eq!(recovered.epoch, 4);
    }

    #[test]
    fn recover_rejects_a_bit_flipped_checkpoint_not_silently() {
        let mut store = DurableFleet::create(Box::new(SimDir::new()), &base()).unwrap();
        store.append(&w(1)).unwrap();
        let mut dir = store.into_dir();
        dir.as_any_mut()
            .downcast_mut::<SimDir>()
            .unwrap()
            .flip_bit(CHECKPOINT_FILE, 30, 2);
        assert!(matches!(
            DurableFleet::recover(dir),
            Err(StoreError::CorruptCheckpoint(_))
        ));
    }

    #[test]
    fn recover_of_an_unanchored_dir_is_a_missing_checkpoint() {
        assert!(matches!(
            DurableFleet::recover(Box::new(SimDir::new())),
            Err(StoreError::MissingCheckpoint)
        ));
    }
}
