//! The durable fleet store: WAL + checkpoint lifecycle and recovery.
//!
//! [`DurableFleet`] owns a store directory and maintains one invariant:
//! *the directory always recovers to exactly the acknowledged write
//! prefix*. It keeps a **shadow memory** — the checkpoint image plus
//! every synced write — so checkpoints are taken from the durable
//! chain itself, never from a live replica that might have silently
//! diverged (the scrubber's job is to catch exactly that divergence, so
//! the durable chain must not inherit it).
//!
//! Lifecycle:
//!
//! 1. [`DurableFleet::create`] anchors a fresh directory with a
//!    checkpoint of the base memory at epoch 0.
//! 2. [`DurableFleet::append`] buffers each fleet epoch into the open
//!    commit group; the group lands as one WAL append + one sync (the
//!    **acknowledgment point**) when it reaches
//!    [`GroupCommitPolicy::max_records`] or the caller forces
//!    [`DurableFleet::flush`] (the fleet arms a virtual-time deadline
//!    for that). Under the default per-record policy every append syncs
//!    immediately — byte-for-byte the pre-group-commit behavior.
//! 3. Every [`CheckpointPolicy::every`] synced records, a checkpoint is
//!    installed — a full image, or a [`checkpoint::Delta`] of just the
//!    cells written since the last one when
//!    [`CheckpointPolicy::max_chain`] allows — and the WAL compacts
//!    behind it. Past `max_chain` deltas, the chain folds into a fresh
//!    base image.
//! 4. [`DurableFleet::recover`] (or [`DurableFleet::open`]) rebuilds
//!    state from any crash debris: load the base image, replay the
//!    delta chain (sweeping stale fold debris), scan the WAL streaming
//!    (truncating torn/corrupt tails), skip entries the checkpoint
//!    chain already absorbed, replay the rest. Buffered-but-unsynced
//!    records are exactly the writes a crash may lose — they were never
//!    acknowledged.
//! 5. [`DurableFleet::rescan`] re-reads the WAL underneath a live store
//!    — the anti-entropy primitive that notices a lying disk (torn
//!    write acknowledged but not persisted) and rolls the durable
//!    watermark back so the caller can re-append from the fleet log.

use std::collections::BTreeMap;

use qsim::branch::ClassicalMemory;

use super::checkpoint;
use super::dir::Dir;
use super::wal::{self, GroupCommitPolicy};
use super::StoreError;
use crate::replication::ReplicatedWrite;

/// How often the store installs a checkpoint (after `every` synced WAL
/// records since the last one) and how it is allowed to shape them:
/// `max_chain = 0` means every checkpoint is a full image; `max_chain =
/// N` lets up to `N` incremental deltas chain off a base image before
/// the chain folds into a fresh base.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Synced records between automatic checkpoints; `0` = never.
    pub every: u64,
    /// Longest allowed delta chain before folding; `0` = full images
    /// only.
    pub max_chain: usize,
}

impl CheckpointPolicy {
    /// Full-image checkpoint every `every` records (`0` = never).
    #[must_use]
    pub fn every(every: u64) -> Self {
        CheckpointPolicy {
            every,
            max_chain: 0,
        }
    }

    /// Delta checkpoint every `every` records, folding to a fresh base
    /// image after `max_chain` deltas.
    #[must_use]
    pub fn deltas(every: u64, max_chain: usize) -> Self {
        CheckpointPolicy { every, max_chain }
    }

    /// No automatic checkpoints; the WAL grows unboundedly.
    #[must_use]
    pub fn never() -> Self {
        CheckpointPolicy {
            every: 0,
            max_chain: 0,
        }
    }
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        CheckpointPolicy {
            every: 64,
            max_chain: 0,
        }
    }
}

/// What a sync made durable: returned by [`DurableFleet::append`] and
/// [`DurableFleet::flush`] so the caller knows which acknowledgments to
/// release and what checkpoint work happened underneath.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SyncSummary {
    /// Records the commit-group sync just made durable (and therefore
    /// acknowledged). `0` when the call only buffered.
    pub synced_records: usize,
    /// Whether a checkpoint (full or delta) was installed.
    pub checkpointed: bool,
    /// Whether that checkpoint was an incremental delta.
    pub delta: bool,
}

/// Fleet state rebuilt from a store directory by
/// [`DurableFleet::recover`]: everything a restarted replica needs to
/// rejoin without the in-memory log.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredState {
    /// The memory image at [`RecoveredState::epoch`].
    pub memory: ClassicalMemory,
    /// The durable fleet epoch: checkpoint watermark + replayed WAL.
    pub epoch: u64,
    /// The epoch the recovered checkpoint chain reaches (base image
    /// plus replayed deltas).
    pub checkpoint_epoch: u64,
    /// Length of the delta chain replayed onto the base image.
    pub delta_chain: usize,
    /// The WAL writes replayed on top of the checkpoint, in epoch order.
    pub writes: Vec<ReplicatedWrite>,
    /// Torn/corrupt WAL tail bytes truncated during recovery (crash
    /// debris from an unacknowledged write; never part of the durable
    /// prefix).
    pub truncated_bytes: usize,
}

/// Summary of a [`DurableFleet::rescan`] pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RescanSummary {
    /// Torn/corrupt tail bytes truncated from the on-disk WAL.
    pub truncated_bytes: usize,
    /// Acknowledged epochs the disk lost (durable watermark rollback);
    /// the caller re-appends them from the fleet's in-memory log.
    pub lost_epochs: u64,
}

/// A crash-consistent store for one fleet's replicated write stream.
#[derive(Debug)]
pub struct DurableFleet {
    dir: Box<dyn Dir>,
    policy: CheckpointPolicy,
    group: GroupCommitPolicy,
    /// Watermark of the installed checkpoint chain (base + deltas).
    checkpoint_epoch: u64,
    /// Cached image of the checkpoint chain at `checkpoint_epoch`.
    checkpoint_image: ClassicalMemory,
    /// Installed deltas since the last base image.
    chain_len: usize,
    /// Synced WAL entries after the checkpoint: epochs
    /// `checkpoint_epoch + 1 ..= durable_epoch()`, in order.
    suffix: Vec<ReplicatedWrite>,
    /// The open commit group: buffered, NOT yet durable, NOT yet
    /// acknowledged.
    pending: Vec<ReplicatedWrite>,
    /// The open group's records, pre-framed into one reusable buffer so
    /// the flush is a single byte-stream append.
    pending_frames: Vec<u8>,
    /// `checkpoint_image` + `suffix` applied: the durable chain's own
    /// view of memory at the durable epoch.
    shadow: ClassicalMemory,
}

impl DurableFleet {
    /// Anchors a fresh store: installs `base` as the epoch-0 checkpoint
    /// and clears any leftover WAL and delta chain, under the default
    /// policy.
    ///
    /// # Errors
    /// [`StoreError::Io`] when the directory fails.
    pub fn create(dir: Box<dyn Dir>, base: &ClassicalMemory) -> Result<Self, StoreError> {
        Self::create_with(dir, base, CheckpointPolicy::default())
    }

    /// [`DurableFleet::create`] with an explicit checkpoint policy.
    ///
    /// # Errors
    /// [`StoreError::Io`] when the directory fails.
    pub fn create_with(
        mut dir: Box<dyn Dir>,
        base: &ClassicalMemory,
        policy: CheckpointPolicy,
    ) -> Result<Self, StoreError> {
        checkpoint::install(dir.as_mut(), base, 0)?;
        let mut stale = 1;
        while dir.exists(&checkpoint::delta_file(stale)) {
            dir.remove(&checkpoint::delta_file(stale))?;
            stale += 1;
        }
        dir.remove(checkpoint::DELTA_TMP)?;
        dir.remove(wal::WAL_FILE)?;
        dir.remove(wal::WAL_TMP)?;
        dir.sync()?;
        Ok(DurableFleet {
            dir,
            policy,
            group: GroupCommitPolicy::per_record(),
            checkpoint_epoch: 0,
            checkpoint_image: base.clone(),
            chain_len: 0,
            suffix: Vec::new(),
            pending: Vec::new(),
            pending_frames: Vec::new(),
            shadow: base.clone(),
        })
    }

    /// Sets the commit-group policy, builder style.
    #[must_use]
    pub fn with_group_commit(mut self, group: GroupCommitPolicy) -> Self {
        self.group = group;
        self
    }

    /// Opens an existing store, repairing crash debris: leftover scratch
    /// files are removed, stale delta-chain prefixes swept, torn/corrupt
    /// WAL tails truncated, and WAL entries the checkpoint chain already
    /// absorbed skipped.
    ///
    /// # Errors
    /// [`StoreError::MissingCheckpoint`] when the directory was never
    /// [`DurableFleet::create`]d, [`StoreError::CorruptCheckpoint`] when
    /// the installed image or a chained delta fails its CRC (detected,
    /// never replayed), [`StoreError::NonContiguousEpoch`] when the WAL
    /// starts past the checkpoint watermark (acknowledged epochs are
    /// unrecoverable), or [`StoreError::Io`].
    pub fn open(dir: Box<dyn Dir>, policy: CheckpointPolicy) -> Result<Self, StoreError> {
        let (store, _) = Self::open_inner(dir, policy)?;
        Ok(store)
    }

    /// Rebuilds fleet state from a store directory: checkpoint chain +
    /// WAL replay. The one-call recovery path a restarted replica uses
    /// to rejoin from disk instead of the in-memory log.
    ///
    /// # Errors
    /// As [`DurableFleet::open`].
    pub fn recover(dir: Box<dyn Dir>) -> Result<RecoveredState, StoreError> {
        let (store, truncated_bytes) = Self::open_inner(dir, CheckpointPolicy::default())?;
        Ok(RecoveredState {
            memory: store.shadow,
            epoch: store.checkpoint_epoch + store.suffix.len() as u64,
            checkpoint_epoch: store.checkpoint_epoch,
            delta_chain: store.chain_len,
            writes: store.suffix,
            truncated_bytes,
        })
    }

    fn open_inner(
        mut dir: Box<dyn Dir>,
        policy: CheckpointPolicy,
    ) -> Result<(Self, usize), StoreError> {
        // Scratch files are pre-crash debris: an install that never
        // reached its rename. The authoritative files win.
        dir.remove(checkpoint::CHECKPOINT_TMP)?;
        dir.remove(checkpoint::DELTA_TMP)?;
        dir.remove(wal::WAL_TMP)?;
        let (checkpoint_image, checkpoint_epoch, chain_len) =
            checkpoint::load_chain(dir.as_mut())?.ok_or(StoreError::MissingCheckpoint)?;
        let scan = wal::load(dir.as_mut())?;
        // A crash between checkpoint install and WAL compaction leaves
        // absorbed entries at the log head; skip them.
        let suffix: Vec<ReplicatedWrite> = scan
            .writes
            .into_iter()
            .filter(|w| w.epoch > checkpoint_epoch)
            .collect();
        if let Some(first) = suffix.first() {
            if first.epoch != checkpoint_epoch + 1 {
                return Err(StoreError::NonContiguousEpoch {
                    expected: checkpoint_epoch + 1,
                    found: first.epoch,
                });
            }
        }
        let mut shadow = checkpoint_image.clone();
        for w in &suffix {
            shadow.write(w.address, w.value);
        }
        Ok((
            DurableFleet {
                dir,
                policy,
                group: GroupCommitPolicy::per_record(),
                checkpoint_epoch,
                checkpoint_image,
                chain_len,
                suffix,
                pending: Vec::new(),
                pending_frames: Vec::new(),
                shadow,
            },
            scan.truncated_bytes,
        ))
    }

    /// The durable fleet epoch: every epoch at or below it is synced and
    /// acknowledged on stable storage (as far as the store knows — see
    /// [`DurableFleet::rescan`] for the lying-disk audit). Buffered
    /// records in the open commit group are *above* this watermark.
    #[must_use]
    pub fn durable_epoch(&self) -> u64 {
        self.checkpoint_epoch + self.suffix.len() as u64
    }

    /// The tail epoch including the open commit group: the epoch the
    /// next append must extend by one.
    #[must_use]
    pub fn tail_epoch(&self) -> u64 {
        self.durable_epoch() + self.pending.len() as u64
    }

    /// Records buffered in the open commit group — accepted but not yet
    /// durable or acknowledged.
    #[must_use]
    pub fn pending_records(&self) -> usize {
        self.pending.len()
    }

    /// The active commit-group policy.
    #[must_use]
    pub fn group_commit(&self) -> GroupCommitPolicy {
        self.group
    }

    /// Replaces the commit-group policy. Takes effect on the next
    /// append: a shrunken `max_records` flushes the (now oversized)
    /// open group when the next record arrives.
    pub fn set_group_commit(&mut self, group: GroupCommitPolicy) {
        self.group = group;
    }

    /// The epoch of the installed checkpoint chain (base + deltas).
    #[must_use]
    pub fn checkpoint_epoch(&self) -> u64 {
        self.checkpoint_epoch
    }

    /// Deltas installed since the last full base image.
    #[must_use]
    pub fn delta_chain_len(&self) -> usize {
        self.chain_len
    }

    /// The synced WAL suffix after the checkpoint, in epoch order.
    #[must_use]
    pub fn suffix(&self) -> &[ReplicatedWrite] {
        &self.suffix
    }

    /// The durable chain's memory image at [`DurableFleet::durable_epoch`].
    #[must_use]
    pub fn shadow(&self) -> &ClassicalMemory {
        &self.shadow
    }

    /// The durable chain's memory image at `epoch`, or `None` when the
    /// epoch predates the checkpoint (compacted away) or exceeds the
    /// durable watermark. This is the scrubber's expected state.
    #[must_use]
    pub fn state_at(&self, epoch: u64) -> Option<ClassicalMemory> {
        if epoch < self.checkpoint_epoch || epoch > self.durable_epoch() {
            return None;
        }
        let mut image = self.checkpoint_image.clone();
        for w in self.suffix.iter().take_while(|w| w.epoch <= epoch) {
            image.write(w.address, w.value);
        }
        Some(image)
    }

    /// Accepts one fleet write into the open commit group. The group —
    /// and with it this record's acknowledgment — lands when it reaches
    /// [`GroupCommitPolicy::max_records`] (one append + one sync for
    /// the whole group), or when the caller forces
    /// [`DurableFleet::flush`] on its deadline. Under the default
    /// per-record policy the group is the record: this syncs before
    /// returning, exactly the pre-group-commit contract.
    ///
    /// # Errors
    /// [`StoreError::NonContiguousEpoch`] when `w.epoch` does not extend
    /// the tail (synced + buffered) by one, or [`StoreError::Io`].
    pub fn append(&mut self, w: &ReplicatedWrite) -> Result<SyncSummary, StoreError> {
        let expected = self.tail_epoch() + 1;
        if w.epoch != expected {
            return Err(StoreError::NonContiguousEpoch {
                expected,
                found: w.epoch,
            });
        }
        wal::encode_frame_into(&mut self.pending_frames, w);
        self.pending.push(*w);
        if self.pending.len() >= self.group.max_records.max(1) {
            return self.flush();
        }
        Ok(SyncSummary::default())
    }

    /// Lands the open commit group (one append + one sync — the
    /// acknowledgment point for every record in it), then installs a
    /// checkpoint if the synced suffix crossed the policy interval. The
    /// fleet calls this on the group's virtual-time deadline; with an
    /// empty group it touches nothing.
    ///
    /// # Errors
    /// [`StoreError::Io`] when the directory fails.
    pub fn flush(&mut self) -> Result<SyncSummary, StoreError> {
        let synced_records = self.flush_records()?;
        let mut summary = SyncSummary {
            synced_records,
            ..SyncSummary::default()
        };
        if self.policy.every > 0 && self.suffix.len() as u64 >= self.policy.every {
            summary.delta = self.install_checkpoint()?;
            summary.checkpointed = true;
        }
        Ok(summary)
    }

    /// Appends + syncs the open group, draining it into the synced
    /// suffix and shadow. Returns how many records became durable.
    fn flush_records(&mut self) -> Result<usize, StoreError> {
        if self.pending.is_empty() {
            return Ok(0);
        }
        wal::append_group(self.dir.as_mut(), &self.pending_frames)?;
        let n = self.pending.len();
        for w in self.pending.drain(..) {
            self.shadow.write(w.address, w.value);
            self.suffix.push(w);
        }
        self.pending_frames.clear();
        Ok(n)
    }

    /// Flushes the open group, then installs a checkpoint of the
    /// durable chain at the durable epoch and compacts the WAL behind
    /// it. A no-op when nothing was written since the last checkpoint.
    ///
    /// # Errors
    /// [`StoreError::Io`] when the directory fails.
    pub fn checkpoint(&mut self) -> Result<(), StoreError> {
        self.flush_records()?;
        if self.suffix.is_empty() {
            return Ok(());
        }
        self.install_checkpoint()?;
        Ok(())
    }

    /// Installs a checkpoint at the durable epoch — an incremental
    /// delta while the policy's chain allows, else a full image (which
    /// folds any existing chain) — then compacts the WAL behind it.
    /// Returns whether a delta was installed. Caller guarantees the
    /// suffix is non-empty (a delta must advance its base epoch).
    fn install_checkpoint(&mut self) -> Result<bool, StoreError> {
        let watermark = self.checkpoint_epoch + self.suffix.len() as u64;
        let as_delta = self.policy.max_chain > 0 && self.chain_len < self.policy.max_chain;
        if as_delta {
            // Last write wins per cell; BTreeMap keeps addresses sorted
            // so equal states encode to equal bytes.
            let cells: BTreeMap<u64, u64> =
                self.suffix.iter().map(|w| (w.address, w.value)).collect();
            let delta = checkpoint::Delta {
                base_epoch: self.checkpoint_epoch,
                epoch: watermark,
                cells: cells.into_iter().collect(),
            };
            checkpoint::install_delta(self.dir.as_mut(), self.chain_len + 1, &delta)?;
            self.chain_len += 1;
        } else {
            // Fold: the fresh base supersedes the chain. Install first,
            // remove second (highest index first) — a crash in between
            // leaves a stale contiguous prefix that load_chain sweeps.
            checkpoint::install(self.dir.as_mut(), &self.shadow, watermark)?;
            checkpoint::remove_chain(self.dir.as_mut(), self.chain_len)?;
            self.chain_len = 0;
        }
        wal::compact(self.dir.as_mut(), &[])?;
        self.checkpoint_epoch = watermark;
        self.checkpoint_image = self.shadow.clone();
        self.suffix.clear();
        Ok(as_delta)
    }

    /// Audits the on-disk WAL against the store's in-memory view: a torn
    /// or corrupt tail (e.g. a write the disk acknowledged but never
    /// persisted) is truncated, and the durable watermark rolls back to
    /// what the disk actually holds. The caller re-appends the lost
    /// epochs from the fleet's in-memory log.
    ///
    /// # Errors
    /// [`StoreError::Io`] when the directory fails.
    pub fn rescan(&mut self) -> Result<RescanSummary, StoreError> {
        // Land the open group first so the on-disk log and the
        // in-memory suffix describe the same prefix — a rollback must
        // never strand buffered epochs above a gap. Under per-record
        // commit the group is always empty and this touches nothing.
        self.flush_records()?;
        let before = self.durable_epoch();
        let scan = wal::load(self.dir.as_mut())?;
        let disk_suffix: Vec<ReplicatedWrite> = scan
            .writes
            .into_iter()
            .filter(|w| w.epoch > self.checkpoint_epoch)
            .collect();
        if disk_suffix != self.suffix {
            self.suffix = disk_suffix;
            self.shadow = self.checkpoint_image.clone();
            for w in &self.suffix {
                self.shadow.write(w.address, w.value);
            }
        }
        Ok(RescanSummary {
            truncated_bytes: scan.truncated_bytes,
            lost_epochs: before.saturating_sub(self.durable_epoch()),
        })
    }

    /// The underlying directory — the hook tests use to inject torn
    /// writes and bit flips (downcast via [`Dir::as_any_mut`]).
    pub fn dir_mut(&mut self) -> &mut dyn Dir {
        self.dir.as_mut()
    }

    /// Consumes the store, returning the directory (e.g. to hand to
    /// [`DurableFleet::recover`] as a simulated restart). Buffered
    /// records in the open commit group are *dropped* — this models a
    /// kill, and unsynced records were never acknowledged.
    #[must_use]
    pub fn into_dir(self) -> Box<dyn Dir> {
        self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::dir::{DirOp, SimDir};
    use crate::store::{frame, CHECKPOINT_FILE, WAL_FILE};

    fn base() -> ClassicalMemory {
        ClassicalMemory::from_words(16, &(0..16).collect::<Vec<u64>>()).unwrap()
    }

    fn w(epoch: u64) -> ReplicatedWrite {
        ReplicatedWrite {
            epoch,
            origin: (epoch % 3) as usize,
            address: epoch % 16,
            value: (epoch * 13) % 65_536,
        }
    }

    fn sim(store: &mut DurableFleet) -> &mut SimDir {
        store
            .dir_mut()
            .as_any_mut()
            .downcast_mut::<SimDir>()
            .expect("test store runs on SimDir")
    }

    #[test]
    fn create_append_recover_roundtrips() {
        let mut store =
            DurableFleet::create_with(Box::new(SimDir::new()), &base(), CheckpointPolicy::never())
                .unwrap();
        for e in 1..=10 {
            let summary = store.append(&w(e)).unwrap();
            assert!(!summary.checkpointed);
            assert_eq!(summary.synced_records, 1, "per-record policy syncs each");
        }
        assert_eq!(store.durable_epoch(), 10);
        let recovered = DurableFleet::recover(store.into_dir()).unwrap();
        assert_eq!(recovered.epoch, 10);
        assert_eq!(recovered.checkpoint_epoch, 0);
        assert_eq!(recovered.delta_chain, 0);
        assert_eq!(recovered.writes.len(), 10);
        assert_eq!(recovered.truncated_bytes, 0);
        let mut expect = base();
        for e in 1..=10 {
            expect.write(w(e).address, w(e).value);
        }
        assert_eq!(recovered.memory.cells(), expect.cells());
    }

    #[test]
    fn policy_checkpoints_compact_the_wal() {
        let mut store =
            DurableFleet::create_with(Box::new(SimDir::new()), &base(), CheckpointPolicy::every(4))
                .unwrap();
        let mut checkpoints = 0;
        for e in 1..=10 {
            if store.append(&w(e)).unwrap().checkpointed {
                checkpoints += 1;
            }
        }
        assert_eq!(checkpoints, 2, "epochs 4 and 8");
        assert_eq!(store.checkpoint_epoch(), 8);
        assert_eq!(store.suffix().len(), 2);
        let wal_len = sim(&mut store).len_of(WAL_FILE).unwrap();
        assert_eq!(
            wal_len,
            2 * (frame::HEADER_LEN + wal::RECORD_PAYLOAD_LEN),
            "WAL holds only the post-checkpoint suffix"
        );
        let recovered = DurableFleet::recover(store.into_dir()).unwrap();
        assert_eq!(recovered.epoch, 10);
        assert_eq!(recovered.checkpoint_epoch, 8);
        assert_eq!(recovered.writes.len(), 2);
    }

    #[test]
    fn non_contiguous_append_is_rejected() {
        let mut store = DurableFleet::create(Box::new(SimDir::new()), &base()).unwrap();
        store.append(&w(1)).unwrap();
        let err = store.append(&w(3)).unwrap_err();
        assert!(matches!(
            err,
            StoreError::NonContiguousEpoch {
                expected: 2,
                found: 3
            }
        ));
        assert_eq!(store.durable_epoch(), 1, "rejected append changes nothing");
    }

    #[test]
    fn state_at_walks_the_durable_chain() {
        let mut store =
            DurableFleet::create_with(Box::new(SimDir::new()), &base(), CheckpointPolicy::never())
                .unwrap();
        for e in 1..=5 {
            store.append(&w(e)).unwrap();
        }
        let at3 = store.state_at(3).unwrap();
        let mut expect = base();
        for e in 1..=3 {
            expect.write(w(e).address, w(e).value);
        }
        assert_eq!(at3.cells(), expect.cells());
        assert_eq!(store.state_at(0).unwrap().cells(), base().cells());
        assert!(store.state_at(6).is_none(), "beyond the durable epoch");
        store.checkpoint().unwrap();
        assert!(store.state_at(3).is_none(), "compacted away");
        assert_eq!(store.state_at(5).unwrap().cells(), store.shadow().cells());
    }

    #[test]
    fn rescan_rolls_back_a_lying_disk_and_reappend_recovers() {
        let mut store =
            DurableFleet::create_with(Box::new(SimDir::new()), &base(), CheckpointPolicy::never())
                .unwrap();
        for e in 1..=3 {
            store.append(&w(e)).unwrap();
        }
        // Epoch 4's append tears on the platter while reporting success.
        sim(&mut store).tear_next_write(frame::HEADER_LEN + 7);
        store.append(&w(4)).unwrap();
        assert_eq!(store.durable_epoch(), 4, "the store believes the disk");
        let summary = store.rescan().unwrap();
        assert_eq!(summary.lost_epochs, 1);
        assert_eq!(summary.truncated_bytes, frame::HEADER_LEN + 7);
        assert_eq!(store.durable_epoch(), 3, "watermark rolled back");
        // The fleet log still has epoch 4: re-append and recover clean.
        store.append(&w(4)).unwrap();
        assert_eq!(store.rescan().unwrap(), RescanSummary::default());
        let recovered = DurableFleet::recover(store.into_dir()).unwrap();
        assert_eq!(recovered.epoch, 4);
    }

    #[test]
    fn recover_rejects_a_bit_flipped_checkpoint_not_silently() {
        let mut store = DurableFleet::create(Box::new(SimDir::new()), &base()).unwrap();
        store.append(&w(1)).unwrap();
        let mut dir = store.into_dir();
        dir.as_any_mut()
            .downcast_mut::<SimDir>()
            .unwrap()
            .flip_bit(CHECKPOINT_FILE, 30, 2);
        assert!(matches!(
            DurableFleet::recover(dir),
            Err(StoreError::CorruptCheckpoint(_))
        ));
    }

    #[test]
    fn recover_of_an_unanchored_dir_is_a_missing_checkpoint() {
        assert!(matches!(
            DurableFleet::recover(Box::new(SimDir::new())),
            Err(StoreError::MissingCheckpoint)
        ));
    }

    #[test]
    fn a_commit_group_buffers_then_lands_in_one_sync() {
        let mut store =
            DurableFleet::create_with(Box::new(SimDir::new()), &base(), CheckpointPolicy::never())
                .unwrap()
                .with_group_commit(GroupCommitPolicy::group(4, 8.0));
        let ops_at_start = sim(&mut store).journal().len();
        for e in 1..=3 {
            let summary = store.append(&w(e)).unwrap();
            assert_eq!(summary.synced_records, 0, "buffered, not acknowledged");
        }
        assert_eq!(store.durable_epoch(), 0, "nothing synced yet");
        assert_eq!((store.tail_epoch(), store.pending_records()), (3, 3));
        assert_eq!(
            sim(&mut store).journal().len(),
            ops_at_start,
            "buffering touches no disk"
        );
        // The fourth record fills the group: one append + one sync.
        let summary = store.append(&w(4)).unwrap();
        assert_eq!(summary.synced_records, 4);
        assert_eq!(store.durable_epoch(), 4);
        assert_eq!(store.pending_records(), 0);
        let ops = &sim(&mut store).journal()[ops_at_start..];
        assert!(
            matches!(
                ops,
                [DirOp::Append { name, bytes }, DirOp::Sync]
                    if name == WAL_FILE
                        && bytes.len() == 4 * (frame::HEADER_LEN + wal::RECORD_PAYLOAD_LEN)
            ),
            "group of 4 = one append + one sync, got {ops:?}"
        );
    }

    #[test]
    fn a_kill_before_the_group_sync_loses_only_unacknowledged_records() {
        let mut store =
            DurableFleet::create_with(Box::new(SimDir::new()), &base(), CheckpointPolicy::never())
                .unwrap()
                .with_group_commit(GroupCommitPolicy::group(8, 8.0));
        for e in 1..=4 {
            store.append(&w(e)).unwrap();
        }
        store.flush().unwrap();
        for e in 5..=7 {
            assert_eq!(store.append(&w(e)).unwrap().synced_records, 0);
        }
        // Kill: the open group (epochs 5-7) was never synced or acked.
        let recovered = DurableFleet::recover(store.into_dir()).unwrap();
        assert_eq!(recovered.epoch, 4, "exactly the acknowledged prefix");
    }

    #[test]
    fn a_forced_flush_acknowledges_a_partial_group() {
        let mut store =
            DurableFleet::create_with(Box::new(SimDir::new()), &base(), CheckpointPolicy::never())
                .unwrap()
                .with_group_commit(GroupCommitPolicy::group(64, 8.0));
        store.append(&w(1)).unwrap();
        store.append(&w(2)).unwrap();
        let summary = store.flush().unwrap();
        assert_eq!(summary.synced_records, 2, "deadline flush lands the group");
        assert_eq!(store.durable_epoch(), 2);
        assert_eq!(
            store.flush().unwrap(),
            SyncSummary::default(),
            "empty group: flushing touches nothing"
        );
    }

    #[test]
    fn delta_policy_chains_then_folds() {
        let mut store = DurableFleet::create_with(
            Box::new(SimDir::new()),
            &base(),
            CheckpointPolicy::deltas(2, 2),
        )
        .unwrap();
        // Epochs 2 and 4 install deltas; epoch 6 hits max_chain and
        // folds into a fresh base.
        let mut shapes = Vec::new();
        for e in 1..=6 {
            let summary = store.append(&w(e)).unwrap();
            if summary.checkpointed {
                shapes.push(summary.delta);
            }
        }
        assert_eq!(shapes, vec![true, true, false]);
        assert_eq!(store.checkpoint_epoch(), 6);
        assert_eq!(store.delta_chain_len(), 0, "fold reset the chain");
        assert!(!sim(&mut store).exists(&checkpoint::delta_file(1)));
        // Two more: a fresh delta off the new base.
        store.append(&w(7)).unwrap();
        store.append(&w(8)).unwrap();
        assert_eq!(store.delta_chain_len(), 1);
        let recovered = DurableFleet::recover(store.into_dir()).unwrap();
        assert_eq!(recovered.epoch, 8);
        assert_eq!(recovered.checkpoint_epoch, 8);
        assert_eq!(recovered.delta_chain, 1);
        let mut expect = base();
        for e in 1..=8 {
            expect.write(w(e).address, w(e).value);
        }
        assert_eq!(recovered.memory.cells(), expect.cells());
    }

    #[test]
    fn delta_recovery_replays_chain_plus_wal_tail() {
        let mut store = DurableFleet::create_with(
            Box::new(SimDir::new()),
            &base(),
            CheckpointPolicy::deltas(3, 8),
        )
        .unwrap();
        for e in 1..=11 {
            store.append(&w(e)).unwrap();
        }
        assert_eq!(store.checkpoint_epoch(), 9);
        assert_eq!(store.delta_chain_len(), 3);
        assert_eq!(store.suffix().len(), 2, "epochs 10-11 live in the WAL");
        let shadow = store.shadow().clone();
        let recovered = DurableFleet::recover(store.into_dir()).unwrap();
        assert_eq!(recovered.epoch, 11);
        assert_eq!(recovered.delta_chain, 3);
        assert_eq!(recovered.memory.cells(), shadow.cells());
    }

    #[test]
    fn state_at_tracks_the_delta_chain_watermark() {
        let mut store = DurableFleet::create_with(
            Box::new(SimDir::new()),
            &base(),
            CheckpointPolicy::deltas(4, 8),
        )
        .unwrap();
        for e in 1..=6 {
            store.append(&w(e)).unwrap();
        }
        assert!(store.state_at(3).is_none(), "absorbed by the delta");
        let at5 = store.state_at(5).unwrap();
        let mut expect = base();
        for e in 1..=5 {
            expect.write(w(e).address, w(e).value);
        }
        assert_eq!(at5.cells(), expect.cells());
    }

    #[test]
    fn rescan_lands_the_open_group_before_auditing() {
        let mut store =
            DurableFleet::create_with(Box::new(SimDir::new()), &base(), CheckpointPolicy::never())
                .unwrap()
                .with_group_commit(GroupCommitPolicy::group(8, 8.0));
        for e in 1..=3 {
            store.append(&w(e)).unwrap();
        }
        assert_eq!(store.durable_epoch(), 0);
        let summary = store.rescan().unwrap();
        assert_eq!(summary, RescanSummary::default());
        assert_eq!(store.durable_epoch(), 3, "audit flushed the group first");
    }

    #[test]
    fn per_record_group_journal_is_bit_identical_to_plain_appends() {
        // The max_records = 1 path must produce the same op stream as
        // wal::append — the anchor the proptest equivalence suite leans
        // on.
        let mut grouped =
            DurableFleet::create_with(Box::new(SimDir::new()), &base(), CheckpointPolicy::every(3))
                .unwrap()
                .with_group_commit(GroupCommitPolicy::per_record());
        let mut plain =
            DurableFleet::create_with(Box::new(SimDir::new()), &base(), CheckpointPolicy::every(3))
                .unwrap();
        for e in 1..=7 {
            assert_eq!(grouped.append(&w(e)).unwrap(), plain.append(&w(e)).unwrap());
        }
        let grouped_journal = sim(&mut grouped).journal().to_vec();
        assert_eq!(grouped_journal, sim(&mut plain).journal());
    }
}
