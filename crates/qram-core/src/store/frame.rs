//! CRC32-framed, length-prefixed on-disk records.
//!
//! Every durable byte the store writes — WAL entries and the checkpoint
//! image alike — travels inside one frame shape:
//!
//! ```text
//!   ┌─────────────┬─────────────┬──────────────────┐
//!   │ len: u32 LE │ crc: u32 LE │ payload: len B   │
//!   └─────────────┴─────────────┴──────────────────┘
//! ```
//!
//! `crc` covers the payload only; `len` is bounded by
//! [`MAX_PAYLOAD_LEN`] so a corrupt length prefix cannot send the
//! scanner chasing gigabytes of garbage. [`scan`] walks a byte buffer
//! frame by frame and stops at the first defect, reporting the length of
//! the valid prefix — the contract that lets a torn or bit-flipped tail
//! be *detected and truncated* instead of silently replayed.

/// Upper bound on a single frame's payload, in bytes. WAL records are
/// 32 bytes; checkpoint images are bounded by memory capacity. 64 MiB
/// leaves generous headroom while still rejecting corrupt lengths.
pub const MAX_PAYLOAD_LEN: usize = 64 << 20;

/// Bytes of framing overhead per record (`len` + `crc`).
pub const HEADER_LEN: usize = 8;

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB8_8320`) of `bytes`.
///
/// Hand-rolled over a lazily built table so the store stays std-only.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        let idx = (crc ^ u32::from(b)) & 0xff;
        crc = (crc >> 8) ^ table_entry(idx);
    }
    !crc
}

/// One row of the reflected CRC-32 table, computed on demand: eight
/// conditional shifts per byte class, cheap enough that a 256-entry
/// static table would buy nothing at WAL record sizes.
fn table_entry(idx: u32) -> u32 {
    let mut c = idx;
    for _ in 0..8 {
        c = if c & 1 == 1 {
            0xEDB8_8320 ^ (c >> 1)
        } else {
            c >> 1
        };
    }
    c
}

/// Frames `payload` as `[len][crc][payload]`.
#[must_use]
pub fn encode_record(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    encode_record_into(&mut out, payload);
    out
}

/// Appends the frame `[len][crc][payload]` onto `out` without an
/// intermediate allocation — the group-commit encoder reuses one buffer
/// across every record of a commit group.
pub fn encode_record_into(out: &mut Vec<u8>, payload: &[u8]) {
    assert!(
        payload.len() <= MAX_PAYLOAD_LEN,
        "frame payload exceeds MAX_PAYLOAD_LEN"
    );
    out.extend_from_slice(
        &u32::try_from(payload.len())
            .expect("bounded above")
            .to_le_bytes(),
    );
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Why a [`scan`] stopped before the end of the buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailDefect {
    /// Fewer than [`HEADER_LEN`] bytes remained: a record header was
    /// torn mid-write.
    TornHeader,
    /// The header promised more payload bytes than the buffer holds: a
    /// record body was torn mid-write.
    TornPayload,
    /// The header's length field exceeds [`MAX_PAYLOAD_LEN`]: the
    /// header itself is corrupt.
    BadLength,
    /// The payload's CRC does not match the header: bit rot or a torn
    /// write that happened to leave enough bytes behind.
    BadCrc,
}

/// Result of scanning a byte buffer for framed records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanOutcome {
    /// Payloads of every intact record, in file order.
    pub payloads: Vec<Vec<u8>>,
    /// Byte length of the valid prefix: truncating the file here leaves
    /// exactly the intact records.
    pub valid_len: usize,
    /// The defect that ended the scan, or `None` for a clean EOF.
    pub defect: Option<TailDefect>,
}

/// Walks `bytes` frame by frame, stopping at the first defect.
///
/// The scan never skips over damage looking for later records: bytes
/// after the first defect are unreachable debris by construction (the
/// store is append-only), so resynchronising past them would risk
/// resurrecting a record that was never acknowledged.
///
/// This is the materializing convenience over [`frames`]; streaming
/// consumers (WAL recovery) walk the borrowed iterator directly.
#[must_use]
pub fn scan(bytes: &[u8]) -> ScanOutcome {
    let mut it = frames(bytes);
    let mut payloads = Vec::new();
    for payload in it.by_ref() {
        payloads.push(payload.to_vec());
    }
    ScanOutcome {
        payloads,
        valid_len: it.valid_len(),
        defect: it.defect(),
    }
}

/// Walks `bytes` frame by frame, yielding each intact payload as a
/// *borrowed* slice of the input — no per-record allocation. After the
/// iterator returns `None`, [`FrameIter::valid_len`] is the byte length
/// of the intact prefix and [`FrameIter::defect`] says why the walk
/// stopped.
#[must_use]
pub fn frames(bytes: &[u8]) -> FrameIter<'_> {
    FrameIter {
        bytes,
        at: 0,
        defect: None,
    }
}

/// Borrowing frame cursor over a byte buffer; see [`frames`].
#[derive(Debug)]
pub struct FrameIter<'a> {
    bytes: &'a [u8],
    at: usize,
    defect: Option<TailDefect>,
}

impl<'a> Iterator for FrameIter<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        if self.defect.is_some() || self.at == self.bytes.len() {
            return None;
        }
        let remaining = self.bytes.len() - self.at;
        if remaining < HEADER_LEN {
            self.defect = Some(TailDefect::TornHeader);
            return None;
        }
        let header = &self.bytes[self.at..self.at + HEADER_LEN];
        let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(header[4..].try_into().expect("4 bytes"));
        if len > MAX_PAYLOAD_LEN {
            self.defect = Some(TailDefect::BadLength);
            return None;
        }
        if remaining - HEADER_LEN < len {
            self.defect = Some(TailDefect::TornPayload);
            return None;
        }
        let payload = &self.bytes[self.at + HEADER_LEN..self.at + HEADER_LEN + len];
        if crc32(payload) != crc {
            self.defect = Some(TailDefect::BadCrc);
            return None;
        }
        self.at += HEADER_LEN + len;
        Some(payload)
    }
}

impl FrameIter<'_> {
    /// Byte length of the intact prefix walked so far: truncating the
    /// buffer here leaves exactly the records already yielded.
    #[must_use]
    pub fn valid_len(&self) -> usize {
        self.at
    }

    /// The defect that stopped the walk, or `None` while the walk is
    /// clean (still running, or ended exactly at the buffer end).
    #[must_use]
    pub fn defect(&self) -> Option<TailDefect> {
        self.defect
    }

    /// True when the walk stopped only because the buffer ended
    /// mid-frame — more bytes appended to the buffer could complete the
    /// record. `BadLength`/`BadCrc` are hard defects no refill repairs;
    /// the streaming scanner uses this to tell "read more" from "cut
    /// here".
    #[must_use]
    pub fn incomplete(&self) -> bool {
        matches!(
            self.defect,
            Some(TailDefect::TornHeader | TailDefect::TornPayload)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE 802.3 check values: the classic "123456789" vector and
        // the empty string.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_scan_recovers_all_payloads() {
        let mut bytes = Vec::new();
        let payloads: Vec<Vec<u8>> = vec![b"abc".to_vec(), Vec::new(), vec![0xff; 100]];
        for p in &payloads {
            bytes.extend_from_slice(&encode_record(p));
        }
        let out = scan(&bytes);
        assert_eq!(out.payloads, payloads);
        assert_eq!(out.valid_len, bytes.len());
        assert_eq!(out.defect, None);
    }

    #[test]
    fn every_truncation_point_is_detected_and_prefix_preserved() {
        let mut bytes = Vec::new();
        for p in [b"first".as_slice(), b"second", b"third"] {
            bytes.extend_from_slice(&encode_record(p));
        }
        let whole = scan(&bytes);
        for cut in 0..bytes.len() {
            let out = scan(&bytes[..cut]);
            // The scan must never return a record the full file lacks,
            // and must keep every record that fits entirely in the cut.
            assert!(out.payloads.len() <= whole.payloads.len());
            assert_eq!(
                out.payloads,
                whole.payloads[..out.payloads.len()],
                "cut at {cut} must yield a prefix of the intact records"
            );
            assert!(out.valid_len <= cut);
            if out.valid_len < cut {
                assert!(out.defect.is_some(), "partial bytes at {cut} need a defect");
            }
        }
    }

    #[test]
    fn a_flipped_bit_anywhere_in_a_payload_is_caught() {
        let record = encode_record(b"payload-under-test");
        for byte in HEADER_LEN..record.len() {
            for bit in 0..8 {
                let mut dirty = record.clone();
                dirty[byte] ^= 1 << bit;
                let out = scan(&dirty);
                assert_eq!(out.payloads.len(), 0, "bit {bit} of byte {byte} slipped by");
                assert_eq!(out.defect, Some(TailDefect::BadCrc));
            }
        }
    }

    #[test]
    fn borrowed_frames_match_the_materializing_scan() {
        let mut bytes = Vec::new();
        for p in [b"first".as_slice(), b"second", b""] {
            encode_record_into(&mut bytes, p);
        }
        bytes.extend_from_slice(&encode_record(b"torn")[..HEADER_LEN + 2]);
        let mut it = frames(&bytes);
        let borrowed: Vec<&[u8]> = it.by_ref().collect();
        assert_eq!(
            borrowed,
            vec![b"first".as_slice(), b"second", b""],
            "payloads borrow straight from the input"
        );
        let out = scan(&bytes);
        assert_eq!(it.valid_len(), out.valid_len);
        assert_eq!(it.defect(), out.defect);
        assert!(it.incomplete(), "a torn payload is refillable");
        // A hard defect is not refillable.
        let mut rotten = encode_record(b"payload");
        rotten[HEADER_LEN] ^= 1;
        let mut it = frames(&rotten);
        assert_eq!(it.next(), None);
        assert_eq!(it.defect(), Some(TailDefect::BadCrc));
        assert!(!it.incomplete());
    }

    #[test]
    fn an_exhausted_iterator_stays_exhausted() {
        let bytes = encode_record(b"only");
        let mut it = frames(&bytes);
        assert_eq!(it.next(), Some(b"only".as_slice()));
        assert_eq!(it.next(), None);
        assert_eq!(it.next(), None, "fused after a clean end");
        assert_eq!(it.valid_len(), bytes.len());
        assert_eq!(it.defect(), None);
    }

    #[test]
    fn a_corrupt_length_header_cannot_runaway() {
        let mut record = encode_record(b"x");
        record[3] = 0xff; // len now claims ~4 GiB
        let out = scan(&record);
        assert_eq!(out.defect, Some(TailDefect::BadLength));
        assert_eq!(out.valid_len, 0);
    }
}
