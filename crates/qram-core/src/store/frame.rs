//! CRC32-framed, length-prefixed on-disk records.
//!
//! Every durable byte the store writes — WAL entries and the checkpoint
//! image alike — travels inside one frame shape:
//!
//! ```text
//!   ┌─────────────┬─────────────┬──────────────────┐
//!   │ len: u32 LE │ crc: u32 LE │ payload: len B   │
//!   └─────────────┴─────────────┴──────────────────┘
//! ```
//!
//! `crc` covers the payload only; `len` is bounded by
//! [`MAX_PAYLOAD_LEN`] so a corrupt length prefix cannot send the
//! scanner chasing gigabytes of garbage. [`scan`] walks a byte buffer
//! frame by frame and stops at the first defect, reporting the length of
//! the valid prefix — the contract that lets a torn or bit-flipped tail
//! be *detected and truncated* instead of silently replayed.

/// Upper bound on a single frame's payload, in bytes. WAL records are
/// 32 bytes; checkpoint images are bounded by memory capacity. 64 MiB
/// leaves generous headroom while still rejecting corrupt lengths.
pub const MAX_PAYLOAD_LEN: usize = 64 << 20;

/// Bytes of framing overhead per record (`len` + `crc`).
pub const HEADER_LEN: usize = 8;

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB8_8320`) of `bytes`.
///
/// Hand-rolled over a lazily built table so the store stays std-only.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        let idx = (crc ^ u32::from(b)) & 0xff;
        crc = (crc >> 8) ^ table_entry(idx);
    }
    !crc
}

/// One row of the reflected CRC-32 table, computed on demand: eight
/// conditional shifts per byte class, cheap enough that a 256-entry
/// static table would buy nothing at WAL record sizes.
fn table_entry(idx: u32) -> u32 {
    let mut c = idx;
    for _ in 0..8 {
        c = if c & 1 == 1 {
            0xEDB8_8320 ^ (c >> 1)
        } else {
            c >> 1
        };
    }
    c
}

/// Frames `payload` as `[len][crc][payload]`.
#[must_use]
pub fn encode_record(payload: &[u8]) -> Vec<u8> {
    assert!(
        payload.len() <= MAX_PAYLOAD_LEN,
        "frame payload exceeds MAX_PAYLOAD_LEN"
    );
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(
        &u32::try_from(payload.len())
            .expect("bounded above")
            .to_le_bytes(),
    );
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Why a [`scan`] stopped before the end of the buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailDefect {
    /// Fewer than [`HEADER_LEN`] bytes remained: a record header was
    /// torn mid-write.
    TornHeader,
    /// The header promised more payload bytes than the buffer holds: a
    /// record body was torn mid-write.
    TornPayload,
    /// The header's length field exceeds [`MAX_PAYLOAD_LEN`]: the
    /// header itself is corrupt.
    BadLength,
    /// The payload's CRC does not match the header: bit rot or a torn
    /// write that happened to leave enough bytes behind.
    BadCrc,
}

/// Result of scanning a byte buffer for framed records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanOutcome {
    /// Payloads of every intact record, in file order.
    pub payloads: Vec<Vec<u8>>,
    /// Byte length of the valid prefix: truncating the file here leaves
    /// exactly the intact records.
    pub valid_len: usize,
    /// The defect that ended the scan, or `None` for a clean EOF.
    pub defect: Option<TailDefect>,
}

/// Walks `bytes` frame by frame, stopping at the first defect.
///
/// The scan never skips over damage looking for later records: bytes
/// after the first defect are unreachable debris by construction (the
/// store is append-only), so resynchronising past them would risk
/// resurrecting a record that was never acknowledged.
#[must_use]
pub fn scan(bytes: &[u8]) -> ScanOutcome {
    let mut payloads = Vec::new();
    let mut at = 0usize;
    let defect = loop {
        if at == bytes.len() {
            break None;
        }
        if bytes.len() - at < HEADER_LEN {
            break Some(TailDefect::TornHeader);
        }
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().expect("4 bytes"));
        if len > MAX_PAYLOAD_LEN {
            break Some(TailDefect::BadLength);
        }
        if bytes.len() - at - HEADER_LEN < len {
            break Some(TailDefect::TornPayload);
        }
        let payload = &bytes[at + HEADER_LEN..at + HEADER_LEN + len];
        if crc32(payload) != crc {
            break Some(TailDefect::BadCrc);
        }
        payloads.push(payload.to_vec());
        at += HEADER_LEN + len;
    };
    ScanOutcome {
        payloads,
        valid_len: at,
        defect,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE 802.3 check values: the classic "123456789" vector and
        // the empty string.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_scan_recovers_all_payloads() {
        let mut bytes = Vec::new();
        let payloads: Vec<Vec<u8>> = vec![b"abc".to_vec(), Vec::new(), vec![0xff; 100]];
        for p in &payloads {
            bytes.extend_from_slice(&encode_record(p));
        }
        let out = scan(&bytes);
        assert_eq!(out.payloads, payloads);
        assert_eq!(out.valid_len, bytes.len());
        assert_eq!(out.defect, None);
    }

    #[test]
    fn every_truncation_point_is_detected_and_prefix_preserved() {
        let mut bytes = Vec::new();
        for p in [b"first".as_slice(), b"second", b"third"] {
            bytes.extend_from_slice(&encode_record(p));
        }
        let whole = scan(&bytes);
        for cut in 0..bytes.len() {
            let out = scan(&bytes[..cut]);
            // The scan must never return a record the full file lacks,
            // and must keep every record that fits entirely in the cut.
            assert!(out.payloads.len() <= whole.payloads.len());
            assert_eq!(
                out.payloads,
                whole.payloads[..out.payloads.len()],
                "cut at {cut} must yield a prefix of the intact records"
            );
            assert!(out.valid_len <= cut);
            if out.valid_len < cut {
                assert!(out.defect.is_some(), "partial bytes at {cut} need a defect");
            }
        }
    }

    #[test]
    fn a_flipped_bit_anywhere_in_a_payload_is_caught() {
        let record = encode_record(b"payload-under-test");
        for byte in HEADER_LEN..record.len() {
            for bit in 0..8 {
                let mut dirty = record.clone();
                dirty[byte] ^= 1 << bit;
                let out = scan(&dirty);
                assert_eq!(out.payloads.len(), 0, "bit {bit} of byte {byte} slipped by");
                assert_eq!(out.defect, Some(TailDefect::BadCrc));
            }
        }
    }

    #[test]
    fn a_corrupt_length_header_cannot_runaway() {
        let mut record = encode_record(b"x");
        record[3] = 0xff; // len now claims ~4 GiB
        let out = scan(&record);
        assert_eq!(out.defect, Some(TailDefect::BadLength));
        assert_eq!(out.valid_len, 0);
    }
}
