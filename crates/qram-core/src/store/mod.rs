//! Crash-consistent persistence for the replicated fleet memory.
//!
//! Everything above this module keeps fleet state in RAM: the
//! [`ReplicatedMemory`](crate::ReplicatedMemory) write log, per-replica
//! memory images, and epoch watermarks all die with the process. This
//! module is the durability tier underneath that state:
//!
//! ```text
//!   write_at(addr, value)            fleet epoch e
//!        │                                │
//!        ▼                                ▼
//!   ┌──────────────────────────────────────────────┐
//!   │ commit group  (buffered frames, NOT durable) │  ≤ max_records or
//!   └──────────────────────────────────────────────┘  max_delay deadline
//!        │ one append + one fsync per group = the ack point
//!        ▼
//!   ┌──────────────────────────────────────────────┐
//!   │ wal.log   [len][crc32][epoch origin addr val]│
//!   └──────────────────────────────────────────────┘
//!        │ every `checkpoint_every` synced records
//!        ▼
//!   ┌──────────────┐ tmp+rename ┌──────────────┐┌──────┐  ┌──────┐
//!   │checkpoint.tmp│ ──────────▶│checkpoint.img││d.0001│──│d.0002│…
//!   └──────────────┘            └──────────────┘└──────┘  └──────┘
//!        │ deltas chain up to `max_chain`, then fold to a new base;
//!        │ the WAL suffix rewrites behind each install (compaction)
//!        ▼
//!   recovery = base image + delta chain + WAL replay of epochs > watermark
//! ```
//!
//! * [`frame`] — CRC32-framed, length-prefixed record encoding shared by
//!   the WAL and the checkpoint image, with torn/corrupt-tail scanning.
//! * [`Dir`] — the narrow filesystem surface the store runs on, with a
//!   real [`OsDir`] and an in-memory [`SimDir`] that journals every I/O
//!   op so a kill-point harness can replay any prefix (plus a byte-level
//!   cut of the final write) and prove recovery from every crash point.
//! * [`FaultyFile`] — the byte store under [`SimDir`], with short-write
//!   and bit-flip injection hooks.
//! * [`DurableFleet`] — the write-ahead log + checkpoint lifecycle and
//!   the [`DurableFleet::recover`] path that rebuilds state from disk.
//! * [`digest`] — chunked FNV-1a digests with a Merkle-style fold, the
//!   currency of the anti-entropy scrubber in `qram-serve`.
//!
//! The module is std-only by design: framing, checksums, and the
//! directory abstraction are all hand-rolled so the store works in the
//! offline vendored build.
//!
//! # Examples
//!
//! ```
//! use qram_core::store::{CheckpointPolicy, DurableFleet, SimDir};
//! use qram_core::ReplicatedWrite;
//! use qsim::branch::ClassicalMemory;
//!
//! let base = ClassicalMemory::zeros(8);
//! let mut store = DurableFleet::create(Box::new(SimDir::new()), &base)?;
//! store.append(&ReplicatedWrite { epoch: 1, origin: 0, address: 3, value: 1 })?;
//!
//! let recovered = DurableFleet::recover(store.into_dir())?;
//! assert_eq!(recovered.epoch, 1);
//! assert_eq!(recovered.memory.read(3), 1);
//! # Ok::<(), qram_core::store::StoreError>(())
//! ```

pub mod checkpoint;
pub mod digest;
pub mod dir;
pub mod durable;
pub mod frame;
pub mod wal;

pub use checkpoint::{delta_file, Delta, CHECKPOINT_FILE, CHECKPOINT_TMP, DELTA_TMP};
pub use digest::{chunk_digests, fnv1a64, fnv1a64_words, merkle_root};
pub use dir::{Dir, DirOp, FaultyFile, OsDir, SimDir};
pub use durable::{CheckpointPolicy, DurableFleet, RecoveredState, SyncSummary};
pub use frame::{crc32, frames, FrameIter, ScanOutcome, TailDefect};
pub use wal::{GroupCommitPolicy, WalScan, WAL_FILE, WAL_TMP};

use std::fmt;
use std::io;

/// Errors surfaced by the durability tier.
///
/// Torn WAL tails are *not* errors — they are expected crash debris and
/// are silently truncated on open. Errors are reserved for conditions
/// recovery cannot repair locally: I/O failures and a checkpoint image
/// whose CRC no longer matches (detected corruption must never be
/// silently replayed as state).
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io(io::Error),
    /// The installed checkpoint image failed its CRC or shape checks.
    CorruptCheckpoint(&'static str),
    /// The store directory has a WAL but no checkpoint image to anchor
    /// it; [`DurableFleet::create`] was never run (or the image was
    /// removed out-of-band).
    MissingCheckpoint,
    /// A WAL record's epoch does not extend the durable prefix by
    /// exactly one.
    NonContiguousEpoch {
        /// The epoch the durable prefix requires next.
        expected: u64,
        /// The epoch actually presented.
        found: u64,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::CorruptCheckpoint(why) => {
                write!(f, "checkpoint image failed integrity checks: {why}")
            }
            StoreError::MissingCheckpoint => {
                write!(f, "store directory has no checkpoint image")
            }
            StoreError::NonContiguousEpoch { expected, found } => write!(
                f,
                "WAL epoch {found} does not extend the durable prefix (expected {expected})"
            ),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}
