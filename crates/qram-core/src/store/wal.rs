//! The write-ahead log: one framed record per fleet epoch.
//!
//! Each [`ReplicatedWrite`] serializes to a fixed 32-byte payload —
//! four little-endian `u64`s `(epoch, origin, address, value)`, the
//! compact `#[repr(C)]`-style flat record shape of binary trace formats
//! — wrapped in the [`frame`] header. The log is pure
//! appends; compaction after a checkpoint rewrites the surviving suffix
//! through a temp file + atomic rename so a crash mid-compaction leaves
//! either the old log or the new one, never a hybrid.
//!
//! [`load`] enforces the log's one structural invariant beyond framing:
//! epochs must be *contiguous* (each record extends its predecessor by
//! exactly one). A record that breaks contiguity marks the start of
//! debris — everything from it onward is truncated, exactly like a CRC
//! defect.

use super::dir::Dir;
use super::frame::{self, TailDefect};
use super::StoreError;
use crate::replication::ReplicatedWrite;

/// The live log file name inside a store directory.
pub const WAL_FILE: &str = "wal.log";
/// The compaction scratch file; only ever observed after a crash.
pub const WAL_TMP: &str = "wal.tmp";

/// Serialized payload size of one WAL record.
pub const RECORD_PAYLOAD_LEN: usize = 32;

/// Serializes one write as the fixed 32-byte WAL payload.
#[must_use]
pub fn encode_write(w: &ReplicatedWrite) -> [u8; RECORD_PAYLOAD_LEN] {
    let mut out = [0u8; RECORD_PAYLOAD_LEN];
    out[..8].copy_from_slice(&w.epoch.to_le_bytes());
    out[8..16].copy_from_slice(&(w.origin as u64).to_le_bytes());
    out[16..24].copy_from_slice(&w.address.to_le_bytes());
    out[24..].copy_from_slice(&w.value.to_le_bytes());
    out
}

/// Deserializes a WAL payload; `None` when the length or origin field
/// is malformed (treated as a tail defect by [`load`]).
#[must_use]
pub fn decode_write(payload: &[u8]) -> Option<ReplicatedWrite> {
    if payload.len() != RECORD_PAYLOAD_LEN {
        return None;
    }
    let word = |i: usize| u64::from_le_bytes(payload[8 * i..8 * (i + 1)].try_into().expect("8B"));
    let origin = usize::try_from(word(1)).ok()?;
    Some(ReplicatedWrite {
        epoch: word(0),
        origin,
        address: word(2),
        value: word(3),
    })
}

/// Outcome of scanning (and repairing) the on-disk log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalScan {
    /// Every intact, contiguous write in the log, in epoch order.
    pub writes: Vec<ReplicatedWrite>,
    /// Bytes of torn/corrupt tail truncated away, 0 for a clean log.
    pub truncated_bytes: usize,
    /// The defect that ended the scan, `None` for a clean log.
    pub defect: Option<TailDefect>,
}

/// Scans `WAL_FILE`, truncating any torn or corrupt tail in place so the
/// log is left scannable. A missing file is an empty log.
///
/// # Errors
/// [`StoreError::Io`] when the directory fails.
pub fn load(dir: &mut dyn Dir) -> Result<WalScan, StoreError> {
    let bytes = match dir.read(WAL_FILE) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(WalScan {
                writes: Vec::new(),
                truncated_bytes: 0,
                defect: None,
            })
        }
        Err(e) => return Err(e.into()),
    };
    let scanned = frame::scan(&bytes);
    let mut defect = scanned.defect;
    let mut writes = Vec::with_capacity(scanned.payloads.len());
    for payload in &scanned.payloads {
        let parsed = decode_write(payload);
        let contiguous = parsed.is_some_and(|w| {
            writes
                .last()
                .is_none_or(|prev: &ReplicatedWrite| w.epoch == prev.epoch + 1)
        });
        match parsed {
            Some(w) if contiguous => writes.push(w),
            // A record that decodes wrong or skips an epoch is the
            // start of debris: cut here, like any other defect.
            _ => {
                defect = Some(TailDefect::BadCrc);
                break;
            }
        }
    }
    let valid_len = wal_prefix_len(writes.len(), &scanned);
    let truncated_bytes = bytes.len() - valid_len;
    if truncated_bytes > 0 {
        dir.truncate(WAL_FILE, valid_len as u64)?;
        dir.sync()?;
    }
    Ok(WalScan {
        writes,
        truncated_bytes,
        defect,
    })
}

/// Byte length of the first `records` framed records in a scan.
fn wal_prefix_len(records: usize, scanned: &frame::ScanOutcome) -> usize {
    scanned.payloads[..records]
        .iter()
        .map(|p| frame::HEADER_LEN + p.len())
        .sum()
}

/// Appends one write and syncs: when this returns, the write is durable
/// and counts as *acknowledged* for the recovery contract.
///
/// # Errors
/// [`StoreError::Io`] when the directory fails.
pub fn append(dir: &mut dyn Dir, w: &ReplicatedWrite) -> Result<(), StoreError> {
    dir.append(WAL_FILE, &frame::encode_record(&encode_write(w)))?;
    dir.sync()?;
    Ok(())
}

/// Rewrites the log to exactly `suffix` (the writes a fresh checkpoint
/// did not absorb), via temp file + atomic rename.
///
/// # Errors
/// [`StoreError::Io`] when the directory fails.
pub fn compact(dir: &mut dyn Dir, suffix: &[ReplicatedWrite]) -> Result<(), StoreError> {
    let mut bytes = Vec::with_capacity(suffix.len() * (frame::HEADER_LEN + RECORD_PAYLOAD_LEN));
    for w in suffix {
        bytes.extend_from_slice(&frame::encode_record(&encode_write(w)));
    }
    dir.replace(WAL_TMP, &bytes)?;
    dir.sync()?;
    dir.rename(WAL_TMP, WAL_FILE)?;
    dir.sync()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::dir::SimDir;

    fn w(epoch: u64) -> ReplicatedWrite {
        ReplicatedWrite {
            epoch,
            origin: (epoch % 3) as usize,
            address: epoch % 16,
            value: epoch * 7,
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let write = w(42);
        assert_eq!(decode_write(&encode_write(&write)), Some(write));
        assert_eq!(decode_write(b"short"), None);
    }

    #[test]
    fn append_then_load_roundtrips_and_missing_log_is_empty() {
        let mut d = SimDir::new();
        assert_eq!(load(&mut d).unwrap().writes, Vec::new());
        for e in 1..=5 {
            append(&mut d, &w(e)).unwrap();
        }
        let scan = load(&mut d).unwrap();
        assert_eq!(scan.writes, (1..=5).map(w).collect::<Vec<_>>());
        assert_eq!(scan.truncated_bytes, 0);
        assert_eq!(scan.defect, None);
    }

    #[test]
    fn torn_tail_is_truncated_in_place() {
        let mut d = SimDir::new();
        append(&mut d, &w(1)).unwrap();
        append(&mut d, &w(2)).unwrap();
        let full = d.len_of(WAL_FILE).unwrap();
        // Tear the third append mid-record.
        d.tear_next_write(frame::HEADER_LEN + 5);
        append(&mut d, &w(3)).unwrap();
        let scan = load(&mut d).unwrap();
        assert_eq!(scan.writes, vec![w(1), w(2)]);
        assert_eq!(scan.truncated_bytes, frame::HEADER_LEN + 5);
        assert!(scan.defect.is_some());
        // The truncation repaired the file: a second load is clean.
        assert_eq!(d.len_of(WAL_FILE).unwrap(), full);
        let again = load(&mut d).unwrap();
        assert_eq!(again.truncated_bytes, 0);
        assert_eq!(again.defect, None);
    }

    #[test]
    fn non_contiguous_epoch_cuts_the_log_there() {
        let mut d = SimDir::new();
        append(&mut d, &w(1)).unwrap();
        append(&mut d, &w(3)).unwrap(); // skips epoch 2: debris
        append(&mut d, &w(4)).unwrap();
        let scan = load(&mut d).unwrap();
        assert_eq!(scan.writes, vec![w(1)]);
        assert!(scan.truncated_bytes > 0);
        assert_eq!(
            load(&mut d).unwrap().writes,
            vec![w(1)],
            "truncation left a clean contiguous log"
        );
    }

    #[test]
    fn compact_keeps_exactly_the_suffix() {
        let mut d = SimDir::new();
        for e in 1..=6 {
            append(&mut d, &w(e)).unwrap();
        }
        compact(&mut d, &[w(5), w(6)]).unwrap();
        assert!(!d.exists(WAL_TMP));
        let scan = load(&mut d).unwrap();
        assert_eq!(scan.writes, vec![w(5), w(6)]);
        compact(&mut d, &[]).unwrap();
        assert_eq!(load(&mut d).unwrap().writes, Vec::new());
    }
}
