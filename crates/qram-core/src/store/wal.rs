//! The write-ahead log: one framed record per fleet epoch, appended in
//! commit groups.
//!
//! Each [`ReplicatedWrite`] serializes to a fixed 32-byte payload —
//! four little-endian `u64`s `(epoch, origin, address, value)`, the
//! compact `#[repr(C)]`-style flat record shape of binary trace formats
//! — wrapped in the [`frame`] header. The log is pure
//! appends; compaction after a checkpoint rewrites the surviving suffix
//! through a temp file + atomic rename so a crash mid-compaction leaves
//! either the old log or the new one, never a hybrid.
//!
//! **Group commit.** The expensive part of an append is the sync, not
//! the bytes. [`GroupCommitPolicy`] batches records into a commit group
//! that [`append_group`] lands as *one* byte-stream append and *one*
//! durability barrier — the acknowledgment point for every record in
//! the group. A crash between buffering and the group sync loses only
//! those unacknowledged records, exactly as a single torn append does;
//! `max_records = 1` degenerates to the per-record path bit-for-bit.
//!
//! [`load`] enforces the log's one structural invariant beyond framing:
//! epochs must be *contiguous* (each record extends its predecessor by
//! exactly one). A record that breaks contiguity marks the start of
//! debris — everything from it onward is truncated, exactly like a CRC
//! defect. The scan streams the file through one reused window
//! ([`Dir::read_at`]) and borrows each record from it, so recovery of a
//! long log allocates no per-record buffers and never materializes the
//! file.

use super::dir::Dir;
use super::frame::{self, TailDefect};
use super::StoreError;
use crate::replication::ReplicatedWrite;

/// The live log file name inside a store directory.
pub const WAL_FILE: &str = "wal.log";
/// The compaction scratch file; only ever observed after a crash.
pub const WAL_TMP: &str = "wal.tmp";

/// Serialized payload size of one WAL record.
pub const RECORD_PAYLOAD_LEN: usize = 32;

/// How WAL appends batch into commit groups.
///
/// A group is flushed — one appended frame run + one sync, the
/// acknowledgment point for every record in it — when it reaches
/// `max_records`, or when the serving reactor's flush deadline
/// (`max_delay` of virtual time after the group opened) fires first.
/// The store itself has no clock, so `max_delay` is advisory plumbing
/// for the reactor; `0.0` means "no deadline".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupCommitPolicy {
    /// Records per commit group; `1` is the per-record path,
    /// bit-identical on disk and in acknowledgment order.
    pub max_records: usize,
    /// Virtual-time bound on how long a non-empty group may wait for
    /// more records before the reactor flushes it anyway. `0.0`
    /// disables the deadline.
    pub max_delay: f64,
}

impl GroupCommitPolicy {
    /// One record per group: sync-per-append, the ungrouped baseline.
    #[must_use]
    pub fn per_record() -> Self {
        GroupCommitPolicy {
            max_records: 1,
            max_delay: 0.0,
        }
    }

    /// Groups of up to `max_records`, flushed after at most `max_delay`
    /// virtual layers by the serving reactor.
    ///
    /// # Panics
    /// Panics when `max_records` is zero or `max_delay` is negative.
    #[must_use]
    pub fn group(max_records: usize, max_delay: f64) -> Self {
        assert!(max_records >= 1, "a commit group holds at least 1 record");
        assert!(max_delay >= 0.0, "the flush deadline cannot be negative");
        GroupCommitPolicy {
            max_records,
            max_delay,
        }
    }
}

impl Default for GroupCommitPolicy {
    fn default() -> Self {
        GroupCommitPolicy::per_record()
    }
}

/// Serializes one write as the fixed 32-byte WAL payload.
#[must_use]
pub fn encode_write(w: &ReplicatedWrite) -> [u8; RECORD_PAYLOAD_LEN] {
    let mut out = [0u8; RECORD_PAYLOAD_LEN];
    out[..8].copy_from_slice(&w.epoch.to_le_bytes());
    out[8..16].copy_from_slice(&(w.origin as u64).to_le_bytes());
    out[16..24].copy_from_slice(&w.address.to_le_bytes());
    out[24..].copy_from_slice(&w.value.to_le_bytes());
    out
}

/// Deserializes a WAL payload; `None` when the length or origin field
/// is malformed (treated as a tail defect by [`load`]).
#[must_use]
pub fn decode_write(payload: &[u8]) -> Option<ReplicatedWrite> {
    if payload.len() != RECORD_PAYLOAD_LEN {
        return None;
    }
    let word = |i: usize| u64::from_le_bytes(payload[8 * i..8 * (i + 1)].try_into().expect("8B"));
    let origin = usize::try_from(word(1)).ok()?;
    Some(ReplicatedWrite {
        epoch: word(0),
        origin,
        address: word(2),
        value: word(3),
    })
}

/// Outcome of scanning (and repairing) the on-disk log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalScan {
    /// Every intact, contiguous write in the log, in epoch order.
    pub writes: Vec<ReplicatedWrite>,
    /// Bytes of torn/corrupt tail truncated away, 0 for a clean log.
    pub truncated_bytes: usize,
    /// The defect that ended the scan, `None` for a clean log.
    pub defect: Option<TailDefect>,
}

/// Initial window of the streaming scan. It grows (doubling) only when
/// a single frame outsizes it — never for WAL records, which are 40
/// bytes framed.
const SCAN_WINDOW: usize = 8 << 10;

/// Scans `WAL_FILE`, truncating any torn or corrupt tail in place so the
/// log is left scannable. A missing file is an empty log.
///
/// The scan is streaming: the file is pulled through one reused window
/// via [`Dir::read_at`] and each record is decoded from a borrowed
/// slice of it ([`frame::frames`]), so a multi-megabyte log costs one
/// window-sized buffer, not a whole-file materialization.
///
/// # Errors
/// [`StoreError::Io`] when the directory fails.
pub fn load(dir: &mut dyn Dir) -> Result<WalScan, StoreError> {
    let total = match dir.size(WAL_FILE) {
        Ok(n) => n,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(WalScan {
                writes: Vec::new(),
                truncated_bytes: 0,
                defect: None,
            })
        }
        Err(e) => return Err(e.into()),
    };
    let mut writes: Vec<ReplicatedWrite> = Vec::new();
    let mut buf = vec![0u8; SCAN_WINDOW];
    // File offset of `buf[0]`, valid bytes in the window, and the
    // window offset just past the last intact record.
    let mut start = 0u64;
    let mut in_buf = 0usize;
    let mut good;
    let defect = loop {
        while in_buf < buf.len() {
            let n = dir.read_at(WAL_FILE, start + in_buf as u64, &mut buf[in_buf..])?;
            if n == 0 {
                break;
            }
            in_buf += n;
        }
        let exhausted = in_buf < buf.len() || start + in_buf as u64 >= total;
        let mut it = frame::frames(&buf[..in_buf]);
        good = 0;
        let mut debris = false;
        // Not a `for` loop: `valid_len` is read between iterations, and
        // the iterator only counts *yielded* frames — a frame that
        // decodes wrong must stay out of the accepted prefix.
        #[allow(clippy::while_let_on_iterator)]
        while let Some(payload) = it.next() {
            let parsed = decode_write(payload);
            let contiguous = parsed.is_some_and(|w| {
                writes
                    .last()
                    .is_none_or(|prev: &ReplicatedWrite| w.epoch == prev.epoch + 1)
            });
            match parsed {
                Some(w) if contiguous => {
                    writes.push(w);
                    good = it.valid_len();
                }
                // A record that decodes wrong or skips an epoch is the
                // start of debris: cut here, like any other defect.
                _ => {
                    debris = true;
                    break;
                }
            }
        }
        if debris {
            break Some(TailDefect::BadCrc);
        }
        match it.defect() {
            None if exhausted => break None,
            None => {}
            Some(_) if it.incomplete() && !exhausted => {}
            Some(d) => break Some(d),
        }
        // Shift the unconsumed tail to the window front and read on.
        buf.copy_within(good..in_buf, 0);
        start += good as u64;
        in_buf -= good;
        if in_buf == buf.len() {
            // One frame outsizes the window (bounded by the header's
            // MAX_PAYLOAD_LEN check): grow and retry.
            buf.resize(buf.len() * 2, 0);
        }
    };
    let valid = start + good as u64;
    let truncated_bytes = usize::try_from(total.saturating_sub(valid)).expect("tail fits usize");
    if truncated_bytes > 0 {
        dir.truncate(WAL_FILE, valid)?;
        dir.sync()?;
    }
    Ok(WalScan {
        writes,
        truncated_bytes,
        defect,
    })
}

/// Frames one write onto `out` without allocating — the group-buffer
/// encoder ([`append_group`] lands the accumulated frames in one call).
pub fn encode_frame_into(out: &mut Vec<u8>, w: &ReplicatedWrite) {
    frame::encode_record_into(out, &encode_write(w));
}

/// Appends one write and syncs: when this returns, the write is durable
/// and counts as *acknowledged* for the recovery contract. (The
/// single-record commit group.)
///
/// # Errors
/// [`StoreError::Io`] when the directory fails.
pub fn append(dir: &mut dyn Dir, w: &ReplicatedWrite) -> Result<(), StoreError> {
    dir.append(WAL_FILE, &frame::encode_record(&encode_write(w)))?;
    dir.sync()?;
    Ok(())
}

/// Appends one pre-framed commit group and syncs: one byte-stream
/// append + one durability barrier for the whole group. When this
/// returns, every record in the group is acknowledged. An empty group
/// touches the directory not at all — the `max_records = 1`
/// bit-compatibility guarantee leans on that.
///
/// # Errors
/// [`StoreError::Io`] when the directory fails.
pub fn append_group(dir: &mut dyn Dir, frames: &[u8]) -> Result<(), StoreError> {
    if frames.is_empty() {
        return Ok(());
    }
    dir.append(WAL_FILE, frames)?;
    dir.sync()?;
    Ok(())
}

/// Rewrites the log to exactly `suffix` (the writes a fresh checkpoint
/// did not absorb), via temp file + atomic rename.
///
/// One sync, between the replace and the rename: it orders the temp
/// file's *bytes* before the rename makes them live, so a real
/// filesystem can never expose a renamed-but-torn log. No sync follows
/// the rename — if the rename itself is lost to a crash, the old log
/// is authoritative again, and every record the new log kept is also in
/// the old one (compaction only drops entries the just-installed
/// checkpoint absorbed, and the checkpoint install ends with its own
/// barrier). The kill-point sweep covers both orders.
///
/// # Errors
/// [`StoreError::Io`] when the directory fails.
pub fn compact(dir: &mut dyn Dir, suffix: &[ReplicatedWrite]) -> Result<(), StoreError> {
    let mut bytes = Vec::with_capacity(suffix.len() * (frame::HEADER_LEN + RECORD_PAYLOAD_LEN));
    for w in suffix {
        frame::encode_record_into(&mut bytes, &encode_write(w));
    }
    dir.replace(WAL_TMP, &bytes)?;
    dir.sync()?;
    dir.rename(WAL_TMP, WAL_FILE)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::dir::SimDir;

    fn w(epoch: u64) -> ReplicatedWrite {
        ReplicatedWrite {
            epoch,
            origin: (epoch % 3) as usize,
            address: epoch % 16,
            value: epoch * 7,
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let write = w(42);
        assert_eq!(decode_write(&encode_write(&write)), Some(write));
        assert_eq!(decode_write(b"short"), None);
    }

    #[test]
    fn append_then_load_roundtrips_and_missing_log_is_empty() {
        let mut d = SimDir::new();
        assert_eq!(load(&mut d).unwrap().writes, Vec::new());
        for e in 1..=5 {
            append(&mut d, &w(e)).unwrap();
        }
        let scan = load(&mut d).unwrap();
        assert_eq!(scan.writes, (1..=5).map(w).collect::<Vec<_>>());
        assert_eq!(scan.truncated_bytes, 0);
        assert_eq!(scan.defect, None);
    }

    #[test]
    fn torn_tail_is_truncated_in_place() {
        let mut d = SimDir::new();
        append(&mut d, &w(1)).unwrap();
        append(&mut d, &w(2)).unwrap();
        let full = d.len_of(WAL_FILE).unwrap();
        // Tear the third append mid-record.
        d.tear_next_write(frame::HEADER_LEN + 5);
        append(&mut d, &w(3)).unwrap();
        let scan = load(&mut d).unwrap();
        assert_eq!(scan.writes, vec![w(1), w(2)]);
        assert_eq!(scan.truncated_bytes, frame::HEADER_LEN + 5);
        assert!(scan.defect.is_some());
        // The truncation repaired the file: a second load is clean.
        assert_eq!(d.len_of(WAL_FILE).unwrap(), full);
        let again = load(&mut d).unwrap();
        assert_eq!(again.truncated_bytes, 0);
        assert_eq!(again.defect, None);
    }

    #[test]
    fn non_contiguous_epoch_cuts_the_log_there() {
        let mut d = SimDir::new();
        append(&mut d, &w(1)).unwrap();
        append(&mut d, &w(3)).unwrap(); // skips epoch 2: debris
        append(&mut d, &w(4)).unwrap();
        let scan = load(&mut d).unwrap();
        assert_eq!(scan.writes, vec![w(1)]);
        assert!(scan.truncated_bytes > 0);
        assert_eq!(
            load(&mut d).unwrap().writes,
            vec![w(1)],
            "truncation left a clean contiguous log"
        );
    }

    #[test]
    fn compact_keeps_exactly_the_suffix() {
        let mut d = SimDir::new();
        for e in 1..=6 {
            append(&mut d, &w(e)).unwrap();
        }
        compact(&mut d, &[w(5), w(6)]).unwrap();
        assert!(!d.exists(WAL_TMP));
        let scan = load(&mut d).unwrap();
        assert_eq!(scan.writes, vec![w(5), w(6)]);
        compact(&mut d, &[]).unwrap();
        assert_eq!(load(&mut d).unwrap().writes, Vec::new());
    }

    #[test]
    fn compact_syncs_once_between_replace_and_rename() {
        use crate::store::dir::DirOp;
        let mut d = SimDir::new();
        append(&mut d, &w(1)).unwrap();
        let at = d.journal().len();
        compact(&mut d, &[w(1)]).unwrap();
        let ops: Vec<&DirOp> = d.journal()[at..].iter().collect();
        assert!(
            matches!(
                ops[..],
                [DirOp::Replace { .. }, DirOp::Sync, DirOp::Rename { .. }]
            ),
            "exactly one barrier, ordering bytes before the rename: {ops:?}"
        );
    }

    #[test]
    fn a_commit_group_lands_as_one_append_and_one_sync() {
        use crate::store::dir::DirOp;
        let mut d = SimDir::new();
        let mut frames = Vec::new();
        for e in 1..=3 {
            encode_frame_into(&mut frames, &w(e));
        }
        append_group(&mut d, &frames).unwrap();
        assert!(
            matches!(
                d.journal(),
                [DirOp::Append { name, bytes }, DirOp::Sync]
                    if name == WAL_FILE
                        && bytes.len() == 3 * (frame::HEADER_LEN + RECORD_PAYLOAD_LEN)
            ),
            "got {:?}",
            d.journal()
        );
        assert_eq!(
            load(&mut d).unwrap().writes,
            (1..=3).map(w).collect::<Vec<_>>()
        );
        let before = d.journal().len();
        append_group(&mut d, &[]).unwrap();
        assert_eq!(
            d.journal().len(),
            before,
            "an empty group must not touch the directory"
        );
    }

    #[test]
    fn a_group_torn_mid_flush_keeps_its_completed_prefix() {
        let mut d = SimDir::new();
        let mut frames = Vec::new();
        for e in 1..=4 {
            encode_frame_into(&mut frames, &w(e));
        }
        // The tear lands inside record 3: records 1-2 survive whole.
        d.tear_next_write(2 * (frame::HEADER_LEN + RECORD_PAYLOAD_LEN) + 11);
        append_group(&mut d, &frames).unwrap();
        let scan = load(&mut d).unwrap();
        assert_eq!(scan.writes, vec![w(1), w(2)]);
        assert_eq!(scan.truncated_bytes, 11);
        assert!(scan.defect.is_some());
    }

    #[test]
    fn streaming_scan_crosses_window_boundaries() {
        // Enough records that the log spans several scan windows, with
        // frame boundaries landing at every alignment relative to the
        // window edge.
        let mut d = SimDir::new();
        let mut frames = Vec::new();
        let count = (3 * SCAN_WINDOW) / (frame::HEADER_LEN + RECORD_PAYLOAD_LEN) + 7;
        for e in 1..=count as u64 {
            encode_frame_into(&mut frames, &w(e));
        }
        append_group(&mut d, &frames).unwrap();
        let scan = load(&mut d).unwrap();
        assert_eq!(scan.writes.len(), count);
        assert_eq!(scan.writes.last(), Some(&w(count as u64)));
        assert_eq!(scan.truncated_bytes, 0);
        // A tear far past the first window is still found and repaired.
        d.tear_next_write(frame::HEADER_LEN + 3);
        append(&mut d, &w(count as u64 + 1)).unwrap();
        let scan = load(&mut d).unwrap();
        assert_eq!(scan.writes.len(), count);
        assert_eq!(scan.truncated_bytes, frame::HEADER_LEN + 3);
    }

    #[test]
    fn streaming_scan_grows_past_an_oversized_frame() {
        // A single frame larger than the initial window must not wedge
        // the scan: the window doubles until the frame fits. The WAL
        // never writes such frames, but the scanner is shared plumbing.
        let mut d = SimDir::new();
        let big = vec![0xA5u8; 2 * SCAN_WINDOW];
        d.append(WAL_FILE, &frame::encode_record(&big)).unwrap();
        let scan = load(&mut d).unwrap();
        // The record decodes as a frame but not as a WAL write: debris.
        assert_eq!(scan.writes, Vec::new());
        assert_eq!(scan.defect, Some(TailDefect::BadCrc));
        assert_eq!(scan.truncated_bytes, frame::HEADER_LEN + 2 * SCAN_WINDOW);
    }
}
