//! Router-tree indexing for Bucket-Brigade and Fat-Tree QRAM.
//!
//! Routers are addressed by the paper's 3-tuple `(i, j, k)`:
//! level `i ∈ [0, n−1]`, node index `j ∈ [0, 2^i − 1]`, and copy index
//! `k ∈ [0, n−i−1]` identifying which multiplexed router inside node
//! `(i, j)` — equivalently, which *sub-component QRAM* (Fig. 5) the router
//! belongs to. Sub-QRAM `q` owns exactly one router in every node with
//! `i ≤ q`, namely copy `k = q − i`.

use qram_metrics::Capacity;
use std::fmt;

/// A node `(i, j)` of the (fat) binary tree: level `i`, index `j` within
/// the level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId {
    /// Tree level, root = 0.
    pub level: u32,
    /// Index within the level, `0 ≤ j < 2^level`.
    pub index: u64,
}

impl NodeId {
    /// The root node `(0, 0)`.
    pub const ROOT: NodeId = NodeId { level: 0, index: 0 };

    /// Creates a node id.
    ///
    /// # Panics
    ///
    /// Panics if `index ≥ 2^level`.
    #[must_use]
    pub fn new(level: u32, index: u64) -> Self {
        assert!(
            level >= 64 || index < (1u64 << level),
            "node index {index} out of range for level {level}"
        );
        NodeId { level, index }
    }

    /// The parent node, or `None` for the root.
    #[must_use]
    pub fn parent(self) -> Option<NodeId> {
        (self.level > 0).then(|| NodeId::new(self.level - 1, self.index / 2))
    }

    /// The left child `(i+1, 2j)`.
    #[must_use]
    pub fn left_child(self) -> NodeId {
        NodeId::new(self.level + 1, self.index * 2)
    }

    /// The right child `(i+1, 2j+1)`.
    #[must_use]
    pub fn right_child(self) -> NodeId {
        NodeId::new(self.level + 1, self.index * 2 + 1)
    }

    /// True when this node is the left child of its parent.
    #[must_use]
    pub fn is_left_child(self) -> bool {
        self.level > 0 && self.index.is_multiple_of(2)
    }

    /// The node on the root-to-leaf path to `address` at this node's level.
    ///
    /// Address bits are consumed MSB-first: bit `n−1−i` of the address
    /// selects the branch taken at level `i`.
    #[must_use]
    pub fn on_path(level: u32, address: u64, address_width: u32) -> NodeId {
        assert!(level < address_width, "level {level} beyond tree depth");
        let index = address >> (address_width - level);
        NodeId::new(level, index)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.level, self.index)
    }
}

/// A multiplexed router `(i, j, k)` inside a Fat-Tree node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RouterId {
    /// The node containing this router.
    pub node: NodeId,
    /// Copy index within the node, `0 ≤ k < n − i`.
    pub copy: u32,
}

impl RouterId {
    /// Creates a router id.
    #[must_use]
    pub fn new(node: NodeId, copy: u32) -> Self {
        RouterId { node, copy }
    }

    /// The sub-component QRAM (Fig. 5) this router belongs to:
    /// `q = i + k`.
    #[must_use]
    pub fn subqram(self) -> u32 {
        self.node.level + self.copy
    }
}

impl fmt::Display for RouterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({}, {}, {})",
            self.node.level, self.node.index, self.copy
        )
    }
}

/// Static geometry of a QRAM router tree of a given capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeShape {
    capacity: Capacity,
}

impl TreeShape {
    /// Creates the tree shape for a capacity.
    #[must_use]
    pub fn new(capacity: Capacity) -> Self {
        TreeShape { capacity }
    }

    /// The memory capacity `N`.
    #[must_use]
    pub fn capacity(&self) -> Capacity {
        self.capacity
    }

    /// The tree depth / address width `n = log₂ N`.
    #[must_use]
    pub fn depth(&self) -> u32 {
        self.capacity.address_width()
    }

    /// Number of nodes: `N − 1` for a complete binary tree.
    #[must_use]
    pub fn node_count(&self) -> u64 {
        self.capacity.get() - 1
    }

    /// Routers per Fat-Tree node at level `i`: `n − i`.
    ///
    /// # Panics
    ///
    /// Panics if `level ≥ n`.
    #[must_use]
    pub fn routers_in_node(&self, level: u32) -> u32 {
        assert!(level < self.depth(), "level {level} beyond tree depth");
        self.depth() - level
    }

    /// Total Fat-Tree router count `Σᵢ (n−i)·2^i = 2N − 2 − n` (§4.1).
    #[must_use]
    pub fn fat_tree_router_count(&self) -> u64 {
        2 * self.capacity.get() - 2 - u64::from(self.depth())
    }

    /// Bucket-brigade router count `N − 1` (one router per node).
    #[must_use]
    pub fn bucket_brigade_router_count(&self) -> u64 {
        self.capacity.get() - 1
    }

    /// Number of parallel wires between a node at `level` and each of its
    /// children: equals the child's router count `n − level − 1`; the root
    /// has `n` external input wires (§4.1).
    ///
    /// # Panics
    ///
    /// Panics if `level + 1 ≥ n` (leaf nodes connect to classical cells by
    /// a single wire).
    #[must_use]
    pub fn wires_to_child(&self, level: u32) -> u32 {
        assert!(
            level + 1 < self.depth(),
            "level {level} nodes have leaf children"
        );
        self.depth() - level - 1
    }

    /// External (escape) wires entering the root: `n`.
    #[must_use]
    pub fn root_wires(&self) -> u32 {
        self.depth()
    }

    /// Iterates over all node ids in breadth-first order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        let depth = self.depth();
        (0..depth).flat_map(|level| (0..(1u64 << level)).map(move |j| NodeId::new(level, j)))
    }

    /// Iterates over all Fat-Tree routers `(i, j, k)`.
    pub fn routers(&self) -> impl Iterator<Item = RouterId> + '_ {
        let depth = self.depth();
        self.nodes()
            .flat_map(move |node| (0..(depth - node.level)).map(move |k| RouterId::new(node, k)))
    }

    /// The routers making up sub-component QRAM `q` (Fig. 5): one per node
    /// at levels `0..=q`.
    ///
    /// # Panics
    ///
    /// Panics if `q ≥ n`.
    pub fn subqram_routers(&self, q: u32) -> impl Iterator<Item = RouterId> + '_ {
        assert!(q < self.depth(), "sub-QRAM index {q} out of range");
        self.nodes()
            .filter(move |node| node.level <= q)
            .map(move |node| RouterId::new(node, q - node.level))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cap(n: u64) -> Capacity {
        Capacity::new(n).unwrap()
    }

    #[test]
    fn parent_child_relationships() {
        let node = NodeId::new(2, 3);
        assert_eq!(node.parent(), Some(NodeId::new(1, 1)));
        assert_eq!(node.left_child(), NodeId::new(3, 6));
        assert_eq!(node.right_child(), NodeId::new(3, 7));
        assert_eq!(NodeId::ROOT.parent(), None);
        assert!(!node.is_left_child());
        assert!(NodeId::new(2, 2).is_left_child());
    }

    #[test]
    fn path_follows_address_bits_msb_first() {
        // Address 0b101 in a depth-3 tree: right at root, left, right.
        let n = 3;
        assert_eq!(NodeId::on_path(0, 0b101, n), NodeId::ROOT);
        assert_eq!(NodeId::on_path(1, 0b101, n), NodeId::new(1, 1));
        assert_eq!(NodeId::on_path(2, 0b101, n), NodeId::new(2, 2));
    }

    #[test]
    fn path_consistency_with_children() {
        // Each path node must be a child of the previous one.
        let width = 5;
        for address in 0..32u64 {
            let mut prev = NodeId::ROOT;
            for level in 1..width {
                let here = NodeId::on_path(level, address, width);
                assert_eq!(here.parent(), Some(prev));
                prev = here;
            }
        }
    }

    #[test]
    fn router_counts_match_paper() {
        // Fat-Tree router count = 2N − 2 − n, "only doubling" BB's N − 1.
        for n in [8u64, 32, 1024] {
            let shape = TreeShape::new(cap(n));
            let expected = 2 * n - 2 - u64::from(shape.depth());
            assert_eq!(shape.fat_tree_router_count(), expected);
            assert_eq!(shape.routers().count() as u64, expected);
            assert_eq!(shape.bucket_brigade_router_count(), n - 1);
        }
    }

    #[test]
    fn routers_in_node_decrease_with_level() {
        let shape = TreeShape::new(cap(32)); // n = 5
        assert_eq!(shape.routers_in_node(0), 5);
        assert_eq!(shape.routers_in_node(4), 1);
    }

    #[test]
    fn wires_match_figure_3() {
        // N = 32: root has 5 external wires; node-to-child wires shrink by
        // one per level until a single wire above the leaves.
        let shape = TreeShape::new(cap(32));
        assert_eq!(shape.root_wires(), 5);
        assert_eq!(shape.wires_to_child(0), 4);
        assert_eq!(shape.wires_to_child(3), 1);
    }

    #[test]
    fn subqram_structure() {
        let shape = TreeShape::new(cap(8)); // n = 3
                                            // Sub-QRAM 0: just the root's copy 0.
        let q0: Vec<RouterId> = shape.subqram_routers(0).collect();
        assert_eq!(q0, vec![RouterId::new(NodeId::ROOT, 0)]);
        // Sub-QRAM 2 (full size): one router per node, copy = 2 − level.
        let q2: Vec<RouterId> = shape.subqram_routers(2).collect();
        assert_eq!(q2.len() as u64, shape.node_count());
        for r in &q2 {
            assert_eq!(r.copy, 2 - r.node.level);
            assert_eq!(r.subqram(), 2);
        }
    }

    #[test]
    fn subqrams_partition_all_routers() {
        let shape = TreeShape::new(cap(16));
        let total: usize = (0..shape.depth())
            .map(|q| shape.subqram_routers(q).count())
            .sum();
        assert_eq!(total as u64, shape.fat_tree_router_count());
    }

    #[test]
    fn node_iteration_is_breadth_first_and_complete() {
        let shape = TreeShape::new(cap(8));
        let nodes: Vec<NodeId> = shape.nodes().collect();
        assert_eq!(nodes.len() as u64, shape.node_count());
        assert_eq!(nodes[0], NodeId::ROOT);
        assert!(nodes.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId::new(1, 1).to_string(), "(1, 1)");
        assert_eq!(RouterId::new(NodeId::new(1, 1), 3).to_string(), "(1, 1, 3)");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_node_index_panics() {
        let _ = NodeId::new(1, 2);
    }
}
