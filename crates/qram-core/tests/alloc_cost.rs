//! Allocation-regression pin on the columnar batch kernel: a memoized
//! batch must allocate `O(1)` per memo hit and `O(distinct address sets)`
//! per batch — *not* `O(1)` per query. An earlier revision materialized a
//! fresh `terms: Vec<_>` per query even on memo hits, so a 1024-query
//! batch over 16 distinct addresses paid ~1024 heap allocations; the
//! structure-of-arrays kernel writes every term into one shared column
//! and hands out `Arc`-backed views, so the allocation count is flat in
//! the batch size.
//!
//! One `#[test]` only: the counting allocator is process-global, and a
//! concurrently running test would perturb the counts.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use qram_core::{FatTreeQram, QramModel};
use qram_metrics::Capacity;
use qsim::branch::{AddressState, ClassicalMemory};

/// Counts every allocation and reallocation; frees are not counted (the
/// pin is on allocation *work*, not live bytes).
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn columnar_batch_allocates_per_distinct_set_not_per_query() {
    let capacity = Capacity::new(16).unwrap();
    let qram = FatTreeQram::new(capacity);
    let memory = ClassicalMemory::zeros(16);
    let batch = |queries: u64| -> Vec<AddressState> {
        (0..queries)
            .map(|i| AddressState::classical(4, i % 16).unwrap())
            .collect()
    };
    let small = batch(256);
    let large = batch(1024);

    // Warm every lazy structure the first batch builds: the interned
    // stream, the compiled plan, and the conflict-validation memo.
    qram.execute_queries(&memory, &small, &[]).unwrap();
    qram.execute_queries(&memory, &large, &[]).unwrap();

    let measure = |addresses: &[AddressState]| {
        let before = allocations();
        let outs = qram.execute_queries(&memory, addresses, &[]).unwrap();
        let after = allocations();
        assert_eq!(outs.len(), addresses.len());
        after - before
    };

    let small_allocs = measure(&small);
    let large_allocs = measure(&large);

    // 4× the queries over the same 16 distinct address sets: the columnar
    // kernel's count may grow by a few `Vec` doublings of its batch-sized
    // columns, but nowhere near the 768 extra queries — the per-query-Vec
    // regression adds one allocation per query.
    assert!(
        large_allocs <= small_allocs + 64,
        "4x batch grew allocations {small_allocs} -> {large_allocs}; \
         memo hits are allocating per query"
    );
    // Absolute pin: constant batch scaffolding + O(16 distinct sets).
    assert!(
        large_allocs <= 256,
        "1024-query batch made {large_allocs} allocations"
    );
}
