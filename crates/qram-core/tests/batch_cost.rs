//! Regression pin on batched-execution scheduling cost: a `B`-query batch
//! must schedule in `O(B)` — in fact `O(1)` — [`PipelineSchedule`]
//! constructions. An earlier revision rebuilt a schedule inside the
//! retrieval-order sort comparator *and* once more per executed query,
//! costing `O(B log B)` constructions per batch.
//!
//! [`PipelineSchedule`]: qram_core::PipelineSchedule

use qram_core::pipeline::schedule_construction_count;
use qram_core::{
    execute_batch_rowwise, execute_batch_traced, sub_batch_split_count, FatTreeQram, QramModel,
    ShardedQram,
};
use qram_metrics::Capacity;
use qsim::branch::{AddressState, ClassicalMemory};

#[test]
fn batch_of_1024_queries_schedules_in_linear_constructions() {
    let capacity = Capacity::new(16).unwrap();
    let qram = FatTreeQram::new(capacity);
    let memory = ClassicalMemory::zeros(16);
    let addresses: Vec<AddressState> = (0..1024u64)
        .map(|i| AddressState::classical(4, i % 16).unwrap())
        .collect();

    let before = schedule_construction_count();
    let outs = qram.execute_queries(&memory, &addresses, &[]).unwrap();
    let constructed = schedule_construction_count() - before;

    assert_eq!(outs.len(), 1024);
    // Retrieval layers come from the closed form (no schedule), and the
    // batch builds exactly one schedule for conflict validation. Allow a
    // little slack but stay far below one construction per query — the
    // O(B log B) regression built ~11k schedules for this batch.
    assert!(
        constructed <= 8,
        "1024-query batch constructed {constructed} PipelineSchedules"
    );
}

#[test]
fn sharded_batch_is_also_construction_frugal() {
    let capacity = Capacity::new(16).unwrap();
    let qram = ShardedQram::fat_tree(capacity, 4);
    let memory = ClassicalMemory::zeros(16);
    let addresses: Vec<AddressState> = (0..512u64)
        .map(|i| AddressState::classical(4, i % 16).unwrap())
        .collect();

    let before = schedule_construction_count();
    let outs = qram.execute_queries(&memory, &addresses, &[]).unwrap();
    let constructed = schedule_construction_count() - before;

    assert_eq!(outs.len(), 512);
    assert!(
        constructed <= 8,
        "512-query sharded batch constructed {constructed} PipelineSchedules"
    );
}

/// A batch whose every query routes to a single shard must never build
/// the `K`-entry per-shard sub-batch split: the single-occupied-shard
/// fast path runs the one local sub-state directly. A genuinely
/// cross-shard superposition still splits. (Asserted on the interpreter
/// reference path — the columnar kernel never splits at all.)
#[test]
fn single_shard_batches_skip_the_sub_batch_split() {
    let capacity = Capacity::new(64).unwrap(); // width 6, shard_bits 2
    let qram = ShardedQram::fat_tree(capacity, 4);
    let memory = ClassicalMemory::zeros(64);
    // Four-branch superpositions whose addresses all share their low two
    // bits (≡ 1 mod 4): every branch of every query lives in shard 1.
    let addresses: Vec<AddressState> = (0..32u64)
        .map(|i| {
            let base = 1 + 4 * (i % 3);
            let branches: Vec<u64> = (0..4).map(|b| base + 16 * b).collect();
            AddressState::uniform(6, &branches).unwrap()
        })
        .collect();

    let before = sub_batch_split_count();
    let outs = qram
        .execute_queries_sequential(&memory, &addresses, &[])
        .unwrap();
    let splits = sub_batch_split_count() - before;
    assert_eq!(outs.len(), 32);
    assert_eq!(
        splits, 0,
        "single-shard batch built {splits} per-shard sub-batch splits"
    );

    // Control: a superposition spanning all four shards must split.
    let wide = AddressState::uniform(6, &[0, 1, 2, 3]).unwrap();
    let before = sub_batch_split_count();
    qram.execute_queries_sequential(&memory, std::slice::from_ref(&wide), &[])
        .unwrap();
    assert!(
        sub_batch_split_count() - before > 0,
        "cross-shard query skipped the sub-batch split"
    );
}

/// The packed-image bit-parallel gather only engages when the cell array
/// spills the L1-resident threshold (4096 cells), so the small-capacity
/// property tests never reach it. Pin it bit-equal to the row-wise memo
/// path at `N = 8192` (monolith image) and `N = 16384, K = 2` (per-shard
/// image, all queries on one shard so its gather count clears the
/// amortization bar).
#[test]
fn bit_parallel_image_gather_matches_the_row_path() {
    let n = 8192u64;
    let qram = FatTreeQram::new(Capacity::new(n).unwrap());
    let cells: Vec<u64> = (0..n).map(|i| (i * 11 + 5) % 2).collect();
    let memory = ClassicalMemory::from_words(1, &cells).unwrap();
    // 2048 gathers over 8192 cells: >= cells/8, so the image path engages.
    let addresses: Vec<AddressState> = (0..2048u64)
        .map(|i| AddressState::classical(13, i * 37 % n).unwrap())
        .collect();
    let (col, col_stats) = execute_batch_traced(&qram, &memory, &addresses, &[]).unwrap();
    let (row, row_stats) = execute_batch_rowwise(&qram, &memory, &addresses, &[]).unwrap();
    assert_eq!(col, row);
    assert_eq!(col_stats, row_stats);

    // Sharded: all-even addresses route every gather to shard 0, whose
    // 8192-cell memory re-packs behind the same threshold.
    let sharded = ShardedQram::fat_tree(Capacity::new(2 * n).unwrap(), 2);
    let cells: Vec<u64> = (0..2 * n).map(|i| (i * 3 + 1) % 2).collect();
    let memory = ClassicalMemory::from_words(1, &cells).unwrap();
    let addresses: Vec<AddressState> = (0..2048u64)
        .map(|i| AddressState::classical(14, i * 74 % (2 * n)).unwrap())
        .collect();
    let fast = sharded.execute_queries(&memory, &addresses, &[]).unwrap();
    let reference = sharded
        .execute_queries_sequential(&memory, &addresses, &[])
        .unwrap();
    assert_eq!(fast, reference);
}
