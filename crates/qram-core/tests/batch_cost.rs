//! Regression pin on batched-execution scheduling cost: a `B`-query batch
//! must schedule in `O(B)` — in fact `O(1)` — [`PipelineSchedule`]
//! constructions. An earlier revision rebuilt a schedule inside the
//! retrieval-order sort comparator *and* once more per executed query,
//! costing `O(B log B)` constructions per batch.
//!
//! [`PipelineSchedule`]: qram_core::PipelineSchedule

use qram_core::pipeline::schedule_construction_count;
use qram_core::{FatTreeQram, QramModel, ShardedQram};
use qram_metrics::Capacity;
use qsim::branch::{AddressState, ClassicalMemory};

#[test]
fn batch_of_1024_queries_schedules_in_linear_constructions() {
    let capacity = Capacity::new(16).unwrap();
    let qram = FatTreeQram::new(capacity);
    let memory = ClassicalMemory::zeros(16);
    let addresses: Vec<AddressState> = (0..1024u64)
        .map(|i| AddressState::classical(4, i % 16).unwrap())
        .collect();

    let before = schedule_construction_count();
    let outs = qram.execute_queries(&memory, &addresses, &[]).unwrap();
    let constructed = schedule_construction_count() - before;

    assert_eq!(outs.len(), 1024);
    // Retrieval layers come from the closed form (no schedule), and the
    // batch builds exactly one schedule for conflict validation. Allow a
    // little slack but stay far below one construction per query — the
    // O(B log B) regression built ~11k schedules for this batch.
    assert!(
        constructed <= 8,
        "1024-query batch constructed {constructed} PipelineSchedules"
    );
}

#[test]
fn sharded_batch_is_also_construction_frugal() {
    let capacity = Capacity::new(16).unwrap();
    let qram = ShardedQram::fat_tree(capacity, 4);
    let memory = ClassicalMemory::zeros(16);
    let addresses: Vec<AddressState> = (0..512u64)
        .map(|i| AddressState::classical(4, i % 16).unwrap())
        .collect();

    let before = schedule_construction_count();
    let outs = qram.execute_queries(&memory, &addresses, &[]).unwrap();
    let constructed = schedule_construction_count() - before;

    assert_eq!(outs.len(), 512);
    assert!(
        constructed <= 8,
        "512-query sharded batch constructed {constructed} PipelineSchedules"
    );
}
