//! Gate-level validation: the generated instruction stream, executed on a
//! *genuine mixed-radix quantum simulation* with three-level routers
//! (|W⟩/|0⟩/|1⟩) and dual-rail wires (vacuum/0/1), reproduces Eq. (1) on a
//! capacity-4 tree — including the W-state semantics that the classical
//! branch executor abstracts away.
//!
//! Tree sites (capacity N = 4, n = 2):
//!
//! ```text
//!   ext_a1 ext_a2 ext_bus          (external qubits, dim 2)
//!        \   |   /
//!          in0                     (escape wire into the root, dual-rail)
//!          [r0]                    (root router qutrit)
//!       out0L   out0R              (root outputs = level-1 inputs)
//!       [r1L]   [r1R]              (level-1 router qutrits)
//!    LL    LR  RL    RR            (leaf wires above the 4 memory cells)
//! ```
//!
//! TRANSPORT between the root outputs and the level-1 inputs is modelled as
//! wire identity (the two ends of one physical wire), which preserves query
//! semantics while keeping the Hilbert space at 8·3¹⁰ ≈ 4.7·10⁵ amplitudes.

use qram_core::ops::{Op, QubitTag};
use qram_core::query_ops::{bb_query_layers, fat_tree_query_layers, QueryLayer};
use qsim::qudit::{data_level, router_level, QuditState};
use qsim::Complex;

const EXT_A1: usize = 0;
const EXT_A2: usize = 1;
const EXT_BUS: usize = 2;
const IN0: usize = 3;
const OUT0L: usize = 4;
const OUT0R: usize = 5;
const LEAF_LL: usize = 6;
const LEAF_LR: usize = 7;
const LEAF_RL: usize = 8;
const LEAF_RR: usize = 9;
const R0: usize = 10;
const R1L: usize = 11;
const R1R: usize = 12;

fn dims() -> Vec<u8> {
    vec![2, 2, 2, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3]
}

fn fresh_tree() -> QuditState {
    QuditState::new(&dims())
}

fn ext_site(tag: QubitTag) -> usize {
    match tag {
        QubitTag::Address(0) => EXT_A1,
        QubitTag::Address(1) => EXT_A2,
        QubitTag::Bus => EXT_BUS,
        other => panic!("no site for {other:?} in a depth-2 tree"),
    }
}

/// Applies one instruction of the depth-2 stream as a physical operation.
fn apply_op(psi: &mut QuditState, op: Op, memory: &[u64; 4]) {
    match op {
        Op::Load(tag) | Op::Unload(tag) => psi.load_dual_rail(ext_site(tag), IN0),
        Op::Store(0) | Op::Unstore(0) => psi.store_dual_rail(R0, IN0),
        Op::Store(1) | Op::Unstore(1) => {
            psi.store_dual_rail(R1L, OUT0L);
            psi.store_dual_rail(R1R, OUT0R);
        }
        Op::Route(0) | Op::Unroute(0) => {
            psi.controlled_swap(R0, router_level::LEFT, IN0, OUT0L);
            psi.controlled_swap(R0, router_level::RIGHT, IN0, OUT0R);
        }
        Op::Route(1) | Op::Unroute(1) => {
            psi.controlled_swap(R1L, router_level::LEFT, OUT0L, LEAF_LL);
            psi.controlled_swap(R1L, router_level::RIGHT, OUT0L, LEAF_LR);
            psi.controlled_swap(R1R, router_level::LEFT, OUT0R, LEAF_RL);
            psi.controlled_swap(R1R, router_level::RIGHT, OUT0R, LEAF_RR);
        }
        // The two ends of one physical wire — identity in this model.
        Op::Transport(1) | Op::Untransport(1) => {}
        Op::ClassicalGates => {
            // Classically controlled flips on occupied leaves only (vacuum
            // is untouched) — no quantum control needed, exactly as on
            // hardware.
            for (leaf, cell) in [(LEAF_LL, 0usize), (LEAF_LR, 1), (LEAF_RL, 2), (LEAF_RR, 3)] {
                if memory[cell] == 1 {
                    psi.flip_dual_rail(leaf);
                }
            }
        }
        // Local swap steps permute sub-QRAM copies; with a single copy per
        // node in this gate-level model they are identities on the state.
        Op::SwapStepI | Op::SwapStepII => {}
        other => panic!("unexpected op {other:?} for depth-2 tree"),
    }
}

fn run_stream(layers: &[QueryLayer], psi: &mut QuditState, memory: &[u64; 4]) {
    for layer in layers {
        // Ops within a layer act on disjoint physical cells and commute.
        // Because this model merges the two ends of each transport wire
        // into one site, apply STOREs first and UNSTOREs last so a wire is
        // never transiently double-occupied.
        let ordered = layer
            .ops
            .iter()
            .filter(|op| matches!(op, Op::Store(_)))
            .chain(
                layer
                    .ops
                    .iter()
                    .filter(|op| !matches!(op, Op::Store(_) | Op::Unstore(_))),
            )
            .chain(layer.ops.iter().filter(|op| matches!(op, Op::Unstore(_))));
        for &op in ordered {
            apply_op(psi, op, memory);
        }
    }
}

/// The expected Eq. (1) configuration for a classical address: externals
/// carry (a1, a2, x_a), everything else vacuum/W.
fn expected_levels(a1: u8, a2: u8, data: u8) -> Vec<u8> {
    let mut levels = vec![0u8; 13];
    levels[EXT_A1] = a1;
    levels[EXT_A2] = a2;
    levels[EXT_BUS] = data;
    for wire in [IN0, OUT0L, OUT0R, LEAF_LL, LEAF_LR, LEAF_RL, LEAF_RR] {
        levels[wire] = data_level::VACUUM;
    }
    for router in [R0, R1L, R1R] {
        levels[router] = router_level::WAIT;
    }
    levels
}

fn hadamard() -> Vec<Vec<Complex>> {
    let s = Complex::real(std::f64::consts::FRAC_1_SQRT_2);
    vec![vec![s, s], vec![s, -s]]
}

#[test]
fn classical_addresses_retrieve_correct_cells() {
    let memory = [1u64, 0, 0, 1];
    let layers = bb_query_layers(2);
    for a in 0..4u8 {
        let (a1, a2) = (a >> 1, a & 1);
        let mut psi = fresh_tree();
        // Prepare the address on the external qubits.
        if a1 == 1 {
            psi.apply_gate(EXT_A1, &flip());
        }
        if a2 == 1 {
            psi.apply_gate(EXT_A2, &flip());
        }
        run_stream(&layers, &mut psi, &memory);
        let data = u8::try_from(memory[a as usize]).unwrap();
        assert_eq!(
            psi.dominant_levels(),
            expected_levels(a1, a2, data),
            "address {a}"
        );
        assert!((psi.norm() - 1.0).abs() < 1e-10);
    }
}

#[test]
fn superposed_query_is_eq1_exactly_with_w_state_routers() {
    // |+⟩|+⟩ address ⊗ |0⟩ bus: the full uniform query.
    let memory = [1u64, 0, 1, 1];
    let mut psi = fresh_tree();
    psi.apply_gate(EXT_A1, &hadamard());
    psi.apply_gate(EXT_A2, &hadamard());
    run_stream(&bb_query_layers(2), &mut psi, &memory);
    // Each branch returns its own cell, with all tree sites disentangled
    // (vacuum wires, waiting routers) — probability ¼ per branch.
    for a in 0..4u8 {
        let (a1, a2) = (a >> 1, a & 1);
        let data = u8::try_from(memory[a as usize]).unwrap();
        let p = psi.probability_of(&expected_levels(a1, a2, data));
        assert!(
            (p - 0.25).abs() < 1e-10,
            "address {a}: probability {p} (tree left entangled?)"
        );
    }
    assert!((psi.norm() - 1.0).abs() < 1e-10);
}

#[test]
fn fat_tree_stream_has_identical_gate_level_semantics() {
    // The Fat-Tree stream adds swap steps (identity at one copy per node)
    // and relocates retrieval into a swap layer; the unitary outcome must
    // equal the BB stream's.
    let memory = [0u64, 1, 1, 0];
    let mut bb = fresh_tree();
    bb.apply_gate(EXT_A1, &hadamard());
    bb.apply_gate(EXT_A2, &hadamard());
    let mut ft = bb.clone();
    run_stream(&bb_query_layers(2), &mut bb, &memory);
    run_stream(&fat_tree_query_layers(2), &mut ft, &memory);
    let overlap = bb.inner(&ft);
    assert!(
        overlap.approx_eq(Complex::ONE, 1e-10),
        "BB and Fat-Tree streams disagree: overlap {overlap}"
    );
}

#[test]
fn partial_superposition_leaves_unqueried_cells_untouched() {
    // Address (|00⟩ + |10⟩)/√2 (a2 fixed to 0): only cells 0 and 2 are
    // visited; leaves LR/RR must stay vacuum in every branch.
    let memory = [1u64, 1, 0, 1];
    let mut psi = fresh_tree();
    psi.apply_gate(EXT_A1, &hadamard());
    run_stream(&bb_query_layers(2), &mut psi, &memory);
    let p00 = psi.probability_of(&expected_levels(0, 0, 1)); // x₀ = 1
    let p10 = psi.probability_of(&expected_levels(1, 0, 0)); // x₂ = 0
    assert!((p00 - 0.5).abs() < 1e-10);
    assert!((p10 - 0.5).abs() < 1e-10);
}

fn flip() -> Vec<Vec<Complex>> {
    vec![
        vec![Complex::ZERO, Complex::ONE],
        vec![Complex::ONE, Complex::ZERO],
    ]
}
