//! Bit-compatibility anchor for group commit: a store whose commit
//! groups hold exactly one record must be indistinguishable — ack by
//! ack, journal op by journal op, WAL byte by WAL byte — from the
//! default per-record store, across seeded workloads that interleave
//! writes with crash-and-reopen cycles.
//!
//! This pins the contract that group commit is *purely* a batching
//! knob: at `max_records = 1` the buffering path degenerates to the
//! original append-and-sync sequence, so turning the knob can never
//! change what is on disk, only when syncs are paid.

use proptest::prelude::*;
use qram_core::store::{CheckpointPolicy, DurableFleet, GroupCommitPolicy, SimDir, WAL_FILE};
use qram_core::ReplicatedWrite;
use qsim::branch::ClassicalMemory;

const CELLS: u64 = 16;
const BUS: u32 = 16;

fn base() -> ClassicalMemory {
    ClassicalMemory::from_words(BUS, &(0..CELLS).collect::<Vec<u64>>()).expect("valid base")
}

/// Decodes one workload step. The vendored proptest has no tuple
/// strategies, so each u64 packs the step kind and its payload:
/// `0 mod 8` is a crash-and-reopen, anything else a write whose
/// address and value derive from the higher bits.
enum Step {
    Write { address: u64, value: u64 },
    Crash,
}

fn decode(op: u64) -> Step {
    if op.is_multiple_of(8) {
        Step::Crash
    } else {
        Step::Write {
            address: (op >> 3) % CELLS,
            value: (op >> 7) % (1 << BUS),
        }
    }
}

fn journal_of(store: &mut DurableFleet) -> Vec<qram_core::store::DirOp> {
    store
        .dir_mut()
        .as_any_mut()
        .downcast_mut::<SimDir>()
        .expect("equivalence stores run on SimDir")
        .journal()
        .to_vec()
}

fn wal_bytes(store: &mut DurableFleet) -> Vec<u8> {
    store.dir_mut().read(WAL_FILE).unwrap_or_default()
}

proptest! {
    #[test]
    fn a_one_record_group_is_bit_identical_to_the_per_record_path(
        ops in prop::collection::vec(0u64..1 << 24, 1..40),
        every in 2u64..6,
    ) {
        let policy = CheckpointPolicy::every(every);
        // Reference: the default per-record store, untouched knob.
        let mut plain = DurableFleet::create_with(Box::new(SimDir::new()), &base(), policy)
            .expect("create plain");
        // Candidate: group commit explicitly dialed to one record.
        let mut grouped = DurableFleet::create_with(Box::new(SimDir::new()), &base(), policy)
            .expect("create grouped")
            .with_group_commit(GroupCommitPolicy::group(1, 0.0));
        let mut epoch = 0u64;
        for &op in &ops {
            match decode(op) {
                Step::Write { address, value } => {
                    epoch += 1;
                    let w = ReplicatedWrite { epoch, origin: 0, address, value };
                    let a = plain.append(&w).expect("plain append");
                    let b = grouped.append(&w).expect("grouped append");
                    // Ack for ack: both sync this record immediately,
                    // and checkpoint work fires at the same epochs.
                    prop_assert_eq!(a.synced_records, b.synced_records);
                    prop_assert_eq!(a.synced_records, 1);
                    prop_assert_eq!(a.checkpointed, b.checkpointed);
                    prop_assert_eq!(plain.durable_epoch(), grouped.durable_epoch());
                }
                Step::Crash => {
                    // Kill both stores (dropping any buffered state —
                    // there is none at group size one), recover a clone
                    // of each platter, compare, then reopen and go on.
                    let mut plain_dir = plain.into_dir();
                    let mut grouped_dir = grouped.into_dir();
                    let plain_sim = plain_dir
                        .as_any_mut()
                        .downcast_mut::<SimDir>()
                        .expect("SimDir")
                        .clone();
                    let grouped_sim = grouped_dir
                        .as_any_mut()
                        .downcast_mut::<SimDir>()
                        .expect("SimDir")
                        .clone();
                    let ra = DurableFleet::recover(Box::new(plain_sim)).expect("recover plain");
                    let rb = DurableFleet::recover(Box::new(grouped_sim)).expect("recover grouped");
                    prop_assert_eq!(ra.epoch, rb.epoch);
                    prop_assert_eq!(ra.epoch, epoch);
                    prop_assert_eq!(ra.memory.cells(), rb.memory.cells());
                    prop_assert_eq!(ra.delta_chain, rb.delta_chain);
                    plain = DurableFleet::open(plain_dir, policy).expect("reopen plain");
                    grouped = DurableFleet::open(grouped_dir, policy)
                        .expect("reopen grouped")
                        .with_group_commit(GroupCommitPolicy::group(1, 0.0));
                }
            }
            // Byte for byte: identical WAL images and identical I/O
            // histories after every step.
            prop_assert_eq!(wal_bytes(&mut plain), wal_bytes(&mut grouped));
            prop_assert_eq!(journal_of(&mut plain), journal_of(&mut grouped));
        }
        // Final recovery agrees with the in-memory shadow on both.
        prop_assert_eq!(plain.shadow().cells(), grouped.shadow().cells());
        let ra = DurableFleet::recover(plain.into_dir()).expect("final plain");
        let rb = DurableFleet::recover(grouped.into_dir()).expect("final grouped");
        prop_assert_eq!(ra.epoch, rb.epoch);
        prop_assert_eq!(ra.memory.cells(), rb.memory.cells());
    }
}
