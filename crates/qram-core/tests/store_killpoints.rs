//! Kill-point property tests for the durable store.
//!
//! The harness runs a realistic store workload — appends with periodic
//! checkpoints and WAL compactions — on a journaling [`SimDir`], then
//! enumerates *every* I/O step the workload performed and simulates a
//! crash at each one: a clean kill between ops, and, for every byte
//! write (WAL appends, checkpoint scratch writes, compaction rewrites),
//! a torn cut at several byte offsets inside the op. Recovery from each
//! crash image must satisfy the durability contract:
//!
//! 1. **No acknowledged write is lost**: every epoch whose
//!    append-and-sync completed before the crash is in the recovered
//!    state.
//! 2. **No unacknowledged write is resurrected**: the recovered epoch
//!    never exceeds the epochs whose WAL bytes were fully written.
//! 3. **The log is always left scannable**: recovery succeeds, the
//!    recovered memory is exactly the replay of the recovered prefix,
//!    and the repaired directory supports further appends and a second
//!    recovery.
//!
//! On top of the crash sweep, injected faults — short writes through
//! the armed tear hook and single-bit flips at every byte of the WAL —
//! must be *detected* (prefix recovery or an explicit corruption
//! error), never silently replayed as state.

use qram_core::store::{
    delta_file, frame, CheckpointPolicy, DurableFleet, GroupCommitPolicy, SimDir, StoreError,
    CHECKPOINT_FILE, WAL_FILE,
};
use qram_core::ReplicatedWrite;
use qsim::branch::ClassicalMemory;

const CELLS: u64 = 16;
const BUS: u32 = 16;
const EPOCHS: u64 = 12;
const CHECKPOINT_EVERY: u64 = 4;

fn base() -> ClassicalMemory {
    ClassicalMemory::from_words(BUS, &(0..CELLS).collect::<Vec<u64>>()).expect("valid base")
}

fn write(epoch: u64) -> ReplicatedWrite {
    ReplicatedWrite {
        epoch,
        origin: (epoch % 3) as usize,
        address: (epoch * 5) % CELLS,
        value: (epoch * 13) % (1 << BUS),
    }
}

/// Replay of `write(1..=epoch)` onto the base memory: the ground truth
/// every recovered image is compared against.
fn expected_memory(epoch: u64) -> ClassicalMemory {
    let mut m = base();
    for e in 1..=epoch {
        let w = write(e);
        m.write(w.address, w.value);
    }
    m
}

fn journal_len(store: &mut DurableFleet) -> usize {
    store
        .dir_mut()
        .as_any_mut()
        .downcast_mut::<SimDir>()
        .expect("kill-point store runs on SimDir")
        .journal()
        .len()
}

/// One epoch's I/O footprint in the journal: `start` is the op index of
/// its WAL append, `acked` the op index after its durability sync (the
/// acknowledgment point — checkpoint ops that follow inside the same
/// `append` call come after it).
struct EpochOps {
    start: usize,
    acked: usize,
}

/// Runs the reference workload and returns the full op journal plus the
/// per-epoch ack bookkeeping and the op count of `create` itself.
fn run_workload() -> (SimDir, Vec<EpochOps>, usize) {
    let mut store = DurableFleet::create_with(
        Box::new(SimDir::new()),
        &base(),
        CheckpointPolicy::every(CHECKPOINT_EVERY),
    )
    .expect("create store");
    let create_done = journal_len(&mut store);
    let mut epochs = Vec::new();
    for e in 1..=EPOCHS {
        let start = journal_len(&mut store);
        store.append(&write(e)).expect("append");
        // wal::append is exactly [Append, Sync]; the sync completes the
        // acknowledgment even when a checkpoint follows in the same call.
        epochs.push(EpochOps {
            start,
            acked: start + 2,
        });
    }
    let journal = store
        .dir_mut()
        .as_any_mut()
        .downcast_mut::<SimDir>()
        .expect("SimDir")
        .clone();
    (journal, epochs, create_done)
}

/// Highest epoch acknowledged when ops `0..k` completed.
fn acked_by(epochs: &[EpochOps], k: usize) -> u64 {
    epochs.iter().filter(|e| e.acked <= k).count() as u64
}

/// Highest epoch whose WAL record bytes were fully written by ops
/// `0..k` — the resurrection ceiling (a torn cut of op `k` never
/// completes a record, so it cannot raise this).
fn fully_written_by(epochs: &[EpochOps], k: usize) -> u64 {
    epochs.iter().filter(|e| e.start < k).count() as u64
}

/// Checks the full durability contract for one crash image.
fn check_recovery(crashed: SimDir, acked: u64, ceiling: u64, label: &str) {
    let replayable = crashed.clone();
    let recovered = DurableFleet::recover(Box::new(crashed))
        .unwrap_or_else(|e| panic!("{label}: recovery must succeed, got {e}"));
    assert!(
        recovered.epoch >= acked,
        "{label}: lost acknowledged writes (recovered {} < acked {acked})",
        recovered.epoch
    );
    assert!(
        recovered.epoch <= ceiling,
        "{label}: resurrected unwritten epochs (recovered {} > ceiling {ceiling})",
        recovered.epoch
    );
    assert_eq!(
        recovered.memory.cells(),
        expected_memory(recovered.epoch).cells(),
        "{label}: recovered image must equal the prefix replay"
    );
    // The repaired directory is a working store: it accepts the next
    // epoch and recovers again, including it.
    let mut reopened = DurableFleet::open(Box::new(replayable), CheckpointPolicy::never())
        .unwrap_or_else(|e| panic!("{label}: reopen must succeed, got {e}"));
    assert_eq!(reopened.durable_epoch(), recovered.epoch);
    let next = write(recovered.epoch + 1);
    reopened.append(&next).expect("append after repair");
    let after = DurableFleet::recover(reopened.into_dir()).expect("recover after repair");
    assert_eq!(after.epoch, recovered.epoch + 1, "{label}: continuation");
}

#[test]
fn every_crash_point_recovers_the_acknowledged_prefix() {
    let (journal_dir, epochs, create_done) = run_workload();
    let journal = journal_dir.journal();
    let mut crash_points = 0usize;
    for k in 0..=journal.len() {
        let acked = acked_by(&epochs, k);
        let ceiling = fully_written_by(&epochs, k);
        // Clean kill between op k−1 and op k.
        let crashed = journal_dir.replay_prefix(k, None);
        if k < create_done {
            // The store was never fully created: recovery may report the
            // missing anchor, but must never invent state.
            match DurableFleet::recover(Box::new(crashed)) {
                Ok(state) => assert_eq!(state.epoch, 0, "pre-create crash has no writes"),
                Err(StoreError::MissingCheckpoint) => {}
                Err(e) => panic!("pre-create crash at op {k}: unexpected {e}"),
            }
        } else {
            check_recovery(crashed, acked, ceiling, &format!("clean kill at op {k}"));
        }
        crash_points += 1;
        // Torn cut inside op k, at several byte offsets.
        if let Some(op) = journal.get(k) {
            if op.can_tear() {
                let len = op.write_len();
                let mut cuts = vec![0, 1, len / 2, len.saturating_sub(1)];
                cuts.dedup();
                for cut in cuts {
                    let crashed = journal_dir.replay_prefix(k, Some(cut));
                    let label = format!("torn write at op {k}, {cut}/{len} bytes");
                    if k < create_done {
                        let _ = DurableFleet::recover(Box::new(crashed));
                    } else {
                        check_recovery(crashed, acked, ceiling, &label);
                    }
                    crash_points += 1;
                }
            }
        }
    }
    // The sweep must actually have enumerated the interesting structure:
    // appends, syncs, checkpoint installs, and compactions all occurred.
    assert!(
        crash_points > 100,
        "the workload must expose a rich crash surface, got {crash_points}"
    );
    assert!(
        journal.iter().any(
            |op| matches!(op, qram_core::store::DirOp::Rename { to, .. } if to == CHECKPOINT_FILE)
        ),
        "workload must include checkpoint installs"
    );
    assert!(
        journal
            .iter()
            .any(|op| matches!(op, qram_core::store::DirOp::Rename { to, .. } if to == WAL_FILE)),
        "workload must include WAL compactions"
    );
}

/// Group-commit variant of the workload: appends buffer into commit
/// groups of [`GROUP`] records, checkpoints are incremental deltas that
/// fold at [`MAX_CHAIN`]. A buffered append touches no I/O at all, so
/// every epoch of a group shares its group's `start` (the journal index
/// of the single group `Append`) and `acked` (the index after the
/// group's one sync).
const GROUP: usize = 3;
const GROUP_EPOCHS: u64 = 18;
const MAX_CHAIN: usize = 2;

fn run_grouped_workload() -> (SimDir, Vec<EpochOps>, usize) {
    let mut store = DurableFleet::create_with(
        Box::new(SimDir::new()),
        &base(),
        CheckpointPolicy::deltas(CHECKPOINT_EVERY, MAX_CHAIN),
    )
    .expect("create store")
    .with_group_commit(GroupCommitPolicy::group(GROUP, 0.0));
    let create_done = journal_len(&mut store);
    let mut epochs = Vec::new();
    for e in 1..=GROUP_EPOCHS {
        let start = journal_len(&mut store);
        store.append(&write(e)).expect("append");
        // A buffered append leaves the journal untouched, so every
        // epoch of one group records the same `start`: the index where
        // the group's single [Append, Sync] eventually lands.
        epochs.push(EpochOps {
            start,
            acked: start + 2,
        });
    }
    assert_eq!(
        store.pending_records(),
        0,
        "GROUP_EPOCHS divides by GROUP: the last group landed"
    );
    let journal = store
        .dir_mut()
        .as_any_mut()
        .downcast_mut::<SimDir>()
        .expect("SimDir")
        .clone();
    (journal, epochs, create_done)
}

/// Resurrection ceiling for a torn cut of `cut` bytes inside op `k`: a
/// group `Append` is `GROUP` back-to-back records, so the cut completes
/// `cut / record_bytes` of the records the op was carrying — earlier
/// records of a half-flushed group legitimately survive even though
/// none of the group was acknowledged.
fn grouped_ceiling(epochs: &[EpochOps], k: usize, cut: usize, record_bytes: usize) -> u64 {
    let full = epochs.iter().filter(|e| e.start < k).count();
    let in_op = epochs.iter().filter(|e| e.start == k).count();
    (full + in_op.min(cut / record_bytes)) as u64
}

#[test]
fn every_crash_point_under_group_commit_recovers_the_acknowledged_prefix() {
    let (journal_dir, epochs, create_done) = run_grouped_workload();
    let journal = journal_dir.journal();
    // One record's framed length, derived from the first group append
    // (a single op carrying GROUP back-to-back frames).
    let record_bytes = journal[epochs[0].start].write_len() / GROUP;
    assert!(record_bytes > frame::HEADER_LEN, "frames carry payloads");
    let mut crash_points = 0usize;
    for k in 0..=journal.len() {
        let acked = acked_by(&epochs, k);
        // Clean kill between op k−1 and op k: buffered records of a
        // group whose flush has not started are in no journal op at
        // all, so a kill here proves the buffer-to-sync window loses
        // only unacknowledged writes.
        let ceiling = grouped_ceiling(&epochs, k, 0, record_bytes);
        let crashed = journal_dir.replay_prefix(k, None);
        if k < create_done {
            match DurableFleet::recover(Box::new(crashed)) {
                Ok(state) => assert_eq!(state.epoch, 0, "pre-create crash has no writes"),
                Err(StoreError::MissingCheckpoint) => {}
                Err(e) => panic!("pre-create crash at op {k}: unexpected {e}"),
            }
        } else {
            check_recovery(
                crashed,
                acked,
                ceiling,
                &format!("grouped clean kill at op {k}"),
            );
        }
        crash_points += 1;
        if let Some(op) = journal.get(k) {
            if op.can_tear() {
                let len = op.write_len();
                let mut cuts = vec![0, 1, len / 2, len.saturating_sub(1)];
                // Mid-group record boundaries: exactly at and one past
                // the first record of a group flush.
                if len > record_bytes {
                    cuts.push(record_bytes);
                    cuts.push(record_bytes + 1);
                }
                cuts.sort_unstable();
                cuts.dedup();
                for cut in cuts {
                    let ceiling = grouped_ceiling(&epochs, k, cut, record_bytes);
                    let crashed = journal_dir.replay_prefix(k, Some(cut));
                    let label = format!("grouped torn write at op {k}, {cut}/{len} bytes");
                    if k < create_done {
                        let _ = DurableFleet::recover(Box::new(crashed));
                    } else {
                        check_recovery(crashed, acked, ceiling, &label);
                    }
                    crash_points += 1;
                }
            }
        }
    }
    assert!(
        crash_points > 100,
        "the grouped workload must expose a rich crash surface, got {crash_points}"
    );
    // The sweep must have crossed the interesting delta-chain
    // structure: incremental installs, a full-image fold, compactions.
    let renames_to = |name: &str| {
        journal
            .iter()
            .any(|op| matches!(op, qram_core::store::DirOp::Rename { to, .. } if *to == name))
    };
    assert!(
        renames_to(&delta_file(1)) && renames_to(&delta_file(2)),
        "workload must install a delta chain"
    );
    assert!(
        renames_to(CHECKPOINT_FILE),
        "workload must fold the chain into a full image"
    );
    assert!(renames_to(WAL_FILE), "workload must compact the WAL");
}

#[test]
fn bit_flips_inside_a_partially_flushed_group_are_detected_never_misread() {
    // One synced group of three, then a second group whose flush the
    // lying disk cuts mid-record: the platter keeps the first record of
    // the group whole plus a fragment of the second. Every single-bit
    // flip anywhere in that WAL — including inside the partial group —
    // must cost at most the tail, never misread as state.
    let mut store =
        DurableFleet::create_with(Box::new(SimDir::new()), &base(), CheckpointPolicy::never())
            .expect("create")
            .with_group_commit(GroupCommitPolicy::group(3, 0.0));
    for e in 1..=3 {
        store.append(&write(e)).expect("append");
    }
    let record_bytes = {
        let sim = store
            .dir_mut()
            .as_any_mut()
            .downcast_mut::<SimDir>()
            .expect("SimDir");
        sim.len_of(WAL_FILE).expect("first group landed") / 3
    };
    store.append(&write(4)).expect("buffered");
    store.append(&write(5)).expect("buffered");
    store
        .dir_mut()
        .tear_next_write(record_bytes + frame::HEADER_LEN + 3);
    store.flush().expect("flush believes the disk");
    let mut dir = store.into_dir();
    let sim = dir
        .as_any_mut()
        .downcast_mut::<SimDir>()
        .expect("SimDir")
        .clone();
    let baseline = DurableFleet::recover(Box::new(sim.clone())).expect("recover");
    assert_eq!(
        baseline.epoch, 4,
        "the completed first record of the torn group survives"
    );
    let wal_len = sim.len_of(WAL_FILE).expect("wal exists");
    for offset in 0..wal_len {
        for bit in [0u32, 5] {
            let mut dirty = sim.clone();
            dirty.flip_bit(WAL_FILE, offset, bit);
            let recovered = DurableFleet::recover(Box::new(dirty))
                .unwrap_or_else(|e| panic!("bit flip at byte {offset}: recovery failed: {e}"));
            assert!(recovered.epoch <= 4);
            assert_eq!(
                recovered.memory.cells(),
                expected_memory(recovered.epoch).cells(),
                "bit {bit} of byte {offset} was silently misread"
            );
        }
    }
}

#[test]
fn injected_short_writes_truncate_to_the_acknowledged_prefix() {
    // The lying-disk variant: the tear hook makes an append report
    // success while persisting only part of the record. Recovery from
    // that disk must land exactly on the epochs fully persisted.
    for keep in [0, 1, frame::HEADER_LEN, frame::HEADER_LEN + 15] {
        let mut store =
            DurableFleet::create_with(Box::new(SimDir::new()), &base(), CheckpointPolicy::never())
                .expect("create");
        for e in 1..=3 {
            store.append(&write(e)).expect("append");
        }
        store.dir_mut().tear_next_write(keep);
        store.append(&write(4)).expect("append believes the disk");
        let recovered = DurableFleet::recover(store.into_dir()).expect("recover");
        assert_eq!(
            recovered.epoch, 3,
            "short write of {keep} bytes must not resurrect epoch 4"
        );
        assert_eq!(recovered.memory.cells(), expected_memory(3).cells());
    }
}

#[test]
fn every_single_bit_flip_in_the_wal_is_detected_never_misread() {
    let mut store =
        DurableFleet::create_with(Box::new(SimDir::new()), &base(), CheckpointPolicy::never())
            .expect("create");
    for e in 1..=4 {
        store.append(&write(e)).expect("append");
    }
    let mut dir = store.into_dir();
    let sim = dir
        .as_any_mut()
        .downcast_mut::<SimDir>()
        .expect("SimDir")
        .clone();
    let wal_len = sim.len_of(WAL_FILE).expect("wal exists");
    for offset in 0..wal_len {
        for bit in [0u32, 5] {
            let mut dirty = sim.clone();
            dirty.flip_bit(WAL_FILE, offset, bit);
            let recovered = DurableFleet::recover(Box::new(dirty))
                .unwrap_or_else(|e| panic!("bit flip at byte {offset}: recovery failed: {e}"));
            // The flip may cost the tail of the log, but never yields a
            // state that is not a true prefix replay.
            assert!(recovered.epoch <= 4);
            assert_eq!(
                recovered.memory.cells(),
                expected_memory(recovered.epoch).cells(),
                "bit {bit} of byte {offset} was silently misread"
            );
        }
    }
}

#[test]
fn a_bit_flipped_checkpoint_is_an_explicit_error_not_silent_state() {
    let mut store = DurableFleet::create(Box::new(SimDir::new()), &base()).expect("create");
    store.append(&write(1)).expect("append");
    let mut dir = store.into_dir();
    let sim = dir
        .as_any_mut()
        .downcast_mut::<SimDir>()
        .expect("SimDir")
        .clone();
    let img_len = sim.len_of(CHECKPOINT_FILE).expect("checkpoint exists");
    for offset in (0..img_len).step_by(7) {
        let mut dirty = sim.clone();
        dirty.flip_bit(CHECKPOINT_FILE, offset, (offset % 8) as u32);
        assert!(
            matches!(
                DurableFleet::recover(Box::new(dirty)),
                Err(StoreError::CorruptCheckpoint(_))
            ),
            "flip at checkpoint byte {offset} must be a detected corruption"
        );
    }
}
