//! Availability counters for a fault-tolerant serving fleet.
//!
//! A fleet that injects failures needs to account for what its tolerance
//! machinery actually did: how many dispatches were retried after a loss,
//! how many hedges were launched (and won), how many in-flight queries
//! were failed over off a dead replica, how many corrupted outcomes the
//! parity check caught, and how long replicas spent out of rotation.
//! [`AvailabilityCounters`] is that ledger — plain monotone counters the
//! fleet report carries alongside its latency histograms, so a chaos run
//! is summarized by the same report type as a healthy one.

use std::fmt;

use crate::Layers;

/// Monotone counters describing the fault-tolerance work of one serving
/// run, plus the accumulated replica downtime for MTTR.
///
/// # Examples
///
/// ```
/// use qram_metrics::{AvailabilityCounters, Layers};
///
/// let mut counters = AvailabilityCounters::default();
/// counters.retries += 2;
/// counters.crashes += 1;
/// counters.recoveries += 1;
/// counters.record_downtime(Layers::new(500.0));
/// assert_eq!(counters.mttr(), Some(Layers::new(500.0)));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AvailabilityCounters {
    /// Dispatch attempts re-issued after a loss (crash, corruption, or an
    /// unplaceable retry), each spaced by the backoff schedule.
    pub retries: u64,
    /// Duplicate dispatches launched for still-outstanding queries of
    /// hedge-eligible tenants.
    pub hedges: u64,
    /// Hedged queries whose duplicate completed first.
    pub hedge_wins: u64,
    /// In-flight or queued queries moved off a replica after it was
    /// detected Down.
    pub failovers: u64,
    /// Corrupted outcomes caught by the parity check (and re-served).
    pub corruptions_detected: u64,
    /// Replica crash faults that fired.
    pub crashes: u64,
    /// Replicas that finished log replay and rejoined rotation.
    pub recoveries: u64,
    /// Queries shed because their deadline passed before dispatch.
    pub deadline_expirations: u64,
    /// Total replica out-of-rotation time (crash → rejoin), summed over
    /// completed recoveries.
    pub downtime: Layers,
}

impl AvailabilityCounters {
    /// Accumulates one completed crash → rejoin interval.
    pub fn record_downtime(&mut self, out_of_rotation: Layers) {
        self.downtime += out_of_rotation;
    }

    /// Mean time to repair: average crash → rejoin interval, or `None`
    /// when no replica completed a recovery.
    #[must_use]
    pub fn mttr(&self) -> Option<Layers> {
        (self.recoveries > 0).then(|| Layers::new(self.downtime.get() / self.recoveries as f64))
    }
}

impl fmt::Display for AvailabilityCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "retries={} hedges={}/{} failovers={} corruptions={} crashes={} recoveries={}",
            self.retries,
            self.hedge_wins,
            self.hedges,
            self.failovers,
            self.corruptions_detected,
            self.crashes,
            self.recoveries,
        )?;
        match self.mttr() {
            Some(mttr) => write!(f, " mttr={:.1} layers", mttr.get()),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mttr_averages_completed_recoveries() {
        let mut c = AvailabilityCounters::default();
        assert_eq!(c.mttr(), None, "no recoveries, no MTTR");
        c.crashes = 2;
        c.recoveries = 2;
        c.record_downtime(Layers::new(100.0));
        c.record_downtime(Layers::new(300.0));
        assert_eq!(c.mttr(), Some(Layers::new(200.0)));
    }

    #[test]
    fn display_summarizes_the_ledger() {
        let mut c = AvailabilityCounters {
            retries: 3,
            hedges: 2,
            hedge_wins: 1,
            ..Default::default()
        };
        let shown = c.to_string();
        assert!(shown.contains("retries=3"));
        assert!(shown.contains("hedges=1/2"));
        assert!(!shown.contains("mttr"), "no MTTR before any recovery");
        c.recoveries = 1;
        c.record_downtime(Layers::new(50.0));
        assert!(c.to_string().contains("mttr=50.0 layers"));
    }
}
