//! Shared-QRAM performance metrics (§6.2 of the paper).

use std::fmt;

/// Maximum number of queries completed per unit time (queries/second).
///
/// For a pipelined QRAM this is the inverse of the *amortized* single-query
/// time.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct QueryRate(f64);

impl QueryRate {
    /// The rate of a run that served nothing — what a fully degraded or
    /// all-shed fleet reports instead of dividing zero by zero.
    pub const ZERO: QueryRate = QueryRate(0.0);

    /// Creates a query rate in queries per second.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is negative or non-finite.
    #[must_use]
    pub fn new(rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate >= 0.0,
            "query rate must be non-negative and finite, got {rate}"
        );
        QueryRate(rate)
    }

    /// Queries per second.
    #[must_use]
    pub fn get(self) -> f64 {
        self.0
    }

    /// The QRAM bandwidth obtained by multiplying this rate by the bus
    /// width (number of data qubits returned per query). The paper's
    /// results fix `bus_width = 1`.
    #[must_use]
    pub fn bandwidth(self, bus_width: u32) -> Bandwidth {
        Bandwidth::new(self.0 * f64::from(bus_width))
    }
}

impl fmt::Display for QueryRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4e} queries/s", self.0)
    }
}

/// QRAM bandwidth: rate at which data are queried and written into bus
/// qubits (qubits/second) — query rate × bus width.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// Creates a bandwidth in qubits per second.
    ///
    /// # Panics
    ///
    /// Panics if `qubits_per_second` is negative or non-finite.
    #[must_use]
    pub fn new(qubits_per_second: f64) -> Self {
        assert!(
            qubits_per_second.is_finite() && qubits_per_second >= 0.0,
            "bandwidth must be non-negative and finite, got {qubits_per_second}"
        );
        Bandwidth(qubits_per_second)
    }

    /// Qubits per second.
    #[must_use]
    pub fn get(self) -> f64 {
        self.0
    }

    /// The memory access rate: rate at which classical data are read by the
    /// QRAM hardware. Each query touches all `N` cells in superposition, so
    /// the duty rate is `bandwidth × N` (§7.2).
    #[must_use]
    pub fn memory_access_rate(self, capacity: u64) -> MemoryAccessRate {
        MemoryAccessRate::new(self.0 * capacity as f64)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4e} qubits/s", self.0)
    }
}

/// Rate at which classical memory cells are read by the QRAM hardware
/// (cells/second).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct MemoryAccessRate(f64);

impl MemoryAccessRate {
    /// Creates a memory access rate in cells per second.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is negative or non-finite.
    #[must_use]
    pub fn new(rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate >= 0.0,
            "memory access rate must be non-negative and finite, got {rate}"
        );
        MemoryAccessRate(rate)
    }

    /// Cells per second.
    #[must_use]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl fmt::Display for MemoryAccessRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4e} cells/s", self.0)
    }
}

/// Space-time volume per query: amortized `qubits × circuit depth` spent per
/// query (qubit·layers). Quantifies the hardware cost of a single query.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct SpaceTimeVolume(f64);

impl SpaceTimeVolume {
    /// Creates a space-time volume in qubit·layers.
    ///
    /// # Panics
    ///
    /// Panics if `volume` is negative or non-finite.
    #[must_use]
    pub fn new(volume: f64) -> Self {
        assert!(
            volume.is_finite() && volume >= 0.0,
            "space-time volume must be non-negative and finite, got {volume}"
        );
        SpaceTimeVolume(volume)
    }

    /// Qubit·layers.
    #[must_use]
    pub fn get(self) -> f64 {
        self.0
    }

    /// The volume normalized by capacity `N`, exposing the leading constant
    /// (132 for Fat-Tree, `64·log N + 1` for BB, …).
    #[must_use]
    pub fn per_cell(self, capacity: u64) -> f64 {
        self.0 / capacity as f64
    }
}

impl fmt::Display for SpaceTimeVolume {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4e} qubit-layers", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_rate_to_bandwidth() {
        // Fat-Tree amortized 8.25 µs per query at bus width 1:
        let rate = QueryRate::new(1.0 / 8.25e-6);
        let bw = rate.bandwidth(1);
        assert!((bw.get() - 1.2121e5).abs() < 10.0);
        // Wider bus multiplies bandwidth.
        assert_eq!(rate.bandwidth(4).get(), rate.get() * 4.0);
    }

    #[test]
    fn memory_access_rate_scales_with_capacity() {
        let bw = Bandwidth::new(1.0e5);
        assert_eq!(bw.memory_access_rate(1024).get(), 1.024e8);
    }

    #[test]
    fn volume_per_cell() {
        let v = SpaceTimeVolume::new(132.0 * 1024.0);
        assert!((v.per_cell(1024) - 132.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_bandwidth_rejected() {
        let _ = Bandwidth::new(-1.0);
    }

    #[test]
    fn displays() {
        assert_eq!(Bandwidth::new(1.2121e5).to_string(), "1.2121e5 qubits/s");
        assert!(QueryRate::new(10.0).to_string().contains("queries/s"));
        assert!(MemoryAccessRate::new(10.0).to_string().contains("cells/s"));
        assert!(SpaceTimeVolume::new(10.0)
            .to_string()
            .contains("qubit-layers"));
    }
}
