//! Power-of-two QRAM capacities.

use std::fmt;

/// A QRAM capacity `N`: the number of classical memory cells addressable by
/// a query.
///
/// Capacities are restricted to powers of two `N = 2ⁿ` with `n ≥ 1`, matching
/// the paper's assumption that the address register has width
/// `|A| = log₂(N)`.
///
/// # Examples
///
/// ```
/// use qram_metrics::Capacity;
///
/// let n = Capacity::new(8)?;
/// assert_eq!(n.get(), 8);
/// assert_eq!(n.address_width(), 3);
/// # Ok::<(), qram_metrics::CapacityError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Capacity(u64);

/// Error returned when constructing an invalid [`Capacity`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CapacityError {
    /// The requested capacity was not a power of two.
    NotPowerOfTwo(u64),
    /// The requested capacity was smaller than the minimum of 2.
    TooSmall(u64),
}

impl fmt::Display for CapacityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CapacityError::NotPowerOfTwo(n) => {
                write!(f, "capacity {n} is not a power of two")
            }
            CapacityError::TooSmall(n) => {
                write!(f, "capacity {n} is smaller than the minimum of 2")
            }
        }
    }
}

impl std::error::Error for CapacityError {}

impl Capacity {
    /// Creates a capacity from a memory size `N`.
    ///
    /// # Errors
    ///
    /// Returns [`CapacityError::NotPowerOfTwo`] if `n` is not a power of two
    /// and [`CapacityError::TooSmall`] if `n < 2` (a QRAM needs at least one
    /// address bit).
    pub fn new(n: u64) -> Result<Self, CapacityError> {
        if n < 2 {
            Err(CapacityError::TooSmall(n))
        } else if !n.is_power_of_two() {
            Err(CapacityError::NotPowerOfTwo(n))
        } else {
            Ok(Capacity(n))
        }
    }

    /// Creates the capacity `N = 2ⁿ` from an address width `n ≥ 1`.
    ///
    /// # Panics
    ///
    /// Panics if `address_width` is 0 or at least 63 (the resulting `N`
    /// would not fit in a `u64`).
    #[must_use]
    pub fn from_address_width(address_width: u32) -> Self {
        assert!(
            (1..63).contains(&address_width),
            "address width {address_width} outside supported range 1..63"
        );
        Capacity(1u64 << address_width)
    }

    /// The memory size `N`.
    #[must_use]
    pub fn get(self) -> u64 {
        self.0
    }

    /// The address width `n = log₂(N)` — also the tree depth of a
    /// bucket-brigade QRAM of this capacity.
    #[must_use]
    pub fn address_width(self) -> u32 {
        self.0.trailing_zeros()
    }

    /// `n` as an `f64`, convenient for the closed-form latency models.
    #[must_use]
    pub fn n_f64(self) -> f64 {
        f64::from(self.address_width())
    }

    /// `N` as an `f64`.
    #[must_use]
    pub fn capacity_f64(self) -> f64 {
        self.0 as f64
    }

    /// Iterates over all capacities `2¹, 2², …` up to and including `max`
    /// (values above `max` are not yielded).
    pub fn sweep(max: u64) -> impl Iterator<Item = Capacity> {
        (1..63u32)
            .map(Capacity::from_address_width)
            .take_while(move |c| c.get() <= max)
    }
}

impl fmt::Display for Capacity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl TryFrom<u64> for Capacity {
    type Error = CapacityError;

    fn try_from(value: u64) -> Result<Self, Self::Error> {
        Capacity::new(value)
    }
}

impl From<Capacity> for u64 {
    fn from(value: Capacity) -> Self {
        value.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_powers_of_two() {
        for n in [2u64, 4, 8, 1024, 1 << 40] {
            let c = Capacity::new(n).unwrap();
            assert_eq!(c.get(), n);
            assert_eq!(1u64 << c.address_width(), n);
        }
    }

    #[test]
    fn rejects_non_powers() {
        assert_eq!(Capacity::new(3), Err(CapacityError::NotPowerOfTwo(3)));
        assert_eq!(Capacity::new(12), Err(CapacityError::NotPowerOfTwo(12)));
    }

    #[test]
    fn rejects_too_small() {
        assert_eq!(Capacity::new(0), Err(CapacityError::TooSmall(0)));
        assert_eq!(Capacity::new(1), Err(CapacityError::TooSmall(1)));
    }

    #[test]
    fn from_address_width_roundtrips() {
        for n in 1..20 {
            assert_eq!(Capacity::from_address_width(n).address_width(), n);
        }
    }

    #[test]
    #[should_panic(expected = "outside supported range")]
    fn from_address_width_zero_panics() {
        let _ = Capacity::from_address_width(0);
    }

    #[test]
    fn sweep_stops_at_max() {
        let caps: Vec<u64> = Capacity::sweep(1024).map(Capacity::get).collect();
        assert_eq!(caps, vec![2, 4, 8, 16, 32, 64, 128, 256, 512, 1024]);
    }

    #[test]
    fn display_shows_size() {
        assert_eq!(Capacity::new(8).unwrap().to_string(), "8");
    }

    #[test]
    fn error_display_is_informative() {
        assert_eq!(
            CapacityError::NotPowerOfTwo(3).to_string(),
            "capacity 3 is not a power of two"
        );
        assert_eq!(
            CapacityError::TooSmall(1).to_string(),
            "capacity 1 is smaller than the minimum of 2"
        );
    }

    #[test]
    fn conversions() {
        let c = Capacity::try_from(16u64).unwrap();
        assert_eq!(u64::from(c), 16);
    }
}
