//! Keyed latency-histogram aggregation for fleet-level serving reports.
//!
//! A multi-tenant QRAM fleet observes the same latency stream along two
//! independent groupings — *which tenant* issued the query and *which
//! replica* served it. [`HistogramFamily`] maintains one
//! [`LatencyHistogram`] per key with O(1) keyed recording, and merges the
//! members into an aggregate view on demand ([`LatencyHistogram::merge`]
//! does the heavy lifting; the family adds the key bookkeeping).

use std::collections::BTreeMap;

use crate::{LatencyHistogram, Layers};

/// A family of [`LatencyHistogram`]s indexed by an ordered key (a tenant
/// id, a replica index, …).
///
/// Keys materialize lazily on first record; iteration is in ascending key
/// order, so reports are deterministic.
///
/// # Examples
///
/// ```
/// use qram_metrics::{HistogramFamily, Layers};
///
/// let mut by_tenant: HistogramFamily<u32> = HistogramFamily::new();
/// by_tenant.record(0, Layers::new(10.0));
/// by_tenant.record(1, Layers::new(400.0));
/// by_tenant.record(0, Layers::new(12.0));
/// assert_eq!(by_tenant.get(0).unwrap().count(), 2);
/// assert_eq!(by_tenant.merged().count(), 3);
/// assert_eq!(by_tenant.keys().collect::<Vec<_>>(), vec![0, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HistogramFamily<K: Ord + Copy> {
    members: BTreeMap<K, LatencyHistogram>,
}

impl<K: Ord + Copy> HistogramFamily<K> {
    /// An empty family.
    #[must_use]
    pub fn new() -> Self {
        HistogramFamily {
            members: BTreeMap::new(),
        }
    }

    /// Records one observation under `key`, creating the member histogram
    /// on first use.
    pub fn record(&mut self, key: K, latency: Layers) {
        self.members.entry(key).or_default().record(latency);
    }

    /// The member histogram for `key`, if anything was recorded under it.
    #[must_use]
    pub fn get(&self, key: K) -> Option<&LatencyHistogram> {
        self.members.get(&key)
    }

    /// Number of keys with at least one observation.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when nothing has been recorded under any key.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The keys in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = K> + '_ {
        self.members.keys().copied()
    }

    /// `(key, histogram)` pairs in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (K, &LatencyHistogram)> {
        self.members.iter().map(|(&k, h)| (k, h))
    }

    /// Total observations across all members.
    #[must_use]
    pub fn total_count(&self) -> u64 {
        self.members.values().map(LatencyHistogram::count).sum()
    }

    /// Merges every member into one aggregate histogram (empty family →
    /// empty histogram).
    #[must_use]
    pub fn merged(&self) -> LatencyHistogram {
        let mut total = LatencyHistogram::new();
        for h in self.members.values() {
            total.merge(h);
        }
        total
    }

    /// Merges another family into this one, key by key.
    pub fn merge(&mut self, other: &HistogramFamily<K>) {
        for (&key, theirs) in &other.members {
            self.members.entry(key).or_default().merge(theirs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_per_key_and_merges() {
        let mut family: HistogramFamily<u32> = HistogramFamily::new();
        assert!(family.is_empty());
        for (key, latency) in [(2, 8.0), (0, 30.0), (2, 9.0), (1, 100.0)] {
            family.record(key, Layers::new(latency));
        }
        assert_eq!(family.len(), 3);
        assert_eq!(family.total_count(), 4);
        assert_eq!(family.get(2).unwrap().count(), 2);
        assert!(family.get(3).is_none());
        let merged = family.merged();
        assert_eq!(merged.count(), 4);
        assert_eq!(merged.min().get(), 8.0);
        assert_eq!(merged.max().get(), 100.0);
    }

    #[test]
    fn iteration_is_key_ordered() {
        let mut family: HistogramFamily<u64> = HistogramFamily::new();
        for key in [9u64, 3, 7, 1] {
            family.record(key, Layers::new(1.0));
        }
        let keys: Vec<u64> = family.keys().collect();
        assert_eq!(keys, vec![1, 3, 7, 9]);
        let iter_keys: Vec<u64> = family.iter().map(|(k, _)| k).collect();
        assert_eq!(iter_keys, keys);
    }

    #[test]
    fn family_merge_combines_members_keywise() {
        let mut a: HistogramFamily<u8> = HistogramFamily::new();
        a.record(0, Layers::new(5.0));
        a.record(1, Layers::new(50.0));
        let mut b: HistogramFamily<u8> = HistogramFamily::new();
        b.record(1, Layers::new(60.0));
        b.record(2, Layers::new(600.0));
        a.merge(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.get(1).unwrap().count(), 2);
        assert_eq!(a.merged().count(), 4);
    }

    #[test]
    fn empty_family_merges_to_empty_histogram() {
        let family: HistogramFamily<u32> = HistogramFamily::new();
        assert!(family.merged().is_empty());
        assert_eq!(family.total_count(), 0);
    }
}
