//! Log-bucketed latency histogram for the serving layer (§5).
//!
//! An online QRAM service observes per-query response latencies spanning
//! several orders of magnitude (a lightly loaded pipeline answers in one
//! query latency; a saturated one queues). [`LatencyHistogram`] records
//! them into geometrically spaced buckets — constant *relative* precision
//! at every scale, constant memory, O(1) insertion — the standard
//! serving-system design (HdrHistogram-style), hand-rolled here since the
//! vendored tree has no histogram crate.

use std::fmt;

use crate::Layers;

/// Sub-buckets per octave: bucket boundaries grow by `2^(1/8)` per bucket,
/// bounding the relative quantile error at `2^(1/8) − 1 ≈ 9.05%`.
const SUB_BUCKETS_PER_OCTAVE: f64 = 8.0;

/// A log-bucketed histogram of latencies in circuit [`Layers`].
///
/// Values at or below the base `resolution` share the first bucket; above
/// it, bucket `i` covers `(resolution·2^((i−1)/8), resolution·2^(i/8)]`,
/// so any reported quantile overestimates the true sample quantile by at
/// most [`LatencyHistogram::relative_error_bound`] (exact `min`/`max`/
/// `mean` are tracked alongside, and quantiles are clamped into
/// `[min, max]`).
///
/// # Examples
///
/// ```
/// use qram_metrics::{LatencyHistogram, Layers};
///
/// let mut hist = LatencyHistogram::new();
/// for latency in [10.0, 12.0, 15.0, 80.0, 1000.0] {
///     hist.record(Layers::new(latency));
/// }
/// assert_eq!(hist.count(), 5);
/// assert_eq!(hist.max().get(), 1000.0);
/// // p50 lands on the bucket holding the median sample (15.0), within
/// // the 9% relative-error bound.
/// let p50 = hist.quantile(0.5).get();
/// assert!((15.0..=15.0 * 1.0905).contains(&p50), "p50 = {p50}");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyHistogram {
    resolution: f64,
    /// `counts[0]` holds values `≤ resolution`; `counts[i]` (i ≥ 1) holds
    /// values in `(resolution·2^((i−1)/8), resolution·2^(i/8)]`.
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl LatencyHistogram {
    /// A histogram with the default base resolution of ⅛ layer — the
    /// classically-controlled-layer weight, the finest latency step any
    /// schedule in the paper produces.
    #[must_use]
    pub fn new() -> Self {
        LatencyHistogram::with_resolution(Layers::new(0.125))
    }

    /// A histogram whose first bucket ends at `resolution`.
    ///
    /// # Panics
    ///
    /// Panics if `resolution` is zero.
    #[must_use]
    pub fn with_resolution(resolution: Layers) -> Self {
        assert!(
            resolution > Layers::ZERO,
            "histogram resolution must be positive"
        );
        LatencyHistogram {
            resolution: resolution.get(),
            counts: Vec::new(),
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The base resolution (upper edge of the first bucket).
    #[must_use]
    pub fn resolution(&self) -> Layers {
        Layers::new(self.resolution)
    }

    /// Worst-case relative overestimate of any quantile:
    /// `2^(1/8) − 1 ≈ 9.05%` (values below the base resolution are exact
    /// to within the resolution itself).
    #[must_use]
    pub fn relative_error_bound() -> f64 {
        2f64.powf(1.0 / SUB_BUCKETS_PER_OCTAVE) - 1.0
    }

    fn bucket_index(&self, value: f64) -> usize {
        if value <= self.resolution {
            0
        } else {
            // Strictly positive log, so the +1 keeps bucket 0 exclusive.
            let octaves = (value / self.resolution).log2();
            1 + (octaves * SUB_BUCKETS_PER_OCTAVE).ceil() as usize - 1
        }
    }

    /// Upper edge of bucket `i`.
    fn bucket_upper(&self, index: usize) -> f64 {
        self.resolution * 2f64.powf(index as f64 / SUB_BUCKETS_PER_OCTAVE)
    }

    /// Records one latency observation.
    pub fn record(&mut self, latency: Layers) {
        let v = latency.get();
        let idx = self.bucket_index(v);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact mean of the recorded latencies.
    ///
    /// # Panics
    ///
    /// Panics if the histogram is empty.
    #[must_use]
    pub fn mean(&self) -> Layers {
        assert!(self.count > 0, "mean of an empty histogram");
        Layers::new(self.sum / self.count as f64)
    }

    /// Exact minimum recorded latency.
    ///
    /// # Panics
    ///
    /// Panics if the histogram is empty.
    #[must_use]
    pub fn min(&self) -> Layers {
        assert!(self.count > 0, "min of an empty histogram");
        Layers::new(self.min)
    }

    /// Exact maximum recorded latency.
    ///
    /// # Panics
    ///
    /// Panics if the histogram is empty.
    #[must_use]
    pub fn max(&self) -> Layers {
        assert!(self.count > 0, "max of an empty histogram");
        Layers::new(self.max)
    }

    /// The `q`-quantile (`q ∈ [0, 1]`): the upper edge of the bucket
    /// holding the `⌈q·count⌉`-th smallest observation, clamped into
    /// `[min, max]` — an overestimate of the exact sample quantile by at
    /// most [`Self::relative_error_bound`].
    ///
    /// # Panics
    ///
    /// Panics if the histogram is empty or `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Layers {
        assert!(self.count > 0, "quantile of an empty histogram");
        assert!(
            (0.0..=1.0).contains(&q),
            "quantile must lie in [0, 1], got {q}"
        );
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Layers::new(self.bucket_upper(i).clamp(self.min, self.max));
            }
        }
        Layers::new(self.max)
    }

    /// The `q`-quantile, or `None` when nothing has been recorded — the
    /// total version of [`Self::quantile`] for reports that may cover an
    /// all-shed or otherwise empty run.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn try_quantile(&self, q: f64) -> Option<Layers> {
        (self.count > 0).then(|| self.quantile(q))
    }

    /// Median (`p50`) latency, or `None` when nothing has been recorded.
    #[must_use]
    pub fn p50(&self) -> Option<Layers> {
        self.try_quantile(0.50)
    }

    /// 95th-percentile latency, or `None` when nothing has been recorded.
    #[must_use]
    pub fn p95(&self) -> Option<Layers> {
        self.try_quantile(0.95)
    }

    /// 99th-percentile latency, or `None` when nothing has been recorded.
    #[must_use]
    pub fn p99(&self) -> Option<Layers> {
        self.try_quantile(0.99)
    }

    /// Merges another histogram into this one (e.g. per-shard histograms
    /// into a service-wide view).
    ///
    /// # Panics
    ///
    /// Panics if the resolutions differ.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        assert!(
            (self.resolution - other.resolution).abs() < f64::EPSILON,
            "cannot merge histograms of different resolutions"
        );
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl fmt::Display for LatencyHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "latency histogram (empty)");
        }
        write!(
            f,
            "n={} p50={:.2} p95={:.2} p99={:.2} max={:.2} layers",
            self.count,
            self.quantile(0.50).get(),
            self.quantile(0.95).get(),
            self.quantile(0.99).get(),
            self.max().get()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_moments_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in [1.0, 2.0, 3.0, 4.0] {
            h.record(Layers::new(v));
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.mean().get(), 2.5);
        assert_eq!(h.min().get(), 1.0);
        assert_eq!(h.max().get(), 4.0);
        assert!(!h.is_empty());
    }

    #[test]
    fn quantiles_within_relative_error_bound() {
        // Deterministic pseudo-random spread over three decades.
        let mut values: Vec<f64> = (0..500u64)
            .map(|i| 0.5 + ((i * 2_654_435_761) % 100_000) as f64 / 100.0)
            .collect();
        let mut h = LatencyHistogram::new();
        for &v in &values {
            h.record(Layers::new(v));
        }
        values.sort_by(f64::total_cmp);
        let bound = LatencyHistogram::relative_error_bound();
        for q in [0.1, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let exact = values[rank - 1];
            let est = h.quantile(q).get();
            assert!(
                est >= exact - 1e-12 && est <= exact * (1.0 + bound) + 1e-12,
                "q={q}: est {est} vs exact {exact}"
            );
        }
    }

    #[test]
    fn single_value_is_reported_exactly() {
        let mut h = LatencyHistogram::new();
        h.record(Layers::new(82.375));
        // Clamped into [min, max], so every quantile is the value itself.
        assert_eq!(h.quantile(0.0).get(), 82.375);
        assert_eq!(h.p50(), Some(Layers::new(82.375)));
        assert_eq!(h.p99(), Some(Layers::new(82.375)));
    }

    #[test]
    fn sub_resolution_values_share_first_bucket() {
        let mut h = LatencyHistogram::with_resolution(Layers::new(1.0));
        h.record(Layers::ZERO);
        h.record(Layers::new(0.3));
        h.record(Layers::new(1.0));
        assert_eq!(h.count(), 3);
        // All in bucket 0: quantile clamps to the exact max.
        assert_eq!(h.p99().unwrap().get(), 1.0);
        assert_eq!(h.min().get(), 0.0);
    }

    #[test]
    fn bucket_boundaries_are_monotone_and_consistent() {
        let h = LatencyHistogram::new();
        let mut prev = 0usize;
        let mut v = 0.2;
        while v < 1e6 {
            let idx = h.bucket_index(v);
            assert!(idx >= prev, "bucket index must be monotone at {v}");
            // The value must sit at or below its bucket's upper edge.
            assert!(v <= h.bucket_upper(idx) * (1.0 + 1e-12), "v={v} idx={idx}");
            prev = idx;
            v *= 1.01;
        }
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for v in [1.0, 10.0] {
            a.record(Layers::new(v));
        }
        for v in [100.0, 1000.0] {
            b.record(Layers::new(v));
        }
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.max().get(), 1000.0);
        assert_eq!(a.min().get(), 1.0);
        assert_eq!(a.mean().get(), 1111.0 / 4.0);
        let bound = LatencyHistogram::relative_error_bound();
        assert!(a.p99().unwrap().get() <= 1000.0 * (1.0 + bound));
    }

    #[test]
    fn display_formats_summary() {
        let mut h = LatencyHistogram::new();
        assert!(h.to_string().contains("empty"));
        h.record(Layers::new(5.0));
        assert!(h.to_string().contains("n=1"));
    }

    #[test]
    #[should_panic(expected = "empty histogram")]
    fn quantile_of_empty_rejected() {
        let _ = LatencyHistogram::new().quantile(0.5);
    }

    #[test]
    fn empty_percentiles_are_none_not_panics() {
        // An all-shed serving run records nothing; its report must still
        // render without panicking or producing NaN.
        let h = LatencyHistogram::new();
        assert_eq!(h.p50(), None);
        assert_eq!(h.p95(), None);
        assert_eq!(h.p99(), None);
        assert_eq!(h.try_quantile(0.25), None);
    }

    #[test]
    #[should_panic(expected = "must lie in [0, 1]")]
    fn out_of_range_quantile_rejected() {
        let mut h = LatencyHistogram::new();
        h.record(Layers::new(1.0));
        let _ = h.quantile(1.5);
    }

    #[test]
    #[should_panic(expected = "different resolutions")]
    fn merge_rejects_mismatched_resolution() {
        let mut a = LatencyHistogram::with_resolution(Layers::new(1.0));
        let b = LatencyHistogram::with_resolution(Layers::new(2.0));
        a.merge(&b);
    }
}
