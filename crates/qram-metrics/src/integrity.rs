//! Integrity counters for a durable, self-auditing serving fleet.
//!
//! Where [`AvailabilityCounters`](crate::AvailabilityCounters) account
//! for what the fault-*tolerance* machinery did (retries, failovers,
//! rejoins), [`IntegrityCounters`] account for what the fault-*auditing*
//! machinery did: how often the anti-entropy scrubber ran, how many
//! memory chunks it digested against the durable chain, how many
//! diverged, and how many repairs — replica image resets and re-appended
//! write-ahead-log tails — it performed. A report with non-zero
//! `mismatches` and matching `repairs` is a run where silent corruption
//! happened *and was driven back out*; a report with zero everything is
//! a run the scrubber certified clean.

use std::fmt;

/// Monotone counters describing the durability and anti-entropy work of
/// one serving run.
///
/// # Examples
///
/// ```
/// use qram_metrics::IntegrityCounters;
///
/// let mut counters = IntegrityCounters::default();
/// counters.scrub_cycles += 1;
/// counters.chunks_verified += 64;
/// assert!(counters.clean(), "verified chunks alone are not divergence");
/// counters.mismatches += 1;
/// counters.repairs += 1;
/// assert!(!counters.clean());
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IntegrityCounters {
    /// Anti-entropy scrub passes completed (scheduled ticks plus the
    /// final end-of-run sweep).
    pub scrub_cycles: u64,
    /// Per-replica memory chunks whose digest was compared against the
    /// durable chain's expected state.
    pub chunks_verified: u64,
    /// Chunks whose digest diverged from the durable chain.
    pub mismatches: u64,
    /// Repair actions taken: diverged replica images re-derived from the
    /// durable chain, and lost acknowledged WAL epochs re-appended.
    pub repairs: u64,
    /// Torn or corrupt WAL tails truncated by a scrub's disk audit.
    pub torn_tails_truncated: u64,
    /// Write-ahead-log records appended (one per durable fleet epoch,
    /// plus any re-appends after a tail truncation).
    pub wal_appends: u64,
    /// Commit-group syncs: durability barriers actually paid. Under
    /// per-record commit this equals `wal_appends`; under group commit
    /// the gap between the two is the fsyncs saved.
    pub wal_syncs: u64,
    /// Largest commit group landed by a single sync.
    pub max_group_records: u64,
    /// Full checkpoint images installed (each compacts the WAL behind
    /// it and folds any delta chain).
    pub checkpoints: u64,
    /// Incremental delta checkpoints installed (each also compacts the
    /// WAL, but writes only the cells dirtied since the last one).
    pub delta_checkpoints: u64,
    /// Length of the delta chain at end of run — a gauge, not a
    /// counter. `None` when no checkpoint work ran at all, which is
    /// *not* the same as a chain of zero deltas (that means a full
    /// image is installed and current).
    pub delta_chain_len: Option<u64>,
}

impl IntegrityCounters {
    /// True when no divergence was observed and nothing needed repair —
    /// the scrubber's clean bill of health (vacuously true when no
    /// scrubbing ran).
    #[must_use]
    pub fn clean(&self) -> bool {
        self.mismatches == 0 && self.repairs == 0 && self.torn_tails_truncated == 0
    }
}

impl fmt::Display for IntegrityCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scrubs={} chunks={} mismatches={} repairs={} torn_tails={} wal_appends={} \
             wal_syncs={} max_group={} checkpoints={} deltas={} chain=",
            self.scrub_cycles,
            self.chunks_verified,
            self.mismatches,
            self.repairs,
            self.torn_tails_truncated,
            self.wal_appends,
            self.wal_syncs,
            self.max_group_records,
            self.checkpoints,
            self.delta_checkpoints,
        )?;
        // A run that never checkpointed has no chain to speak of — `-`
        // rather than a `0` that would read as "full image, current".
        match self.delta_chain_len {
            Some(len) => write!(f, "{len}"),
            None => write!(f, "-"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_tracks_divergence_not_activity() {
        let mut c = IntegrityCounters::default();
        assert!(c.clean(), "an idle run is clean");
        c.scrub_cycles = 5;
        c.chunks_verified = 500;
        c.wal_appends = 40;
        c.checkpoints = 2;
        assert!(c.clean(), "activity without divergence stays clean");
        c.torn_tails_truncated = 1;
        assert!(!c.clean(), "a truncated tail is a divergence event");
    }

    #[test]
    fn display_summarizes_the_ledger() {
        let c = IntegrityCounters {
            scrub_cycles: 3,
            chunks_verified: 96,
            mismatches: 2,
            repairs: 2,
            wal_syncs: 7,
            max_group_records: 32,
            delta_checkpoints: 4,
            ..Default::default()
        };
        let shown = c.to_string();
        assert!(shown.contains("scrubs=3"));
        assert!(shown.contains("chunks=96"));
        assert!(shown.contains("mismatches=2"));
        assert!(shown.contains("repairs=2"));
        assert!(shown.contains("wal_syncs=7"));
        assert!(shown.contains("max_group=32"));
        assert!(shown.contains("deltas=4"));
    }

    #[test]
    fn a_chainless_run_reports_dash_not_zero() {
        // No checkpoint ever ran: a 0 here would claim "full image,
        // current" — the zero-state lie this field exists to avoid.
        let none = IntegrityCounters::default();
        assert!(none.to_string().ends_with("chain=-"));
        let zero = IntegrityCounters {
            checkpoints: 1,
            delta_chain_len: Some(0),
            ..Default::default()
        };
        assert!(zero.to_string().ends_with("chain=0"));
        let some = IntegrityCounters {
            delta_checkpoints: 2,
            delta_chain_len: Some(2),
            ..Default::default()
        };
        assert!(some.to_string().ends_with("chain=2"));
    }
}
