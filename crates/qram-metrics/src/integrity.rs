//! Integrity counters for a durable, self-auditing serving fleet.
//!
//! Where [`AvailabilityCounters`](crate::AvailabilityCounters) account
//! for what the fault-*tolerance* machinery did (retries, failovers,
//! rejoins), [`IntegrityCounters`] account for what the fault-*auditing*
//! machinery did: how often the anti-entropy scrubber ran, how many
//! memory chunks it digested against the durable chain, how many
//! diverged, and how many repairs — replica image resets and re-appended
//! write-ahead-log tails — it performed. A report with non-zero
//! `mismatches` and matching `repairs` is a run where silent corruption
//! happened *and was driven back out*; a report with zero everything is
//! a run the scrubber certified clean.

use std::fmt;

/// Monotone counters describing the durability and anti-entropy work of
/// one serving run.
///
/// # Examples
///
/// ```
/// use qram_metrics::IntegrityCounters;
///
/// let mut counters = IntegrityCounters::default();
/// counters.scrub_cycles += 1;
/// counters.chunks_verified += 64;
/// assert!(counters.clean(), "verified chunks alone are not divergence");
/// counters.mismatches += 1;
/// counters.repairs += 1;
/// assert!(!counters.clean());
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IntegrityCounters {
    /// Anti-entropy scrub passes completed (scheduled ticks plus the
    /// final end-of-run sweep).
    pub scrub_cycles: u64,
    /// Per-replica memory chunks whose digest was compared against the
    /// durable chain's expected state.
    pub chunks_verified: u64,
    /// Chunks whose digest diverged from the durable chain.
    pub mismatches: u64,
    /// Repair actions taken: diverged replica images re-derived from the
    /// durable chain, and lost acknowledged WAL epochs re-appended.
    pub repairs: u64,
    /// Torn or corrupt WAL tails truncated by a scrub's disk audit.
    pub torn_tails_truncated: u64,
    /// Write-ahead-log records appended (one per durable fleet epoch,
    /// plus any re-appends after a tail truncation).
    pub wal_appends: u64,
    /// Checkpoint images installed (each compacts the WAL behind it).
    pub checkpoints: u64,
}

impl IntegrityCounters {
    /// True when no divergence was observed and nothing needed repair —
    /// the scrubber's clean bill of health (vacuously true when no
    /// scrubbing ran).
    #[must_use]
    pub fn clean(&self) -> bool {
        self.mismatches == 0 && self.repairs == 0 && self.torn_tails_truncated == 0
    }
}

impl fmt::Display for IntegrityCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scrubs={} chunks={} mismatches={} repairs={} torn_tails={} wal_appends={} checkpoints={}",
            self.scrub_cycles,
            self.chunks_verified,
            self.mismatches,
            self.repairs,
            self.torn_tails_truncated,
            self.wal_appends,
            self.checkpoints,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_tracks_divergence_not_activity() {
        let mut c = IntegrityCounters::default();
        assert!(c.clean(), "an idle run is clean");
        c.scrub_cycles = 5;
        c.chunks_verified = 500;
        c.wal_appends = 40;
        c.checkpoints = 2;
        assert!(c.clean(), "activity without divergence stays clean");
        c.torn_tails_truncated = 1;
        assert!(!c.clean(), "a truncated tail is a divergence event");
    }

    #[test]
    fn display_summarizes_the_ledger() {
        let c = IntegrityCounters {
            scrub_cycles: 3,
            chunks_verified: 96,
            mismatches: 2,
            repairs: 2,
            ..Default::default()
        };
        let shown = c.to_string();
        assert!(shown.contains("scrubs=3"));
        assert!(shown.contains("chunks=96"));
        assert!(shown.contains("mismatches=2"));
        assert!(shown.contains("repairs=2"));
    }
}
