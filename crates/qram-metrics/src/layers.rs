//! Circuit layers — the paper's device-independent time unit.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// The kind of circuit layer, which determines its duration.
///
/// The paper's resource estimates (Table 1) weight layers by gate speed:
/// a standard layer is dominated by an inter-node CSWAP (τ = 1 µs on
/// superconducting cavities), while intra-node SWAP gates and classically
/// controlled data-retrieval gates are roughly 8× faster (125 ns), so those
/// layers count as ⅛ of a standard layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// A layer executing CSWAP routing gates (or inter-node SWAPs).
    Standard,
    /// A layer of intra-node SWAP gates (Fat-Tree local swap steps,
    /// SWAP-I / SWAP-II).
    IntraNode,
    /// A layer of classically controlled gates (data retrieval).
    Classical,
}

/// A (possibly fractional) number of circuit layers.
///
/// Fractional values arise from the ⅛-weighting of intra-node and classical
/// layers; e.g. a bucket-brigade query of capacity `N = 2ⁿ` takes
/// `8n + 0.125` weighted layers.
///
/// # Examples
///
/// ```
/// use qram_metrics::Layers;
///
/// let loading = Layers::new(8.0) * 3.0;
/// let retrieval = Layers::new(0.125);
/// assert_eq!((loading + retrieval).get(), 24.125);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Layers(f64);

impl Layers {
    /// Zero layers.
    pub const ZERO: Layers = Layers(0.0);

    /// Creates a layer count.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is negative or not finite.
    #[must_use]
    pub fn new(layers: f64) -> Self {
        assert!(
            layers.is_finite() && layers >= 0.0,
            "layer count must be finite and non-negative, got {layers}"
        );
        Layers(layers)
    }

    /// The layer count as an `f64`.
    #[must_use]
    pub fn get(self) -> f64 {
        self.0
    }

    /// Saturating subtraction: returns zero instead of going negative.
    #[must_use]
    pub fn saturating_sub(self, rhs: Layers) -> Layers {
        Layers((self.0 - rhs.0).max(0.0))
    }

    /// Returns the larger of two layer counts.
    #[must_use]
    pub fn max(self, other: Layers) -> Layers {
        Layers(self.0.max(other.0))
    }

    /// Returns the smaller of two layer counts.
    #[must_use]
    pub fn min(self, other: Layers) -> Layers {
        Layers(self.0.min(other.0))
    }

    /// True when two layer counts agree to within `tol` layers.
    #[must_use]
    pub fn approx_eq(self, other: Layers, tol: f64) -> bool {
        (self.0 - other.0).abs() <= tol
    }
}

impl fmt::Display for Layers {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} layers", self.0)
    }
}

impl Add for Layers {
    type Output = Layers;
    fn add(self, rhs: Layers) -> Layers {
        Layers(self.0 + rhs.0)
    }
}

impl AddAssign for Layers {
    fn add_assign(&mut self, rhs: Layers) {
        self.0 += rhs.0;
    }
}

impl Sub for Layers {
    type Output = Layers;
    /// # Panics
    ///
    /// Panics (in debug builds) if the result would be negative; use
    /// [`Layers::saturating_sub`] when underflow is expected.
    fn sub(self, rhs: Layers) -> Layers {
        debug_assert!(
            self.0 >= rhs.0 - 1e-9,
            "layer subtraction underflow: {} - {}",
            self.0,
            rhs.0
        );
        Layers((self.0 - rhs.0).max(0.0))
    }
}

impl SubAssign for Layers {
    fn sub_assign(&mut self, rhs: Layers) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Layers {
    type Output = Layers;
    fn mul(self, rhs: f64) -> Layers {
        Layers::new(self.0 * rhs)
    }
}

impl Div<f64> for Layers {
    type Output = Layers;
    fn div(self, rhs: f64) -> Layers {
        Layers::new(self.0 / rhs)
    }
}

impl Div<Layers> for Layers {
    type Output = f64;
    fn div(self, rhs: Layers) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Layers {
    fn sum<I: Iterator<Item = Layers>>(iter: I) -> Layers {
        iter.fold(Layers::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Layers::new(8.0);
        let b = Layers::new(0.125);
        assert_eq!((a + b).get(), 8.125);
        assert_eq!((a - b).get(), 7.875);
        assert_eq!((a * 2.0).get(), 16.0);
        assert_eq!((a / 2.0).get(), 4.0);
        assert_eq!(a / b, 64.0);
    }

    #[test]
    fn sum_of_layers() {
        let total: Layers = (0..4).map(|_| Layers::new(2.5)).sum();
        assert_eq!(total.get(), 10.0);
    }

    #[test]
    fn saturating_sub_clamps() {
        assert_eq!(
            Layers::new(1.0).saturating_sub(Layers::new(3.0)),
            Layers::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_rejected() {
        let _ = Layers::new(-1.0);
    }

    #[test]
    fn approx_eq_tolerance() {
        assert!(Layers::new(1.0).approx_eq(Layers::new(1.0 + 1e-12), 1e-9));
        assert!(!Layers::new(1.0).approx_eq(Layers::new(1.1), 1e-9));
    }

    #[test]
    fn min_max() {
        let a = Layers::new(2.0);
        let b = Layers::new(3.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn display() {
        assert_eq!(Layers::new(8.25).to_string(), "8.25 layers");
    }
}
