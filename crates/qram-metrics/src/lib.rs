//! Units and performance metrics for shared-QRAM architectures.
//!
//! The Fat-Tree QRAM paper (ASPLOS '25) measures architectures in
//! *circuit layers* — logical time steps in which all gates execute in
//! parallel — and converts them to wall-clock time through a hardware
//! timing model (CSWAP gate time τ = 1 µs, intra-node SWAP and classically
//! controlled gates at τ/8). This crate provides the strongly-typed units
//! used by every other crate in the workspace:
//!
//! * [`Capacity`] — a power-of-two memory size `N` with address width
//!   `n = log₂(N)`.
//! * [`Layers`] — a (possibly fractional) number of circuit layers.
//! * [`TimingModel`] — gate times and the conversion from layers to seconds
//!   (and to CLOPS, Circuit Layer Operations Per Second).
//! * [`Bandwidth`], [`QueryRate`], [`SpaceTimeVolume`], [`MemoryAccessRate`],
//!   [`Utilization`] — the shared-QRAM metrics defined in §6.2 of the paper.
//! * [`LatencyHistogram`] — a log-bucketed response-latency histogram for
//!   the online serving layer (§5), and [`HistogramFamily`] — per-tenant /
//!   per-replica keyed aggregation of such histograms for fleet reports.
//! * [`AvailabilityCounters`] — the fault-tolerance ledger of a serving
//!   run: retries, hedges, failovers, detected corruptions, and MTTR.
//! * [`IntegrityCounters`] — the durability/anti-entropy ledger: scrub
//!   cycles, digested chunks, divergence, repairs, WAL appends, and
//!   checkpoints.
//!
//! # Examples
//!
//! ```
//! use qram_metrics::{Capacity, TimingModel, Layers};
//!
//! let n = Capacity::new(1024)?;
//! assert_eq!(n.address_width(), 10);
//!
//! let timing = TimingModel::paper_default();
//! // One standard circuit layer takes 1 µs at 10⁶ CLOPS.
//! assert_eq!(timing.layers_to_seconds(Layers::new(1.0)), 1e-6);
//! # Ok::<(), qram_metrics::CapacityError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod availability;
mod bandwidth;
mod capacity;
mod family;
mod histogram;
mod integrity;
mod layers;
mod timing;
mod utilization;

pub use availability::AvailabilityCounters;
pub use bandwidth::{Bandwidth, MemoryAccessRate, QueryRate, SpaceTimeVolume};
pub use capacity::{Capacity, CapacityError};
pub use family::HistogramFamily;
pub use histogram::LatencyHistogram;
pub use integrity::IntegrityCounters;
pub use layers::{LayerKind, Layers};
pub use timing::{Clops, TimingModel};
pub use utilization::{Utilization, UtilizationTrace};
