//! Hardware timing model: gate times, layer weights, CLOPS.

use crate::{LayerKind, Layers};

/// Circuit Layer Operations Per Second — the device clock speed used to
/// convert circuit layers to wall-clock time (Amico et al., 2023).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Clops(f64);

impl Clops {
    /// Creates a CLOPS value.
    ///
    /// # Panics
    ///
    /// Panics if `clops` is not strictly positive and finite.
    #[must_use]
    pub fn new(clops: f64) -> Self {
        assert!(
            clops.is_finite() && clops > 0.0,
            "CLOPS must be positive and finite, got {clops}"
        );
        Clops(clops)
    }

    /// The raw operations-per-second value.
    #[must_use]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl std::fmt::Display for Clops {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3e} CLOPS", self.0)
    }
}

/// The hardware timing model of §7.1: gate durations for the three gate
/// classes appearing in a Fat-Tree QRAM.
///
/// The paper's default (superconducting cavities, Weiss et al. 2024) is a
/// CSWAP time of τ = 1 µs and intra-node SWAP / classically controlled gate
/// times of τ/8 = 125 ns, giving a clock speed of 10⁶ CLOPS and a layer
/// weight of ⅛ for swap and data-retrieval layers.
///
/// # Examples
///
/// ```
/// use qram_metrics::{TimingModel, LayerKind};
///
/// let t = TimingModel::paper_default();
/// assert_eq!(t.layer_weight(LayerKind::Standard), 1.0);
/// assert_eq!(t.layer_weight(LayerKind::IntraNode), 0.125);
/// assert_eq!(t.clops().get(), 1.0e6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingModel {
    cswap_seconds: f64,
    intra_node_seconds: f64,
    classical_seconds: f64,
}

impl TimingModel {
    /// The paper's realistic superconducting-cavity parameters:
    /// CSWAP = 1 µs, intra-node SWAP = classical gates = 125 ns.
    #[must_use]
    pub fn paper_default() -> Self {
        TimingModel {
            cswap_seconds: 1.0e-6,
            intra_node_seconds: 0.125e-6,
            classical_seconds: 0.125e-6,
        }
    }

    /// Creates a custom timing model from the three gate durations
    /// (in seconds).
    ///
    /// # Panics
    ///
    /// Panics if any duration is non-positive or non-finite, or if the
    /// intra-node / classical gates are slower than the CSWAP (the layer
    /// weighting scheme assumes the CSWAP dominates a standard layer).
    #[must_use]
    pub fn new(cswap_seconds: f64, intra_node_seconds: f64, classical_seconds: f64) -> Self {
        for (name, value) in [
            ("cswap", cswap_seconds),
            ("intra-node", intra_node_seconds),
            ("classical", classical_seconds),
        ] {
            assert!(
                value.is_finite() && value > 0.0,
                "{name} gate time must be positive and finite, got {value}"
            );
        }
        assert!(
            intra_node_seconds <= cswap_seconds && classical_seconds <= cswap_seconds,
            "intra-node and classical gates must not be slower than the CSWAP"
        );
        TimingModel {
            cswap_seconds,
            intra_node_seconds,
            classical_seconds,
        }
    }

    /// Duration of a single layer of the given kind, in seconds.
    #[must_use]
    pub fn layer_seconds(&self, kind: LayerKind) -> f64 {
        match kind {
            LayerKind::Standard => self.cswap_seconds,
            LayerKind::IntraNode => self.intra_node_seconds,
            LayerKind::Classical => self.classical_seconds,
        }
    }

    /// Weight of a layer of the given kind relative to a standard layer.
    ///
    /// With the paper defaults this is 1 for standard layers and ⅛ for
    /// intra-node and classical layers — the weighting behind every entry
    /// of Table 1.
    #[must_use]
    pub fn layer_weight(&self, kind: LayerKind) -> f64 {
        self.layer_seconds(kind) / self.cswap_seconds
    }

    /// The device clock speed: one standard layer per `cswap` time.
    #[must_use]
    pub fn clops(&self) -> Clops {
        Clops::new(1.0 / self.cswap_seconds)
    }

    /// Converts a weighted layer count to seconds.
    #[must_use]
    pub fn layers_to_seconds(&self, layers: Layers) -> f64 {
        layers.get() * self.cswap_seconds
    }

    /// Converts a weighted layer count to microseconds (the unit used in
    /// Table 2's classical-memory-swap budget row).
    #[must_use]
    pub fn layers_to_micros(&self, layers: Layers) -> f64 {
        self.layers_to_seconds(layers) * 1e6
    }
}

impl Default for TimingModel {
    fn default() -> Self {
        TimingModel::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_weights() {
        let t = TimingModel::paper_default();
        assert_eq!(t.layer_weight(LayerKind::Standard), 1.0);
        assert_eq!(t.layer_weight(LayerKind::IntraNode), 0.125);
        assert_eq!(t.layer_weight(LayerKind::Classical), 0.125);
    }

    #[test]
    fn clops_is_inverse_cswap_time() {
        assert_eq!(TimingModel::paper_default().clops().get(), 1e6);
        let slow = TimingModel::new(2e-6, 1e-6, 1e-6);
        assert_eq!(slow.clops().get(), 0.5e6);
    }

    #[test]
    fn conversion_to_seconds() {
        let t = TimingModel::paper_default();
        let amortized = Layers::new(8.25);
        assert!((t.layers_to_seconds(amortized) - 8.25e-6).abs() < 1e-15);
        assert!((t.layers_to_micros(amortized) - 8.25).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must not be slower")]
    fn rejects_slow_intra_node() {
        let _ = TimingModel::new(1e-6, 2e-6, 1e-7);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn rejects_zero_gate_time() {
        let _ = TimingModel::new(0.0, 1e-7, 1e-7);
    }

    #[test]
    fn default_is_paper_default() {
        assert_eq!(TimingModel::default(), TimingModel::paper_default());
    }

    #[test]
    fn clops_display() {
        assert_eq!(Clops::new(1e6).to_string(), "1.000e6 CLOPS");
    }
}
