//! QRAM hardware utilization (§5.1, Fig. 7, Fig. 10).

use std::fmt;

use crate::Layers;

/// Fraction of a shared QRAM's query parallelism that is in use, in `[0, 1]`.
///
/// State-of-the-art sequential QRAMs have binary utilization (0 or 1); a
/// capacity-`N` Fat-Tree QRAM pipelines up to `log₂ N` queries, so its
/// utilization varies continuously (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Utilization(f64);

impl Utilization {
    /// Fully idle.
    pub const IDLE: Utilization = Utilization(0.0);
    /// Fully busy.
    pub const FULL: Utilization = Utilization(1.0);

    /// Creates a utilization value.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]` or non-finite.
    #[must_use]
    pub fn new(fraction: f64) -> Self {
        assert!(
            fraction.is_finite() && (0.0..=1.0).contains(&fraction),
            "utilization must lie in [0, 1], got {fraction}"
        );
        Utilization(fraction)
    }

    /// Utilization from a count of busy slots out of a total.
    ///
    /// # Panics
    ///
    /// Panics if `busy > total` or `total == 0`.
    #[must_use]
    pub fn from_slots(busy: u32, total: u32) -> Self {
        assert!(total > 0, "total slots must be positive");
        assert!(busy <= total, "busy slots {busy} exceed total {total}");
        Utilization(f64::from(busy) / f64::from(total))
    }

    /// The fraction in `[0, 1]`.
    #[must_use]
    pub fn get(self) -> f64 {
        self.0
    }

    /// The fraction as a percentage in `[0, 100]`.
    #[must_use]
    pub fn percent(self) -> f64 {
        self.0 * 100.0
    }
}

impl fmt::Display for Utilization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}%", self.percent())
    }
}

/// A piecewise-constant utilization timeline: the staircase plotted at the
/// bottom of Fig. 7.
///
/// Segments are appended in time order; the trace can then report the
/// time-weighted average utilization over the whole run.
///
/// # Examples
///
/// ```
/// use qram_metrics::{Layers, Utilization, UtilizationTrace};
///
/// let mut trace = UtilizationTrace::new();
/// trace.push(Layers::new(10.0), Utilization::new(1.0));
/// trace.push(Layers::new(10.0), Utilization::new(0.5));
/// assert!((trace.average().get() - 0.75).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UtilizationTrace {
    segments: Vec<(Layers, Utilization)>,
}

impl UtilizationTrace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        UtilizationTrace::default()
    }

    /// Appends a segment lasting `duration` at the given utilization.
    /// Zero-duration segments are ignored.
    pub fn push(&mut self, duration: Layers, utilization: Utilization) {
        if duration > Layers::ZERO {
            self.segments.push((duration, utilization));
        }
    }

    /// Total duration covered by the trace.
    #[must_use]
    pub fn total_duration(&self) -> Layers {
        self.segments.iter().map(|(d, _)| *d).sum()
    }

    /// Time-weighted average utilization; zero for an empty trace.
    #[must_use]
    pub fn average(&self) -> Utilization {
        let total = self.total_duration().get();
        if total == 0.0 {
            return Utilization::IDLE;
        }
        let weighted: f64 = self.segments.iter().map(|(d, u)| d.get() * u.get()).sum();
        Utilization::new(weighted / total)
    }

    /// Iterates over `(duration, utilization)` segments in time order.
    pub fn iter(&self) -> impl Iterator<Item = &(Layers, Utilization)> {
        self.segments.iter()
    }

    /// Number of segments.
    #[must_use]
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// True when the trace has no segments.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }
}

impl Extend<(Layers, Utilization)> for UtilizationTrace {
    fn extend<T: IntoIterator<Item = (Layers, Utilization)>>(&mut self, iter: T) {
        for (d, u) in iter {
            self.push(d, u);
        }
    }
}

impl FromIterator<(Layers, Utilization)> for UtilizationTrace {
    fn from_iter<T: IntoIterator<Item = (Layers, Utilization)>>(iter: T) -> Self {
        let mut trace = UtilizationTrace::new();
        trace.extend(iter);
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_slots() {
        assert_eq!(Utilization::from_slots(2, 3).get(), 2.0 / 3.0);
        assert_eq!(Utilization::from_slots(0, 10), Utilization::IDLE);
        assert_eq!(Utilization::from_slots(10, 10), Utilization::FULL);
    }

    #[test]
    #[should_panic(expected = "exceed total")]
    fn busy_exceeding_total_rejected() {
        let _ = Utilization::from_slots(4, 3);
    }

    #[test]
    #[should_panic(expected = "in [0, 1]")]
    fn out_of_range_rejected() {
        let _ = Utilization::new(1.5);
    }

    #[test]
    fn empty_trace_average_is_idle() {
        assert_eq!(UtilizationTrace::new().average(), Utilization::IDLE);
    }

    #[test]
    fn weighted_average() {
        let trace: UtilizationTrace = [
            (Layers::new(30.0), Utilization::new(1.0)),
            (Layers::new(10.0), Utilization::new(0.0)),
        ]
        .into_iter()
        .collect();
        assert!((trace.average().get() - 0.75).abs() < 1e-12);
        assert_eq!(trace.total_duration(), Layers::new(40.0));
        assert_eq!(trace.len(), 2);
        assert!(!trace.is_empty());
    }

    #[test]
    fn zero_duration_segments_ignored() {
        let mut trace = UtilizationTrace::new();
        trace.push(Layers::ZERO, Utilization::FULL);
        assert!(trace.is_empty());
    }

    #[test]
    fn display_percent() {
        assert_eq!(Utilization::new(0.666).to_string(), "66.6%");
    }
}
