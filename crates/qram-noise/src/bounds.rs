//! Analytic query-fidelity bounds (§8.1, Table 3, Fig. 11).
//!
//! Bucket-brigade style QRAM has *intrinsic noise resilience*: only the
//! `O(log² N)` gates along active branches damage a query, not the `O(N)`
//! idle routers, so infidelity scales as `2·log²(N)·Σεᵢ`. A generic circuit
//! (GC) occupying the same hardware for the same duration has worst-case
//! infidelity linear in its space-time volume — exponentially worse in the
//! tree depth.

use qram_core::{GateClass, QramModel};
use qram_metrics::Capacity;

use crate::rates::GateErrorRates;

/// Analytic query-infidelity upper bound `2·log²(N)·Σεᵢ` for a
/// [`QramModel`] backend, summing only the error rates of gate classes the
/// backend actually schedules (presence is derived from its instruction
/// stream, so no per-architecture dispatch is needed). Reproduces
/// [`fat_tree_query_infidelity`] and [`bb_query_infidelity`] for the two
/// built-in architectures.
///
/// The `2·log²(N)` prefactor is the paper's active-branch gate-count bound
/// for bucket-brigade-style tree traversals (§8.1) and is *assumed*, not
/// derived: a future backend whose per-query stream executes asymptotically
/// more than `O(log² N)` gates per class on the active branch (e.g. a
/// paging/virtual scheme) needs its own bound.
#[must_use]
pub fn query_infidelity_bound<M: QramModel + ?Sized>(model: &M, rates: &GateErrorRates) -> f64 {
    // Class presence comes from the compiled plan's gate counts when the
    // backend has one (no stream walk at all); otherwise from scanning
    // the interned stream for op classes. The two agree on the built-in
    // streams; they differ only for a stream whose op of some class
    // executes zero gates (e.g. a swap step with nothing in flight) —
    // there the count-based answer excludes a class that contributes no
    // physical error, which keeps the bound an upper bound and tightens
    // it.
    let (has_cswap, has_inter, has_local) = match model.compiled_query() {
        Some(plan) => {
            let counts = plan.gate_counts();
            (
                counts.cswap > 0,
                counts.inter_node_swap > 0,
                counts.local_swap > 0,
            )
        }
        None => {
            let layers = model.interned_query_layers();
            let uses = |class: GateClass| {
                layers
                    .iter()
                    .any(|layer| layer.ops.iter().any(|op| op.gate_class() == class))
            };
            (
                uses(GateClass::Cswap),
                uses(GateClass::InterNodeSwap),
                uses(GateClass::LocalSwap),
            )
        }
    };
    let mut sum = 0.0;
    if has_cswap {
        sum += rates.e0;
    }
    if has_inter {
        sum += rates.e1;
    }
    if has_local {
        sum += rates.e2;
    }
    let n = model.capacity().n_f64();
    (2.0 * n * n * sum).min(1.0)
}

/// Lower bound on Fat-Tree query fidelity:
/// `F ≥ 1 − 2·log²(N)·(ε₀ + ε₁ + ε₂)` (§8.1).
#[must_use]
pub fn fat_tree_query_fidelity(capacity: Capacity, rates: &GateErrorRates) -> f64 {
    (1.0 - fat_tree_query_infidelity(capacity, rates)).max(0.0)
}

/// Fat-Tree query infidelity upper bound `2·log²(N)·(ε₀ + ε₁ + ε₂)`,
/// clamped to 1.
#[must_use]
pub fn fat_tree_query_infidelity(capacity: Capacity, rates: &GateErrorRates) -> f64 {
    let n = capacity.n_f64();
    (2.0 * n * n * rates.sum()).min(1.0)
}

/// Bucket-brigade query infidelity upper bound `2·log²(N)·(ε₀ + ε₁)`
/// (Hann et al. 2021) — no local swap steps, hence no `ε₂` term.
#[must_use]
pub fn bb_query_infidelity(capacity: Capacity, rates: &GateErrorRates) -> f64 {
    let n = capacity.n_f64();
    (2.0 * n * n * (rates.e0 + rates.e1)).min(1.0)
}

/// Bucket-brigade query fidelity lower bound.
#[must_use]
pub fn bb_query_fidelity(capacity: Capacity, rates: &GateErrorRates) -> f64 {
    (1.0 - bb_query_infidelity(capacity, rates)).max(0.0)
}

/// Worst-case infidelity of a *generic circuit* (GC) occupying the same
/// hardware for the same duration as one QRAM query: linear in the circuit
/// size — all `≈2N` routers firing one gate in each of the `2n` gate
/// steps (`4·N·n` gate opportunities at the mean class rate) — hence
/// exponential in the tree depth, unlike QRAM's `log² N` resilience
/// (the standard assumption in formal fault-tolerance analyses, §8.3.1).
#[must_use]
pub fn generic_circuit_infidelity(capacity: Capacity, rates: &GateErrorRates) -> f64 {
    let n = capacity.n_f64();
    let gates = 4.0 * capacity.capacity_f64() * n;
    (gates * rates.sum() / 3.0).min(1.0)
}

/// One row of Table 3: query infidelity of a capacity-`N` QRAM for a given
/// CSWAP error rate `ε₀` (with the paper's proportions ε₁ = ε₀,
/// ε₂ = ε₀/2, giving `5·log²(N)·ε₀`).
#[must_use]
pub fn table3_infidelity(capacity: Capacity, e0: f64) -> f64 {
    fat_tree_query_infidelity(capacity, &GateErrorRates::from_cswap_rate(e0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cap(n: u64) -> Capacity {
        Capacity::new(n).unwrap()
    }

    #[test]
    fn table3_exact_values() {
        // Paper's Table 3, ε₀ = 10⁻³ column: 0.045 / 0.08 / 0.125 / 0.18.
        assert!((table3_infidelity(cap(8), 1e-3) - 0.045).abs() < 1e-12);
        assert!((table3_infidelity(cap(16), 1e-3) - 0.08).abs() < 1e-12);
        assert!((table3_infidelity(cap(32), 1e-3) - 0.125).abs() < 1e-12);
        assert!((table3_infidelity(cap(64), 1e-3) - 0.18).abs() < 1e-12);
        // ε₀ = 10⁻⁴ column scales by 10.
        assert!((table3_infidelity(cap(16), 1e-4) - 0.008).abs() < 1e-12);
        assert!((table3_infidelity(cap(64), 1e-5) - 0.0018).abs() < 1e-12);
    }

    #[test]
    fn table4_pre_distillation_fidelities() {
        // N = 16, ε₀ = 2·10⁻³: Fat-Tree 0.84, BB 0.872 (§8.2).
        let rates = GateErrorRates::from_cswap_rate(2e-3);
        assert!((fat_tree_query_fidelity(cap(16), &rates) - 0.84).abs() < 1e-12);
        assert!((bb_query_fidelity(cap(16), &rates) - 0.872).abs() < 1e-12);
    }

    #[test]
    fn fat_tree_overhead_is_constant_factor_over_bb() {
        // Fig. 11: Fat-Tree infidelity is only 0.25× worse than BB
        // (the ε₂ term over ε₀ + ε₁).
        let rates = GateErrorRates::paper_default();
        for n in [8u64, 64, 1024] {
            let ft = fat_tree_query_infidelity(cap(n), &rates);
            let bb = bb_query_infidelity(cap(n), &rates);
            assert!((ft / bb - 1.25).abs() < 1e-9, "N={n}");
        }
    }

    #[test]
    fn qram_beats_generic_circuit_exponentially() {
        let rates = GateErrorRates::from_cswap_rate(1e-5);
        let mut advantage_prev = 0.0;
        for n in [16u64, 64, 256] {
            let qram = fat_tree_query_infidelity(cap(n), &rates);
            let gc = generic_circuit_infidelity(cap(n), &rates);
            let advantage = gc / qram;
            assert!(advantage > 1.0, "N={n}");
            assert!(advantage > advantage_prev, "advantage must grow with N");
            advantage_prev = advantage;
        }
    }

    #[test]
    fn generic_bound_matches_closed_forms() {
        use qram_core::{BucketBrigadeQram, FatTreeQram};
        let rates = GateErrorRates::paper_default();
        for n in [8u64, 64, 1024] {
            let c = cap(n);
            let ft = query_infidelity_bound(&FatTreeQram::new(c), &rates);
            assert!(
                (ft - fat_tree_query_infidelity(c, &rates)).abs() < 1e-15,
                "N={n}"
            );
            let bb = query_infidelity_bound(&BucketBrigadeQram::new(c), &rates);
            assert!((bb - bb_query_infidelity(c, &rates)).abs() < 1e-15, "N={n}");
        }
    }

    #[test]
    fn generic_bound_covers_sharded_backends() {
        use qram_core::ShardedQram;
        let rates = GateErrorRates::paper_default();
        for (n, k) in [(64u64, 2u32), (1024, 4), (1024, 8)] {
            let c = cap(n);
            // The sharded machine's whole-query stream is the equivalent
            // monolithic capacity-N stream (routing log₂ K bits plus one
            // shard traversal), so the 2·log²(N) bound applies unchanged.
            let sharded = query_infidelity_bound(&ShardedQram::fat_tree(c, k), &rates);
            assert!(
                (sharded - fat_tree_query_infidelity(c, &rates)).abs() < 1e-15,
                "N={n} K={k}"
            );
            let bb = query_infidelity_bound(&ShardedQram::bucket_brigade(c, k), &rates);
            assert!(
                (bb - bb_query_infidelity(c, &rates)).abs() < 1e-15,
                "N={n} K={k}"
            );
        }
    }

    #[test]
    fn infidelity_clamps_at_one() {
        let rates = GateErrorRates::new(0.5, 0.5, 0.5);
        assert_eq!(fat_tree_query_infidelity(cap(1 << 10), &rates), 1.0);
        assert_eq!(fat_tree_query_fidelity(cap(1 << 10), &rates), 0.0);
    }
}
