//! Virtual distillation with parallel queries (§8.2, Table 4).
//!
//! A Fat-Tree QRAM can prepare `k` identical noisy copies of a query state
//! *in parallel* and estimate observables on the virtually distilled state
//! `ρᵏ / Tr(ρᵏ)`, suppressing the error component exponentially: for
//! `ρ = (1−ε)·ρ₀ + ε·ρ_err` with an orthogonal error component, the
//! distilled infidelity is ≈ `εᵏ`.

use qram_metrics::Capacity;

use crate::bounds;
use crate::rates::GateErrorRates;

/// Distilled infidelity of `k` copies of a state with infidelity `eps`,
/// assuming independent stochastic errors with orthogonal error
/// components: `εᵏ` — the error term survives only if all `k` copies share
/// it (§8.2; reproduces Table 4's `1 − 0.16⁴ ≈ 0.9994`).
///
/// This is an upper bound on the exact `ρᵏ/Tr(ρᵏ)` infidelity: for error
/// components spread over more than one orthogonal state, the suppression
/// is even stronger (validated against the density-matrix simulator in the
/// tests).
///
/// # Panics
///
/// Panics if `eps ∉ [0, 1]` or `k == 0`.
#[must_use]
pub fn distilled_infidelity(eps: f64, k: u32) -> f64 {
    assert!((0.0..=1.0).contains(&eps), "infidelity must be in [0, 1]");
    assert!(k >= 1, "at least one copy");
    eps.powi(k as i32).min(1.0)
}

/// A virtual-distillation plan on a shared QRAM: group the machine's
/// parallel queries into distillation groups of `copies` each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistillationPlan {
    /// Copies per distilled logical query.
    pub copies: u32,
    /// Distilled logical queries still available in parallel
    /// (`⌊parallelism / copies⌋`, §8.2's parallelism–fidelity trade-off).
    pub parallel_groups: u32,
}

impl DistillationPlan {
    /// Plans distillation with `copies` per group on a machine with the
    /// given query parallelism.
    ///
    /// # Panics
    ///
    /// Panics if `copies == 0` or `copies > parallelism`.
    #[must_use]
    pub fn new(parallelism: u32, copies: u32) -> Self {
        assert!(copies >= 1, "at least one copy per group");
        assert!(
            copies <= parallelism,
            "cannot distill {copies} copies on parallelism {parallelism}"
        );
        DistillationPlan {
            copies,
            parallel_groups: parallelism / copies,
        }
    }
}

/// One comparison row of Table 4.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table4Row {
    /// Architecture label.
    pub architecture: &'static str,
    /// Copies prepared in parallel for distillation.
    pub copies: u32,
    /// Single-query fidelity before distillation.
    pub fidelity_before: f64,
    /// Fidelity after virtual distillation.
    pub fidelity_after: f64,
}

/// Reproduces Table 4: on a 256-qubit budget, one capacity-16 Fat-Tree
/// (4 parallel queries) vs two capacity-16 BB QRAMs (2 parallel queries),
/// at `ε₀ = 2·10⁻³`.
#[must_use]
pub fn table4() -> [Table4Row; 2] {
    let capacity = Capacity::new(16).expect("16 is a power of two");
    let rates = GateErrorRates::from_cswap_rate(2e-3);
    let ft_eps = bounds::fat_tree_query_infidelity(capacity, &rates);
    let bb_eps = bounds::bb_query_infidelity(capacity, &rates);
    [
        Table4Row {
            architecture: "Fat-Tree",
            copies: 4,
            fidelity_before: 1.0 - ft_eps,
            fidelity_after: 1.0 - distilled_infidelity(ft_eps, 4),
        },
        Table4Row {
            architecture: "2 BB",
            copies: 2,
            fidelity_before: 1.0 - bb_eps,
            fidelity_after: 1.0 - distilled_infidelity(bb_eps, 2),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::density::DensityMatrix;
    use qsim::state::StateVector;

    #[test]
    fn table4_matches_paper() {
        let [ft, bb] = table4();
        assert!((ft.fidelity_before - 0.84).abs() < 1e-12);
        assert!((bb.fidelity_before - 0.872).abs() < 1e-12);
        // Paper: 0.9994 and 0.984.
        assert!(
            (ft.fidelity_after - 0.9994).abs() < 5e-4,
            "{}",
            ft.fidelity_after
        );
        assert!(
            (bb.fidelity_after - 0.984).abs() < 1e-3,
            "{}",
            bb.fidelity_after
        );
        // Fat-Tree's 4 copies beat BB's 2 exponentially.
        assert!((1.0 - ft.fidelity_after) < (1.0 - bb.fidelity_after) / 10.0);
    }

    #[test]
    fn distillation_matches_density_matrix_simulation() {
        // Cross-validate the closed form against exact ρᵏ/Tr(ρᵏ) from the
        // density-matrix simulator on a 2-qubit state.
        let mut psi = StateVector::new(2);
        psi.apply_h(0);
        psi.apply_cnot(0, 1);
        let ideal = DensityMatrix::from_pure(&psi);
        let err = DensityMatrix::orthogonal_error(&psi);
        for eps in [0.05, 0.16, 0.3] {
            let rho = ideal.mix(&err, eps);
            for k in [2u32, 3, 4] {
                let exact = 1.0 - rho.distill(k).fidelity_with_pure(&psi);
                let closed = distilled_infidelity(eps, k);
                // The closed form assumes a 1-D error space; the exact
                // 3-D orthogonal error is *more* suppressed, so the
                // closed form upper-bounds the exact value.
                assert!(
                    exact <= closed * 1.01,
                    "eps={eps} k={k}: exact {exact} > closed {closed}"
                );
                assert!(exact > 0.0, "suppression is exponential, not total");
            }
        }
    }

    #[test]
    fn one_copy_is_identity() {
        assert!((distilled_infidelity(0.3, 1) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn more_copies_always_help_below_half() {
        for eps in [0.01, 0.1, 0.4] {
            let mut prev = 1.0;
            for k in 1..6 {
                let e = distilled_infidelity(eps, k);
                assert!(e < prev, "eps={eps} k={k}");
                prev = e;
            }
        }
    }

    #[test]
    fn plan_trades_parallelism_for_fidelity() {
        // log(N) = 8 parallel queries: 4 copies → 2 distilled groups.
        let plan = DistillationPlan::new(8, 4);
        assert_eq!(plan.parallel_groups, 2);
        let full = DistillationPlan::new(8, 8);
        assert_eq!(full.parallel_groups, 1);
    }

    #[test]
    #[should_panic(expected = "cannot distill")]
    fn oversubscribed_plan_rejected() {
        let _ = DistillationPlan::new(4, 5);
    }
}
