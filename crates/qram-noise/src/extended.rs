//! Extended noise models (§8.1's pointer to Mehta et al. 2024): router
//! initialization errors and spatially/temporally correlated error bursts,
//! injected through the instruction-level executor.
//!
//! The paper claims Fat-Tree QRAM "is compatible with the error-robust
//! analysis in \[41\], where this error resilience is extended to more
//! generic error models". This module measures that: even with imperfect
//! router initialization and correlated bursts, the infidelity remains
//! polylogarithmic in `N` because only faults touching *active* branches
//! matter.

use qram_core::exec::execute_layers_noisy;
use qram_core::query_ops::QueryLayer;
use qram_core::{GateClass, QramModel};
use qsim::branch::{AddressState, ClassicalMemory};
use qsim::noise::FidelityEstimator;
use rand::Rng;

use crate::rates::GateErrorRates;

/// Parameters of the extended noise model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExtendedNoise {
    /// Per-gate stochastic error rates (the baseline model).
    pub gate_rates: GateErrorRates,
    /// Probability that a router on the active path was imperfectly
    /// initialized (not reset to `|W⟩` before the query).
    pub init_error: f64,
    /// Probability per circuit layer of a correlated burst that faults
    /// every gate executed in that layer.
    pub burst_rate: f64,
}

impl ExtendedNoise {
    /// The baseline model with no extended errors.
    #[must_use]
    pub fn gates_only(gate_rates: GateErrorRates) -> Self {
        ExtendedNoise {
            gate_rates,
            init_error: 0.0,
            burst_rate: 0.0,
        }
    }

    /// Validates all probabilities.
    ///
    /// # Panics
    ///
    /// Panics if any probability lies outside `[0, 1]`.
    pub fn validate(&self) {
        for (name, p) in [
            ("init_error", self.init_error),
            ("burst_rate", self.burst_rate),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name} = {p} outside [0, 1]");
        }
    }
}

/// Estimates the query fidelity of any [`QramModel`] backend under the
/// extended noise model — architecture-agnostic: bursts and initialization
/// errors are injected into whatever instruction stream the backend
/// generates.
///
/// # Panics
///
/// Panics if probabilities are invalid or the backend generates a
/// malformed instruction stream (a bug).
pub fn estimate_extended_fidelity<M: QramModel + ?Sized, R: Rng + ?Sized>(
    model: &M,
    memory: &ClassicalMemory,
    address: &AddressState,
    noise: &ExtendedNoise,
    trials: u32,
    rng: &mut R,
) -> FidelityEstimator {
    estimate_extended_layers_fidelity(
        &model.interned_query_layers(),
        memory,
        address,
        noise,
        trials,
        rng,
    )
}

/// Estimates query fidelity under the extended noise model for an explicit
/// instruction stream, by trajectory sampling. Initialization errors
/// corrupt each of the `log₂ N` active-path routers independently at query
/// start; bursts fault all gates of a layer at once.
///
/// # Panics
///
/// Panics if probabilities are invalid or the instruction stream is
/// malformed.
pub fn estimate_extended_layers_fidelity<R: Rng + ?Sized>(
    layers: &[QueryLayer],
    memory: &ClassicalMemory,
    address: &AddressState,
    noise: &ExtendedNoise,
    trials: u32,
    rng: &mut R,
) -> FidelityEstimator {
    noise.validate();
    let n = memory.address_width();
    let mut estimator = FidelityEstimator::new();
    for _ in 0..trials {
        // Initialization errors: each active-path router independently.
        let mut init_corrupted = false;
        for _ in 0..n {
            if noise.init_error > 0.0 && rng.random::<f64>() < noise.init_error {
                init_corrupted = true;
            }
        }
        if init_corrupted {
            estimator.record(0.0);
            continue;
        }
        // Pre-sample which layers suffer a correlated burst.
        let burst: Vec<bool> = (0..layers.len())
            .map(|_| noise.burst_rate > 0.0 && rng.random::<f64>() < noise.burst_rate)
            .collect();
        // Count gates per layer while walking, faulting whole layers.
        let mut gates_seen = 0usize;
        let layer_of_gate = {
            // Precompute cumulative gate index → layer mapping lazily via a
            // counter advanced in lockstep with the executor's fault calls.
            let mut per_layer_end = Vec::with_capacity(layers.len());
            let mut acc = 0usize;
            for layer in layers {
                // Upper bound on fault callbacks per layer: every op can
                // touch at most n + 1 qubits (swap steps).
                acc += layer.ops.len() * (n as usize + 1);
                per_layer_end.push(acc);
            }
            per_layer_end
        };
        let survival = execute_layers_noisy(layers, memory, address, |class| {
            let layer_idx = layer_of_gate
                .iter()
                .position(|&end| gates_seen < end)
                .unwrap_or(layers.len() - 1);
            gates_seen += 1;
            if burst[layer_idx] {
                return true;
            }
            let p = match class {
                GateClass::Cswap => noise.gate_rates.e0,
                GateClass::InterNodeSwap => noise.gate_rates.e1,
                GateClass::LocalSwap => noise.gate_rates.e2,
                GateClass::Classical => 0.0,
            };
            p > 0.0 && rng.random::<f64>() < p
        })
        .expect("instruction stream must be valid");
        estimator.record(survival * survival);
    }
    estimator
}

/// First-order analytic infidelity under the extended model:
/// `2n²Σε + n·p_init + L·p_burst` with `L` the layer count — still
/// polylogarithmic in `N` for fixed rates.
#[must_use]
pub fn extended_infidelity_bound(
    capacity: qram_metrics::Capacity,
    noise: &ExtendedNoise,
    layer_count: usize,
) -> f64 {
    let n = capacity.n_f64();
    (2.0 * n * n * noise.gate_rates.sum()
        + n * noise.init_error
        + layer_count as f64 * noise.burst_rate)
        .min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qram_core::FatTreeQram;
    use qram_metrics::Capacity;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(n: u32) -> (FatTreeQram, ClassicalMemory, AddressState) {
        let capacity = Capacity::from_address_width(n);
        let cells: Vec<u64> = (0..capacity.get()).map(|i| i % 2).collect();
        (
            FatTreeQram::new(capacity),
            ClassicalMemory::from_words(1, &cells).unwrap(),
            AddressState::classical(n, 2).unwrap(),
        )
    }

    #[test]
    fn gates_only_matches_baseline_estimator() {
        let mut rng = StdRng::seed_from_u64(17);
        let (qram, mem, addr) = setup(4);
        let noise = ExtendedNoise::gates_only(GateErrorRates::from_cswap_rate(1e-3));
        let est = estimate_extended_fidelity(&qram, &mem, &addr, &noise, 3000, &mut rng);
        let bound = extended_infidelity_bound(qram.capacity(), &noise, qram.query_layers().len());
        let empirical = 1.0 - est.mean();
        assert!(empirical <= bound * 1.3, "{empirical} vs bound {bound}");
    }

    #[test]
    fn init_errors_add_linear_term() {
        let mut rng = StdRng::seed_from_u64(29);
        let (qram, mem, addr) = setup(4);
        let noise = ExtendedNoise {
            gate_rates: GateErrorRates::new(0.0, 0.0, 0.0),
            init_error: 0.01,
            burst_rate: 0.0,
        };
        let est = estimate_extended_fidelity(&qram, &mem, &addr, &noise, 8000, &mut rng);
        // Expected infidelity ≈ 1 − (1 − 0.01)⁴ ≈ 0.039.
        let emp = 1.0 - est.mean();
        assert!((emp - 0.039).abs() < 0.012, "empirical {emp}");
    }

    #[test]
    fn bursts_scale_with_layer_count() {
        let mut rng = StdRng::seed_from_u64(31);
        let (qram, mem, addr) = setup(3);
        let noise = ExtendedNoise {
            gate_rates: GateErrorRates::new(0.0, 0.0, 0.0),
            init_error: 0.0,
            burst_rate: 0.002,
        };
        let layers = qram.query_layers();
        let est = estimate_extended_fidelity(&qram, &mem, &addr, &noise, 8000, &mut rng);
        // Not every layer contains gates touching the branch, so the
        // empirical loss is below L·p but of the same order.
        let emp = 1.0 - est.mean();
        let ceiling = layers.len() as f64 * noise.burst_rate;
        assert!(
            emp > ceiling * 0.2 && emp <= ceiling * 1.3,
            "{emp} vs {ceiling}"
        );
    }

    #[test]
    fn resilience_persists_under_extended_model() {
        // Infidelity still grows polynomially (not exponentially) in n.
        let mut rng = StdRng::seed_from_u64(41);
        let noise = ExtendedNoise {
            gate_rates: GateErrorRates::from_cswap_rate(3e-4),
            init_error: 1e-3,
            burst_rate: 1e-4,
        };
        let mut inf = Vec::new();
        for n in [3u32, 6] {
            let (qram, mem, addr) = setup(n);
            let est = estimate_extended_fidelity(&qram, &mem, &addr, &noise, 5000, &mut rng);
            inf.push(1.0 - est.mean());
        }
        // Doubling n: capacity ×8, infidelity should grow ≲ 5× (poly),
        // nowhere near the 8× of volume-proportional damage.
        let ratio = inf[1] / inf[0];
        assert!(ratio < 6.0, "ratio {ratio}: {inf:?}");
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn invalid_probability_rejected() {
        let noise = ExtendedNoise {
            gate_rates: GateErrorRates::paper_default(),
            init_error: 1.5,
            burst_rate: 0.0,
        };
        noise.validate();
    }
}
