//! Extended noise models (§8.1's pointer to Mehta et al. 2024): router
//! initialization errors and spatially/temporally correlated error bursts,
//! injected through the instruction-level executor.
//!
//! The paper claims Fat-Tree QRAM "is compatible with the error-robust
//! analysis in \[41\], where this error resilience is extended to more
//! generic error models". This module measures that: even with imperfect
//! router initialization and correlated bursts, the infidelity remains
//! polylogarithmic in `N` because only faults touching *active* branches
//! matter.

use qram_core::exec::execute_layers_noisy;
use qram_core::query_ops::QueryLayer;
use qram_core::{CompiledQuery, QramModel};
use qsim::branch::{AddressState, ClassicalMemory};
use qsim::noise::FidelityEstimator;
use rand::Rng;

use crate::rates::GateErrorRates;

/// Parameters of the extended noise model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExtendedNoise {
    /// Per-gate stochastic error rates (the baseline model).
    pub gate_rates: GateErrorRates,
    /// Probability that a router on the active path was imperfectly
    /// initialized (not reset to `|W⟩` before the query).
    pub init_error: f64,
    /// Probability per circuit layer of a correlated burst that faults
    /// every gate executed in that layer.
    pub burst_rate: f64,
}

impl ExtendedNoise {
    /// The baseline model with no extended errors.
    #[must_use]
    pub fn gates_only(gate_rates: GateErrorRates) -> Self {
        ExtendedNoise {
            gate_rates,
            init_error: 0.0,
            burst_rate: 0.0,
        }
    }

    /// Validates all probabilities.
    ///
    /// # Panics
    ///
    /// Panics if any probability lies outside `[0, 1]`.
    pub fn validate(&self) {
        for (name, p) in [
            ("init_error", self.init_error),
            ("burst_rate", self.burst_rate),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name} = {p} outside [0, 1]");
        }
    }
}

/// Estimates the query fidelity of any [`QramModel`] backend under the
/// extended noise model — architecture-agnostic: bursts and initialization
/// errors are injected into whatever instruction stream the backend
/// generates.
///
/// Backends exposing a compiled plan ([`QramModel::compiled_query`])
/// sample trajectories against the plan's per-layer gate trajectory
/// without re-walking the op stream per trial. Both paths attribute a
/// burst *exactly* to the gates of its layer (the interpreter path
/// compiles the stream once for the same per-layer counts), and per-gate
/// faults draw once per quantum gate per branch, as in the baseline
/// estimator — with gate rates at zero the two paths consume the RNG
/// identically and return bit-equal estimates (pinned by test).
///
/// # Panics
///
/// Panics if probabilities are invalid or the backend generates a
/// malformed instruction stream (a bug).
pub fn estimate_extended_fidelity<M: QramModel + ?Sized, R: Rng + ?Sized>(
    model: &M,
    memory: &ClassicalMemory,
    address: &AddressState,
    noise: &ExtendedNoise,
    trials: u32,
    rng: &mut R,
) -> FidelityEstimator {
    if let Some(plan) = model.compiled_query() {
        // The interpreter path rejects mismatched inputs inside
        // `execute_layers_noisy`; the plan path must be as loud.
        assert_eq!(
            memory.address_width(),
            plan.address_width(),
            "memory capacity must match QRAM capacity"
        );
        return estimate_extended_compiled_fidelity(&plan, address, noise, trials, rng);
    }
    estimate_extended_layers_fidelity(
        &model.interned_query_layers(),
        memory,
        address,
        noise,
        trials,
        rng,
    )
}

/// The compiled-plan trajectory sampler behind
/// [`estimate_extended_fidelity`]: initialization errors corrupt the whole
/// trial, a burst corrupts the trial iff its layer executes at least one
/// quantum gate (exact attribution via the plan's per-layer counts — every
/// branch runs the same gates per layer, so a burst hits all branches
/// alike), and per-gate stochastic faults corrupt branches independently.
fn estimate_extended_compiled_fidelity<R: Rng + ?Sized>(
    plan: &CompiledQuery,
    address: &AddressState,
    noise: &ExtendedNoise,
    trials: u32,
    rng: &mut R,
) -> FidelityEstimator {
    noise.validate();
    let n = plan.address_width();
    let mut estimator = FidelityEstimator::new();
    for _ in 0..trials {
        // Initialization errors: each active-path router independently.
        let mut init_corrupted = false;
        for _ in 0..n {
            if noise.init_error > 0.0 && rng.random::<f64>() < noise.init_error {
                init_corrupted = true;
            }
        }
        if init_corrupted {
            estimator.record(0.0);
            continue;
        }
        // Correlated bursts: one draw per layer; a burst in a layer with
        // active quantum gates corrupts every branch.
        let mut burst_corrupted = false;
        for counts in plan.layer_gate_counts() {
            let burst = noise.burst_rate > 0.0 && rng.random::<f64>() < noise.burst_rate;
            if burst && counts.total_quantum() > 0 {
                burst_corrupted = true;
            }
        }
        if burst_corrupted {
            estimator.record(0.0);
            continue;
        }
        let survival = plan.noisy_survival(address, |class| {
            let p = noise.gate_rates.class_rate(class);
            p > 0.0 && rng.random::<f64>() < p
        });
        estimator.record(survival * survival);
    }
    estimator
}

/// Estimates query fidelity under the extended noise model for an explicit
/// instruction stream, by trajectory sampling. Initialization errors
/// corrupt each of the `log₂ N` active-path routers independently at query
/// start; bursts fault all gates of a layer at once, attributed *exactly*:
/// the stream is compiled once up front ([`CompiledQuery::compile`]) to
/// obtain the per-layer fault-callback counts, so the gate → layer mapping
/// is precise for every branch of the superposition — the same semantics
/// as the compiled fast path of [`estimate_extended_fidelity`].
///
/// # Panics
///
/// Panics if probabilities are invalid or the instruction stream is
/// malformed.
pub fn estimate_extended_layers_fidelity<R: Rng + ?Sized>(
    layers: &[QueryLayer],
    memory: &ClassicalMemory,
    address: &AddressState,
    noise: &ExtendedNoise,
    trials: u32,
    rng: &mut R,
) -> FidelityEstimator {
    noise.validate();
    let n = memory.address_width();
    // Exact gate → layer attribution: compile the stream (a stream the
    // executor below would accept always compiles — same validator) and
    // expand its per-layer quantum-gate counts into a per-callback layer
    // index. Fault callbacks repeat identically for every branch, so the
    // walk position is tracked modulo one branch's callback count.
    let plan = CompiledQuery::compile(n, layers).expect("instruction stream must be valid");
    let layer_of_callback: Vec<usize> = plan
        .layer_gate_counts()
        .iter()
        .enumerate()
        .flat_map(|(idx, counts)| {
            std::iter::repeat_n(idx, usize::try_from(counts.total_quantum()).expect("fits"))
        })
        .collect();
    let callbacks_per_branch = layer_of_callback.len().max(1);
    let mut estimator = FidelityEstimator::new();
    for _ in 0..trials {
        // Initialization errors: each active-path router independently.
        let mut init_corrupted = false;
        for _ in 0..n {
            if noise.init_error > 0.0 && rng.random::<f64>() < noise.init_error {
                init_corrupted = true;
            }
        }
        if init_corrupted {
            estimator.record(0.0);
            continue;
        }
        // Pre-sample which layers suffer a correlated burst.
        let burst: Vec<bool> = (0..layers.len())
            .map(|_| noise.burst_rate > 0.0 && rng.random::<f64>() < noise.burst_rate)
            .collect();
        let mut gates_seen = 0usize;
        let survival = execute_layers_noisy(layers, memory, address, |class| {
            let layer_idx = layer_of_callback[gates_seen % callbacks_per_branch];
            gates_seen += 1;
            if burst[layer_idx] {
                return true;
            }
            let p = noise.gate_rates.class_rate(class);
            p > 0.0 && rng.random::<f64>() < p
        })
        .expect("instruction stream must be valid");
        estimator.record(survival * survival);
    }
    estimator
}

/// First-order analytic infidelity under the extended model:
/// `2n²Σε + n·p_init + L·p_burst` with `L` the layer count — still
/// polylogarithmic in `N` for fixed rates.
#[must_use]
pub fn extended_infidelity_bound(
    capacity: qram_metrics::Capacity,
    noise: &ExtendedNoise,
    layer_count: usize,
) -> f64 {
    let n = capacity.n_f64();
    (2.0 * n * n * noise.gate_rates.sum()
        + n * noise.init_error
        + layer_count as f64 * noise.burst_rate)
        .min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qram_core::FatTreeQram;
    use qram_metrics::Capacity;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(n: u32) -> (FatTreeQram, ClassicalMemory, AddressState) {
        let capacity = Capacity::from_address_width(n);
        let cells: Vec<u64> = (0..capacity.get()).map(|i| i % 2).collect();
        (
            FatTreeQram::new(capacity),
            ClassicalMemory::from_words(1, &cells).unwrap(),
            AddressState::classical(n, 2).unwrap(),
        )
    }

    #[test]
    fn gates_only_matches_baseline_estimator() {
        let mut rng = StdRng::seed_from_u64(17);
        let (qram, mem, addr) = setup(4);
        let noise = ExtendedNoise::gates_only(GateErrorRates::from_cswap_rate(1e-3));
        let est = estimate_extended_fidelity(&qram, &mem, &addr, &noise, 3000, &mut rng);
        let bound = extended_infidelity_bound(qram.capacity(), &noise, qram.query_layers().len());
        let empirical = 1.0 - est.mean();
        assert!(empirical <= bound * 1.3, "{empirical} vs bound {bound}");
    }

    #[test]
    fn init_errors_add_linear_term() {
        let mut rng = StdRng::seed_from_u64(29);
        let (qram, mem, addr) = setup(4);
        let noise = ExtendedNoise {
            gate_rates: GateErrorRates::new(0.0, 0.0, 0.0),
            init_error: 0.01,
            burst_rate: 0.0,
        };
        let est = estimate_extended_fidelity(&qram, &mem, &addr, &noise, 8000, &mut rng);
        // Expected infidelity ≈ 1 − (1 − 0.01)⁴ ≈ 0.039.
        let emp = 1.0 - est.mean();
        assert!((emp - 0.039).abs() < 0.012, "empirical {emp}");
    }

    #[test]
    fn compiled_and_layers_paths_agree_on_burst_only_noise() {
        // With gate rates at zero, the compiled path (plan trajectory)
        // and the explicit-stream path (interpreter walk) consume the
        // RNG identically — n init draws then one draw per layer — and
        // corrupt a trial under exactly the same condition (a burst in
        // any layer executing quantum gates corrupts every branch). Same
        // seed ⇒ bit-equal estimates, on superpositions too.
        let (qram, mem, _) = setup(4);
        let addr = AddressState::uniform(4, &[0, 3, 9, 14]).unwrap();
        let noise = ExtendedNoise {
            gate_rates: GateErrorRates::new(0.0, 0.0, 0.0),
            init_error: 0.02,
            burst_rate: 0.01,
        };
        let compiled = estimate_extended_fidelity(
            &qram,
            &mem,
            &addr,
            &noise,
            2000,
            &mut StdRng::seed_from_u64(99),
        );
        let interpreted = estimate_extended_layers_fidelity(
            &qram.query_layers(),
            &mem,
            &addr,
            &noise,
            2000,
            &mut StdRng::seed_from_u64(99),
        );
        assert_eq!(compiled.mean(), interpreted.mean());
    }

    #[test]
    fn bursts_scale_with_layer_count() {
        let mut rng = StdRng::seed_from_u64(31);
        let (qram, mem, addr) = setup(3);
        let noise = ExtendedNoise {
            gate_rates: GateErrorRates::new(0.0, 0.0, 0.0),
            init_error: 0.0,
            burst_rate: 0.002,
        };
        let layers = qram.query_layers();
        let est = estimate_extended_fidelity(&qram, &mem, &addr, &noise, 8000, &mut rng);
        // Not every layer contains gates touching the branch, so the
        // empirical loss is below L·p but of the same order.
        let emp = 1.0 - est.mean();
        let ceiling = layers.len() as f64 * noise.burst_rate;
        assert!(
            emp > ceiling * 0.2 && emp <= ceiling * 1.3,
            "{emp} vs {ceiling}"
        );
    }

    #[test]
    fn resilience_persists_under_extended_model() {
        // Infidelity still grows polynomially (not exponentially) in n.
        let mut rng = StdRng::seed_from_u64(41);
        let noise = ExtendedNoise {
            gate_rates: GateErrorRates::from_cswap_rate(3e-4),
            init_error: 1e-3,
            burst_rate: 1e-4,
        };
        let mut inf = Vec::new();
        for n in [3u32, 6] {
            let (qram, mem, addr) = setup(n);
            let est = estimate_extended_fidelity(&qram, &mem, &addr, &noise, 5000, &mut rng);
            inf.push(1.0 - est.mean());
        }
        // Doubling n: capacity ×8, infidelity should grow ≲ 5× (poly),
        // nowhere near the 8× of volume-proportional damage.
        let ratio = inf[1] / inf[0];
        assert!(ratio < 6.0, "ratio {ratio}: {inf:?}");
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn invalid_probability_rejected() {
        let noise = ExtendedNoise {
            gate_rates: GateErrorRates::paper_default(),
            init_error: 1.5,
            burst_rate: 0.0,
        };
        noise.validate();
    }
}
