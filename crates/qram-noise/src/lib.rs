//! Error robustness of Fat-Tree QRAM (§8): analytic fidelity bounds,
//! quantum error correction cost models, virtual distillation, and
//! Monte-Carlo validation against the instruction-level executor.
//!
//! # Examples
//!
//! ```
//! use qram_noise::{bounds, GateErrorRates};
//! use qram_metrics::Capacity;
//!
//! // Table 3: a capacity-32 QRAM at CSWAP error 1e-3 has query
//! // infidelity 0.125.
//! let eps = bounds::table3_infidelity(Capacity::new(32)?, 1e-3);
//! assert!((eps - 0.125).abs() < 1e-12);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod distillation;
pub mod extended;
pub mod monte_carlo;
pub mod qec;
mod rates;

pub use bounds::query_infidelity_bound;
pub use distillation::{distilled_infidelity, table4, DistillationPlan, Table4Row};
pub use extended::{
    estimate_extended_fidelity, estimate_extended_layers_fidelity, extended_infidelity_bound,
    ExtendedNoise,
};
pub use monte_carlo::{estimate_layers_fidelity, estimate_query_fidelity};
pub use qec::{
    bb_encoded_query_cost, code_switching_ancillas, fat_tree_encoded_query_cost, figure11_curve,
    EncodedQueryCost, InfidelityPoint, QecCode,
};
pub use rates::GateErrorRates;
