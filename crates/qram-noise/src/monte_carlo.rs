//! Monte-Carlo validation of the analytic fidelity bounds.
//!
//! Injects stochastic per-gate faults into the instruction-level executor
//! of `qram-core` (only gates touching the active query branch can fault —
//! the mechanism behind QRAM's intrinsic noise resilience) and estimates
//! the query fidelity by trajectory averaging.

use qram_core::exec::execute_layers_noisy;
use qram_core::query_ops::QueryLayer;
use qram_core::QramModel;
use qsim::branch::{AddressState, ClassicalMemory};
use qsim::noise::FidelityEstimator;
use rand::Rng;

use crate::rates::GateErrorRates;

/// Estimates the query fidelity of any [`QramModel`] backend by sampling
/// `trials` noisy trajectories of its generated instruction stream —
/// architecture-agnostic: the error profile falls out of the gates the
/// backend actually schedules.
///
/// Backends exposing a compiled plan ([`QramModel::compiled_query`])
/// sample trajectories against the plan's per-layer gate counts instead
/// of re-walking the op stream per trial: each branch still draws exactly
/// one fault decision per quantum gate per class, so the per-trajectory
/// statistics are identical to the interpreter's (only the RNG
/// consumption order within a layer differs).
///
/// # Panics
///
/// Panics if the backend generates a malformed instruction stream (a bug).
pub fn estimate_query_fidelity<M: QramModel + ?Sized, R: Rng + ?Sized>(
    model: &M,
    memory: &ClassicalMemory,
    address: &AddressState,
    rates: &GateErrorRates,
    trials: u32,
    rng: &mut R,
) -> FidelityEstimator {
    if let Some(plan) = model.compiled_query() {
        // The interpreter path rejects mismatched inputs inside
        // `execute_layers_noisy`; the plan path must be as loud.
        assert_eq!(
            memory.address_width(),
            plan.address_width(),
            "memory capacity must match QRAM capacity"
        );
        let mut estimator = FidelityEstimator::new();
        for _ in 0..trials {
            let survival = plan.noisy_survival(address, |class| {
                let p = rates.class_rate(class);
                p > 0.0 && rng.random::<f64>() < p
            });
            estimator.record(survival * survival);
        }
        return estimator;
    }
    estimate_layers_fidelity(
        &model.interned_query_layers(),
        memory,
        address,
        rates,
        trials,
        rng,
    )
}

/// Estimates query fidelity for an explicit instruction stream. Each gate
/// along an active branch faults with its class rate; a faulted branch is
/// assumed orthogonal to the ideal output (worst case), so per-trajectory
/// fidelity is the squared surviving amplitude weight.
///
/// # Panics
///
/// Panics if the instruction stream itself is malformed.
pub fn estimate_layers_fidelity<R: Rng + ?Sized>(
    layers: &[QueryLayer],
    memory: &ClassicalMemory,
    address: &AddressState,
    rates: &GateErrorRates,
    trials: u32,
    rng: &mut R,
) -> FidelityEstimator {
    let mut estimator = FidelityEstimator::new();
    for _ in 0..trials {
        let survival = execute_layers_noisy(layers, memory, address, |class| {
            let p = rates.class_rate(class);
            p > 0.0 && rng.random::<f64>() < p
        })
        .expect("instruction stream must be valid");
        estimator.record(survival * survival);
    }
    estimator
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds;
    use qram_core::{BucketBrigadeQram, FatTreeQram};
    use qram_metrics::Capacity;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn memory(n: u32) -> ClassicalMemory {
        let cells: Vec<u64> = (0..(1u64 << n)).map(|i| (i * 7 + 1) % 2).collect();
        ClassicalMemory::from_words(1, &cells).unwrap()
    }

    #[test]
    fn empirical_infidelity_tracks_analytic_bound() {
        // The analytic bound 2n²(ε₀+ε₁+ε₂) must upper-bound the empirical
        // infidelity while staying within a small constant factor — this
        // is the paper's log²(N) noise-resilience claim, measured.
        let mut rng = StdRng::seed_from_u64(11);
        for n in [3u32, 4, 5] {
            let cap = Capacity::from_address_width(n);
            let qram = FatTreeQram::new(cap);
            let rates = GateErrorRates::from_cswap_rate(5e-4);
            let addr = AddressState::classical(n, 1).unwrap();
            let est = estimate_query_fidelity(&qram, &memory(n), &addr, &rates, 4000, &mut rng);
            let empirical = 1.0 - est.mean();
            let bound = bounds::fat_tree_query_infidelity(cap, &rates);
            assert!(
                empirical <= bound * 1.3,
                "n={n}: empirical {empirical} exceeds bound {bound}"
            );
            assert!(
                empirical >= bound / 6.0,
                "n={n}: empirical {empirical} implausibly below bound {bound}"
            );
        }
    }

    #[test]
    fn infidelity_grows_quadratically_with_depth() {
        let mut rng = StdRng::seed_from_u64(23);
        let rates = GateErrorRates::from_cswap_rate(3e-4);
        let mut infidelities = Vec::new();
        for n in [2u32, 4] {
            let qram = FatTreeQram::new(Capacity::from_address_width(n));
            let addr = AddressState::classical(n, 0).unwrap();
            let est = estimate_query_fidelity(&qram, &memory(n), &addr, &rates, 6000, &mut rng);
            infidelities.push(1.0 - est.mean());
        }
        // Doubling n should roughly quadruple infidelity (±Monte-Carlo).
        let ratio = infidelities[1] / infidelities[0];
        assert!(
            (2.0..8.0).contains(&ratio),
            "ratio {ratio} not quadratic-like: {infidelities:?}"
        );
    }

    #[test]
    fn bb_has_lower_infidelity_than_fat_tree() {
        // Fat-Tree pays the extra local-swap (ε₂) gates.
        let mut rng = StdRng::seed_from_u64(37);
        let n = 4u32;
        let cap = Capacity::from_address_width(n);
        let rates = GateErrorRates::from_cswap_rate(2e-3);
        let addr = AddressState::classical(n, 5).unwrap();
        let bb = estimate_query_fidelity(
            &BucketBrigadeQram::new(cap),
            &memory(n),
            &addr,
            &rates,
            6000,
            &mut rng,
        );
        let ft = estimate_query_fidelity(
            &FatTreeQram::new(cap),
            &memory(n),
            &addr,
            &rates,
            6000,
            &mut rng,
        );
        assert!(
            ft.mean() < bb.mean(),
            "Fat-Tree fidelity {} should be below BB {}",
            ft.mean(),
            bb.mean()
        );
        // ...but only by a modest constant factor in infidelity.
        let ratio = (1.0 - ft.mean()) / (1.0 - bb.mean());
        assert!(ratio < 2.0, "infidelity ratio {ratio}");
    }

    #[test]
    fn sharded_backend_estimates_track_the_monolithic_bound() {
        use qram_core::ShardedQram;
        let mut rng = StdRng::seed_from_u64(17);
        let n = 4u32;
        let cap = Capacity::from_address_width(n);
        let rates = GateErrorRates::from_cswap_rate(5e-4);
        let addr = AddressState::classical(n, 11).unwrap();
        let est = estimate_query_fidelity(
            &ShardedQram::fat_tree(cap, 4),
            &memory(n),
            &addr,
            &rates,
            4000,
            &mut rng,
        );
        let empirical = 1.0 - est.mean();
        let bound = bounds::fat_tree_query_infidelity(cap, &rates);
        assert!(
            empirical <= bound * 1.3,
            "empirical {empirical} exceeds bound {bound}"
        );
        assert!(empirical > 0.0, "some trajectories must fault");
    }

    #[test]
    fn zero_rates_give_unit_fidelity() {
        let mut rng = StdRng::seed_from_u64(1);
        let qram = FatTreeQram::new(Capacity::new(8).unwrap());
        let addr = AddressState::full_superposition(3);
        let est = estimate_query_fidelity(
            &qram,
            &memory(3),
            &addr,
            &GateErrorRates::new(0.0, 0.0, 0.0),
            10,
            &mut rng,
        );
        assert!((est.mean() - 1.0).abs() < 1e-9);
        assert_eq!(est.count(), 10);
    }

    #[test]
    fn superposed_queries_decohere_gracefully() {
        // With B branches, losing one branch costs ((B−1)/B)² fidelity per
        // trajectory — the estimator must land between full loss and none.
        let mut rng = StdRng::seed_from_u64(5);
        let qram = FatTreeQram::new(Capacity::new(8).unwrap());
        let addr = AddressState::full_superposition(3);
        let est = estimate_query_fidelity(
            &qram,
            &memory(3),
            &addr,
            &GateErrorRates::from_cswap_rate(2e-3),
            3000,
            &mut rng,
        );
        let f = est.mean();
        assert!(f > 0.5 && f < 1.0, "fidelity {f}");
    }
}
