//! Quantum error correction cost models (§8.3, Table 5, Fig. 11).

use qram_metrics::Capacity;

use crate::bounds;
use crate::rates::GateErrorRates;

/// An `[[m, 1, d]]` quantum error-correcting code with a depth-`D`
/// syndrome extraction circuit, supporting transversal `SWAP`/`CSWAP`
/// (§8.3.1 discusses why the limited QRAM gate set circumvents
/// Eastin–Knill).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QecCode {
    /// Physical qubits per logical qubit.
    pub m: u32,
    /// Code distance.
    pub d: u32,
    /// Syndrome-extraction circuit depth.
    pub syndrome_depth: u32,
}

impl QecCode {
    /// A distance-`d` code with the generic `m = d²` qubit overhead (e.g.
    /// rotated-surface-code-like) and syndrome depth `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is even or zero (distances are odd).
    #[must_use]
    pub fn distance(d: u32) -> Self {
        assert!(d >= 1 && d % 2 == 1, "code distance must be odd, got {d}");
        QecCode {
            m: d * d,
            d,
            syndrome_depth: d,
        }
    }

    /// Number of correctable errors `⌊(d−1)/2⌋`.
    #[must_use]
    pub fn correctable_errors(&self) -> u32 {
        (self.d - 1) / 2
    }

    /// Logical error rate per gate under physical rate `eps`, in the
    /// code-capacity model: a distance-`d` code corrects `(d−1)/2` faults,
    /// so a logical failure requires `(d+1)/2` simultaneous faults —
    /// `ε_L = ε^((d+1)/2)`.
    ///
    /// This calibration reproduces the paper's Fig. 11 anchor: at
    /// `ε₀ = 10⁻³` and `d = 3`, a Fat-Tree QRAM of tree depth 10 stays
    /// below 5·10⁻⁴ infidelity.
    ///
    /// # Panics
    ///
    /// Panics if `eps` is negative.
    #[must_use]
    pub fn logical_error_rate(&self, eps: f64) -> f64 {
        assert!(eps >= 0.0, "error rate must be non-negative");
        eps.powi(self.d.div_ceil(2) as i32).min(1.0)
    }

    /// Maps physical gate-class rates to logical rates under this code.
    #[must_use]
    pub fn logical_rates(&self, physical: &GateErrorRates) -> GateErrorRates {
        GateErrorRates::new(
            self.logical_error_rate(physical.e0),
            self.logical_error_rate(physical.e1),
            self.logical_error_rate(physical.e2),
        )
    }
}

/// One point of Fig. 11: infidelity of the three circuit families at tree
/// depth `n`, optionally encoded.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InfidelityPoint {
    /// Tree depth `n = log₂ N`.
    pub tree_depth: u32,
    /// Fat-Tree QRAM query infidelity.
    pub fat_tree: f64,
    /// BB QRAM query infidelity.
    pub bucket_brigade: f64,
    /// Generic-circuit worst-case infidelity.
    pub generic_circuit: f64,
}

/// Computes a Fig. 11 curve: infidelity vs tree depth for physical rates
/// (`code = None`) or encoded operation (`code = Some(..)`).
#[must_use]
pub fn figure11_curve(
    depths: impl IntoIterator<Item = u32>,
    physical: &GateErrorRates,
    code: Option<QecCode>,
) -> Vec<InfidelityPoint> {
    let rates = match code {
        Some(c) => c.logical_rates(physical),
        None => *physical,
    };
    depths
        .into_iter()
        .map(|n| {
            let cap = Capacity::from_address_width(n);
            InfidelityPoint {
                tree_depth: n,
                fat_tree: bounds::fat_tree_query_infidelity(cap, &rates),
                bucket_brigade: bounds::bb_query_infidelity(cap, &rates),
                generic_circuit: bounds::generic_circuit_infidelity(cap, &rates),
            }
        })
        .collect()
}

/// Table 5: cost of error-corrected queries with *encoded addresses on a
/// noisy QRAM* (Fat-Tree, §8.3.2) vs a *fully encoded* BB QRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncodedQueryCost {
    /// Total physical qubits in the QRAM.
    pub physical_qubits: u64,
    /// Logical queries that can be pipelined simultaneously.
    pub logical_query_parallelism: u32,
    /// Logical query latency in circuit layers (Big-O constants as given
    /// in Table 5).
    pub logical_query_latency: u64,
}

/// Fat-Tree with noisy routers and `[[m,1,d]]`-encoded address/bus qubits:
/// the `m` physical qubits of each logical address qubit ride the pipeline
/// as `m` physical queries; `⌊log₂(N)/m⌋` logical queries fit, with
/// syndrome extraction interleaved: latency `D·log₂(N) + m`.
///
/// # Panics
///
/// Panics if `m > log₂ N` (the scheme requires `m ≤ log N`).
#[must_use]
pub fn fat_tree_encoded_query_cost(capacity: Capacity, code: &QecCode) -> EncodedQueryCost {
    let n = u64::from(capacity.address_width());
    let m = u64::from(code.m);
    assert!(
        m <= n,
        "encoded-address pipelining requires m <= log2(N) ({m} > {n})"
    );
    EncodedQueryCost {
        physical_qubits: capacity.get(),
        logical_query_parallelism: u32::try_from(n / m).expect("fits"),
        logical_query_latency: u64::from(code.syndrome_depth) * n + m,
    }
}

/// Fully encoded BB QRAM: every physical qubit replaced by an `[[m,1,d]]`
/// block — `m·N` qubits, one logical query at a time, latency
/// `D·log₂(N)`.
#[must_use]
pub fn bb_encoded_query_cost(capacity: Capacity, code: &QecCode) -> EncodedQueryCost {
    let n = u64::from(capacity.address_width());
    EncodedQueryCost {
        physical_qubits: u64::from(code.m) * capacity.get(),
        logical_query_parallelism: 1,
        logical_query_latency: u64::from(code.syndrome_depth) * n,
    }
}

/// Code-teleportation ancilla count for converting one logical qubit
/// between codes of distances `d1` and `d2` (§8.3.1, Xu et al. 2024):
/// `d1 · d2` ancillas, reusable across pipelined queries.
#[must_use]
pub fn code_switching_ancillas(d1: u32, d2: u32) -> u64 {
    u64::from(d1) * u64::from(d2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cap(n: u64) -> Capacity {
        Capacity::new(n).unwrap()
    }

    #[test]
    fn code_construction() {
        let c = QecCode::distance(3);
        assert_eq!(c.m, 9);
        assert_eq!(c.correctable_errors(), 1);
        assert_eq!(QecCode::distance(5).correctable_errors(), 2);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_distance_rejected() {
        let _ = QecCode::distance(4);
    }

    #[test]
    fn logical_rate_is_suppressed_below_threshold() {
        let c3 = QecCode::distance(3);
        let c5 = QecCode::distance(5);
        let eps = 1e-3;
        assert!(c3.logical_error_rate(eps) < eps);
        assert!(c5.logical_error_rate(eps) < c3.logical_error_rate(eps));
    }

    #[test]
    fn logical_rate_matches_code_capacity_model() {
        // d = 3: ε² ; d = 5: ε³.
        assert!((QecCode::distance(3).logical_error_rate(1e-3) - 1e-6).abs() < 1e-18);
        assert!((QecCode::distance(5).logical_error_rate(1e-3) - 1e-9).abs() < 1e-21);
        // Uncorrectable noise (ε = 1) stays at 1.
        assert_eq!(QecCode::distance(3).logical_error_rate(1.0), 1.0);
    }

    #[test]
    fn figure11_qec_shifts_curves_down() {
        let physical = GateErrorRates::from_cswap_rate(1e-3);
        let depths = [4u32, 8, 12];
        let raw = figure11_curve(depths, &physical, None);
        let d3 = figure11_curve(depths, &physical, Some(QecCode::distance(3)));
        let d5 = figure11_curve(depths, &physical, Some(QecCode::distance(5)));
        for i in 0..depths.len() {
            assert!(d3[i].fat_tree < raw[i].fat_tree);
            assert!(d5[i].fat_tree < d3[i].fat_tree);
            assert!(d3[i].bucket_brigade < raw[i].bucket_brigade);
        }
    }

    #[test]
    fn figure11_qram_beats_generic_circuit_at_same_qec_cost() {
        // Paper: at distance 3 and ε₀ = 10⁻³, a QRAM of much larger tree
        // depth matches the infidelity of a small generic circuit.
        let physical = GateErrorRates::from_cswap_rate(1e-3);
        let pts = figure11_curve(2..=16, &physical, Some(QecCode::distance(3)));
        // Find the largest GC depth and the largest QRAM depth below a
        // fixed infidelity budget.
        let budget = 5e-4;
        let gc_max = pts
            .iter()
            .filter(|p| p.generic_circuit <= budget)
            .map(|p| p.tree_depth)
            .max()
            .unwrap_or(0);
        let qram_max = pts
            .iter()
            .filter(|p| p.fat_tree <= budget)
            .map(|p| p.tree_depth)
            .max()
            .unwrap_or(0);
        assert!(
            qram_max >= gc_max + 3,
            "QRAM ({qram_max}) should run much deeper trees than GC ({gc_max})"
        );
    }

    #[test]
    fn table5_costs() {
        // N = 2^9, [[9,1,3]] code (m = 9 ≤ n = 9 boundary case).
        let capacity = cap(1 << 9);
        let code = QecCode::distance(3);
        let ft = fat_tree_encoded_query_cost(capacity, &code);
        assert_eq!(ft.physical_qubits, 1 << 9);
        assert_eq!(ft.logical_query_parallelism, 1);
        assert_eq!(ft.logical_query_latency, 3 * 9 + 9);
        let bb = bb_encoded_query_cost(capacity, &code);
        assert_eq!(bb.physical_qubits, 9 * (1 << 9));
        assert_eq!(bb.logical_query_parallelism, 1);
        assert_eq!(bb.logical_query_latency, 3 * 9);
    }

    #[test]
    fn table5_parallelism_grows_with_capacity() {
        // With a small [[5,1,3]]-like code (m = 5), a depth-20 tree
        // pipelines 4 logical queries.
        let code = QecCode {
            m: 5,
            d: 3,
            syndrome_depth: 3,
        };
        let ft = fat_tree_encoded_query_cost(Capacity::from_address_width(20), &code);
        assert_eq!(ft.logical_query_parallelism, 4);
        assert_eq!(ft.logical_query_latency, 3 * 20 + 5);
    }

    #[test]
    #[should_panic(expected = "m <= log2(N)")]
    fn oversized_code_rejected() {
        let _ = fat_tree_encoded_query_cost(cap(16), &QecCode::distance(3));
    }

    #[test]
    fn code_switching_ancilla_count() {
        assert_eq!(code_switching_ancillas(3, 5), 15);
    }
}
