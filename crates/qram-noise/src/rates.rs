//! Per-gate-class error rates (§8.1).

/// Error rates for the three gate classes of a Fat-Tree QRAM: `ε₀` for
/// (intra-node) CSWAPs, `ε₁` for inter-node SWAPs, `ε₂` for intra-node
/// local SWAPs (beam-splitter based, faster and higher fidelity).
///
/// # Examples
///
/// ```
/// use qram_noise::GateErrorRates;
///
/// let rates = GateErrorRates::paper_default();
/// assert_eq!((rates.e0, rates.e1, rates.e2), (0.002, 0.002, 0.001));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateErrorRates {
    /// CSWAP (routing) error rate.
    pub e0: f64,
    /// Inter-node SWAP error rate.
    pub e1: f64,
    /// Intra-node local SWAP error rate.
    pub e2: f64,
}

impl GateErrorRates {
    /// The experimentally realistic values used in Fig. 11:
    /// `ε₀ = ε₁ = 2·10⁻³`, `ε₂ = 1·10⁻³`.
    #[must_use]
    pub fn paper_default() -> Self {
        GateErrorRates {
            e0: 0.002,
            e1: 0.002,
            e2: 0.001,
        }
    }

    /// Rates derived from a single CSWAP error rate with the paper's
    /// proportions `ε₁ = ε₀`, `ε₂ = ε₀/2` — the parameterization behind
    /// Table 3's `ε₀ ∈ {10⁻³, 10⁻⁴, 10⁻⁵}` sweep.
    ///
    /// # Panics
    ///
    /// Panics if `e0 ∉ [0, 1]`.
    #[must_use]
    pub fn from_cswap_rate(e0: f64) -> Self {
        assert!((0.0..=1.0).contains(&e0), "error rate must be in [0, 1]");
        GateErrorRates {
            e0,
            e1: e0,
            e2: e0 / 2.0,
        }
    }

    /// Creates explicit rates.
    ///
    /// # Panics
    ///
    /// Panics if any rate lies outside `[0, 1]`.
    #[must_use]
    pub fn new(e0: f64, e1: f64, e2: f64) -> Self {
        for (name, value) in [("e0", e0), ("e1", e1), ("e2", e2)] {
            assert!(
                (0.0..=1.0).contains(&value),
                "{name} = {value} outside [0, 1]"
            );
        }
        GateErrorRates { e0, e1, e2 }
    }

    /// The total per-gate-triple rate `ε₀ + ε₁ + ε₂`.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.e0 + self.e1 + self.e2
    }

    /// The stochastic fault rate of one gate class: `ε₀`/`ε₁`/`ε₂` for
    /// the quantum classes, `0` for classically controlled retrieval
    /// gates (a classical error is a memory fault, not a gate fault —
    /// the estimators never fault them).
    #[must_use]
    pub fn class_rate(&self, class: qram_core::GateClass) -> f64 {
        match class {
            qram_core::GateClass::Cswap => self.e0,
            qram_core::GateClass::InterNodeSwap => self.e1,
            qram_core::GateClass::LocalSwap => self.e2,
            qram_core::GateClass::Classical => 0.0,
        }
    }

    /// Returns rates with every entry scaled by `factor` (used to replace
    /// physical rates with logical rates under QEC).
    ///
    /// # Panics
    ///
    /// Panics if scaling pushes any rate outside `[0, 1]`.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        GateErrorRates::new(self.e0 * factor, self.e1 * factor, self.e2 * factor)
    }
}

impl Default for GateErrorRates {
    fn default() -> Self {
        GateErrorRates::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_values() {
        let r = GateErrorRates::paper_default();
        assert_eq!(r.sum(), 0.005);
        assert_eq!(r, GateErrorRates::default());
    }

    #[test]
    fn table3_parameterization() {
        // 2·(ε₀ + ε₁ + ε₂) = 5·ε₀ with the Table 3 proportions.
        let r = GateErrorRates::from_cswap_rate(1e-3);
        assert!((2.0 * r.sum() - 5.0e-3).abs() < 1e-15);
    }

    #[test]
    fn scaling() {
        let r = GateErrorRates::new(0.1, 0.2, 0.3).scaled(0.5);
        assert_eq!((r.e0, r.e1, r.e2), (0.05, 0.1, 0.15));
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn invalid_rate_rejected() {
        let _ = GateErrorRates::new(0.1, 1.5, 0.0);
    }
}
