//! FIFO scheduling of static query requests (§5.2, Appendix A.2).

use qram_metrics::Layers;

use crate::policy::PipelineCore;
use crate::server::QramServer;

/// A query request arriving at a known time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryRequest {
    /// Request identifier.
    pub id: usize,
    /// Arrival (request) time in layers.
    pub arrival: Layers,
}

/// A scheduled query: when it started and finished.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduledQuery {
    /// The request.
    pub request: QueryRequest,
    /// Admission time.
    pub start: Layers,
    /// Completion time (`start + latency`).
    pub finish: Layers,
}

impl ScheduledQuery {
    /// The query's latency as experienced by the requester:
    /// `finish − arrival`.
    #[must_use]
    pub fn response_latency(&self) -> Layers {
        self.finish - self.request.arrival
    }
}

/// The outcome of scheduling a batch of requests.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    entries: Vec<ScheduledQuery>,
}

impl Schedule {
    /// Builds a schedule from already-computed entries (used by the online
    /// scheduler).
    #[must_use]
    pub fn from_entries(entries: Vec<ScheduledQuery>) -> Self {
        Schedule { entries }
    }

    /// The scheduled queries in admission order.
    #[must_use]
    pub fn entries(&self) -> &[ScheduledQuery] {
        &self.entries
    }

    /// Sum of per-query response latencies — the objective FIFO minimizes
    /// (Appendix A.2).
    #[must_use]
    pub fn total_latency(&self) -> Layers {
        self.entries
            .iter()
            .map(ScheduledQuery::response_latency)
            .sum()
    }

    /// Completion time of the last query.
    #[must_use]
    pub fn makespan(&self) -> Layers {
        self.entries
            .iter()
            .map(|e| e.finish)
            .fold(Layers::ZERO, Layers::max)
    }
}

/// Schedules requests in the given processing order on a pipelined server.
///
/// Admission respects the pipeline constraints: a query starts no earlier
/// than its arrival, at least `interval` after the previous admission, and
/// only once a pipeline slot is free. The recurrence is the shared
/// [`PipelineCore`]; this function only supplies the processing order.
///
/// # Panics
///
/// Panics if `order` is not a permutation of `0..requests.len()`.
#[must_use]
pub fn schedule_in_order(
    requests: &[QueryRequest],
    order: &[usize],
    server: &QramServer,
) -> Schedule {
    assert_eq!(order.len(), requests.len(), "order must cover all requests");
    let mut seen = vec![false; requests.len()];
    for &i in order {
        assert!(!seen[i], "order must be a permutation");
        seen[i] = true;
    }
    let mut core = PipelineCore::new(*server);
    for &idx in order {
        let req = requests[idx];
        let start = core.earliest_start(req.arrival, server.parallelism());
        core.commit(req, start);
    }
    core.into_schedule()
}

/// FIFO scheduling: processes requests in arrival order — optimal for
/// total latency on both offline and online workloads (Appendix A.2).
#[must_use]
pub fn schedule_fifo(requests: &[QueryRequest], server: &QramServer) -> Schedule {
    let mut order: Vec<usize> = (0..requests.len()).collect();
    order.sort_by(|&a, &b| {
        requests[a]
            .arrival
            .partial_cmp(&requests[b].arrival)
            .expect("arrivals are finite")
            .then(a.cmp(&b))
    });
    schedule_in_order(requests, &order, server)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qram_metrics::Capacity;

    fn cap8_server() -> QramServer {
        QramServer::fat_tree_integer_layers(Capacity::new(8).unwrap())
    }

    fn requests(arrivals: &[f64]) -> Vec<QueryRequest> {
        arrivals
            .iter()
            .enumerate()
            .map(|(id, &a)| QueryRequest {
                id,
                arrival: Layers::new(a),
            })
            .collect()
    }

    #[test]
    fn back_to_back_queries_match_pipeline_timings() {
        // Three queries at t=0 on a capacity-8 Fat-Tree (Fig. 6): starts
        // 0/10/20, finishes 29/39/49.
        let reqs = requests(&[0.0, 0.0, 0.0]);
        let s = schedule_fifo(&reqs, &cap8_server());
        let starts: Vec<f64> = s.entries().iter().map(|e| e.start.get()).collect();
        let finishes: Vec<f64> = s.entries().iter().map(|e| e.finish.get()).collect();
        assert_eq!(starts, vec![0.0, 10.0, 20.0]);
        assert_eq!(finishes, vec![29.0, 39.0, 49.0]);
    }

    #[test]
    fn sequential_server_serializes() {
        let server = QramServer::bucket_brigade_integer_layers(Capacity::new(8).unwrap());
        let reqs = requests(&[0.0, 0.0, 0.0]);
        let s = schedule_fifo(&reqs, &server);
        let starts: Vec<f64> = s.entries().iter().map(|e| e.start.get()).collect();
        assert_eq!(starts, vec![0.0, 25.0, 50.0]);
        assert_eq!(s.makespan().get(), 75.0);
    }

    #[test]
    fn parallelism_limit_blocks_admission() {
        // parallelism 2, interval 1, latency 10: the third query waits for
        // the first to finish.
        let server = QramServer::new(2, Layers::new(1.0), Layers::new(10.0));
        let reqs = requests(&[0.0, 0.0, 0.0]);
        let s = schedule_fifo(&reqs, &server);
        let starts: Vec<f64> = s.entries().iter().map(|e| e.start.get()).collect();
        assert_eq!(starts, vec![0.0, 1.0, 10.0]);
    }

    #[test]
    fn idle_gaps_respected() {
        let reqs = requests(&[0.0, 100.0]);
        let s = schedule_fifo(&reqs, &cap8_server());
        assert_eq!(s.entries()[1].start.get(), 100.0);
    }

    #[test]
    fn fifo_orders_by_arrival_not_id() {
        let reqs = requests(&[50.0, 0.0]);
        let s = schedule_fifo(&reqs, &cap8_server());
        assert_eq!(s.entries()[0].request.id, 1);
        assert_eq!(s.entries()[1].request.id, 0);
    }

    #[test]
    fn fifo_beats_or_ties_out_of_order_schedules() {
        // The exchange-argument theorem (Appendix A.2), checked
        // exhaustively for all permutations of a small instance.
        let reqs = requests(&[0.0, 3.0, 7.0, 11.0]);
        let server = cap8_server();
        let fifo = schedule_fifo(&reqs, &server).total_latency();
        let mut order = vec![0usize, 1, 2, 3];
        // Enumerate all 24 permutations via Heap's algorithm.
        fn heaps(k: usize, arr: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
            if k <= 1 {
                out.push(arr.clone());
                return;
            }
            for i in 0..k {
                heaps(k - 1, arr, out);
                if k.is_multiple_of(2) {
                    arr.swap(i, k - 1);
                } else {
                    arr.swap(0, k - 1);
                }
            }
        }
        let mut perms = Vec::new();
        heaps(4, &mut order, &mut perms);
        assert_eq!(perms.len(), 24);
        for perm in perms {
            // A schedule may only start a query after its arrival; the
            // exchange proof compares against any processing order.
            let alt = schedule_in_order(&reqs, &perm, &server).total_latency();
            assert!(
                fifo <= alt + Layers::new(1e-9),
                "FIFO {fifo} worse than {perm:?} = {alt}",
                fifo = fifo.get(),
                alt = alt.get()
            );
        }
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn bad_order_rejected() {
        let reqs = requests(&[0.0, 1.0]);
        let _ = schedule_in_order(&reqs, &[0, 0], &cap8_server());
    }
}
