//! Query scheduling for shared QRAM (§5 of the Fat-Tree QRAM paper).
//!
//! * [`server`] — the pipelined-server abstraction of a shared QRAM
//!   (admission interval, parallelism, per-query latency) for all five
//!   architectures of §6.1.
//! * [`policy`] — the pluggable scheduling stack: the shared
//!   [`PipelineCore`] admission recurrence, the [`Scheduler`] and
//!   [`AdmissionPolicy`] traits, and the [`FifoAdmission`] /
//!   [`NoiseAwareAdmission`] policies (every other scheduling entry point
//!   is an adapter over this core).
//! * [`tenant`] — multi-tenant admission on top of the stack: per-tenant
//!   outstanding-request quotas and SLO shedding classes via the
//!   [`QuotaAdmission`] combinator, threaded through the fleet router in
//!   `qram-serve`.
//! * [`fifo`] — FIFO scheduling of static request batches, with the
//!   latency-optimality theorem of Appendix A.2 checked exhaustively and
//!   property-tested.
//! * [`workload`] — closed-loop simulation of algorithm streams that
//!   alternate querying and processing (Fig. 7, Fig. 10), including the
//!   utilization staircase, plus the Zipf and bursty open-loop workload
//!   generators.
//!
//! # Examples
//!
//! ```
//! use qram_sched::{simulate_streams, QramServer, StreamWorkload};
//! use qram_metrics::{Capacity, Layers};
//!
//! // Fig. 7: three algorithms, each issuing three queries separated by
//! // d = 20 layers of processing, on a capacity-8 Fat-Tree QRAM.
//! let server = QramServer::fat_tree_integer_layers(Capacity::new(8)?);
//! let streams = vec![StreamWorkload::alternating(3, Layers::new(20.0)); 3];
//! let report = simulate_streams(&streams, &server);
//! assert_eq!(report.makespan().get(), 30.0 * 3.0 + 2.0 * 20.0 + 17.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fifo;
pub mod online;
pub mod policy;
pub mod server;
pub mod tenant;
pub mod workload;

pub use fifo::{schedule_fifo, schedule_in_order, QueryRequest, Schedule, ScheduledQuery};
pub use online::{poisson_arrivals, OnlineFifoScheduler, OutOfOrderArrival};
pub use policy::{
    AdmissionPolicy, FifoAdmission, NoiseAwareAdmission, PipelineCore, PolicyScheduler, Scheduler,
};
pub use server::QramServer;
pub use tenant::{QuotaAdmission, RetryPolicy, SloClass, TenantId, TenantSpec};
pub use workload::{
    bursty_arrivals, diurnal_arrivals, flash_crowd_arrivals, process_depth_from_ratio,
    simulate_streams, synthetic_algorithm_depth, Phase, QueryRecord, StreamReport, StreamWorkload,
    ZipfAddresses,
};
