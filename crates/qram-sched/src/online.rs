//! Online query scheduling (§5.2).
//!
//! In practice a shared QRAM has no prior knowledge of QPU activity:
//! requests arrive at random instants and must be admitted on the fly.
//! [`OnlineFifoScheduler`] admits requests first-come-first-served as they
//! arrive; by the exchange argument of Appendix A.2 this online policy
//! achieves the same (optimal) total latency as the offline FIFO schedule
//! over the realized arrival sequence — verified in the tests.

use rand::Rng;

use qram_metrics::Layers;

use crate::fifo::{QueryRequest, Schedule, ScheduledQuery};
use crate::policy::{FifoAdmission, PolicyScheduler, Scheduler};
use crate::server::QramServer;

/// An incremental FIFO scheduler for online query arrivals.
///
/// Since the policy-stack refactor this is a thin adapter: the admission
/// recurrence lives in [`crate::PipelineCore`] and the type is exactly
/// [`PolicyScheduler`]`<`[`FifoAdmission`]`>` under its historical name
/// and API.
///
/// # Examples
///
/// ```
/// use qram_sched::{OnlineFifoScheduler, QramServer, QueryRequest};
/// use qram_metrics::{Capacity, Layers};
///
/// let server = QramServer::fat_tree_integer_layers(Capacity::new(8)?);
/// let mut sched = OnlineFifoScheduler::new(server);
/// sched.submit(QueryRequest { id: 0, arrival: Layers::new(0.0) })?;
/// sched.submit(QueryRequest { id: 1, arrival: Layers::new(3.0) })?;
/// let schedule = sched.finish();
/// assert_eq!(schedule.entries()[1].start.get(), 10.0); // pipeline interval
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct OnlineFifoScheduler {
    inner: PolicyScheduler<FifoAdmission>,
}

/// Error returned when requests are submitted out of arrival order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutOfOrderArrival {
    /// The offending arrival time.
    pub arrival: Layers,
    /// The latest previously seen arrival.
    pub previous: Layers,
}

impl std::fmt::Display for OutOfOrderArrival {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "arrival at {} precedes already-submitted arrival at {}",
            self.arrival.get(),
            self.previous.get()
        )
    }
}

impl std::error::Error for OutOfOrderArrival {}

impl OnlineFifoScheduler {
    /// Creates an empty online scheduler for a server.
    #[must_use]
    pub fn new(server: QramServer) -> Self {
        OnlineFifoScheduler {
            inner: PolicyScheduler::new(server, FifoAdmission),
        }
    }

    /// Number of queries admitted so far.
    #[must_use]
    pub fn admitted(&self) -> usize {
        self.inner.admitted()
    }

    /// Submits the next arriving request and immediately commits its
    /// admission slot (FIFO requires no knowledge of future arrivals).
    ///
    /// # Errors
    ///
    /// Returns [`OutOfOrderArrival`] if `request.arrival` precedes an
    /// already-submitted arrival — an online scheduler sees time move
    /// forward only.
    pub fn submit(&mut self, request: QueryRequest) -> Result<ScheduledQuery, OutOfOrderArrival> {
        self.inner.admit(request)
    }

    /// Consumes the scheduler, returning the realized schedule.
    #[must_use]
    pub fn finish(self) -> Schedule {
        self.inner.into_schedule()
    }
}

impl Scheduler for OnlineFifoScheduler {
    fn server(&self) -> &QramServer {
        self.inner.server()
    }

    fn admit(&mut self, request: QueryRequest) -> Result<ScheduledQuery, OutOfOrderArrival> {
        self.inner.admit(request)
    }

    fn entries(&self) -> &[ScheduledQuery] {
        self.inner.entries()
    }
}

/// Generates `count` arrivals with exponentially distributed gaps (a
/// Poisson process) at `rate` requests per layer.
///
/// # Panics
///
/// Panics if `rate` is not strictly positive.
pub fn poisson_arrivals<R: Rng + ?Sized>(
    rate: f64,
    count: usize,
    rng: &mut R,
) -> Vec<QueryRequest> {
    assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
    let mut t = 0.0;
    (0..count)
        .map(|id| {
            let u: f64 = rng.random::<f64>().max(1e-12);
            t += -u.ln() / rate;
            QueryRequest {
                id,
                arrival: Layers::new(t),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fifo::schedule_fifo;
    use qram_metrics::Capacity;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn server() -> QramServer {
        QramServer::fat_tree_integer_layers(Capacity::new(256).unwrap())
    }

    #[test]
    fn online_equals_offline_fifo() {
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..20 {
            let rate = 0.01 + 0.01 * f64::from(trial);
            let requests = poisson_arrivals(rate, 40, &mut rng);
            let mut online = OnlineFifoScheduler::new(server());
            for &r in &requests {
                online.submit(r).unwrap();
            }
            let online_schedule = online.finish();
            let offline = schedule_fifo(&requests, &server());
            assert_eq!(
                online_schedule.entries(),
                offline.entries(),
                "trial {trial}"
            );
        }
    }

    #[test]
    fn out_of_order_submission_rejected() {
        let mut sched = OnlineFifoScheduler::new(server());
        sched
            .submit(QueryRequest {
                id: 0,
                arrival: Layers::new(10.0),
            })
            .unwrap();
        let err = sched
            .submit(QueryRequest {
                id: 1,
                arrival: Layers::new(5.0),
            })
            .unwrap_err();
        assert_eq!(err.arrival, Layers::new(5.0));
        assert!(err.to_string().contains("precedes"));
        assert_eq!(sched.admitted(), 1);
    }

    #[test]
    fn admission_is_immediate_and_stable() {
        // The slot returned at submission time never changes later —
        // the property that makes FIFO viable online.
        let mut sched = OnlineFifoScheduler::new(server());
        let first = sched
            .submit(QueryRequest {
                id: 0,
                arrival: Layers::new(0.0),
            })
            .unwrap();
        for id in 1..20 {
            sched
                .submit(QueryRequest {
                    id,
                    arrival: Layers::new(id as f64),
                })
                .unwrap();
        }
        let schedule = sched.finish();
        assert_eq!(schedule.entries()[0], first);
    }

    #[test]
    fn duplicate_arrivals_are_accepted_and_match_offline() {
        // Equal arrival times are in order (not "out of order") and must
        // schedule exactly as the offline FIFO pass does.
        let requests: Vec<QueryRequest> = [0.0, 0.0, 0.0, 5.0, 5.0, 5.0, 5.0]
            .iter()
            .enumerate()
            .map(|(id, &a)| QueryRequest {
                id,
                arrival: Layers::new(a),
            })
            .collect();
        let mut online = OnlineFifoScheduler::new(server());
        for &r in &requests {
            online.submit(r).unwrap();
        }
        assert_eq!(
            online.finish().entries(),
            schedule_fifo(&requests, &server()).entries()
        );
    }

    #[test]
    fn sharded_server_admits_at_divided_interval() {
        use qram_core::{QramModel, ShardedQram};
        use qram_metrics::TimingModel;
        let timing = TimingModel::paper_default();
        let sharded = ShardedQram::fat_tree(Capacity::new(256).unwrap(), 4);
        let mut sched = OnlineFifoScheduler::new(QramServer::for_model(&sharded, &timing));
        for id in 0..12 {
            sched
                .submit(QueryRequest {
                    id,
                    arrival: Layers::ZERO,
                })
                .unwrap();
        }
        let schedule = sched.finish();
        let interval = sharded.admission_interval(&timing).get();
        assert!((interval - 8.25 / 4.0).abs() < 1e-12);
        for (k, entry) in schedule.entries().iter().enumerate() {
            assert!(
                (entry.start.get() - interval * k as f64).abs() < 1e-9,
                "query {k} admitted at {}",
                entry.start.get()
            );
        }
    }

    #[test]
    fn poisson_gaps_have_expected_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        let arrivals = poisson_arrivals(0.1, 4000, &mut rng);
        let total = arrivals.last().unwrap().arrival.get();
        let mean_gap = total / 4000.0;
        assert!((mean_gap - 10.0).abs() < 1.0, "mean gap {mean_gap}");
        // Arrivals are sorted by construction.
        for w in arrivals.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
        }
    }

    #[test]
    fn saturating_arrivals_pipeline_at_interval() {
        // Arrival rate far above capacity: admissions settle at the
        // pipeline interval.
        let mut rng = StdRng::seed_from_u64(4);
        let requests = poisson_arrivals(10.0, 30, &mut rng);
        let mut sched = OnlineFifoScheduler::new(server());
        for &r in &requests {
            sched.submit(r).unwrap();
        }
        let schedule = sched.finish();
        let starts: Vec<f64> = schedule.entries().iter().map(|e| e.start.get()).collect();
        for w in starts.windows(2).skip(2) {
            assert!((w[1] - w[0] - 10.0).abs() < 1e-9, "{starts:?}");
        }
    }
}
