//! The pluggable scheduling stack: one admission core, interchangeable
//! policies (§5.2).
//!
//! Before this module, `schedule_fifo` (offline), [`OnlineFifoScheduler`]
//! (incremental), and `simulate_streams` (closed-loop) each hard-coded the
//! same pipelined-admission recurrence. The stack now layers them:
//!
//! * [`PipelineCore`] — the shared recurrence: a query ready at `r` starts
//!   at `max(r, last_start + interval, finish of the query `p` admissions
//!   back)` and occupies the pipeline for `latency`. Every scheduler in
//!   the workspace commits admissions through this one implementation.
//! * [`AdmissionPolicy`] — a strategy hook deciding *how many* queries may
//!   share the pipeline ([`AdmissionPolicy::in_flight_cap`]) and *when* a
//!   request may start relative to the earliest feasible instant
//!   ([`AdmissionPolicy::admission_time`]). [`FifoAdmission`] admits
//!   greedily at full parallelism; [`NoiseAwareAdmission`] trades
//!   parallelism for post-distillation fidelity (§8.2, Table 4).
//! * [`Scheduler`] — the object-safe admit/dispatch/complete surface a
//!   serving layer drives. [`PolicyScheduler`] composes the core with any
//!   policy; [`OnlineFifoScheduler`] is its FIFO instantiation, kept as a
//!   named type for API stability.
//!
//! [`OnlineFifoScheduler`]: crate::OnlineFifoScheduler

use qram_core::QramModel;
use qram_metrics::Layers;
use qram_noise::{distilled_infidelity, query_infidelity_bound, GateErrorRates};

use crate::fifo::{QueryRequest, Schedule, ScheduledQuery};
use crate::online::OutOfOrderArrival;
use crate::server::QramServer;
use crate::tenant::{SloClass, TenantId};

/// Distillation depth past which admission degenerates to one query at a
/// time: even the widest architecture in Table 1 has parallelism far below
/// `2⁶⁴`, and `ε ≥ 1` can never reach a sub-one target.
const MAX_DISTILLATION_COPIES: u32 = 64;

/// The shared pipelined-admission state: committed admissions, their
/// finish times, and the recurrence that turns a ready time into the
/// earliest feasible start.
///
/// Every scheduling entry point in the workspace — offline FIFO, the
/// online scheduler, the closed-loop stream simulator, and the
/// `qram-serve` event reactor's reference pin — commits admissions through
/// this type, so their timings agree bit-for-bit by construction.
#[derive(Debug, Clone)]
pub struct PipelineCore {
    server: QramServer,
    last_start: Option<Layers>,
    finishes: Vec<Layers>,
    entries: Vec<ScheduledQuery>,
}

impl PipelineCore {
    /// An empty core for a server.
    #[must_use]
    pub fn new(server: QramServer) -> Self {
        PipelineCore {
            server,
            last_start: None,
            finishes: Vec::new(),
            entries: Vec::new(),
        }
    }

    /// The server this core schedules onto.
    #[must_use]
    pub fn server(&self) -> &QramServer {
        &self.server
    }

    /// Number of committed admissions.
    #[must_use]
    pub fn admitted(&self) -> usize {
        self.entries.len()
    }

    /// The committed admissions, in admission order.
    #[must_use]
    pub fn entries(&self) -> &[ScheduledQuery] {
        &self.entries
    }

    /// The earliest feasible start for a query that becomes ready at
    /// `ready`, with at most `in_flight_cap` queries sharing the pipeline:
    /// no earlier than `ready`, at least one admission `interval` after
    /// the previous start, and no earlier than the finish of the query
    /// `cap` admissions back (the in-flight bound; `cap` is clamped into
    /// `[1, parallelism]`).
    #[must_use]
    pub fn earliest_start(&self, ready: Layers, in_flight_cap: u32) -> Layers {
        let mut start = ready;
        if let Some(prev) = self.last_start {
            start = start.max(prev + self.server.interval());
        }
        let k = self.entries.len();
        let p = in_flight_cap.clamp(1, self.server.parallelism()) as usize;
        if k >= p {
            start = start.max(self.finishes[k - p]);
        }
        start
    }

    /// Commits an admission at `start`, returning the scheduled slot.
    ///
    /// # Panics
    ///
    /// Panics if `start` precedes the previous admission (the core's
    /// recurrence assumes monotone starts — policies may only delay).
    pub fn commit(&mut self, request: QueryRequest, start: Layers) -> ScheduledQuery {
        if let Some(prev) = self.last_start {
            assert!(
                start >= prev,
                "admissions must be committed in start order: {} < {}",
                start.get(),
                prev.get()
            );
        }
        let finish = start + self.server.latency();
        self.last_start = Some(start);
        self.finishes.push(finish);
        let scheduled = ScheduledQuery {
            request,
            start,
            finish,
        };
        self.entries.push(scheduled);
        scheduled
    }

    /// Consumes the core, returning the realized schedule.
    #[must_use]
    pub fn into_schedule(self) -> Schedule {
        Schedule::from_entries(self.entries)
    }
}

/// A pluggable admission strategy over the [`PipelineCore`].
///
/// Policies constrain the core, never relax it: the cap is clamped into
/// the server's parallelism, and the admission instant may only be delayed
/// past the pipeline-feasible earliest start.
pub trait AdmissionPolicy {
    /// Maximum queries allowed in flight concurrently. The default is the
    /// server's full pipeline parallelism; the returned value is clamped
    /// into `[1, parallelism]` by the callers.
    fn in_flight_cap(&self, server: &QramServer) -> u32 {
        server.parallelism()
    }

    /// The admission instant for `request`, given the earliest
    /// pipeline-feasible start `earliest`. Implementations may delay but
    /// never return a time before `earliest` (enforced by the callers).
    ///
    /// The event-driven serving layer re-evaluates a queued request at
    /// every wake-up, so this may be invoked repeatedly for the same
    /// request with a growing `earliest` — implementations must be
    /// idempotent per request (pure functions of the arguments are).
    fn admission_time(&mut self, request: &QueryRequest, earliest: Layers) -> Layers {
        let _ = request;
        earliest
    }

    /// Cap on a tenant's outstanding (queued + in-flight) requests across
    /// the whole fleet; `None` (the default) is unlimited. Enforced by the
    /// fleet router at arrival time — excess arrivals are shed, bounding
    /// the tenant's queue depth. See [`QuotaAdmission`].
    ///
    /// [`QuotaAdmission`]: crate::tenant::QuotaAdmission
    fn tenant_quota(&self, tenant: TenantId) -> Option<u32> {
        let _ = tenant;
        None
    }

    /// The tenant's shedding class under arrival-queue pressure. The
    /// default, [`SloClass::Interactive`], imposes no constraint beyond
    /// the queue bound itself.
    fn tenant_slo(&self, tenant: TenantId) -> SloClass {
        let _ = tenant;
        SloClass::Interactive
    }

    /// Per-query response deadline for the tenant, measured from arrival:
    /// a query still undispatched at `arrival + deadline` is shed as
    /// deadline-exceeded instead of waiting without bound. `None` (the
    /// default) waits forever. See [`QuotaAdmission::with_deadline`].
    ///
    /// [`QuotaAdmission::with_deadline`]: crate::tenant::QuotaAdmission::with_deadline
    fn tenant_deadline(&self, tenant: TenantId) -> Option<Layers> {
        let _ = tenant;
        None
    }
}

/// First-come-first-served admission at full pipeline parallelism — the
/// latency-optimal policy of Appendix A.2.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FifoAdmission;

impl AdmissionPolicy for FifoAdmission {}

/// Noise-aware admission (§8.2): caps the number of concurrently served
/// queries so that each admitted query can be virtually distilled from
/// enough parallel copies to push its post-distillation infidelity below a
/// target.
///
/// A capacity-`N` query has infidelity `ε` (from
/// [`query_infidelity_bound`]); distilling `k` parallel copies suppresses
/// it to `≈ εᵏ` ([`distilled_infidelity`]). Meeting a target infidelity
/// `δ` therefore costs `k = min{k : εᵏ ≤ δ}` pipeline slots per logical
/// query, capping the concurrent batch at `⌊parallelism / k⌋` — smaller
/// batches than FIFO exactly when the target is tight (cf. Table 4's
/// parallelism–fidelity trade-off).
///
/// # Examples
///
/// ```
/// use qram_core::FatTreeQram;
/// use qram_metrics::{Capacity, TimingModel};
/// use qram_noise::GateErrorRates;
/// use qram_sched::{AdmissionPolicy, NoiseAwareAdmission, QramServer};
///
/// let qram = FatTreeQram::new(Capacity::new(16)?);
/// let server = QramServer::for_model(&qram, &TimingModel::paper_default());
/// // ε = 0.16 at ε₀ = 2·10⁻³ (Table 4); a 10⁻³ infidelity target needs
/// // 4 copies per query, so only ⌊4 / 4⌋ = 1 of the 4 pipeline slots
/// // serves a distinct query.
/// let policy = NoiseAwareAdmission::for_model(
///     &qram, &GateErrorRates::from_cswap_rate(2e-3), 1e-3);
/// assert_eq!(policy.copies(), 4);
/// assert_eq!(policy.in_flight_cap(&server), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoiseAwareAdmission {
    copies: u32,
}

impl NoiseAwareAdmission {
    /// Plans admission for a backend under the given gate-error rates and
    /// post-distillation infidelity target, deriving the per-query
    /// infidelity from [`query_infidelity_bound`].
    ///
    /// # Panics
    ///
    /// Panics if `target_infidelity` is outside `(0, 1]`.
    #[must_use]
    pub fn for_model<M: QramModel + ?Sized>(
        model: &M,
        rates: &GateErrorRates,
        target_infidelity: f64,
    ) -> Self {
        NoiseAwareAdmission::from_infidelity(
            query_infidelity_bound(model, rates),
            target_infidelity,
        )
    }

    /// Plans admission for a known per-query infidelity `eps`.
    ///
    /// # Panics
    ///
    /// Panics if `eps` is outside `[0, 1]` or `target_infidelity` outside
    /// `(0, 1]`.
    #[must_use]
    pub fn from_infidelity(eps: f64, target_infidelity: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&eps),
            "per-query infidelity must lie in [0, 1], got {eps}"
        );
        assert!(
            target_infidelity > 0.0 && target_infidelity <= 1.0,
            "target infidelity must lie in (0, 1], got {target_infidelity}"
        );
        let copies = (1..MAX_DISTILLATION_COPIES)
            .find(|&k| distilled_infidelity(eps, k) <= target_infidelity)
            .unwrap_or(MAX_DISTILLATION_COPIES);
        NoiseAwareAdmission { copies }
    }

    /// Parallel copies distilled per admitted query.
    #[must_use]
    pub fn copies(&self) -> u32 {
        self.copies
    }

    /// The concurrent-batch cap on a machine with the given parallelism:
    /// `max(1, ⌊parallelism / copies⌋)`.
    #[must_use]
    pub fn batch_cap(&self, parallelism: u32) -> u32 {
        (parallelism / self.copies).max(1)
    }
}

impl AdmissionPolicy for NoiseAwareAdmission {
    fn in_flight_cap(&self, server: &QramServer) -> u32 {
        self.batch_cap(server.parallelism())
    }
}

/// The object-safe scheduler surface a serving layer drives: admit on
/// arrival, observe dispatch and completion.
pub trait Scheduler {
    /// The server being scheduled onto.
    fn server(&self) -> &QramServer;

    /// Admits the next arriving request, committing its slot immediately.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfOrderArrival`] if `request.arrival` precedes an
    /// already-admitted arrival — an online scheduler sees time move
    /// forward only.
    fn admit(&mut self, request: QueryRequest) -> Result<ScheduledQuery, OutOfOrderArrival>;

    /// Dispatch hook: the serving layer started executing `query`. The
    /// default is a no-op (admission already committed the slot).
    fn on_dispatch(&mut self, query: &ScheduledQuery) {
        let _ = query;
    }

    /// Completion hook: the serving layer observed `query` finish. The
    /// default is a no-op.
    fn on_complete(&mut self, query: &ScheduledQuery) {
        let _ = query;
    }

    /// Admissions committed so far, in admission order.
    fn entries(&self) -> &[ScheduledQuery];
}

/// A [`Scheduler`] composing the shared [`PipelineCore`] with any
/// [`AdmissionPolicy`].
///
/// # Examples
///
/// ```
/// use qram_metrics::{Capacity, Layers};
/// use qram_sched::{
///     FifoAdmission, PolicyScheduler, QramServer, QueryRequest, Scheduler,
/// };
///
/// let server = QramServer::fat_tree_integer_layers(Capacity::new(8)?);
/// let mut sched = PolicyScheduler::new(server, FifoAdmission);
/// let slot = sched.admit(QueryRequest { id: 0, arrival: Layers::ZERO })?;
/// assert_eq!(slot.start, Layers::ZERO);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct PolicyScheduler<P> {
    core: PipelineCore,
    policy: P,
    last_arrival: Option<Layers>,
}

impl<P: AdmissionPolicy> PolicyScheduler<P> {
    /// An empty scheduler for a server under a policy.
    #[must_use]
    pub fn new(server: QramServer, policy: P) -> Self {
        PolicyScheduler {
            core: PipelineCore::new(server),
            policy,
            last_arrival: None,
        }
    }

    /// The admission policy.
    #[must_use]
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Number of queries admitted so far.
    #[must_use]
    pub fn admitted(&self) -> usize {
        self.core.admitted()
    }

    /// Consumes the scheduler, returning the realized schedule.
    #[must_use]
    pub fn into_schedule(self) -> Schedule {
        self.core.into_schedule()
    }
}

impl<P: AdmissionPolicy> Scheduler for PolicyScheduler<P> {
    fn server(&self) -> &QramServer {
        self.core.server()
    }

    fn admit(&mut self, request: QueryRequest) -> Result<ScheduledQuery, OutOfOrderArrival> {
        if let Some(prev) = self.last_arrival {
            if request.arrival < prev {
                return Err(OutOfOrderArrival {
                    arrival: request.arrival,
                    previous: prev,
                });
            }
        }
        self.last_arrival = Some(request.arrival);
        let cap = self.policy.in_flight_cap(self.core.server());
        let earliest = self.core.earliest_start(request.arrival, cap);
        let start = self.policy.admission_time(&request, earliest);
        assert!(
            start >= earliest,
            "admission policy may only delay: {} < {}",
            start.get(),
            earliest.get()
        );
        Ok(self.core.commit(request, start))
    }

    fn entries(&self) -> &[ScheduledQuery] {
        self.core.entries()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qram_metrics::Capacity;

    fn server() -> QramServer {
        QramServer::fat_tree_integer_layers(Capacity::new(8).unwrap())
    }

    fn requests(arrivals: &[f64]) -> Vec<QueryRequest> {
        arrivals
            .iter()
            .enumerate()
            .map(|(id, &a)| QueryRequest {
                id,
                arrival: Layers::new(a),
            })
            .collect()
    }

    #[test]
    fn fifo_policy_matches_pipeline_recurrence() {
        let mut sched = PolicyScheduler::new(server(), FifoAdmission);
        for r in requests(&[0.0, 0.0, 0.0]) {
            sched.admit(r).unwrap();
        }
        let starts: Vec<f64> = sched.entries().iter().map(|e| e.start.get()).collect();
        assert_eq!(starts, vec![0.0, 10.0, 20.0]);
    }

    #[test]
    fn policy_scheduler_rejects_out_of_order() {
        let mut sched = PolicyScheduler::new(server(), FifoAdmission);
        sched
            .admit(QueryRequest {
                id: 0,
                arrival: Layers::new(5.0),
            })
            .unwrap();
        let err = sched
            .admit(QueryRequest {
                id: 1,
                arrival: Layers::new(1.0),
            })
            .unwrap_err();
        assert_eq!(err.previous, Layers::new(5.0));
        assert_eq!(sched.admitted(), 1);
    }

    #[test]
    fn in_flight_cap_serializes_below_parallelism() {
        // Cap 1 on a parallelism-3 server: each query waits for the
        // previous finish, not just the interval.
        #[derive(Debug)]
        struct CapOne;
        impl AdmissionPolicy for CapOne {
            fn in_flight_cap(&self, _server: &QramServer) -> u32 {
                1
            }
        }
        let s = server();
        let mut sched = PolicyScheduler::new(s, CapOne);
        for r in requests(&[0.0, 0.0, 0.0]) {
            sched.admit(r).unwrap();
        }
        let starts: Vec<f64> = sched.entries().iter().map(|e| e.start.get()).collect();
        assert_eq!(starts, vec![0.0, 29.0, 58.0]);
    }

    #[test]
    fn delaying_policy_shifts_admissions() {
        #[derive(Debug)]
        struct DelayFive;
        impl AdmissionPolicy for DelayFive {
            fn admission_time(&mut self, _request: &QueryRequest, earliest: Layers) -> Layers {
                earliest + Layers::new(5.0)
            }
        }
        let mut sched = PolicyScheduler::new(server(), DelayFive);
        for r in requests(&[0.0, 0.0]) {
            sched.admit(r).unwrap();
        }
        let starts: Vec<f64> = sched.entries().iter().map(|e| e.start.get()).collect();
        assert_eq!(starts, vec![5.0, 20.0]);
    }

    #[test]
    fn noise_aware_copies_match_table4_operating_point() {
        // Table 4: ε = 0.16 (Fat-Tree N = 16 at ε₀ = 2·10⁻³); four copies
        // reach 0.16⁴ ≈ 6.6·10⁻⁴.
        let policy = NoiseAwareAdmission::from_infidelity(0.16, 1e-3);
        assert_eq!(policy.copies(), 4);
        assert_eq!(policy.batch_cap(4), 1);
        assert_eq!(policy.batch_cap(12), 3);
        // A loose target needs no distillation at all.
        let loose = NoiseAwareAdmission::from_infidelity(0.16, 0.5);
        assert_eq!(loose.copies(), 1);
    }

    #[test]
    fn noise_aware_caps_at_one_query_for_hopeless_noise() {
        // ε = 1 can never be distilled below a sub-one target: the copy
        // count saturates and the batch cap degenerates to 1.
        let policy = NoiseAwareAdmission::from_infidelity(1.0, 0.1);
        assert_eq!(policy.copies(), MAX_DISTILLATION_COPIES);
        assert_eq!(policy.batch_cap(10), 1);
    }

    #[test]
    fn noise_aware_schedule_is_slower_but_no_wider_than_fifo() {
        let s = server(); // parallelism 3, interval 10, latency 29
        let reqs = requests(&[0.0; 9]);
        let mut fifo = PolicyScheduler::new(s, FifoAdmission);
        let mut tight = PolicyScheduler::new(s, NoiseAwareAdmission::from_infidelity(0.16, 1e-3));
        for &r in &reqs {
            fifo.admit(r).unwrap();
            tight.admit(r).unwrap();
        }
        let fifo = fifo.into_schedule();
        let tight = tight.into_schedule();
        assert!(tight.makespan() > fifo.makespan());
        assert!(tight.total_latency() > fifo.total_latency());
    }

    #[test]
    #[should_panic(expected = "only delay")]
    fn early_admission_rejected() {
        #[derive(Debug)]
        struct Cheat;
        impl AdmissionPolicy for Cheat {
            fn admission_time(&mut self, _request: &QueryRequest, earliest: Layers) -> Layers {
                earliest.saturating_sub(Layers::new(1.0))
            }
        }
        let mut sched = PolicyScheduler::new(server(), Cheat);
        for r in requests(&[0.0, 0.0]) {
            let _ = sched.admit(r);
        }
    }

    #[test]
    #[should_panic(expected = "start order")]
    fn core_rejects_non_monotone_commits() {
        let mut core = PipelineCore::new(server());
        let reqs = requests(&[0.0, 0.0]);
        core.commit(reqs[0], Layers::new(10.0));
        core.commit(reqs[1], Layers::new(5.0));
    }
}
