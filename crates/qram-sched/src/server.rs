//! The pipelined-server abstraction of a shared QRAM.

use qram_arch::{Architecture, CostModel};
use qram_core::QramModel;
use qram_metrics::{Capacity, Layers, TimingModel};

/// A shared QRAM viewed as a pipelined server: up to `parallelism` queries
/// in flight, a new query admitted at most every `interval`, each query
/// occupying the pipeline for `latency`.
///
/// For a Fat-Tree QRAM the admission interval (10 integer layers / 8.25
/// weighted) is the binding constraint and implies the `log₂ N` in-flight
/// bound; for a bucket-brigade QRAM `parallelism = 1` makes service fully
/// sequential.
///
/// # Examples
///
/// ```
/// use qram_sched::QramServer;
/// use qram_arch::Architecture;
/// use qram_metrics::{Capacity, TimingModel};
///
/// let server = QramServer::for_architecture(
///     Architecture::FatTree, Capacity::new(1024)?, TimingModel::paper_default());
/// assert_eq!(server.parallelism(), 10);
/// assert_eq!(server.interval().get(), 8.25);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QramServer {
    parallelism: u32,
    interval: Layers,
    latency: Layers,
}

impl QramServer {
    /// Creates a server from raw parameters.
    ///
    /// # Panics
    ///
    /// Panics if `parallelism == 0`, `interval` is zero, or
    /// `latency < interval`.
    #[must_use]
    pub fn new(parallelism: u32, interval: Layers, latency: Layers) -> Self {
        assert!(parallelism >= 1, "parallelism must be at least 1");
        assert!(interval > Layers::ZERO, "interval must be positive");
        assert!(
            latency >= interval || parallelism == 1,
            "pipelined service requires latency >= interval"
        );
        QramServer {
            parallelism,
            interval,
            latency,
        }
    }

    /// The server corresponding to any [`QramModel`] backend: parallelism,
    /// admission interval, and latency come from the trait, so the server
    /// needs no per-architecture knowledge.
    ///
    /// # Examples
    ///
    /// ```
    /// use qram_core::FatTreeQram;
    /// use qram_metrics::{Capacity, TimingModel};
    /// use qram_sched::QramServer;
    ///
    /// let qram = FatTreeQram::new(Capacity::new(1024)?);
    /// let server = QramServer::for_model(&qram, &TimingModel::paper_default());
    /// assert_eq!(server.parallelism(), 10);
    /// assert_eq!(server.interval().get(), 8.25);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    #[must_use]
    pub fn for_model<M: QramModel + ?Sized>(model: &M, timing: &TimingModel) -> Self {
        QramServer::new(
            model.query_parallelism(),
            model.admission_interval(timing),
            model.single_query_latency(timing),
        )
    }

    /// The server corresponding to an architecture's cost model (§6.1):
    /// parallelism and latencies from Table 1. The admission interval is
    /// the amortized per-query latency at full load — exact for every
    /// architecture in the table, pipelined or sequential — so no
    /// per-architecture dispatch is needed.
    #[must_use]
    pub fn for_architecture(
        architecture: Architecture,
        capacity: Capacity,
        timing: TimingModel,
    ) -> Self {
        let model = CostModel::new(architecture, capacity, timing);
        QramServer::new(
            model.query_parallelism(),
            model.amortized_query_latency(),
            model.single_query_latency(),
        )
    }

    /// A Fat-Tree server in *integer* circuit layers (interval 10, latency
    /// `10n − 1`) — matching Figs. 6 and 7 exactly.
    #[must_use]
    pub fn fat_tree_integer_layers(capacity: Capacity) -> Self {
        let n = capacity.n_f64();
        QramServer::new(
            capacity.address_width(),
            Layers::new(10.0),
            Layers::new(10.0 * n - 1.0),
        )
    }

    /// A bucket-brigade server in integer layers (latency `8n + 1`).
    #[must_use]
    pub fn bucket_brigade_integer_layers(capacity: Capacity) -> Self {
        let n = capacity.n_f64();
        let latency = Layers::new(8.0 * n + 1.0);
        QramServer::new(1, latency, latency)
    }

    /// Maximum queries in flight.
    #[must_use]
    pub fn parallelism(&self) -> u32 {
        self.parallelism
    }

    /// Minimum spacing between query admissions.
    #[must_use]
    pub fn interval(&self) -> Layers {
        self.interval
    }

    /// Pipeline occupancy of one query.
    #[must_use]
    pub fn latency(&self) -> Layers {
        self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cap(n: u64) -> Capacity {
        Capacity::new(n).unwrap()
    }

    #[test]
    fn fat_tree_server_parameters() {
        let s = QramServer::for_architecture(
            Architecture::FatTree,
            cap(1024),
            TimingModel::paper_default(),
        );
        assert_eq!(s.parallelism(), 10);
        assert_eq!(s.interval().get(), 8.25);
        assert!((s.latency().get() - 82.375).abs() < 1e-9);
    }

    #[test]
    fn bb_server_is_sequential() {
        let s = QramServer::for_architecture(
            Architecture::BucketBrigade,
            cap(1024),
            TimingModel::paper_default(),
        );
        assert_eq!(s.parallelism(), 1);
        assert_eq!(s.interval(), s.latency());
    }

    #[test]
    fn integer_layer_servers_match_figures() {
        let ft = QramServer::fat_tree_integer_layers(cap(8));
        assert_eq!(ft.interval().get(), 10.0);
        assert_eq!(ft.latency().get(), 29.0);
        let bb = QramServer::bucket_brigade_integer_layers(cap(8));
        assert_eq!(bb.latency().get(), 25.0);
    }

    #[test]
    fn for_model_agrees_with_cost_model_servers() {
        use qram_core::{BucketBrigadeQram, FatTreeQram};
        let timing = TimingModel::paper_default();
        assert_eq!(
            QramServer::for_model(&FatTreeQram::new(cap(1024)), &timing),
            QramServer::for_architecture(Architecture::FatTree, cap(1024), timing),
        );
        assert_eq!(
            QramServer::for_model(&BucketBrigadeQram::new(cap(1024)), &timing),
            QramServer::for_architecture(Architecture::BucketBrigade, cap(1024), timing),
        );
    }

    #[test]
    fn for_model_serves_sharded_backends() {
        use qram_core::{FatTreeQram, QramModel, ShardedQram};
        let timing = TimingModel::paper_default();
        let sharded = ShardedQram::fat_tree(cap(4096), 4);
        let server = QramServer::for_model(&sharded, &timing);
        // 4 shards × log₂(1024) pipelined queries each.
        assert_eq!(server.parallelism(), 40);
        // Round-robin admission: the Fat-Tree interval divided by K.
        assert_eq!(server.interval().get(), 8.25 / 4.0);
        // A lookup still resolves all 12 address bits.
        assert_eq!(
            server.latency(),
            FatTreeQram::new(cap(4096)).single_query_latency(&timing)
        );
    }

    #[test]
    #[should_panic(expected = "parallelism")]
    fn zero_parallelism_rejected() {
        let _ = QramServer::new(0, Layers::new(1.0), Layers::new(1.0));
    }
}
