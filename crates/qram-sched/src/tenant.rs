//! Multi-tenant admission: per-tenant quotas and SLO classes on top of the
//! pluggable policy stack.
//!
//! The fleet serving layer (`qram-serve`) shares one QRAM fleet among many
//! tenants. Isolation comes from two constrain-only knobs threaded through
//! the [`AdmissionPolicy`] stack:
//!
//! * an **outstanding-request quota** ([`TenantSpec::quota`]) — a cap on a
//!   tenant's queued + in-flight requests fleet-wide. Arrivals beyond it
//!   are shed at the router, so a hot tenant's queue depth (and therefore
//!   its waiting time) is bounded, and it cannot crowd other tenants out
//!   of the shared dispatch queues.
//! * an **SLO class** ([`SloClass`]) — the fraction of a replica's bounded
//!   arrival queue the tenant may occupy before its arrivals are shed.
//!   Lower classes yield queue headroom to higher ones under overload;
//!   [`SloClass::Interactive`] (the default) imposes no extra constraint.
//!
//! [`QuotaAdmission`] attaches a tenant table to any inner policy
//! ([`FifoAdmission`], [`NoiseAwareAdmission`], …): the inner policy keeps
//! deciding pipeline-level admission (in-flight cap, admission instants)
//! while the wrapper answers the per-tenant questions — composing the two
//! orthogonal axes without either knowing about the other. Like every
//! policy in the stack it can only *constrain*: wrapping a policy never
//! admits a request the inner policy would have refused.
//!
//! [`AdmissionPolicy`]: crate::AdmissionPolicy
//! [`FifoAdmission`]: crate::FifoAdmission
//! [`NoiseAwareAdmission`]: crate::NoiseAwareAdmission

use std::collections::BTreeMap;

use qram_metrics::Layers;

use crate::fifo::QueryRequest;
use crate::policy::AdmissionPolicy;
use crate::server::QramServer;

/// A tenant of the shared QRAM fleet.
///
/// Plain numeric identity: the serving layer threads it through arrivals,
/// reports, and quota lookups. Untagged traffic belongs to
/// [`TenantId::DEFAULT`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TenantId(pub u32);

impl TenantId {
    /// The tenant untagged requests are billed to.
    pub const DEFAULT: TenantId = TenantId(0);
}

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant{}", self.0)
    }
}

/// A service-level-objective class: how much of a replica's bounded
/// arrival queue the tenant's traffic may occupy before being shed.
///
/// Classes order by strictness: a lower queue share sheds earlier, leaving
/// headroom for higher classes during overload. The class never *grants*
/// anything — with an unbounded arrival queue it has no effect, and
/// [`SloClass::Interactive`] is indistinguishable from having no class at
/// all (which keeps the single-tenant fleet bit-equal to the single
/// service).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum SloClass {
    /// Bulk traffic: may fill at most half the arrival queue.
    Batch,
    /// Ordinary traffic: may fill at most ¾ of the arrival queue.
    Standard,
    /// Latency-sensitive traffic: may use the whole queue (no extra
    /// constraint — the default).
    #[default]
    Interactive,
}

impl SloClass {
    /// The fraction of a bounded arrival queue this class may occupy.
    #[must_use]
    pub fn queue_share(&self) -> f64 {
        match self {
            SloClass::Batch => 0.5,
            SloClass::Standard => 0.75,
            SloClass::Interactive => 1.0,
        }
    }

    /// The class's queue bound for a queue of `capacity` slots (at least
    /// one slot, so a class can never be starved outright while the queue
    /// is empty).
    #[must_use]
    pub fn queue_bound(&self, capacity: usize) -> usize {
        (((capacity as f64) * self.queue_share()).floor() as usize).max(1)
    }

    /// The stricter (smaller-share) of two classes — the composition rule
    /// for stacked policies, mirroring the `min` composition of in-flight
    /// caps.
    #[must_use]
    pub fn stricter(self, other: SloClass) -> SloClass {
        self.min(other)
    }
}

/// Per-tenant admission limits.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TenantSpec {
    /// Cap on the tenant's outstanding (queued + in-flight) requests
    /// fleet-wide; `None` is unlimited.
    pub quota: Option<u32>,
    /// The tenant's shedding class under queue pressure.
    pub slo: SloClass,
    /// Per-query response deadline, measured from arrival: a query not
    /// dispatched by `arrival + deadline` is shed as deadline-exceeded
    /// rather than waiting without bound. `None` waits forever.
    pub deadline: Option<Layers>,
}

impl TenantSpec {
    /// An unlimited, interactive-class, no-deadline spec — the behavior of
    /// a tenant the quota table does not mention.
    #[must_use]
    pub fn unlimited() -> Self {
        TenantSpec {
            quota: None,
            slo: SloClass::Interactive,
            deadline: None,
        }
    }
}

/// Capped exponential backoff for re-dispatching queries lost to a
/// replica failure (or caught corrupted): the `a`-th loss of a query is
/// retried `min(base·2^(a−1), max)` layers later, up to `max_attempts`
/// total dispatch attempts, after which the query is shed as
/// retries-exhausted.
///
/// # Examples
///
/// ```
/// use qram_metrics::Layers;
/// use qram_sched::RetryPolicy;
///
/// let retry = RetryPolicy::new(3, Layers::new(50.0), Layers::new(400.0));
/// assert_eq!(retry.backoff(1), Layers::new(50.0));
/// assert_eq!(retry.backoff(2), Layers::new(100.0));
/// assert_eq!(retry.backoff(20), Layers::new(400.0), "capped");
/// assert!(!retry.budget_exhausted(2));
/// assert!(retry.budget_exhausted(3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total dispatch attempts allowed per query (first try included).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff: Layers,
    /// Ceiling the exponential schedule saturates at.
    pub max_backoff: Layers,
}

impl RetryPolicy {
    /// A policy allowing `max_attempts` total attempts with backoff
    /// doubling from `base_backoff` up to `max_backoff`.
    ///
    /// # Panics
    ///
    /// Panics if `max_attempts` is zero (the first dispatch is already an
    /// attempt) or `max_backoff < base_backoff`.
    #[must_use]
    pub fn new(max_attempts: u32, base_backoff: Layers, max_backoff: Layers) -> Self {
        assert!(max_attempts >= 1, "the first dispatch is an attempt");
        assert!(
            max_backoff >= base_backoff,
            "backoff ceiling below its base"
        );
        RetryPolicy {
            max_attempts,
            base_backoff,
            max_backoff,
        }
    }

    /// The delay before the retry following the `attempts_so_far`-th
    /// attempt (1-based): `min(base·2^(attempts_so_far − 1), max)`.
    #[must_use]
    pub fn backoff(&self, attempts_so_far: u32) -> Layers {
        let doublings = attempts_so_far.saturating_sub(1).min(52);
        let raw = self.base_backoff.get() * (1u64 << doublings) as f64;
        Layers::new(raw.min(self.max_backoff.get()))
    }

    /// True when `attempts_so_far` used up the budget: no further retry
    /// may be scheduled.
    #[must_use]
    pub fn budget_exhausted(&self, attempts_so_far: u32) -> bool {
        attempts_so_far >= self.max_attempts
    }
}

impl Default for RetryPolicy {
    /// Three attempts, backoff doubling from 64 layers up to 1024 —
    /// a few admission intervals at the paper's timing scale.
    fn default() -> Self {
        RetryPolicy::new(3, Layers::new(64.0), Layers::new(1024.0))
    }
}

/// Per-tenant quotas and SLO classes layered over any inner
/// [`AdmissionPolicy`].
///
/// Pipeline-level decisions ([`AdmissionPolicy::in_flight_cap`],
/// [`AdmissionPolicy::admission_time`]) delegate to the inner policy
/// unchanged; the per-tenant hooks compose constrain-only — a quota is the
/// `min` of the wrapper's and the inner policy's, an SLO class is the
/// stricter of the two.
///
/// # Examples
///
/// ```
/// use qram_sched::{
///     AdmissionPolicy, FifoAdmission, QuotaAdmission, SloClass, TenantId,
/// };
///
/// let policy = QuotaAdmission::new(FifoAdmission)
///     .with_quota(TenantId(7), 4)
///     .with_slo(TenantId(9), SloClass::Batch);
/// assert_eq!(policy.tenant_quota(TenantId(7)), Some(4));
/// // Unlisted tenants are unconstrained.
/// assert_eq!(policy.tenant_quota(TenantId(1)), None);
/// assert_eq!(policy.tenant_slo(TenantId(9)), SloClass::Batch);
/// assert_eq!(policy.tenant_slo(TenantId(7)), SloClass::Interactive);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QuotaAdmission<P> {
    inner: P,
    tenants: BTreeMap<TenantId, TenantSpec>,
}

impl<P: AdmissionPolicy> QuotaAdmission<P> {
    /// Wraps `inner` with an empty tenant table (every tenant unlimited).
    #[must_use]
    pub fn new(inner: P) -> Self {
        QuotaAdmission {
            inner,
            tenants: BTreeMap::new(),
        }
    }

    /// The wrapped policy.
    #[must_use]
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Sets the full spec for a tenant (builder style).
    #[must_use]
    pub fn with_tenant(mut self, tenant: TenantId, spec: TenantSpec) -> Self {
        self.tenants.insert(tenant, spec);
        self
    }

    /// Sets a tenant's outstanding-request quota, keeping its class.
    ///
    /// # Panics
    ///
    /// Panics if `quota` is zero (a zero quota would shed every request —
    /// delete the tenant's traffic at the source instead).
    #[must_use]
    pub fn with_quota(mut self, tenant: TenantId, quota: u32) -> Self {
        assert!(quota > 0, "a quota of zero sheds all of {tenant}'s traffic");
        self.tenants.entry(tenant).or_default().quota = Some(quota);
        self
    }

    /// Sets a tenant's SLO class, keeping its quota.
    #[must_use]
    pub fn with_slo(mut self, tenant: TenantId, slo: SloClass) -> Self {
        self.tenants.entry(tenant).or_default().slo = slo;
        self
    }

    /// Sets a tenant's per-query deadline (measured from arrival),
    /// keeping its quota and class.
    ///
    /// # Panics
    ///
    /// Panics if `deadline` is zero (nothing dispatches in zero layers —
    /// every query would be shed on arrival).
    #[must_use]
    pub fn with_deadline(mut self, tenant: TenantId, deadline: Layers) -> Self {
        assert!(
            deadline > Layers::ZERO,
            "a zero deadline sheds all of {tenant}'s traffic"
        );
        self.tenants.entry(tenant).or_default().deadline = Some(deadline);
        self
    }

    /// The configured spec for `tenant` (unlimited if unlisted).
    #[must_use]
    pub fn spec(&self, tenant: TenantId) -> TenantSpec {
        self.tenants
            .get(&tenant)
            .copied()
            .unwrap_or_else(TenantSpec::unlimited)
    }

    /// Tenants with an explicit spec, in id order.
    pub fn tenants(&self) -> impl Iterator<Item = (TenantId, TenantSpec)> + '_ {
        self.tenants.iter().map(|(&t, &s)| (t, s))
    }
}

impl<P: AdmissionPolicy> AdmissionPolicy for QuotaAdmission<P> {
    fn in_flight_cap(&self, server: &QramServer) -> u32 {
        self.inner.in_flight_cap(server)
    }

    fn admission_time(&mut self, request: &QueryRequest, earliest: Layers) -> Layers {
        self.inner.admission_time(request, earliest)
    }

    fn tenant_quota(&self, tenant: TenantId) -> Option<u32> {
        // min-composition: the wrapper can only tighten the inner quota.
        match (self.spec(tenant).quota, self.inner.tenant_quota(tenant)) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn tenant_slo(&self, tenant: TenantId) -> SloClass {
        self.spec(tenant)
            .slo
            .stricter(self.inner.tenant_slo(tenant))
    }

    fn tenant_deadline(&self, tenant: TenantId) -> Option<Layers> {
        // min-composition: the tighter (earlier) deadline wins.
        match (
            self.spec(tenant).deadline,
            self.inner.tenant_deadline(tenant),
        ) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{FifoAdmission, NoiseAwareAdmission};
    use qram_metrics::Capacity;

    #[test]
    fn default_tenant_is_unlimited_interactive() {
        let policy = QuotaAdmission::new(FifoAdmission);
        assert_eq!(policy.tenant_quota(TenantId::DEFAULT), None);
        assert_eq!(policy.tenant_slo(TenantId::DEFAULT), SloClass::Interactive);
    }

    #[test]
    fn quota_and_slo_are_independent_knobs() {
        let policy = QuotaAdmission::new(FifoAdmission)
            .with_quota(TenantId(3), 8)
            .with_slo(TenantId(3), SloClass::Batch)
            .with_quota(TenantId(4), 2);
        assert_eq!(policy.tenant_quota(TenantId(3)), Some(8));
        assert_eq!(policy.tenant_slo(TenantId(3)), SloClass::Batch);
        assert_eq!(policy.tenant_quota(TenantId(4)), Some(2));
        assert_eq!(policy.tenant_slo(TenantId(4)), SloClass::Interactive);
        let listed: Vec<TenantId> = policy.tenants().map(|(t, _)| t).collect();
        assert_eq!(listed, vec![TenantId(3), TenantId(4)]);
    }

    #[test]
    fn pipeline_decisions_delegate_to_inner_policy() {
        let server = QramServer::fat_tree_integer_layers(Capacity::new(8).unwrap());
        let noise = NoiseAwareAdmission::from_infidelity(0.16, 1e-3);
        let mut wrapped = QuotaAdmission::new(noise).with_quota(TenantId(1), 5);
        assert_eq!(
            wrapped.in_flight_cap(&server),
            noise.in_flight_cap(&server),
            "quota wrapper must not change the pipeline cap"
        );
        let request = QueryRequest {
            id: 0,
            arrival: Layers::ZERO,
        };
        let mut bare = noise;
        assert_eq!(
            wrapped.admission_time(&request, Layers::new(3.0)),
            bare.admission_time(&request, Layers::new(3.0)),
        );
    }

    #[test]
    fn stacked_quota_wrappers_compose_by_min() {
        let inner = QuotaAdmission::new(FifoAdmission)
            .with_quota(TenantId(1), 10)
            .with_slo(TenantId(2), SloClass::Standard);
        let outer = QuotaAdmission::new(inner)
            .with_quota(TenantId(1), 25)
            .with_slo(TenantId(2), SloClass::Interactive);
        // Constrain-only: the looser outer limits cannot relax the inner.
        assert_eq!(outer.tenant_quota(TenantId(1)), Some(10));
        assert_eq!(outer.tenant_slo(TenantId(2)), SloClass::Standard);
    }

    #[test]
    fn slo_queue_bounds_scale_with_share() {
        assert_eq!(SloClass::Interactive.queue_bound(16), 16);
        assert_eq!(SloClass::Standard.queue_bound(16), 12);
        assert_eq!(SloClass::Batch.queue_bound(16), 8);
        // Never starved to zero slots.
        assert_eq!(SloClass::Batch.queue_bound(1), 1);
        assert!(SloClass::Batch.queue_share() < SloClass::Standard.queue_share());
        assert_eq!(
            SloClass::Interactive.stricter(SloClass::Batch),
            SloClass::Batch
        );
    }

    #[test]
    #[should_panic(expected = "sheds all")]
    fn zero_quota_rejected() {
        let _ = QuotaAdmission::new(FifoAdmission).with_quota(TenantId(1), 0);
    }

    #[test]
    fn deadlines_compose_to_the_tighter_bound() {
        let inner =
            QuotaAdmission::new(FifoAdmission).with_deadline(TenantId(1), Layers::new(500.0));
        let outer = QuotaAdmission::new(inner)
            .with_deadline(TenantId(1), Layers::new(900.0))
            .with_deadline(TenantId(2), Layers::new(40.0));
        assert_eq!(outer.tenant_deadline(TenantId(1)), Some(Layers::new(500.0)));
        assert_eq!(outer.tenant_deadline(TenantId(2)), Some(Layers::new(40.0)));
        assert_eq!(outer.tenant_deadline(TenantId(3)), None);
    }

    #[test]
    #[should_panic(expected = "sheds all")]
    fn zero_deadline_rejected() {
        let _ = QuotaAdmission::new(FifoAdmission).with_deadline(TenantId(1), Layers::ZERO);
    }

    #[test]
    fn retry_backoff_doubles_and_saturates() {
        let retry = RetryPolicy::default();
        assert_eq!(retry.backoff(1), Layers::new(64.0));
        assert_eq!(retry.backoff(2), Layers::new(128.0));
        assert_eq!(retry.backoff(3), Layers::new(256.0));
        assert_eq!(retry.backoff(100), Layers::new(1024.0), "ceiling holds");
        assert!(retry.backoff(0) >= retry.base_backoff);
        assert!(!retry.budget_exhausted(2));
        assert!(retry.budget_exhausted(3));
    }

    #[test]
    #[should_panic(expected = "ceiling below")]
    fn inverted_backoff_bounds_rejected() {
        let _ = RetryPolicy::new(2, Layers::new(100.0), Layers::new(10.0));
    }
}
