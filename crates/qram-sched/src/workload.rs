//! Closed-loop simulation of algorithm streams sharing a QRAM (Fig. 7).
//!
//! Real algorithms alternate *query* phases with *processing* phases of
//! depth `d`; the next query only becomes ready once processing finishes.
//! [`simulate_streams`] runs any number of such streams against a
//! [`QramServer`] under FIFO admission, reporting per-query timings, the
//! overall algorithm depth (makespan), and the QRAM utilization staircase.
//!
//! [`ZipfAddresses`] generates skewed classical address workloads —
//! the standard serving-cache traffic model — used to measure the batch
//! memoization hit rate of `qram_core::execute_batch_traced`; and
//! [`bursty_arrivals`] generates on/off-modulated Poisson arrival streams,
//! the open-loop tail-latency workload of the serving benchmark.

use qram_metrics::{Capacity, Layers, Utilization, UtilizationTrace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::fifo::QueryRequest;
use crate::policy::PipelineCore;
use crate::server::QramServer;

/// One phase of an algorithm stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Phase {
    /// A QRAM query (duration = the server's query latency).
    Query,
    /// Local QPU processing for the given depth.
    Process(Layers),
}

/// A single algorithm's phase sequence.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StreamWorkload {
    phases: Vec<Phase>,
}

impl StreamWorkload {
    /// Builds a workload from an explicit phase list.
    #[must_use]
    pub fn new(phases: Vec<Phase>) -> Self {
        StreamWorkload { phases }
    }

    /// The canonical synthetic algorithm of §6.3: `num_queries` queries
    /// separated by processing phases of depth `process`
    /// (`Q P Q P … Q`).
    ///
    /// # Panics
    ///
    /// Panics if `num_queries == 0`.
    #[must_use]
    pub fn alternating(num_queries: u32, process: Layers) -> Self {
        assert!(num_queries >= 1, "at least one query");
        let mut phases = Vec::with_capacity(2 * num_queries as usize - 1);
        for i in 0..num_queries {
            if i > 0 {
                phases.push(Phase::Process(process));
            }
            phases.push(Phase::Query);
        }
        StreamWorkload::new(phases)
    }

    /// The phases.
    #[must_use]
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Number of query phases.
    #[must_use]
    pub fn query_count(&self) -> usize {
        self.phases
            .iter()
            .filter(|p| matches!(p, Phase::Query))
            .count()
    }

    /// Total processing depth.
    #[must_use]
    pub fn processing_depth(&self) -> Layers {
        self.phases
            .iter()
            .filter_map(|p| match p {
                Phase::Process(d) => Some(*d),
                Phase::Query => None,
            })
            .sum()
    }
}

/// A query execution recorded by the simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryRecord {
    /// Which stream issued the query.
    pub stream: usize,
    /// When the query became ready.
    pub ready: Layers,
    /// When it was admitted to the pipeline.
    pub start: Layers,
    /// When it completed.
    pub finish: Layers,
}

/// The outcome of a closed-loop stream simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamReport {
    queries: Vec<QueryRecord>,
    completions: Vec<Layers>,
    parallelism: u32,
}

impl StreamReport {
    /// All query records in admission order.
    #[must_use]
    pub fn queries(&self) -> &[QueryRecord] {
        &self.queries
    }

    /// Per-stream completion times.
    #[must_use]
    pub fn completions(&self) -> &[Layers] {
        &self.completions
    }

    /// Overall algorithm depth: when the last stream finishes.
    #[must_use]
    pub fn makespan(&self) -> Layers {
        self.completions
            .iter()
            .copied()
            .fold(Layers::ZERO, Layers::max)
    }

    /// The QRAM utilization staircase over `[0, makespan]`: queries in
    /// flight divided by the pipeline parallelism (Fig. 7 bottom,
    /// Fig. 10(b)).
    #[must_use]
    pub fn utilization_trace(&self) -> UtilizationTrace {
        let end = self.makespan();
        let mut events: Vec<(f64, i32)> = Vec::with_capacity(2 * self.queries.len());
        for q in &self.queries {
            events.push((q.start.get(), 1));
            events.push((q.finish.get(), -1));
        }
        events.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
        let mut trace = UtilizationTrace::new();
        let mut time = 0.0;
        let mut inflight: i32 = 0;
        for (t, delta) in events {
            if t > time {
                let busy = u32::try_from(inflight.max(0)).expect("non-negative");
                trace.push(
                    Layers::new(t - time),
                    Utilization::from_slots(busy.min(self.parallelism), self.parallelism),
                );
                time = t;
            }
            inflight += delta;
        }
        if end.get() > time {
            trace.push(Layers::new(end.get() - time), Utilization::IDLE);
        }
        trace
    }

    /// Average QRAM utilization over the run.
    #[must_use]
    pub fn average_utilization(&self) -> Utilization {
        self.utilization_trace().average()
    }
}

/// Simulates `streams` sharing one QRAM server under FIFO admission,
/// starting simultaneously at time 0.
#[must_use]
pub fn simulate_streams(streams: &[StreamWorkload], server: &QramServer) -> StreamReport {
    #[derive(Debug)]
    struct StreamState {
        next_phase: usize,
        ready: Layers,
        completion: Layers,
    }
    let mut states: Vec<StreamState> = streams
        .iter()
        .map(|_| StreamState {
            next_phase: 0,
            ready: Layers::ZERO,
            completion: Layers::ZERO,
        })
        .collect();
    // Consume leading processing phases.
    for (s, state) in states.iter_mut().enumerate() {
        while let Some(Phase::Process(d)) = streams[s].phases().get(state.next_phase) {
            state.ready += *d;
            state.completion = state.ready;
            state.next_phase += 1;
        }
    }
    let mut queries: Vec<QueryRecord> = Vec::new();
    let mut core = PipelineCore::new(*server);
    loop {
        // FIFO: pick the pending query that became ready earliest.
        let next = states
            .iter()
            .enumerate()
            .filter(|(s, st)| matches!(streams[*s].phases().get(st.next_phase), Some(Phase::Query)))
            .min_by(|(sa, a), (sb, b)| {
                a.ready
                    .partial_cmp(&b.ready)
                    .expect("finite")
                    .then(sa.cmp(sb))
            })
            .map(|(s, _)| s);
        let Some(s) = next else { break };
        let ready = states[s].ready;
        // Admission through the shared policy-stack core: the ready time
        // is the request's arrival, and FIFO admits at the earliest
        // feasible instant.
        let request = QueryRequest {
            id: core.admitted(),
            arrival: ready,
        };
        let start = core.earliest_start(ready, server.parallelism());
        let slot = core.commit(request, start);
        let finish = slot.finish;
        queries.push(QueryRecord {
            stream: s,
            ready,
            start,
            finish,
        });
        // Advance the stream past the query and any following processing.
        states[s].next_phase += 1;
        states[s].ready = finish;
        states[s].completion = finish;
        while let Some(Phase::Process(d)) = streams[s].phases().get(states[s].next_phase) {
            states[s].ready += *d;
            states[s].completion = states[s].ready;
            states[s].next_phase += 1;
        }
    }
    StreamReport {
        queries,
        completions: states.iter().map(|st| st.completion).collect(),
        parallelism: server.parallelism(),
    }
}

/// Convenience: the overall depth of `p` identical synthetic algorithms
/// (`num_queries` queries, processing depth `d`) on a server — the quantity
/// plotted in Fig. 10(a).
#[must_use]
pub fn synthetic_algorithm_depth(
    server: &QramServer,
    p: usize,
    num_queries: u32,
    d: Layers,
) -> Layers {
    let streams = vec![StreamWorkload::alternating(num_queries, d); p];
    simulate_streams(&streams, server).makespan()
}

/// The `d` layers of a processing phase expressed as a multiple of the
/// single-query latency `t₁` — the x-axis of Fig. 10.
///
/// The server's latency is already weighted by the timing model it was
/// built with, so no separate timing parameter is needed (an earlier
/// signature took one and silently ignored it).
///
/// # Examples
///
/// ```
/// use qram_metrics::Capacity;
/// use qram_sched::{process_depth_from_ratio, QramServer};
///
/// let server = QramServer::fat_tree_integer_layers(Capacity::new(8)?);
/// // d = 0.5 · t₁ = 0.5 · 29 integer layers.
/// assert_eq!(process_depth_from_ratio(&server, 0.5).get(), 14.5);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn process_depth_from_ratio(server: &QramServer, ratio: f64) -> Layers {
    Layers::new(server.latency().get() * ratio)
}

/// Generates `count` arrivals from an on/off-modulated Poisson process
/// (an *interrupted Poisson process*, the standard bursty-traffic model):
/// during exponentially distributed ON periods of mean `mean_on` layers,
/// queries arrive as a Poisson process at `on_rate` requests per layer;
/// during exponentially distributed OFF periods of mean `mean_off` layers,
/// none arrive.
///
/// The long-run offered rate is `on_rate · mean_on / (mean_on + mean_off)`
/// and the inter-arrival coefficient of variation exceeds 1 (a plain
/// Poisson process has exactly 1), so the same average load stresses the
/// serving layer's queues far harder — the tail-latency workload of the
/// serving benchmark.
///
/// # Examples
///
/// ```
/// use qram_sched::bursty_arrivals;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(7);
/// // ON at 1 query/layer for ~50 layers, then ~150 layers of silence:
/// // a 0.25 queries/layer average delivered in bursts.
/// let arrivals = bursty_arrivals(1.0, 50.0, 150.0, 200, &mut rng);
/// assert_eq!(arrivals.len(), 200);
/// assert!(arrivals.windows(2).all(|w| w[0].arrival <= w[1].arrival));
/// ```
///
/// # Panics
///
/// Panics if `on_rate`, `mean_on`, or `mean_off` is not strictly positive
/// and finite.
pub fn bursty_arrivals<R: Rng + ?Sized>(
    on_rate: f64,
    mean_on: f64,
    mean_off: f64,
    count: usize,
    rng: &mut R,
) -> Vec<QueryRequest> {
    assert!(
        on_rate > 0.0 && on_rate.is_finite(),
        "on_rate must be positive"
    );
    assert!(
        mean_on > 0.0 && mean_on.is_finite(),
        "mean_on must be positive"
    );
    assert!(
        mean_off > 0.0 && mean_off.is_finite(),
        "mean_off must be positive"
    );
    let mut exp = |mean: f64| -> f64 {
        let u: f64 = rng.random::<f64>().max(1e-12);
        -u.ln() * mean
    };
    let mut t = 0.0;
    // Remaining ON time before the next OFF period begins.
    let mut on_left = exp(mean_on);
    (0..count)
        .map(|id| {
            let mut gap = exp(1.0 / on_rate);
            // Walk the gap through as many ON/OFF cycles as it spans:
            // arrivals only consume ON time, OFF periods shift them later.
            while gap > on_left {
                gap -= on_left;
                t += on_left + exp(mean_off);
                on_left = exp(mean_on);
            }
            on_left -= gap;
            t += gap;
            QueryRequest {
                id,
                arrival: Layers::new(t),
            }
        })
        .collect()
}

/// Generates `count` arrivals from a diurnally modulated Poisson process:
/// the instantaneous rate swings sinusoidally between `trough_rate` and
/// `peak_rate` with the given `period` (one simulated "day" in layers),
///
/// ```text
///   λ(t) = trough + (peak − trough) · (1 − cos(2πt / period)) / 2
/// ```
///
/// starting at the trough (`λ(0) = trough_rate`) and peaking at
/// `t = period / 2`. Sampling is Lewis–Shedler thinning against the
/// constant envelope `peak_rate`, so the output is an exact
/// non-homogeneous Poisson draw. The long-run offered rate is the mean of
/// the sinusoid, `(trough_rate + peak_rate) / 2`, and whenever
/// `peak_rate > trough_rate` the inter-arrival coefficient of variation
/// exceeds 1 — the day/night load swing every data-center serving stack
/// must ride out.
///
/// # Examples
///
/// ```
/// use qram_sched::diurnal_arrivals;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(7);
/// // Nights at 0.1 q/layer, midday peaks at 1.9, a 1000-layer day.
/// let arrivals = diurnal_arrivals(0.1, 1.9, 1000.0, 400, &mut rng);
/// assert_eq!(arrivals.len(), 400);
/// assert!(arrivals.windows(2).all(|w| w[0].arrival <= w[1].arrival));
/// ```
///
/// # Panics
///
/// Panics if `trough_rate` is negative, `peak_rate` or `period` is not
/// strictly positive and finite, or `peak_rate < trough_rate`.
pub fn diurnal_arrivals<R: Rng + ?Sized>(
    trough_rate: f64,
    peak_rate: f64,
    period: f64,
    count: usize,
    rng: &mut R,
) -> Vec<QueryRequest> {
    assert!(
        trough_rate >= 0.0 && trough_rate.is_finite(),
        "trough_rate must be non-negative"
    );
    assert!(
        peak_rate > 0.0 && peak_rate.is_finite(),
        "peak_rate must be positive"
    );
    assert!(
        peak_rate >= trough_rate,
        "peak_rate {peak_rate} must be at least trough_rate {trough_rate}"
    );
    assert!(
        period > 0.0 && period.is_finite(),
        "period must be positive"
    );
    let rate_at = |t: f64| -> f64 {
        trough_rate
            + (peak_rate - trough_rate) * (1.0 - (2.0 * std::f64::consts::PI * t / period).cos())
                / 2.0
    };
    let mut t = 0.0;
    (0..count)
        .map(|id| {
            // Thinning: candidate gaps from the peak-rate envelope are
            // accepted with probability λ(t) / peak_rate.
            loop {
                let u: f64 = rng.random::<f64>().max(1e-12);
                t += -u.ln() / peak_rate;
                let accept: f64 = rng.random();
                if accept < rate_at(t) / peak_rate {
                    break;
                }
            }
            QueryRequest {
                id,
                arrival: Layers::new(t),
            }
        })
        .collect()
}

/// Generates `count` arrivals from a flash-crowd process: a steady Poisson
/// baseline at `base_rate`, except that during the window
/// `[flash_start, flash_start + flash_duration)` the rate jumps to
/// `flash_rate` — the "everyone queries the same service at once" stampede
/// that stresses fleet backpressure and per-tenant quotas.
///
/// The process is an exact piecewise-constant non-homogeneous Poisson
/// draw: exponential gaps at the current rate, with the residual gap
/// re-scaled by the rate ratio whenever it crosses a window boundary
/// (memorylessness makes the re-scaling exact). With
/// `flash_rate > base_rate` the inter-arrival coefficient of variation
/// exceeds 1 over windows spanning the flash.
///
/// # Examples
///
/// ```
/// use qram_sched::flash_crowd_arrivals;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(7);
/// // A 20× stampede 500 layers in, lasting 200 layers.
/// let arrivals = flash_crowd_arrivals(0.05, 1.0, 500.0, 200.0, 300, &mut rng);
/// assert_eq!(arrivals.len(), 300);
/// assert!(arrivals.windows(2).all(|w| w[0].arrival <= w[1].arrival));
/// ```
///
/// # Panics
///
/// Panics if `base_rate`, `flash_rate`, or `flash_duration` is not
/// strictly positive and finite, or `flash_start` is negative or not
/// finite.
pub fn flash_crowd_arrivals<R: Rng + ?Sized>(
    base_rate: f64,
    flash_rate: f64,
    flash_start: f64,
    flash_duration: f64,
    count: usize,
    rng: &mut R,
) -> Vec<QueryRequest> {
    assert!(
        base_rate > 0.0 && base_rate.is_finite(),
        "base_rate must be positive"
    );
    assert!(
        flash_rate > 0.0 && flash_rate.is_finite(),
        "flash_rate must be positive"
    );
    assert!(
        flash_start >= 0.0 && flash_start.is_finite(),
        "flash_start must be non-negative"
    );
    assert!(
        flash_duration > 0.0 && flash_duration.is_finite(),
        "flash_duration must be positive"
    );
    let flash_end = flash_start + flash_duration;
    let rate_at = |t: f64| -> f64 {
        if (flash_start..flash_end).contains(&t) {
            flash_rate
        } else {
            base_rate
        }
    };
    // The next rate-change boundary strictly after `t`, if any.
    let next_boundary = |t: f64| -> Option<f64> {
        if t < flash_start {
            Some(flash_start)
        } else if t < flash_end {
            Some(flash_end)
        } else {
            None
        }
    };
    let mut t = 0.0;
    (0..count)
        .map(|id| {
            let u: f64 = rng.random::<f64>().max(1e-12);
            // A unit-rate exponential "work" budget, spent at the current
            // rate: crossing a boundary re-scales the residual exactly.
            let mut work = -u.ln();
            loop {
                let rate = rate_at(t);
                let gap = work / rate;
                match next_boundary(t) {
                    Some(b) if t + gap >= b => {
                        work -= (b - t) * rate;
                        t = b;
                    }
                    _ => {
                        t += gap;
                        break;
                    }
                }
            }
            QueryRequest {
                id,
                arrival: Layers::new(t),
            }
        })
        .collect()
}

/// A Zipf(θ) distribution over the `N` addresses of a QRAM: address `a`
/// is drawn with probability proportional to `1 / (a + 1)^θ`, the
/// standard skewed-popularity model of cache and serving-system analysis
/// (θ ≈ 0.99 is the classic YCSB/web-traffic operating point). `θ = 0`
/// degenerates to the uniform distribution; larger θ concentrates mass
/// on the low addresses.
///
/// Sampling is inverse-CDF over a precomputed cumulative table
/// (`O(log N)` per draw), seeded deterministically through the vendored
/// [`rand::rngs::StdRng`].
///
/// # Examples
///
/// ```
/// use qram_metrics::Capacity;
/// use qram_sched::ZipfAddresses;
///
/// let zipf = ZipfAddresses::new(Capacity::new(4096)?, 0.99);
/// let batch = zipf.addresses(512, 7);
/// assert_eq!(batch.len(), 512);
/// assert!(batch.iter().all(|&a| a < 4096));
/// // Skew: address 0 draws far more than its uniform share (512/4096).
/// let top = batch.iter().filter(|&&a| a == 0).count();
/// assert!(top as f64 > 10.0 * 512.0 / 4096.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ZipfAddresses {
    theta: f64,
    /// `cumulative[a]` = P(address ≤ a); the last entry is 1.
    cumulative: Vec<f64>,
}

impl ZipfAddresses {
    /// Builds the distribution over the `N` addresses of `capacity`.
    ///
    /// # Panics
    ///
    /// Panics if `theta` is negative or not finite, or if `N` does not
    /// fit in memory for the cumulative table.
    #[must_use]
    pub fn new(capacity: Capacity, theta: f64) -> Self {
        assert!(
            theta.is_finite() && theta >= 0.0,
            "Zipf exponent must be finite and non-negative, got {theta}"
        );
        let n = usize::try_from(capacity.get()).expect("capacity fits in usize");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for a in 0..n {
            total += (a as f64 + 1.0).powf(-theta);
            cumulative.push(total);
        }
        for c in &mut cumulative {
            *c /= total;
        }
        ZipfAddresses { theta, cumulative }
    }

    /// The Zipf exponent θ.
    #[must_use]
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// The probability of drawing `address`.
    ///
    /// # Panics
    ///
    /// Panics if `address` is out of range.
    #[must_use]
    pub fn probability_of(&self, address: u64) -> f64 {
        let a = usize::try_from(address).expect("address fits in usize");
        let below = if a == 0 { 0.0 } else { self.cumulative[a - 1] };
        self.cumulative[a] - below
    }

    /// Draws one address (inverse-CDF, `O(log N)`).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.random();
        // First index with cumulative[i] > u.
        let idx = self
            .cumulative
            .partition_point(|&c| c <= u)
            .min(self.cumulative.len() - 1);
        idx as u64
    }

    /// A deterministic batch of `count` addresses from `seed`.
    #[must_use]
    pub fn addresses(&self, count: usize, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count).map(|_| self.sample(&mut rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qram_metrics::Capacity;

    fn ft_server(n: u64) -> QramServer {
        QramServer::fat_tree_integer_layers(Capacity::new(n).unwrap())
    }

    #[test]
    fn figure_7_total_time_formula() {
        // Three algorithms, each: Query, Process(d), Query, Process(d),
        // Query. Total time = 30n + 2d + 17 (Fig. 7 annotation), provided
        // d is large enough that streams never contend.
        for (n_exp, d) in [(3u32, 20.0), (4, 15.0), (5, 30.0), (3, 100.0)] {
            let server = ft_server(1 << n_exp);
            let streams = vec![StreamWorkload::alternating(3, Layers::new(d)); 3];
            let report = simulate_streams(&streams, &server);
            let expect = 30.0 * f64::from(n_exp) + 2.0 * d + 17.0;
            assert!(
                (report.makespan().get() - expect).abs() < 1e-9,
                "n={n_exp} d={d}: {} vs {expect}",
                report.makespan().get()
            );
        }
    }

    #[test]
    fn figure_7_query_starts_are_staggered_by_interval() {
        let server = ft_server(8);
        let streams = vec![StreamWorkload::alternating(3, Layers::new(20.0)); 3];
        let report = simulate_streams(&streams, &server);
        let first_three: Vec<f64> = report.queries()[..3]
            .iter()
            .map(|q| q.start.get())
            .collect();
        assert_eq!(first_three, vec![0.0, 10.0, 20.0]);
    }

    #[test]
    fn utilization_peaks_when_queries_overlap() {
        let server = ft_server(8);
        let streams = vec![StreamWorkload::alternating(3, Layers::new(20.0)); 3];
        let report = simulate_streams(&streams, &server);
        let trace = report.utilization_trace();
        let peak = trace.iter().map(|(_, u)| u.get()).fold(0.0f64, f64::max);
        assert!((peak - 1.0).abs() < 1e-12, "three queries fill 3 slots");
        // And the average is strictly between 0 and 1.
        let avg = report.average_utilization().get();
        assert!(avg > 0.3 && avg < 1.0, "avg={avg}");
    }

    #[test]
    fn sequential_server_forces_serial_queries() {
        let server = QramServer::bucket_brigade_integer_layers(Capacity::new(8).unwrap());
        let streams = vec![StreamWorkload::alternating(2, Layers::new(0.0)); 3];
        let report = simulate_streams(&streams, &server);
        // 6 queries, 25 layers each, fully serialized.
        assert_eq!(report.makespan().get(), 150.0);
        // Starts strictly increase by 25.
        for w in report.queries().windows(2) {
            assert!((w[1].start.get() - w[0].start.get() - 25.0).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_process_depth_saturates_fat_tree() {
        // With d = 0 and ≥ n streams, the Fat-Tree pipeline is fully
        // utilized and admissions fire every interval.
        let server = ft_server(8);
        let streams = vec![StreamWorkload::alternating(5, Layers::ZERO); 6];
        let report = simulate_streams(&streams, &server);
        for w in report.queries().windows(2) {
            assert!(
                (w[1].start.get() - w[0].start.get() - 10.0).abs() < 1e-9,
                "admissions must be interval-spaced"
            );
        }
        let avg = report.average_utilization().get();
        assert!(avg > 0.85, "avg={avg}");
    }

    #[test]
    fn leading_process_phase_delays_first_query() {
        let server = ft_server(8);
        let stream = StreamWorkload::new(vec![Phase::Process(Layers::new(7.0)), Phase::Query]);
        let report = simulate_streams(&[stream], &server);
        assert_eq!(report.queries()[0].ready.get(), 7.0);
        assert_eq!(report.queries()[0].start.get(), 7.0);
    }

    #[test]
    fn trailing_process_phase_extends_completion() {
        let server = ft_server(8);
        let stream = StreamWorkload::new(vec![Phase::Query, Phase::Process(Layers::new(11.0))]);
        let report = simulate_streams(&[stream], &server);
        assert_eq!(report.makespan().get(), 29.0 + 11.0);
    }

    #[test]
    fn workload_accessors() {
        let w = StreamWorkload::alternating(4, Layers::new(5.0));
        assert_eq!(w.query_count(), 4);
        assert_eq!(w.processing_depth().get(), 15.0);
        assert_eq!(w.phases().len(), 7);
    }

    #[test]
    fn zipf_probabilities_sum_to_one_and_decrease() {
        for theta in [0.0, 0.5, 0.99, 1.5] {
            let zipf = ZipfAddresses::new(Capacity::new(256).unwrap(), theta);
            let total: f64 = (0..256u64).map(|a| zipf.probability_of(a)).sum();
            assert!((total - 1.0).abs() < 1e-9, "theta={theta}");
            for a in 1..256u64 {
                assert!(
                    zipf.probability_of(a) <= zipf.probability_of(a - 1) + 1e-15,
                    "theta={theta}: mass must be non-increasing in address"
                );
            }
            assert_eq!(zipf.theta(), theta);
        }
    }

    #[test]
    fn zipf_theta_zero_is_uniform() {
        let zipf = ZipfAddresses::new(Capacity::new(64).unwrap(), 0.0);
        for a in 0..64u64 {
            assert!((zipf.probability_of(a) - 1.0 / 64.0).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_top_address_frequency_grows_with_theta() {
        // Distribution sanity: the empirical top-1 frequency must grow
        // strictly with the skew exponent.
        let capacity = Capacity::new(1024).unwrap();
        let mut prev = 0usize;
        for theta in [0.0, 0.5, 0.99, 1.5] {
            let zipf = ZipfAddresses::new(capacity, theta);
            let batch = zipf.addresses(20_000, 42);
            let top1 = batch.iter().filter(|&&a| a == 0).count();
            assert!(
                top1 > prev,
                "theta={theta}: top-1 count {top1} did not grow (prev {prev})"
            );
            prev = top1;
        }
        // And at theta=1.5 address 0 dominates visibly.
        assert!(prev > 20_000 / 3, "strong skew expected, got {prev}");
    }

    #[test]
    fn zipf_samples_are_deterministic_and_in_range() {
        let zipf = ZipfAddresses::new(Capacity::new(128).unwrap(), 0.99);
        let a = zipf.addresses(500, 7);
        let b = zipf.addresses(500, 7);
        assert_eq!(a, b);
        assert!(a.iter().all(|&addr| addr < 128));
        // A different seed produces a different stream.
        assert_ne!(a, zipf.addresses(500, 8));
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn zipf_rejects_negative_theta() {
        let _ = ZipfAddresses::new(Capacity::new(8).unwrap(), -1.0);
    }

    #[test]
    fn bursty_arrivals_are_sorted_and_deterministic() {
        let mut a_rng = StdRng::seed_from_u64(11);
        let mut b_rng = StdRng::seed_from_u64(11);
        let a = bursty_arrivals(0.5, 40.0, 120.0, 300, &mut a_rng);
        let b = bursty_arrivals(0.5, 40.0, 120.0, 300, &mut b_rng);
        assert_eq!(a, b);
        assert_eq!(a.len(), 300);
        for w in a.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
        }
        let mut c_rng = StdRng::seed_from_u64(12);
        assert_ne!(a, bursty_arrivals(0.5, 40.0, 120.0, 300, &mut c_rng));
    }

    #[test]
    fn bursty_long_run_rate_matches_duty_cycle() {
        // Offered rate = on_rate · mean_on / (mean_on + mean_off).
        let mut rng = StdRng::seed_from_u64(2024);
        let (on_rate, mean_on, mean_off) = (1.0, 50.0, 150.0);
        let n = 20_000usize;
        let arrivals = bursty_arrivals(on_rate, mean_on, mean_off, n, &mut rng);
        let span = arrivals.last().unwrap().arrival.get();
        let rate = n as f64 / span;
        let expect = on_rate * mean_on / (mean_on + mean_off);
        assert!(
            (rate - expect).abs() < 0.15 * expect,
            "rate {rate} vs expected {expect}"
        );
    }

    #[test]
    fn bursty_gaps_are_overdispersed_relative_to_poisson() {
        // The inter-arrival coefficient of variation must exceed 1 — the
        // defining burstiness property an (unmodulated) Poisson process
        // cannot produce.
        let mut rng = StdRng::seed_from_u64(5);
        let arrivals = bursty_arrivals(2.0, 20.0, 200.0, 20_000, &mut rng);
        let gaps: Vec<f64> = arrivals
            .windows(2)
            .map(|w| w[1].arrival.get() - w[0].arrival.get())
            .collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        let cov = var.sqrt() / mean;
        assert!(cov > 1.5, "coefficient of variation {cov} not bursty");
        // And a matched-rate Poisson stream sits near 1.
        let mut p_rng = StdRng::seed_from_u64(5);
        let poisson = crate::online::poisson_arrivals(1.0 / mean, 20_000, &mut p_rng);
        let p_gaps: Vec<f64> = poisson
            .windows(2)
            .map(|w| w[1].arrival.get() - w[0].arrival.get())
            .collect();
        let p_mean = p_gaps.iter().sum::<f64>() / p_gaps.len() as f64;
        let p_var = p_gaps.iter().map(|g| (g - p_mean).powi(2)).sum::<f64>() / p_gaps.len() as f64;
        let p_cov = p_var.sqrt() / p_mean;
        assert!(p_cov < 1.1, "Poisson control CoV {p_cov}");
        assert!(cov > 1.5 * p_cov);
    }

    #[test]
    #[should_panic(expected = "mean_off must be positive")]
    fn bursty_rejects_non_positive_off_period() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = bursty_arrivals(1.0, 10.0, 0.0, 5, &mut rng);
    }

    /// Coefficient of variation of the inter-arrival gaps of a trace.
    fn interarrival_cov(arrivals: &[QueryRequest]) -> f64 {
        let gaps: Vec<f64> = arrivals
            .windows(2)
            .map(|w| w[1].arrival.get() - w[0].arrival.get())
            .collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        var.sqrt() / mean
    }

    /// Arrivals per layer inside `[from, to)`.
    fn window_rate(arrivals: &[QueryRequest], from: f64, to: f64) -> f64 {
        let hits = arrivals
            .iter()
            .filter(|r| (from..to).contains(&r.arrival.get()))
            .count();
        hits as f64 / (to - from)
    }

    #[test]
    fn diurnal_arrivals_are_sorted_and_deterministic() {
        let mut a_rng = StdRng::seed_from_u64(11);
        let mut b_rng = StdRng::seed_from_u64(11);
        let a = diurnal_arrivals(0.1, 1.9, 800.0, 400, &mut a_rng);
        let b = diurnal_arrivals(0.1, 1.9, 800.0, 400, &mut b_rng);
        assert_eq!(a, b);
        assert_eq!(a.len(), 400);
        for w in a.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
        }
        let mut c_rng = StdRng::seed_from_u64(12);
        assert_ne!(a, diurnal_arrivals(0.1, 1.9, 800.0, 400, &mut c_rng));
    }

    #[test]
    fn diurnal_long_run_rate_is_the_sinusoid_mean() {
        // Rate envelope: the realized long-run rate must match
        // (trough + peak) / 2 — the mean of the sinusoidal λ(t).
        let mut rng = StdRng::seed_from_u64(2026);
        let (trough, peak, period) = (0.2, 1.8, 500.0);
        let n = 20_000usize;
        let arrivals = diurnal_arrivals(trough, peak, period, n, &mut rng);
        let span = arrivals.last().unwrap().arrival.get();
        let rate = n as f64 / span;
        let expect = (trough + peak) / 2.0;
        assert!(
            (rate - expect).abs() < 0.1 * expect,
            "rate {rate} vs expected {expect}"
        );
    }

    #[test]
    fn diurnal_peak_windows_outdraw_trough_windows() {
        // Duty-cycle check: the middle half of each day (centered on the
        // peak at period/2) must receive far more arrivals than the
        // night quarters — and the instantaneous rates must bracket the
        // trough/peak envelope.
        let mut rng = StdRng::seed_from_u64(9);
        let (trough, peak, period) = (0.1, 1.9, 1000.0);
        let arrivals = diurnal_arrivals(trough, peak, period, 30_000, &mut rng);
        let days = (arrivals.last().unwrap().arrival.get() / period).floor() as usize;
        let mut peak_rate_sum = 0.0;
        let mut trough_rate_sum = 0.0;
        for day in 0..days {
            let start = day as f64 * period;
            peak_rate_sum += window_rate(&arrivals, start + 0.25 * period, start + 0.75 * period);
            trough_rate_sum += window_rate(&arrivals, start, start + 0.25 * period)
                + window_rate(&arrivals, start + 0.75 * period, start + period);
        }
        let peak_rate = peak_rate_sum / days as f64;
        let trough_rate = trough_rate_sum / (2 * days) as f64;
        assert!(
            peak_rate > 3.0 * trough_rate,
            "midday {peak_rate} vs night {trough_rate}"
        );
        assert!(peak_rate <= peak, "midday rate cannot exceed the envelope");
        assert!(trough_rate >= trough * 0.5, "nights cannot go dark");
    }

    #[test]
    fn diurnal_gaps_are_overdispersed_relative_to_poisson() {
        // CoV check: the rate swing makes inter-arrival gaps overdispersed
        // (CoV > 1); a flat sinusoid (trough = peak) degenerates to plain
        // Poisson with CoV ≈ 1.
        let mut rng = StdRng::seed_from_u64(5);
        let swung = diurnal_arrivals(0.05, 1.95, 400.0, 20_000, &mut rng);
        let cov = interarrival_cov(&swung);
        assert!(cov > 1.2, "diurnal CoV {cov} not overdispersed");
        let mut flat_rng = StdRng::seed_from_u64(5);
        let flat = diurnal_arrivals(1.0, 1.0, 400.0, 20_000, &mut flat_rng);
        let flat_cov = interarrival_cov(&flat);
        assert!((flat_cov - 1.0).abs() < 0.1, "flat control CoV {flat_cov}");
    }

    #[test]
    #[should_panic(expected = "at least trough_rate")]
    fn diurnal_rejects_peak_below_trough() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = diurnal_arrivals(2.0, 1.0, 100.0, 5, &mut rng);
    }

    #[test]
    fn flash_crowd_arrivals_are_sorted_and_deterministic() {
        let mut a_rng = StdRng::seed_from_u64(21);
        let mut b_rng = StdRng::seed_from_u64(21);
        let a = flash_crowd_arrivals(0.05, 1.0, 400.0, 200.0, 300, &mut a_rng);
        let b = flash_crowd_arrivals(0.05, 1.0, 400.0, 200.0, 300, &mut b_rng);
        assert_eq!(a, b);
        for w in a.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
        }
        let mut c_rng = StdRng::seed_from_u64(22);
        assert_ne!(
            a,
            flash_crowd_arrivals(0.05, 1.0, 400.0, 200.0, 300, &mut c_rng)
        );
    }

    #[test]
    fn flash_crowd_rate_envelope_matches_piecewise_rates() {
        // Rate envelope: ~base_rate outside the flash window, ~flash_rate
        // inside it.
        let mut rng = StdRng::seed_from_u64(2027);
        let (base, flash, start, duration) = (0.1, 4.0, 2000.0, 1500.0);
        let arrivals = flash_crowd_arrivals(base, flash, start, duration, 20_000, &mut rng);
        let before = window_rate(&arrivals, 0.0, start);
        let during = window_rate(&arrivals, start, start + duration);
        let after = window_rate(&arrivals, start + duration, start + duration + 2000.0);
        assert!(
            (before - base).abs() < 0.3 * base,
            "pre-flash rate {before} vs base {base}"
        );
        assert!(
            (during - flash).abs() < 0.15 * flash,
            "flash rate {during} vs {flash}"
        );
        assert!(
            (after - base).abs() < 0.3 * base,
            "post-flash rate {after} vs base {base}"
        );
    }

    #[test]
    fn flash_crowd_gaps_are_overdispersed_relative_to_poisson() {
        // CoV check across the stampede: mixing two very different rates
        // overdisperses the gap distribution; a flash at the base rate is
        // an unmodulated Poisson control with CoV ≈ 1.
        let mut rng = StdRng::seed_from_u64(3);
        let arrivals = flash_crowd_arrivals(0.02, 2.0, 1000.0, 4000.0, 20_000, &mut rng);
        let cov = interarrival_cov(&arrivals);
        assert!(cov > 1.3, "flash-crowd CoV {cov} not overdispersed");
        let mut flat_rng = StdRng::seed_from_u64(3);
        let flat = flash_crowd_arrivals(1.0, 1.0, 1000.0, 4000.0, 20_000, &mut flat_rng);
        let flat_cov = interarrival_cov(&flat);
        assert!((flat_cov - 1.0).abs() < 0.1, "flat control CoV {flat_cov}");
    }

    #[test]
    fn flash_crowd_boundary_crossing_is_exact() {
        // A draw whose gap spans the flash start must land inside the
        // window (re-scaled), not jump it: with an extreme flash rate the
        // first post-boundary arrival lands essentially at the boundary.
        let mut rng = StdRng::seed_from_u64(8);
        let arrivals = flash_crowd_arrivals(1e-4, 100.0, 50.0, 10.0, 50, &mut rng);
        let first_in_flash = arrivals
            .iter()
            .find(|r| r.arrival.get() >= 50.0)
            .expect("the stampede produces arrivals");
        assert!(
            first_in_flash.arrival.get() < 51.0,
            "boundary crossing must re-scale the residual gap, got {}",
            first_in_flash.arrival.get()
        );
    }

    #[test]
    #[should_panic(expected = "flash_duration must be positive")]
    fn flash_crowd_rejects_non_positive_duration() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = flash_crowd_arrivals(1.0, 2.0, 10.0, 0.0, 5, &mut rng);
    }

    #[test]
    fn synthetic_depth_monotone_in_stream_count() {
        let server = ft_server(1024);
        let d = Layers::new(10.0);
        let mut prev = Layers::ZERO;
        for p in [1usize, 5, 10, 20] {
            let depth = synthetic_algorithm_depth(&server, p, 10, d);
            assert!(depth >= prev, "p={p}");
            prev = depth;
        }
    }
}
