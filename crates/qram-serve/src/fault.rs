//! Deterministic fault injection and fault-tolerance knobs for the fleet.
//!
//! A fleet that claims availability has to earn it against failures, and
//! failures that cannot be replayed cannot be debugged. This module keeps
//! the whole fault story *inside* the discrete-event clock: a
//! [`FaultPlan`] is an explicit list of [`Fault`]s pinned to virtual
//! instants (or to dispatch indices / replication epochs), so the same
//! plan against the same workload produces the same crash, the same
//! failover, and the same report — seed-reproducible chaos, not
//! wall-clock chaos.
//!
//! The pieces:
//!
//! * [`Fault`] / [`FaultPlan`] — the injectable fault taxonomy (replica
//!   crash and rejoin, slowdown windows, per-shard queue stalls, dropped
//!   or delayed replication-log catch-up, corrupted dispatch outcomes)
//!   plus a seeded generator ([`FaultPlan::from_seed`]) for chaos suites.
//! * [`ReplicaHealth`] — the per-replica health state machine the fleet's
//!   monitor drives (`Healthy → Suspect → Down → Recovering → Healthy`).
//! * [`FaultConfig`] — the tolerance knobs: retry backoff budget, hedge
//!   delay, monitor cadence, latency assertion margin, recovery replay
//!   speed, and the optional [`BrownoutConfig`] degradation thresholds.
//! * [`BrownoutController`] — hysteresis over fleet occupancy that sheds
//!   whole SLO classes, cheapest first (`Batch`, then `Standard`, then
//!   `Interactive`), instead of failing everyone a little.
//! * [`parity_bit`] / [`corrupt_outcome`] — the detection side of outcome
//!   corruption: a flipped data bit always flips the outcome parity, so a
//!   corrupted read is *caught and re-served*, never silently returned.
//!
//! An empty plan plus the default config is guaranteed passive: the fleet
//! schedules no monitor events and its behavior is bit-identical to the
//! fault-free serving loop (property-tested in `tests/fleet_faults.rs`).

use qram_core::store::GroupCommitPolicy;
use qram_metrics::Layers;
use qram_sched::{RetryPolicy, SloClass};
use qsim::branch::QueryOutcome;
use qsim::Complex;

/// Health of one replica as seen by the fleet's failure detector.
///
/// Transitions: a missed heartbeat (monitor tick while the replica is
/// dead) or a violated completion-latency assertion moves `Healthy` to
/// `Suspect`; a second consecutive miss moves `Suspect` to `Down` and
/// triggers failover of everything the replica held. A `Recover` fault
/// brings the replica back as `Recovering` while it replays the
/// replication log; only after replay does it rejoin as `Healthy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaHealth {
    /// Heartbeats current, latency within bounds: fully in rotation.
    Healthy,
    /// One missed heartbeat or a latency violation: still routable, but
    /// deprioritized by load-aware placement.
    Suspect,
    /// Declared failed: not routable; its in-flight and queued queries
    /// have been failed over.
    Down,
    /// Back up but replaying the replication log: not yet routable.
    Recovering,
}

impl ReplicaHealth {
    /// True when the router may place new queries on the replica
    /// (`Healthy` or `Suspect` — a suspect still serves, a `Down` or
    /// `Recovering` replica does not).
    #[must_use]
    pub fn routable(self) -> bool {
        matches!(self, ReplicaHealth::Healthy | ReplicaHealth::Suspect)
    }
}

/// One injected fault, pinned to the virtual clock (or to a dispatch
/// index / replication epoch, which are themselves deterministic).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// The replica dies at `at`: queued and in-flight queries are lost
    /// (and later failed over), offers keep landing until the detector
    /// declares it `Down`.
    Crash {
        /// The replica that crashes.
        replica: usize,
        /// Crash instant in virtual layer time.
        at: Layers,
    },
    /// The replica restarts at `at` and begins replaying the replication
    /// log; it rejoins rotation once replay completes.
    Recover {
        /// The replica that restarts.
        replica: usize,
        /// Restart instant in virtual layer time.
        at: Layers,
    },
    /// Every query the replica completes in `[from, until)` takes
    /// `factor ×` its nominal latency — a degraded-but-alive replica the
    /// latency assertion should flag.
    SlowReplica {
        /// The replica that slows down.
        replica: usize,
        /// Start of the slow window.
        from: Layers,
        /// End of the slow window (exclusive).
        until: Layers,
        /// Service-time multiplier, `≥ 1`.
        factor: f64,
    },
    /// One shard's dispatch queue freezes in `[from, until)`: strict FIFO
    /// means the whole replica stops dispatching while the stalled shard
    /// holds the next query.
    StallShard {
        /// The replica whose shard stalls.
        replica: usize,
        /// The stalled shard index.
        shard: usize,
        /// Start of the stall.
        from: Layers,
        /// End of the stall (the dispatcher is re-pumped here).
        until: Layers,
    },
    /// The replication-log catch-up for `epoch` never fires: replicas
    /// stay stale until a later epoch's catch-up (or recovery replay)
    /// carries the prefix past it.
    DropReplication {
        /// The fleet epoch whose catch-up is dropped.
        epoch: u64,
    },
    /// The replication-log catch-up for `epoch` lands `by` layers later
    /// than the configured replication lag.
    DelayReplication {
        /// The fleet epoch whose catch-up is delayed.
        epoch: u64,
        /// Extra delay beyond the configured replication lag.
        by: Layers,
    },
    /// The `dispatch`-th query dispatched at `replica` completes with a
    /// flipped data bit. The parity check catches it and the query is
    /// re-served under the retry budget.
    CorruptOutcome {
        /// The replica whose dispatch is corrupted.
        replica: usize,
        /// Dispatch-order index of the corrupted query.
        dispatch: usize,
    },
    /// The durable write-ahead-log append for `epoch` tears on the
    /// platter while reporting success — a lying disk. The anti-entropy
    /// scrubber's disk audit finds the torn tail, truncates it, and
    /// re-appends the lost acknowledged epochs from the fleet's
    /// in-memory log. Activates the durability tier even without an
    /// external store (an ephemeral in-memory store is used).
    TornWrite {
        /// The fleet epoch whose durable append tears.
        epoch: u64,
    },
    /// A bit silently flips in one memory cell of `replica` at `at` —
    /// media corruption invisible to staleness tracking, caught only by
    /// the scrubber's digest comparison against the durable chain (which
    /// then repairs the replica from checkpoint + WAL state).
    DiskCorrupt {
        /// The replica whose memory corrupts.
        replica: usize,
        /// Corruption instant in virtual layer time.
        at: Layers,
        /// The corrupted cell (reduced modulo the memory capacity).
        cell: u64,
    },
}

/// What happens to the replication catch-up of one epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReplicationFate {
    /// Catch-up fires after the configured replication lag.
    Deliver,
    /// Catch-up never fires for this epoch.
    Drop,
    /// Catch-up fires the given extra delay after the configured lag.
    Delay(Layers),
}

/// A deterministic, replayable set of faults to inject into one serving
/// run. The empty plan is guaranteed passive.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// The empty plan: no faults, bit-identical serving.
    #[must_use]
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True when the plan injects nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Adds one fault (builder style).
    #[must_use]
    pub fn with(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// The faults, in insertion order.
    #[must_use]
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// A seeded pseudo-random plan over `replicas` replicas of `shards`
    /// shards within the virtual horizon — the chaos-suite generator.
    /// The same seed always yields the same plan (splitmix64, no global
    /// RNG state), so a failing chaos case replays from its seed alone.
    ///
    /// Roughly: each replica has a 40 % chance of one crash (75 % of
    /// crashes recover within the horizon), plus up to one slowdown
    /// window, one shard stall, a few dropped or delayed replication
    /// epochs, and a few corrupted dispatches.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` or `shards` is zero or the horizon is not
    /// positive.
    #[must_use]
    pub fn from_seed(seed: u64, replicas: usize, shards: usize, horizon: Layers) -> Self {
        assert!(replicas >= 1, "a fleet has at least one replica");
        assert!(shards >= 1, "a replica has at least one shard");
        assert!(horizon > Layers::ZERO, "the fault horizon must be positive");
        let mut state = seed ^ 0x6A09_E667_F3BC_C908;
        let span = horizon.get();
        let mut plan = FaultPlan::none();
        for replica in 0..replicas {
            if uniform(&mut state) < 0.4 {
                let at = Layers::new(span * (0.2 + 0.4 * uniform(&mut state)));
                plan.faults.push(Fault::Crash { replica, at });
                if uniform(&mut state) < 0.75 {
                    let back = at + Layers::new(span * (0.1 + 0.3 * uniform(&mut state)));
                    plan.faults.push(Fault::Recover { replica, at: back });
                }
            }
            if uniform(&mut state) < 0.3 {
                let from = Layers::new(span * 0.5 * uniform(&mut state));
                let until = from + Layers::new(span * (0.1 + 0.3 * uniform(&mut state)));
                let factor = 2.0 + 6.0 * uniform(&mut state);
                plan.faults.push(Fault::SlowReplica {
                    replica,
                    from,
                    until,
                    factor,
                });
            }
            if uniform(&mut state) < 0.25 {
                let shard = (splitmix64(&mut state) % shards as u64) as usize;
                let from = Layers::new(span * 0.6 * uniform(&mut state));
                let until = from + Layers::new(span * (0.05 + 0.2 * uniform(&mut state)));
                plan.faults.push(Fault::StallShard {
                    replica,
                    shard,
                    from,
                    until,
                });
            }
        }
        for epoch in 1..=4u64 {
            if uniform(&mut state) < 0.1 {
                plan.faults.push(Fault::DropReplication { epoch });
            } else if uniform(&mut state) < 0.15 {
                let by = Layers::new(span * 0.2 * uniform(&mut state));
                plan.faults.push(Fault::DelayReplication { epoch, by });
            }
        }
        for _ in 0..3 {
            if uniform(&mut state) < 0.3 {
                let replica = (splitmix64(&mut state) % replicas as u64) as usize;
                let dispatch = (splitmix64(&mut state) % 64) as usize;
                plan.faults
                    .push(Fault::CorruptOutcome { replica, dispatch });
            }
        }
        // Disk faults: a torn durable append on an early epoch, and up to
        // two silent bit flips for the scrubber to find and repair.
        for epoch in 1..=4u64 {
            if uniform(&mut state) < 0.15 {
                plan.faults.push(Fault::TornWrite { epoch });
            }
        }
        for _ in 0..2 {
            if uniform(&mut state) < 0.3 {
                let replica = (splitmix64(&mut state) % replicas as u64) as usize;
                let at = Layers::new(span * (0.1 + 0.7 * uniform(&mut state)));
                let cell = splitmix64(&mut state);
                plan.faults.push(Fault::DiskCorrupt { replica, at, cell });
            }
        }
        plan
    }

    /// True when the plan contains any [`Fault::SlowReplica`] — lets the
    /// serving loop skip the slow-factor adjustment (and its float
    /// round-trip) entirely on plans without slowdowns.
    #[must_use]
    pub fn has_slow_faults(&self) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(f, Fault::SlowReplica { .. }))
    }

    /// The service-time multiplier for a query dispatched at `replica`
    /// at instant `at`: the largest active slowdown factor, or `1.0`.
    #[must_use]
    pub fn slow_factor(&self, replica: usize, at: Layers) -> f64 {
        self.faults.iter().fold(1.0, |acc: f64, fault| match fault {
            Fault::SlowReplica {
                replica: r,
                from,
                until,
                factor,
            } if *r == replica && at >= *from && at < *until => acc.max(*factor),
            _ => acc,
        })
    }

    /// True when the `dispatch`-th dispatch at `replica` is corrupted.
    #[must_use]
    pub fn corrupts(&self, replica: usize, dispatch: usize) -> bool {
        self.faults.iter().any(|fault| {
            matches!(
                fault,
                Fault::CorruptOutcome {
                    replica: r,
                    dispatch: d,
                } if *r == replica && *d == dispatch
            )
        })
    }

    /// True when the plan contains any disk fault ([`Fault::TornWrite`]
    /// or [`Fault::DiskCorrupt`]) — such plans activate the durability
    /// tier (with an ephemeral store if none was supplied) so the faults
    /// have a durable chain to lie against and be audited by.
    #[must_use]
    pub fn has_disk_faults(&self) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(f, Fault::TornWrite { .. } | Fault::DiskCorrupt { .. }))
    }

    /// True when the durable append for `epoch` tears on the platter.
    #[must_use]
    pub fn tears(&self, epoch: u64) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(f, Fault::TornWrite { epoch: e } if *e == epoch))
    }

    /// The fate of the replication catch-up for `epoch` (first matching
    /// drop or delay wins; the default is delivery).
    #[must_use]
    pub fn replication_fate(&self, epoch: u64) -> ReplicationFate {
        for fault in &self.faults {
            match fault {
                Fault::DropReplication { epoch: e } if *e == epoch => {
                    return ReplicationFate::Drop;
                }
                Fault::DelayReplication { epoch: e, by } if *e == epoch => {
                    return ReplicationFate::Delay(*by);
                }
                _ => {}
            }
        }
        ReplicationFate::Deliver
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn uniform(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Occupancy thresholds of the brownout controller, as fractions of the
/// fleet's routable serving slots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BrownoutConfig {
    /// Occupancy at or above which the controller escalates one level.
    pub high: f64,
    /// Occupancy at or below which it de-escalates one level
    /// (hysteresis: must be below `high`).
    pub low: f64,
}

impl Default for BrownoutConfig {
    fn default() -> Self {
        BrownoutConfig {
            high: 0.75,
            low: 0.40,
        }
    }
}

/// Graceful-degradation state: sheds whole SLO classes, cheapest first,
/// when the routable fleet runs hot.
///
/// The controller holds a level in `0..=3`, moved one step per monitor
/// tick by occupancy hysteresis: level 1 sheds `Batch`, level 2 also
/// sheds `Standard`, level 3 sheds everything. Shedding a class outright
/// keeps the survivors' latency intact instead of failing every tenant a
/// little — the brownout trade.
///
/// # Examples
///
/// ```
/// use qram_serve::{BrownoutConfig, BrownoutController};
/// use qram_sched::SloClass;
///
/// let mut ctrl = BrownoutController::new(BrownoutConfig::default());
/// assert!(!ctrl.sheds(SloClass::Batch));
/// ctrl.observe(0.9); // hot: escalate to level 1
/// assert!(ctrl.sheds(SloClass::Batch));
/// assert!(!ctrl.sheds(SloClass::Standard));
/// ctrl.observe(0.2); // cool: back to level 0
/// assert!(!ctrl.sheds(SloClass::Batch));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BrownoutController {
    config: BrownoutConfig,
    level: u8,
}

impl BrownoutController {
    /// A controller at level 0 (shedding nothing).
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ low < high`.
    #[must_use]
    pub fn new(config: BrownoutConfig) -> Self {
        assert!(
            config.low >= 0.0 && config.low < config.high,
            "brownout hysteresis needs 0 ≤ low < high, got low={} high={}",
            config.low,
            config.high
        );
        BrownoutController { config, level: 0 }
    }

    /// The current degradation level in `0..=3`.
    #[must_use]
    pub fn level(&self) -> u8 {
        self.level
    }

    /// Feeds one occupancy observation (fraction of routable serving
    /// slots in use), moving the level at most one step.
    pub fn observe(&mut self, occupancy: f64) {
        if occupancy >= self.config.high && self.level < 3 {
            self.level += 1;
        } else if occupancy <= self.config.low && self.level > 0 {
            self.level -= 1;
        }
    }

    /// True when arrivals of the given SLO class are shed at the current
    /// level (`Batch` first, then `Standard`, then `Interactive`).
    #[must_use]
    pub fn sheds(&self, class: SloClass) -> bool {
        let threshold = match class {
            SloClass::Batch => 1,
            SloClass::Standard => 2,
            SloClass::Interactive => 3,
        };
        self.level >= threshold
    }
}

/// Fault-tolerance configuration of the serving loop: how aggressively
/// to detect, retry, hedge, replay, and degrade. The default is fully
/// passive (no hedging, no brownout) and, combined with an empty
/// [`FaultPlan`], schedules no monitor events at all.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Backoff budget for re-dispatching lost attempts (crashes,
    /// corrupted outcomes, unplaceable retries).
    pub retry: RetryPolicy,
    /// When set, an [`SloClass::Interactive`] tenant's query still
    /// outstanding this long after arrival gets a duplicate dispatch on
    /// a second replica; the first completion wins.
    pub hedge_delay: Option<Layers>,
    /// Cadence of the health monitor: heartbeat misses are counted and
    /// brownout occupancy sampled once per tick.
    pub monitor_interval: Layers,
    /// A completion whose service time exceeds `latency × margin` marks
    /// its replica [`ReplicaHealth::Suspect`].
    pub latency_margin: f64,
    /// Replication-log entries a recovering replica replays per
    /// [`ReplicatedMemory::catch_up_by`] step.
    ///
    /// [`ReplicatedMemory::catch_up_by`]: qram_core::ReplicatedMemory::catch_up_by
    pub replay_chunk: u64,
    /// Virtual time a recovering replica spends per lagged log entry
    /// before rejoining rotation.
    pub replay_per_entry: Layers,
    /// Enables the brownout controller with the given thresholds.
    pub brownout: Option<BrownoutConfig>,
    /// Cadence of the anti-entropy scrubber: each tick audits the
    /// durable WAL against the disk (truncating torn tails and
    /// re-appending lost epochs from the in-memory log) and compares
    /// every live replica's chunked memory digest against the durable
    /// chain's expected state, repairing divergence. `None` (the
    /// default) disables scrubbing and keeps the loop passive.
    pub scrub_interval: Option<Layers>,
    /// Memory cells per digest chunk in scrub comparisons (granularity
    /// of divergence localization).
    pub scrub_chunk_cells: usize,
    /// Commit-group policy for the durable store: how many WAL records
    /// may share one sync, and the virtual-time flush deadline the
    /// reactor arms when a group opens. The default per-record policy
    /// is the pre-group-commit behavior, sync for sync.
    pub group_commit: GroupCommitPolicy,
    /// When set, the health monitor retunes `group_commit.max_records`
    /// each tick from the observed append rate (double under load,
    /// halve when idle, clamped to the given bounds) — observe, adapt,
    /// assert: the durability contract is unchanged because only the
    /// batching knob moves, never the ack-at-sync point.
    pub adaptive_group_commit: Option<AdaptiveGroupCommit>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            retry: RetryPolicy::default(),
            hedge_delay: None,
            monitor_interval: Layers::new(64.0),
            latency_margin: 4.0,
            replay_chunk: 8,
            replay_per_entry: Layers::new(1.0),
            brownout: None,
            scrub_interval: None,
            scrub_chunk_cells: 64,
            group_commit: GroupCommitPolicy::per_record(),
            adaptive_group_commit: None,
        }
    }
}

/// Bounds for the monitor-driven commit-group controller: the group
/// size doubles while a monitor interval lands more appends than the
/// current group holds, and halves when the interval ran dry, clamped
/// to `[min_records, max_records]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveGroupCommit {
    /// Smallest group size the controller may fall back to.
    pub min_records: usize,
    /// Largest group size the controller may grow to.
    pub max_records: usize,
}

impl Default for AdaptiveGroupCommit {
    fn default() -> Self {
        AdaptiveGroupCommit {
            min_records: 1,
            max_records: 128,
        }
    }
}

/// The parity bit of a query outcome: XOR of the data-bit parities over
/// all superposition terms. Any single flipped data bit flips it — the
/// detection invariant behind [`Fault::CorruptOutcome`].
#[must_use]
pub fn parity_bit(outcome: &QueryOutcome) -> u64 {
    outcome.iter().fold(0, |acc, &(_, _, data)| {
        acc ^ (u64::from(data.count_ones()) & 1)
    })
}

/// The corrupted twin of an outcome: the first term's lowest data bit is
/// flipped (outcomes with a zero-width bus are returned unchanged —
/// there is no data bit to corrupt).
#[must_use]
pub fn corrupt_outcome(outcome: &QueryOutcome) -> QueryOutcome {
    let mut terms: Vec<(Complex, u64, u64)> = outcome.iter().copied().collect();
    if outcome.bus_width() >= 1 {
        if let Some(first) = terms.first_mut() {
            first.2 ^= 1;
        }
    }
    QueryOutcome::from_terms(outcome.address_width(), outcome.bus_width(), terms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_reproducible_and_in_bounds() {
        let horizon = Layers::new(10_000.0);
        let a = FaultPlan::from_seed(42, 4, 2, horizon);
        let b = FaultPlan::from_seed(42, 4, 2, horizon);
        assert_eq!(a, b, "same seed, same plan");
        let c = FaultPlan::from_seed(43, 4, 2, horizon);
        assert_ne!(a, c, "different seed, different plan");
        for fault in a.faults() {
            match *fault {
                Fault::Crash { replica, at } | Fault::Recover { replica, at } => {
                    assert!(replica < 4);
                    assert!(at > Layers::ZERO);
                }
                Fault::SlowReplica {
                    replica, factor, ..
                } => {
                    assert!(replica < 4);
                    assert!(factor >= 1.0);
                }
                Fault::StallShard { replica, shard, .. } => {
                    assert!(replica < 4);
                    assert!(shard < 2);
                }
                Fault::CorruptOutcome { replica, .. } => assert!(replica < 4),
                Fault::DiskCorrupt { replica, at, .. } => {
                    assert!(replica < 4);
                    assert!(at > Layers::ZERO);
                }
                Fault::DropReplication { .. }
                | Fault::DelayReplication { .. }
                | Fault::TornWrite { .. } => {}
            }
        }
    }

    #[test]
    fn seeded_disk_faults_appear_across_seeds() {
        // The chaos generator must actually exercise the durability
        // tier: across a modest seed range both disk fault kinds occur.
        let horizon = Layers::new(5_000.0);
        let mut torn = 0;
        let mut corrupt = 0;
        for seed in 0..64 {
            let plan = FaultPlan::from_seed(seed, 4, 2, horizon);
            if plan
                .faults()
                .iter()
                .any(|f| matches!(f, Fault::TornWrite { .. }))
            {
                torn += 1;
                assert!(plan.has_disk_faults());
            }
            if plan
                .faults()
                .iter()
                .any(|f| matches!(f, Fault::DiskCorrupt { .. }))
            {
                corrupt += 1;
                assert!(plan.has_disk_faults());
            }
        }
        assert!(torn > 5, "torn writes too rare: {torn}/64");
        assert!(corrupt > 5, "disk corruption too rare: {corrupt}/64");
        assert!(!FaultPlan::none().has_disk_faults());
    }

    #[test]
    fn tears_matches_only_the_planned_epoch() {
        let plan = FaultPlan::none().with(Fault::TornWrite { epoch: 3 });
        assert!(plan.tears(3));
        assert!(!plan.tears(2));
        assert!(plan.has_disk_faults());
    }

    #[test]
    fn recover_faults_follow_their_crash() {
        for seed in 0..64 {
            let plan = FaultPlan::from_seed(seed, 4, 2, Layers::new(5_000.0));
            for fault in plan.faults() {
                if let Fault::Recover { replica, at } = *fault {
                    let crash = plan.faults().iter().find_map(|f| match *f {
                        Fault::Crash { replica: r, at } if r == replica => Some(at),
                        _ => None,
                    });
                    let crash = crash.expect("a recover implies a crash");
                    assert!(crash < at, "recovery strictly after the crash");
                }
            }
        }
    }

    #[test]
    fn slow_factor_is_windowed_and_defaults_to_unity() {
        let plan = FaultPlan::none().with(Fault::SlowReplica {
            replica: 1,
            from: Layers::new(100.0),
            until: Layers::new(200.0),
            factor: 3.0,
        });
        assert_eq!(plan.slow_factor(1, Layers::new(150.0)), 3.0);
        assert_eq!(plan.slow_factor(1, Layers::new(99.0)), 1.0);
        assert_eq!(
            plan.slow_factor(1, Layers::new(200.0)),
            1.0,
            "until is exclusive"
        );
        assert_eq!(
            plan.slow_factor(0, Layers::new(150.0)),
            1.0,
            "other replica"
        );
        assert!(plan.has_slow_faults());
        assert!(!FaultPlan::none().has_slow_faults());
    }

    #[test]
    fn replication_fate_matches_the_first_drop_or_delay() {
        let plan = FaultPlan::none()
            .with(Fault::DropReplication { epoch: 2 })
            .with(Fault::DelayReplication {
                epoch: 3,
                by: Layers::new(500.0),
            });
        assert_eq!(plan.replication_fate(1), ReplicationFate::Deliver);
        assert_eq!(plan.replication_fate(2), ReplicationFate::Drop);
        assert_eq!(
            plan.replication_fate(3),
            ReplicationFate::Delay(Layers::new(500.0))
        );
    }

    #[test]
    fn brownout_escalates_and_decays_with_hysteresis() {
        let mut ctrl = BrownoutController::new(BrownoutConfig::default());
        ctrl.observe(0.9);
        ctrl.observe(0.9);
        ctrl.observe(0.9);
        ctrl.observe(0.9);
        assert_eq!(ctrl.level(), 3, "level saturates at 3");
        assert!(ctrl.sheds(SloClass::Interactive));
        // Mid-band occupancy holds the level (hysteresis).
        ctrl.observe(0.6);
        assert_eq!(ctrl.level(), 3);
        ctrl.observe(0.2);
        ctrl.observe(0.2);
        assert_eq!(ctrl.level(), 1);
        assert!(
            ctrl.sheds(SloClass::Batch),
            "batch shed first, restored last"
        );
        assert!(!ctrl.sheds(SloClass::Standard));
    }

    #[test]
    fn brownout_boundary_occupancy_exactly_at_thresholds() {
        // The shed threshold is inclusive: occupancy exactly at `high`
        // escalates. The restore threshold is inclusive too: occupancy
        // exactly at `low` de-escalates. One epsilon inside the band
        // holds the level in both directions.
        let config = BrownoutConfig::default();
        let mut ctrl = BrownoutController::new(config);
        ctrl.observe(config.high);
        assert_eq!(ctrl.level(), 1, "occupancy == high must escalate");
        ctrl.observe(config.high - 1e-9);
        assert_eq!(ctrl.level(), 1, "just under high holds the level");
        ctrl.observe(config.low + 1e-9);
        assert_eq!(ctrl.level(), 1, "just above low holds the level");
        ctrl.observe(config.low);
        assert_eq!(ctrl.level(), 0, "occupancy == low must restore");
        ctrl.observe(config.low);
        assert_eq!(ctrl.level(), 0, "restore saturates at level 0");
    }

    #[test]
    fn brownout_single_tick_spike_does_not_flap_classes() {
        // A one-tick occupancy spike escalates at most one level (Batch
        // only); Standard and Interactive never flap, and the level
        // holds — rather than oscillating — until occupancy actually
        // drains to the restore threshold.
        let mut ctrl = BrownoutController::new(BrownoutConfig::default());
        ctrl.observe(1.0); // the spike
        assert_eq!(ctrl.level(), 1, "one tick moves at most one level");
        assert!(ctrl.sheds(SloClass::Batch));
        assert!(
            !ctrl.sheds(SloClass::Standard),
            "spike must not reach Standard"
        );
        assert!(!ctrl.sheds(SloClass::Interactive));
        // The spike passes; mid-band occupancy must hold, not flap back.
        for _ in 0..5 {
            ctrl.observe(0.6);
            assert_eq!(ctrl.level(), 1, "mid-band holds: no flapping");
            assert!(ctrl.sheds(SloClass::Batch));
        }
        // Only a real drain restores, and only one level per tick.
        ctrl.observe(0.1);
        assert_eq!(ctrl.level(), 0);
        assert!(!ctrl.sheds(SloClass::Batch));
    }

    #[test]
    fn corruption_always_flips_the_parity_bit() {
        let outcome = QueryOutcome::from_terms(
            3,
            2,
            vec![
                (Complex::new(0.6, 0.0), 1, 0b10),
                (Complex::new(0.8, 0.0), 5, 0b11),
            ],
        );
        let twisted = corrupt_outcome(&outcome);
        assert_ne!(parity_bit(&outcome), parity_bit(&twisted));
        assert_eq!(twisted.data_for(1), Some(0b11), "lowest data bit flipped");
        assert_eq!(twisted.data_for(5), Some(0b11), "other terms untouched");
    }

    #[test]
    fn zero_width_bus_has_nothing_to_corrupt() {
        let outcome = QueryOutcome::from_terms(2, 0, vec![(Complex::new(1.0, 0.0), 3, 0)]);
        let twisted = corrupt_outcome(&outcome);
        let terms = |o: &QueryOutcome| o.iter().copied().collect::<Vec<_>>();
        assert_eq!(terms(&twisted), terms(&outcome));
    }

    #[test]
    fn health_routability_partition() {
        assert!(ReplicaHealth::Healthy.routable());
        assert!(ReplicaHealth::Suspect.routable());
        assert!(!ReplicaHealth::Down.routable());
        assert!(!ReplicaHealth::Recovering.routable());
    }
}
