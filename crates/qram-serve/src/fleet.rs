//! The multi-tenant QRAM fleet: a routing tier over `R` serving replicas
//! with epoch-replicated writes.
//!
//! [`QramFleet`] scales the §5 quantum-data-center service *out*: it runs
//! `R` independent [`Replica`] cores — each a full sharded QRAM with its
//! own dispatcher, admission interval, and pipeline slots — behind a
//! front-end router, all inside one discrete-event reactor:
//!
//! ```text
//!        tenant streams (quotas, SLO classes — qram-sched)
//!                     │
//!                     ▼
//!   ┌────────────────────────────────────┐  routing tier (this module)
//!   │ quota / SLO shedding  →  placement │  ConsistentHashPlacement
//!   └────────┬──────────┬──────────┬─────┘  LeastLoadedPlacement
//!            ▼          ▼          ▼
//!       ┌─────────┐┌─────────┐┌─────────┐   R replica cores
//!       │Replica 0││Replica 1││Replica 2│   (dispatch queues, I/K
//!       └────┬────┘└────┬────┘└────┬────┘    spacing, backpressure)
//!            ▼          ▼          ▼
//!       ┌────────────────────────────────┐  epoch-replicated memory
//!       │ ReplicatedMemory: fleet epoch, │  (qram-core): stale reads
//!       │ per-replica applied epochs     │  flagged, never silent
//!       └────────────────────────────────┘
//! ```
//!
//! * **Placement** is pluggable ([`PlacementPolicy`]):
//!   [`ConsistentHashPlacement`] routes by the query's principal address
//!   modulo `R` — the same residue-class interleave `ShardedQram` uses
//!   for shards, giving exact fairness on uniform address sweeps and
//!   stable address → replica affinity (memoized-read locality);
//!   [`LeastLoadedPlacement`] routes to the replica with the fewest
//!   queued + in-flight queries that still has queue room, so a shedding
//!   replica is never chosen while another can absorb the arrival.
//! * **Multi-tenancy** threads through the [`AdmissionPolicy`] stack's
//!   tenant hooks: a tenant at its outstanding-request quota is shed at
//!   the router ([`ShedReason::QuotaExceeded`]), and a sub-interactive
//!   [`SloClass`] only gets its class's share of a bounded replica queue
//!   ([`ShedReason::SloShed`]).
//! * **Writes** ([`FleetWrite`]) commit at one origin replica, bump the
//!   fleet epoch of a [`ReplicatedMemory`], and reach the other replicas
//!   one replication lag later. Every dispatch is stamped with its
//!   replica's applied epoch: queries that ran against a superseded
//!   memory version are reported with [`FleetQuery::stale`] set — the
//!   consistency contract is *detectability*, not freshness.
//!
//! With `R = 1`, no writes, and the default tenant, the fleet reduces
//! exactly to [`QramService`] — same timings, same outcomes, same
//! shedding (property-tested in `tests/fleet.rs`).
//!
//! [`SloClass`]: qram_sched::SloClass
//! [`QramService`]: crate::QramService

use std::collections::BTreeMap;

use qram_core::{ExecError, QramModel, ReplicatedMemory, ShardedQram};
use qram_metrics::{HistogramFamily, LatencyHistogram, Layers, QueryRate, TimingModel};
use qram_sched::{AdmissionPolicy, FifoAdmission, QramServer, QueryRequest, Schedule, TenantId};
use qsim::branch::{AddressState, ClassicalMemory, QueryOutcome};

use crate::reactor::EventQueue;
use crate::replica::{Replica, ReplicaEvent};

/// A user query arriving at the fleet router.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetRequest {
    /// Caller-chosen request identifier (reported back in the
    /// [`FleetReport`]; need not be unique).
    pub id: usize,
    /// The tenant issuing the query (quota and SLO lookups key on this).
    pub tenant: TenantId,
    /// Arrival instant in virtual layer time.
    pub arrival: Layers,
    /// The queried address superposition.
    pub address: AddressState,
}

/// A memory write submitted to the fleet: committed at `origin` when the
/// reactor reaches `at`, replicated everywhere one replication lag later.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetWrite {
    /// Commit instant in virtual layer time.
    pub at: Layers,
    /// The replica the write commits at synchronously.
    pub origin: usize,
    /// The written global cell address.
    pub address: u64,
    /// The written value.
    pub value: u64,
}

/// Configuration of the fleet router.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FleetConfig {
    /// Per-replica bound on requests waiting in the dispatch queues.
    /// Arrivals beyond it (or beyond the tenant's SLO share of it) are
    /// shed. `None` queues without bound and disables SLO shedding.
    pub queue_capacity: Option<usize>,
    /// Delay between a write committing at its origin and every other
    /// replica applying it. Zero replicates within the same instant.
    pub replication_lag: Layers,
}

/// Why the router shed a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The placed replica's arrival queue was full.
    QueueFull,
    /// The tenant was at its outstanding-request quota.
    QuotaExceeded,
    /// The tenant's SLO class exhausted its share of the replica queue.
    SloShed,
}

/// One shed request, in arrival order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShedRequest {
    /// The request identifier.
    pub id: usize,
    /// The tenant that issued it.
    pub tenant: TenantId,
    /// Why the router refused it.
    pub reason: ShedReason,
}

/// The load signal a [`PlacementPolicy`] ranks replicas by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaLoad {
    /// Requests waiting in the replica's dispatch queues.
    pub queued: usize,
    /// Queries in flight in the replica's shard pipelines.
    pub in_flight: u32,
    /// True when the replica's bounded arrival queue still has room.
    pub has_room: bool,
}

impl ReplicaLoad {
    /// Queued plus in-flight: the scalar load of the replica.
    #[must_use]
    pub fn load(&self) -> usize {
        self.queued + self.in_flight as usize
    }
}

/// Chooses the replica a request is routed to.
pub trait PlacementPolicy {
    /// The replica index for `request` given the current per-replica
    /// loads (`loads.len()` is the fleet size, always ≥ 1). Must return
    /// an index below `loads.len()`.
    fn place(&self, request: &FleetRequest, loads: &[ReplicaLoad]) -> usize;
}

/// Routes by the query's principal (first) basis address modulo the fleet
/// size — the same residue-class interleave [`ShardedQram`] uses across
/// shards, one level up.
///
/// Uniform cyclic address sweeps land exactly evenly (per-replica
/// dispatch counts never differ by more than one), and a given address
/// always revisits the same replica, so its memoized read stays hot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConsistentHashPlacement;

impl PlacementPolicy for ConsistentHashPlacement {
    fn place(&self, request: &FleetRequest, loads: &[ReplicaLoad]) -> usize {
        let principal = request
            .address
            .iter()
            .next()
            .map_or(0, |&(_, address)| address);
        (principal % loads.len() as u64) as usize
    }
}

/// Routes to the replica with the smallest queued + in-flight load that
/// still has queue room (ties break to the lowest index). Only when every
/// replica is full does it fall back to the least-loaded one overall — a
/// shedding replica is never chosen while another could absorb the
/// arrival.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LeastLoadedPlacement;

impl PlacementPolicy for LeastLoadedPlacement {
    fn place(&self, _request: &FleetRequest, loads: &[ReplicaLoad]) -> usize {
        let least = |indices: &mut dyn Iterator<Item = usize>| {
            indices.min_by_key(|&r| (loads[r].load(), r))
        };
        least(&mut (0..loads.len()).filter(|&r| loads[r].has_room))
            .or_else(|| least(&mut (0..loads.len())))
            .expect("a fleet has at least one replica")
    }
}

/// One query served by the fleet, in completion order aligned with
/// [`FleetReport::outcomes`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetQuery {
    /// The request identifier.
    pub id: usize,
    /// The tenant that issued it.
    pub tenant: TenantId,
    /// Arrival instant at the router.
    pub arrival: Layers,
    /// Dispatch (admission) instant at the replica.
    pub start: Layers,
    /// Completion instant.
    pub finish: Layers,
    /// The replica that served the query.
    pub replica: usize,
    /// The shard within that replica.
    pub shard: usize,
    /// The memory epoch the replica had applied when the query
    /// dispatched.
    pub epoch: u64,
    /// True when the serving replica trailed the fleet epoch at dispatch:
    /// the read observed a superseded memory version. Stale results are
    /// always flagged, never silently reported as fresh.
    pub stale: bool,
}

impl FleetQuery {
    /// The latency the requester experienced: `finish − arrival`.
    #[must_use]
    pub fn response_latency(&self) -> Layers {
        self.finish - self.arrival
    }
}

/// Reactor events of the fleet, in virtual layer time. Arrivals live in a
/// sorted list merged against the heap (arrival-first at ties), exactly
/// as in the single-replica service.
#[derive(Debug)]
enum Event {
    /// A write commits at its origin replica.
    Write(FleetWrite),
    /// The log prefix up to `epoch` reaches every replica.
    Replicate { epoch: u64 },
    /// The `index`-th query dispatched at `replica` leaves its pipeline.
    Completion { replica: usize, index: usize },
    /// Wake `replica`'s dispatcher at an admission-interval boundary.
    Poll { replica: usize },
}

/// The outcome of one fleet serving run.
#[derive(Debug, Clone)]
pub struct FleetReport {
    timing: TimingModel,
    completed: Vec<FleetQuery>,
    outcomes: Vec<QueryOutcome>,
    shed: Vec<ShedRequest>,
    per_replica_dispatches: Vec<u64>,
    per_tenant: HistogramFamily<TenantId>,
    per_replica: HistogramFamily<usize>,
    stale_served: u64,
    fleet_epoch: u64,
}

impl FleetReport {
    /// Served queries in completion order.
    #[must_use]
    pub fn completed(&self) -> &[FleetQuery] {
        &self.completed
    }

    /// Query outcomes aligned with [`Self::completed`].
    #[must_use]
    pub fn outcomes(&self) -> &[QueryOutcome] {
        &self.outcomes
    }

    /// Requests the router shed, in arrival order.
    #[must_use]
    pub fn shed(&self) -> &[ShedRequest] {
        &self.shed
    }

    /// Shed requests with the given reason.
    #[must_use]
    pub fn shed_count(&self, reason: ShedReason) -> usize {
        self.shed.iter().filter(|s| s.reason == reason).count()
    }

    /// Queries dispatched per replica.
    #[must_use]
    pub fn per_replica_dispatches(&self) -> &[u64] {
        &self.per_replica_dispatches
    }

    /// Per-tenant response-latency histograms, tenant-ordered.
    #[must_use]
    pub fn per_tenant(&self) -> &HistogramFamily<TenantId> {
        &self.per_tenant
    }

    /// Per-replica response-latency histograms, index-ordered.
    #[must_use]
    pub fn per_replica(&self) -> &HistogramFamily<usize> {
        &self.per_replica
    }

    /// The fleet-wide response-latency histogram (all tenants merged).
    #[must_use]
    pub fn latency_histogram(&self) -> LatencyHistogram {
        self.per_tenant.merged()
    }

    /// A response-latency quantile for one tenant, in the timing model's
    /// wall-clock microseconds.
    ///
    /// # Panics
    ///
    /// Panics if the tenant completed nothing or `q` is outside `[0, 1]`.
    #[must_use]
    pub fn tenant_latency_micros(&self, tenant: TenantId, q: f64) -> f64 {
        let histogram = self
            .per_tenant
            .get(tenant)
            .expect("tenant has completed queries");
        self.timing.layers_to_micros(histogram.quantile(q))
    }

    /// Queries served against a superseded memory version (and flagged).
    #[must_use]
    pub fn stale_served(&self) -> u64 {
        self.stale_served
    }

    /// The final fleet epoch: total writes committed during the run.
    #[must_use]
    pub fn fleet_epoch(&self) -> u64 {
        self.fleet_epoch
    }

    /// Completion instant of the last served query.
    #[must_use]
    pub fn makespan(&self) -> Layers {
        self.completed
            .iter()
            .map(|c| c.finish)
            .fold(Layers::ZERO, Layers::max)
    }

    /// The observation window: first arrival → last completion.
    ///
    /// # Panics
    ///
    /// Panics if nothing completed.
    #[must_use]
    pub fn window(&self) -> Layers {
        assert!(!self.completed.is_empty(), "window of an empty run");
        let first_arrival = self
            .completed
            .iter()
            .map(|c| c.arrival)
            .reduce(Layers::min)
            .expect("non-empty");
        self.makespan() - first_arrival
    }

    /// Aggregate served queries per second under the fleet's timing
    /// model, over the first-arrival → makespan window.
    ///
    /// # Panics
    ///
    /// Panics if nothing completed.
    #[must_use]
    pub fn query_rate(&self) -> QueryRate {
        QueryRate::new(self.completed.len() as f64 / self.timing.layers_to_seconds(self.window()))
    }

    /// The realized timings as a `qram-sched` [`Schedule`], for the
    /// `R = 1` equivalence pin against [`QramService`].
    ///
    /// [`QramService`]: crate::QramService
    #[must_use]
    pub fn schedule(&self) -> Schedule {
        Schedule::from_entries(
            self.completed
                .iter()
                .map(|c| qram_sched::ScheduledQuery {
                    request: QueryRequest {
                        id: c.id,
                        arrival: c.arrival,
                    },
                    start: c.start,
                    finish: c.finish,
                })
                .collect(),
        )
    }
}

/// A multi-tenant fleet of `R` QRAM serving replicas behind a routing
/// tier, with epoch-replicated writes.
///
/// # Examples
///
/// ```
/// use qram_core::ShardedQram;
/// use qram_metrics::{Capacity, Layers, TimingModel};
/// use qram_sched::TenantId;
/// use qram_serve::{FleetRequest, QramFleet};
/// use qsim::branch::{AddressState, ClassicalMemory};
///
/// let qram = ShardedQram::fat_tree(Capacity::new(16)?, 2);
/// let mut fleet = QramFleet::fifo(qram, 2, TimingModel::paper_default());
/// let memory = ClassicalMemory::from_words(1, &[1; 16])?;
/// let requests: Vec<FleetRequest> = (0..8)
///     .map(|id| FleetRequest {
///         id,
///         tenant: TenantId::DEFAULT,
///         arrival: Layers::ZERO,
///         address: AddressState::classical(4, id as u64).unwrap(),
///     })
///     .collect();
/// let report = fleet.serve(&memory, requests, Vec::new())?;
/// assert_eq!(report.completed().len(), 8);
/// // The residue-class ring splits a uniform sweep exactly evenly.
/// assert_eq!(report.per_replica_dispatches(), &[4, 4]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct QramFleet<
    M: QramModel + Clone,
    P: AdmissionPolicy = FifoAdmission,
    L: PlacementPolicy = ConsistentHashPlacement,
> {
    backends: Vec<ShardedQram<M>>,
    timing: TimingModel,
    policy: P,
    placement: L,
    config: FleetConfig,
}

impl<M: QramModel + Clone> QramFleet<M, FifoAdmission, ConsistentHashPlacement> {
    /// A FIFO fleet of `replicas` copies of `qram` under consistent-hash
    /// placement, unbounded queues, and instant replication.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is zero.
    #[must_use]
    pub fn fifo(qram: ShardedQram<M>, replicas: usize, timing: TimingModel) -> Self {
        QramFleet::new(
            qram,
            replicas,
            timing,
            FifoAdmission,
            ConsistentHashPlacement,
            FleetConfig::default(),
        )
    }
}

impl<M: QramModel + Clone, P: AdmissionPolicy, L: PlacementPolicy> QramFleet<M, P, L> {
    /// A fleet of `replicas` copies of `qram` with explicit admission
    /// policy, placement policy, and configuration.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is zero.
    #[must_use]
    pub fn new(
        qram: ShardedQram<M>,
        replicas: usize,
        timing: TimingModel,
        policy: P,
        placement: L,
        config: FleetConfig,
    ) -> Self {
        assert!(replicas >= 1, "a fleet needs at least one replica");
        QramFleet {
            backends: vec![qram; replicas],
            timing,
            policy,
            placement,
            config,
        }
    }

    /// The fleet size `R`.
    #[must_use]
    pub fn num_replicas(&self) -> usize {
        self.backends.len()
    }

    /// The backend serving replica `replica`.
    #[must_use]
    pub fn backend(&self, replica: usize) -> &ShardedQram<M> {
        &self.backends[replica]
    }

    /// The pipelined server equivalent to each replica.
    #[must_use]
    pub fn equivalent_server(&self) -> QramServer {
        QramServer::for_model(&self.backends[0], &self.timing)
    }

    /// Serves a batch of requests (and write commits) to completion:
    /// routes every arrival through quota / SLO shedding and the
    /// placement policy onto a replica core, interleaves write commits
    /// and replication with dispatching in one discrete-event loop, then
    /// executes each replica's dispatched queries against the memory
    /// versions they observed.
    ///
    /// Requests and writes may be supplied in any order (the reactor
    /// orders them by instant; same-instant arrivals precede write
    /// commits and completions, and writes among themselves keep supply
    /// order).
    ///
    /// # Errors
    ///
    /// Returns an error if query execution fails.
    ///
    /// # Panics
    ///
    /// Panics if a request's address width mismatches the QRAM capacity,
    /// a write's origin replica or cell address is out of range, or the
    /// placement policy returns an out-of-range replica.
    pub fn serve(
        &mut self,
        memory: &ClassicalMemory,
        requests: impl IntoIterator<Item = FleetRequest>,
        writes: impl IntoIterator<Item = FleetWrite>,
    ) -> Result<FleetReport, ExecError> {
        let num_replicas = self.backends.len();
        let server = self.equivalent_server();
        let aggregate_cap = self
            .policy
            .in_flight_cap(&server)
            .clamp(1, server.parallelism());
        let address_width = self.backends[0].capacity().address_width();
        let mut replicas: Vec<Replica> = (0..num_replicas)
            .map(|_| {
                Replica::new(
                    self.backends[0].num_shards() as usize,
                    self.backends[0].shard_parallelism(),
                    server.interval(),
                    server.latency(),
                    aggregate_cap,
                    self.config.queue_capacity,
                )
            })
            .collect();

        // Replicated memory + one snapshot per (replica, applied epoch):
        // a dispatched query executes against the exact memory version its
        // replica had applied at dispatch time.
        let mut replicated = ReplicatedMemory::new(memory.clone(), num_replicas);
        let mut snapshots: Vec<BTreeMap<u64, ClassicalMemory>> = (0..num_replicas)
            .map(|_| BTreeMap::from([(0, memory.clone())]))
            .collect();
        // Per-dispatch annotations, indexed [replica][dispatch index].
        let mut dispatch_epochs: Vec<Vec<u64>> = vec![Vec::new(); num_replicas];
        let mut dispatch_stale: Vec<Vec<bool>> = vec![Vec::new(); num_replicas];

        let mut arrivals: Vec<FleetRequest> = requests
            .into_iter()
            .inspect(|r| {
                assert_eq!(
                    r.address.address_width(),
                    address_width,
                    "request address width must match QRAM capacity"
                );
            })
            .collect();
        arrivals.sort_by(|a, b| {
            a.arrival
                .get()
                .partial_cmp(&b.arrival.get())
                .expect("event times are finite")
        });
        let total_requests = arrivals.len();
        let mut arrivals = arrivals.into_iter().peekable();

        let mut events: EventQueue<Event> = EventQueue::new();
        for write in writes {
            assert!(
                write.origin < num_replicas,
                "write origin replica {} out of range (R = {num_replicas})",
                write.origin
            );
            events.push(write.at, Event::Write(write));
        }

        let mut completed: Vec<FleetQuery> = Vec::with_capacity(total_requests);
        let mut shed: Vec<ShedRequest> = Vec::new();
        let mut outstanding: BTreeMap<TenantId, u32> = BTreeMap::new();
        let mut per_tenant: HistogramFamily<TenantId> = HistogramFamily::new();
        let mut per_replica: HistogramFamily<usize> = HistogramFamily::new();
        let mut stale_served = 0u64;

        loop {
            let arrival_is_next = match (arrivals.peek(), events.peek_time()) {
                (Some(request), Some(next)) => request.arrival <= next,
                (Some(_), None) => true,
                (None, _) => false,
            };
            // Which replica's dispatcher to pump after handling the event
            // (writes and replication never unblock a dispatcher).
            let mut pump: Option<usize> = None;
            let now;
            if arrival_is_next {
                let request = arrivals.next().expect("peeked arrival exists");
                now = request.arrival;
                let tenant = request.tenant;
                if self
                    .policy
                    .tenant_quota(tenant)
                    .is_some_and(|quota| outstanding.get(&tenant).copied().unwrap_or(0) >= quota)
                {
                    shed.push(ShedRequest {
                        id: request.id,
                        tenant,
                        reason: ShedReason::QuotaExceeded,
                    });
                } else {
                    let loads: Vec<ReplicaLoad> = replicas
                        .iter()
                        .map(|r| ReplicaLoad {
                            queued: r.queued(),
                            in_flight: r.in_flight(),
                            has_room: r.has_queue_room(),
                        })
                        .collect();
                    let target = self.placement.place(&request, &loads);
                    assert!(
                        target < num_replicas,
                        "placement returned replica {target} of {num_replicas}"
                    );
                    let slo_bound = self
                        .config
                        .queue_capacity
                        .map(|cap| self.policy.tenant_slo(tenant).queue_bound(cap));
                    if slo_bound.is_some_and(|bound| replicas[target].queued() >= bound) {
                        let reason = if replicas[target].has_queue_room() {
                            ShedReason::SloShed
                        } else {
                            ShedReason::QueueFull
                        };
                        shed.push(ShedRequest {
                            id: request.id,
                            tenant,
                            reason,
                        });
                    } else {
                        let offered = replicas[target].offer(
                            request.id,
                            tenant,
                            request.arrival,
                            request.address,
                        );
                        debug_assert!(offered, "the SLO bound is at most the queue bound");
                        *outstanding.entry(tenant).or_insert(0) += 1;
                        pump = Some(target);
                    }
                }
            } else if let Some((at, event)) = events.pop() {
                now = at;
                match event {
                    Event::Write(write) => {
                        let epoch = replicated.write_at(write.origin, write.address, write.value);
                        let applied = replicated.applied_epoch(write.origin);
                        snapshots[write.origin]
                            .insert(applied, replicated.memory(write.origin).clone());
                        if num_replicas > 1 {
                            events.push(
                                now + self.config.replication_lag,
                                Event::Replicate { epoch },
                            );
                        }
                    }
                    Event::Replicate { epoch } => {
                        for (r, snaps) in snapshots.iter_mut().enumerate() {
                            if replicated.catch_up_to(r, epoch) > 0 {
                                snaps.insert(
                                    replicated.applied_epoch(r),
                                    replicated.memory(r).clone(),
                                );
                            }
                        }
                    }
                    Event::Completion { replica, index } => {
                        let tenant = replicas[replica].tenant_of(index);
                        let record = replicas[replica].complete(index, now);
                        let query = FleetQuery {
                            id: record.id,
                            tenant,
                            arrival: record.arrival,
                            start: record.start,
                            finish: record.finish,
                            replica,
                            shard: record.shard,
                            epoch: dispatch_epochs[replica][index],
                            stale: dispatch_stale[replica][index],
                        };
                        stale_served += u64::from(query.stale);
                        per_tenant.record(tenant, query.response_latency());
                        per_replica.record(replica, query.response_latency());
                        *outstanding.get_mut(&tenant).expect("tenant accepted") -= 1;
                        completed.push(query);
                        pump = Some(replica);
                    }
                    Event::Poll { replica } => {
                        replicas[replica].ack_poll(now);
                        pump = Some(replica);
                    }
                }
            } else {
                break;
            }
            if let Some(target) = pump {
                let range = replicas[target].pump(now, &mut self.policy, |time, ev| {
                    events.push(
                        time,
                        match ev {
                            ReplicaEvent::Completion { index } => Event::Completion {
                                replica: target,
                                index,
                            },
                            ReplicaEvent::Poll => Event::Poll { replica: target },
                        },
                    );
                });
                // Stamp each new dispatch with the memory version its
                // replica observes and whether that version is stale.
                for _ in range {
                    dispatch_epochs[target].push(replicated.applied_epoch(target));
                    dispatch_stale[target].push(replicated.is_stale(target));
                }
            }
        }

        let per_replica_dispatches: Vec<u64> =
            replicas.iter().map(|r| r.dispatch_count() as u64).collect();
        debug_assert!(
            replicas.iter().all(|r| r.queued() == 0),
            "every accepted request dispatches"
        );
        debug_assert!(outstanding.values().all(|&n| n == 0));

        // Execute per replica: consecutive dispatches that observed the
        // same applied epoch form one batch against that version's
        // snapshot, flowing through the backend's compiled-plan hot path.
        let mut outcomes_by_replica: Vec<Vec<QueryOutcome>> = Vec::with_capacity(num_replicas);
        for (r, replica) in replicas.into_iter().enumerate() {
            let addresses = replica.into_addresses();
            let epochs = &dispatch_epochs[r];
            let mut outcomes: Vec<QueryOutcome> = Vec::with_capacity(addresses.len());
            let mut lo = 0;
            while lo < addresses.len() {
                let mut hi = lo + 1;
                while hi < addresses.len() && epochs[hi] == epochs[lo] {
                    hi += 1;
                }
                let snapshot = &snapshots[r][&epochs[lo]];
                outcomes.extend(self.backends[r].execute_queries(
                    snapshot,
                    &addresses[lo..hi],
                    &[],
                )?);
                lo = hi;
            }
            outcomes_by_replica.push(outcomes);
        }
        // Align outcomes with the completion-ordered report: each replica
        // completes its dispatches in order, so one cursor per replica
        // walks its outcome list front to back.
        let mut cursors = vec![0usize; num_replicas];
        let outcomes: Vec<QueryOutcome> = completed
            .iter()
            .map(|c| {
                let outcome = outcomes_by_replica[c.replica][cursors[c.replica]].clone();
                cursors[c.replica] += 1;
                outcome
            })
            .collect();

        Ok(FleetReport {
            timing: self.timing,
            completed,
            outcomes,
            shed,
            per_replica_dispatches,
            per_tenant,
            per_replica,
            stale_served,
            fleet_epoch: replicated.fleet_epoch(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qram_metrics::Capacity;
    use qram_sched::QuotaAdmission;

    fn cap(n: u64) -> Capacity {
        Capacity::new(n).unwrap()
    }

    fn classical_requests(arrivals: &[f64], width: u32, modulus: u64) -> Vec<FleetRequest> {
        arrivals
            .iter()
            .enumerate()
            .map(|(id, &a)| FleetRequest {
                id,
                tenant: TenantId::DEFAULT,
                arrival: Layers::new(a),
                address: AddressState::classical(width, id as u64 % modulus).unwrap(),
            })
            .collect()
    }

    fn checkerboard(n: u64) -> ClassicalMemory {
        let cells: Vec<u64> = (0..n).map(|i| (i * 5 + 1) % 2).collect();
        ClassicalMemory::from_words(1, &cells).unwrap()
    }

    #[test]
    fn consistent_hash_spreads_a_uniform_sweep_exactly() {
        let qram = ShardedQram::fat_tree(cap(64), 2);
        let mut fleet = QramFleet::fifo(qram, 4, TimingModel::paper_default());
        let requests = classical_requests(&[0.0; 24], 6, 64);
        let report = fleet
            .serve(&checkerboard(64), requests, Vec::new())
            .unwrap();
        assert_eq!(report.per_replica_dispatches(), &[6, 6, 6, 6]);
        for c in report.completed() {
            assert_eq!(c.replica, c.id % 4, "address residue picks the replica");
        }
    }

    #[test]
    fn more_replicas_finish_a_saturated_burst_sooner() {
        let run = |replicas: usize| {
            let qram = ShardedQram::fat_tree(cap(256), 2);
            let mut fleet = QramFleet::fifo(qram, replicas, TimingModel::paper_default());
            let requests = classical_requests(&[0.0; 64], 8, 256);
            fleet
                .serve(&checkerboard(256), requests, Vec::new())
                .unwrap()
                .makespan()
        };
        let one = run(1);
        let two = run(2);
        let four = run(4);
        assert!(two < one, "R = 2 beats R = 1: {two:?} vs {one:?}");
        assert!(four < two, "R = 4 beats R = 2: {four:?} vs {two:?}");
    }

    #[test]
    fn writes_replicate_after_the_lag_and_stale_reads_are_flagged() {
        let qram = ShardedQram::fat_tree(cap(16), 1);
        let mut fleet = QramFleet::new(
            qram,
            2,
            TimingModel::paper_default(),
            FifoAdmission,
            ConsistentHashPlacement,
            FleetConfig {
                queue_capacity: None,
                replication_lag: Layers::new(1000.0),
            },
        );
        let memory = ClassicalMemory::from_words(1, &[0; 16]).unwrap();
        // Address 5 routes to replica 1 (5 mod 2); the write commits at
        // replica 0, so replica 1 serves the old value, flagged stale,
        // until replication lands at t = 1050.
        let read = |id: usize, at: f64| FleetRequest {
            id,
            tenant: TenantId::DEFAULT,
            arrival: Layers::new(at),
            address: AddressState::classical(4, 5).unwrap(),
        };
        let write = FleetWrite {
            at: Layers::new(50.0),
            origin: 0,
            address: 5,
            value: 1,
        };
        let report = fleet
            .serve(
                &memory,
                vec![read(0, 0.0), read(1, 100.0), read(2, 2000.0)],
                vec![write],
            )
            .unwrap();
        assert_eq!(report.fleet_epoch(), 1);
        let by_id = |id: usize| {
            report
                .completed()
                .iter()
                .position(|c| c.id == id)
                .expect("completed")
        };
        // Before the write: fresh at epoch 0.
        assert!(!report.completed()[by_id(0)].stale);
        assert_eq!(report.outcomes()[by_id(0)].data_for(5), Some(0));
        // After the write, before replication: flagged stale, old value.
        assert!(report.completed()[by_id(1)].stale);
        assert_eq!(report.completed()[by_id(1)].epoch, 0);
        assert_eq!(report.outcomes()[by_id(1)].data_for(5), Some(0));
        // After replication: fresh at epoch 1, new value.
        assert!(!report.completed()[by_id(2)].stale);
        assert_eq!(report.completed()[by_id(2)].epoch, 1);
        assert_eq!(report.outcomes()[by_id(2)].data_for(5), Some(1));
        assert_eq!(report.stale_served(), 1);
    }

    #[test]
    fn quota_sheds_the_hot_tenant_only() {
        let qram = ShardedQram::fat_tree(cap(64), 1);
        let policy = QuotaAdmission::new(FifoAdmission).with_quota(TenantId(1), 2);
        let mut fleet = QramFleet::new(
            qram,
            1,
            TimingModel::paper_default(),
            policy,
            ConsistentHashPlacement,
            FleetConfig::default(),
        );
        let requests: Vec<FleetRequest> = (0..12)
            .map(|id| FleetRequest {
                id,
                tenant: TenantId(u32::from(id % 2 == 0)),
                arrival: Layers::ZERO,
                address: AddressState::classical(6, id as u64).unwrap(),
            })
            .collect();
        let report = fleet
            .serve(&checkerboard(64), requests, Vec::new())
            .unwrap();
        // The hot tenant keeps its 2 outstanding; the unlimited tenant
        // keeps all 6.
        assert_eq!(report.shed_count(ShedReason::QuotaExceeded), 4);
        assert!(report.shed().iter().all(|s| s.tenant == TenantId(1)));
        assert_eq!(report.per_tenant().get(TenantId(0)).unwrap().count(), 6);
        assert_eq!(report.per_tenant().get(TenantId(1)).unwrap().count(), 2);
    }

    #[test]
    fn slo_class_gets_only_its_queue_share() {
        let qram = ShardedQram::fat_tree(cap(64), 1);
        let policy =
            QuotaAdmission::new(FifoAdmission).with_slo(TenantId(2), qram_sched::SloClass::Batch);
        let mut fleet = QramFleet::new(
            qram,
            1,
            TimingModel::paper_default(),
            policy,
            ConsistentHashPlacement,
            FleetConfig {
                queue_capacity: Some(8),
                replication_lag: Layers::ZERO,
            },
        );
        // A burst at t = 0: one dispatches immediately, the rest queue.
        // The batch-class tenant only gets floor(8 · 0.5) = 4 queue slots.
        let requests: Vec<FleetRequest> = (0..12)
            .map(|id| FleetRequest {
                id,
                tenant: TenantId(2),
                arrival: Layers::ZERO,
                address: AddressState::classical(6, id as u64).unwrap(),
            })
            .collect();
        let report = fleet
            .serve(&checkerboard(64), requests, Vec::new())
            .unwrap();
        assert_eq!(report.completed().len(), 5);
        assert_eq!(report.shed_count(ShedReason::SloShed), 7);
        assert_eq!(report.shed_count(ShedReason::QueueFull), 0);
    }

    #[test]
    fn least_loaded_avoids_full_replicas_while_others_have_room() {
        let qram = ShardedQram::fat_tree(cap(64), 1);
        let mut fleet = QramFleet::new(
            qram,
            2,
            TimingModel::paper_default(),
            FifoAdmission,
            LeastLoadedPlacement,
            FleetConfig {
                queue_capacity: Some(2),
                replication_lag: Layers::ZERO,
            },
        );
        // 6 simultaneous arrivals fill both replicas to the brim (1
        // dispatched + 2 queued each); nothing sheds until every replica
        // is actually full.
        let requests = classical_requests(&[0.0; 7], 6, 64);
        let report = fleet
            .serve(&checkerboard(64), requests, Vec::new())
            .unwrap();
        assert_eq!(report.completed().len(), 6);
        assert_eq!(report.shed_count(ShedReason::QueueFull), 1);
        assert_eq!(report.per_replica_dispatches(), &[3, 3]);
    }
}
